//! Concurrency smoke suite for the Catalog/Executor split.
//!
//! The thread-safety contract under test: a catalog snapshot is immutable
//! and shareable (`Arc<Catalog>`), a prepared plan may be executed from
//! any number of threads at once, and every execution writes only into
//! its private fragment overlay — so concurrent runs are bag-equal to a
//! serial run and the catalog is byte-identical afterwards.

use exrquy::diag::{ErrorCode, Failpoints};
use exrquy::frontend::pretty;
use exrquy::{Prepared, QueryOptions, ResultItem, Session};
use exrquy_verify::fuzz::{cell_rng, FUZZ_DOC_URL};
use exrquy_verify::{gen_doc, gen_query, FuzzProfile};
use std::sync::Arc;

const THREADS: usize = 8;

fn session() -> Session {
    let mut s = Session::new();
    s.load_document(
        "d.xml",
        "<site><a n='1'><b>x</b><b>y</b></a><a n='2'><b>z</b></a>\
         <a n='3'/><a n='4'><b>w</b><c>q</c></a></site>",
    )
    .unwrap();
    s
}

/// Results as a sorted multiset — the equivalence `unordered` grants.
fn bag(items: &[ResultItem]) -> Vec<String> {
    let mut v: Vec<String> = items.iter().map(ResultItem::render).collect();
    v.sort();
    v
}

/// The same `Arc<Prepared>` executed from 8 threads at once against one
/// shared executor must agree with the serial answer in every thread.
#[test]
fn one_prepared_plan_shared_across_threads() {
    let s = session();
    let opts = QueryOptions::order_indifferent();
    let plan = s
        .prepare("for $b in doc(\"d.xml\")//b return <hit>{$b}</hit>", &opts)
        .unwrap();
    let expect = bag(&s.execute(&plan).unwrap().items);
    assert!(!expect.is_empty(), "smoke query must produce results");

    let executor = s.executor().clone();
    let nodes_before = s.catalog().total_nodes();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let plan: &Prepared = &plan;
            let executor = &executor;
            let expect = &expect;
            scope.spawn(move || {
                for _ in 0..4 {
                    let out = executor.execute(plan).unwrap();
                    assert_eq!(&bag(&out.items), expect);
                }
            });
        }
    });
    assert_eq!(
        s.catalog().total_nodes(),
        nodes_before,
        "concurrent construction must stay in per-execution overlays"
    );
}

/// Distinct plans (element construction, aggregation, reverse axes,
/// positional predicates) executed concurrently against one catalog.
#[test]
fn distinct_plans_share_one_catalog() {
    let queries = [
        "fn:count(doc(\"d.xml\")//b)",
        "for $a in doc(\"d.xml\")//a return <n>{fn:count($a/b)}</n>",
        "unordered { for $b in doc(\"d.xml\")//b return $b/.. }",
        "(doc(\"d.xml\")//b)[2]",
        "for $a in doc(\"d.xml\")/site/a return fn:string($a/@n)",
    ];
    let s = session();
    let opts = QueryOptions::order_indifferent();
    let serial: Vec<(Arc<Prepared>, Vec<String>)> = queries
        .iter()
        .map(|q| {
            let plan = s.prepare(q, &opts).unwrap();
            let expect = bag(&s.execute(&plan).unwrap().items);
            (plan, expect)
        })
        .collect();

    let executor = s.executor().clone();
    let nodes_before = s.catalog().total_nodes();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let serial = &serial;
            let executor = &executor;
            scope.spawn(move || {
                // Stagger starting offsets so threads overlap on
                // different plans at any instant.
                for i in 0..serial.len() {
                    let (plan, expect) = &serial[(t + i) % serial.len()];
                    let out = executor.execute(plan).unwrap();
                    assert_eq!(&bag(&out.items), expect);
                }
            });
        }
    });
    assert_eq!(s.catalog().total_nodes(), nodes_before);
}

/// Threads that prepare for themselves hit the plan cache primed by the
/// serial pass and get pointer-identical plans.
#[test]
fn concurrent_prepare_hits_shared_cache() {
    let s = session();
    let opts = QueryOptions::order_indifferent();
    let query = "for $b in doc(\"d.xml\")//b return fn:string($b)";
    let primed = s.prepare(query, &opts).unwrap();
    let expect = bag(&s.execute(&primed).unwrap().items);

    let executor = s.executor().clone();
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            let executor = &executor;
            let opts = &opts;
            let primed = &primed;
            let expect = &expect;
            scope.spawn(move || {
                let plan = executor.prepare(query, opts).unwrap();
                assert!(
                    Arc::ptr_eq(&plan, primed),
                    "cache hit must return the shared prepared plan"
                );
                assert_eq!(&bag(&executor.execute(&plan).unwrap().items), expect);
            });
        }
    });
    let stats = executor.cache_stats();
    assert!(
        stats.hits >= THREADS as u64,
        "expected >= {THREADS} cache hits, got {}",
        stats.hits
    );
}

/// Fuzz-generated queries executed with 4 worker threads under armed
/// budget-trip and cancel-after failpoints must degrade gracefully: a
/// typed budget (EXRQ0001) or cancellation (EXRQ0002) error — or clean
/// success when the failpoint is never reached — with no panic, no
/// poisoned scheduler state, no constructed-node leak into the shared
/// catalog, and a session that keeps answering afterwards.
#[test]
fn parallel_execution_degrades_gracefully_under_failpoints() {
    let specs = [
        "budget-trip:step",
        "budget-trip:rownum",
        "cancel-after:0",
        "cancel-after:3",
        "cancel-after:7",
    ];
    for i in 0..8 {
        for profile in [FuzzProfile::Ordered, FuzzProfile::Unordered] {
            let mut rng = cell_rng(2024, i, profile);
            let doc = gen_doc(&mut rng);
            let query = pretty(&gen_query(&mut rng, profile));
            let mut s = Session::new();
            s.load_document(FUZZ_DOC_URL, &doc).unwrap();
            let parallel = profile.options().with_threads(4);
            // A query that errors without failpoints exercises an engine
            // limit; its injected runs could surface that error instead
            // of the fault's, so only clean cells assert the code.
            let Ok(clean) = s.query_with(&query, &parallel) else {
                continue;
            };
            let nodes_before = s.catalog().total_nodes();
            for spec in specs {
                let opts = parallel
                    .clone()
                    .with_failpoints(Failpoints::parse(spec).unwrap());
                match s.query_with(&query, &opts) {
                    Ok(_) => {} // the plan never hits the failpoint
                    Err(e) => assert!(
                        matches!(e.code(), ErrorCode::EXRQ0001 | ErrorCode::EXRQ0002),
                        "iter {i} [{profile}] `{spec}`: expected a typed \
                         budget/cancel error, got {}\nquery: {query}",
                        e.render_line()
                    ),
                }
            }
            assert_eq!(
                s.catalog().total_nodes(),
                nodes_before,
                "aborted parallel runs must not leak nodes into the catalog"
            );
            // The session is not poisoned: the same query still answers
            // identically after every injected abort.
            let after = s.query_with(&query, &parallel).unwrap();
            let render =
                |items: &[ResultItem]| items.iter().map(ResultItem::render).collect::<Vec<_>>();
            assert_eq!(render(&clean.items), render(&after.items));
        }
    }
}

/// Drain contract under every failpoint kind in the registry: with a
/// slow query in flight, [`ServerHandle::shutdown`] must complete
/// within a small multiple of the grace period — the in-flight run
/// either finishes or is cancelled at its next operator boundary — and
/// the client still receives a typed response, never silence.
#[test]
fn drain_resolves_inflight_work_under_every_failpoint() {
    use exrquy_xqd::{spawn, ServerConfig};
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;
    use std::time::{Duration, Instant};

    // One spec per failpoint kind in the registry. The oracle/rule
    // perturbations only bite the verification path, which the serving
    // loop never takes — drain must be a no-op-grade event for them.
    let specs = [
        "",
        "doc-io:1",
        "doc-parse:2",
        "budget-trip:step",
        "cancel-after:3",
        "oracle-perturb:optimized",
        "rule-perturb:weaken-criteria",
    ];
    for spec in specs {
        let grace = Duration::from_millis(400);
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_capacity: 8,
            drain_grace: grace,
            failpoints: if spec.is_empty() {
                Failpoints::none()
            } else {
                Failpoints::parse(spec).unwrap()
            },
            ..ServerConfig::default()
        };
        let handle = spawn(cfg, session()).unwrap();

        let stream = TcpStream::connect(handle.addr()).unwrap();
        stream
            .set_read_timeout(Some(Duration::from_secs(20)))
            .unwrap();
        let mut writer = stream.try_clone().unwrap();
        let mut reader = BufReader::new(stream);
        // Slow enough to still be running when the drain starts; the
        // engine polls its meter at operator boundaries, so drain's
        // cancellation lands quickly.
        writer
            .write_all(
                br#"{"id":1,"op":"query","query":"fn:count((1 to 80000000))"}
"#,
            )
            .unwrap();
        writer.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));

        let started = Instant::now();
        let stats = handle.shutdown();
        let took = started.elapsed();
        assert!(
            took < grace * 2 + Duration::from_secs(3),
            "[{spec}] drain took {took:?}, far beyond the grace period"
        );
        assert_eq!(stats.queue_depth, 0, "[{spec}] drain left work queued");
        assert_eq!(
            stats.admitted,
            stats.completed + stats.failed + stats.shed(),
            "[{spec}] admitted work vanished without a typed resolution"
        );

        // The client got an answer: success, cancellation, or a typed
        // injected fault — anything but silence.
        let mut line = String::new();
        let n = reader.read_line(&mut line).unwrap();
        assert!(n > 0, "[{spec}] no response for the in-flight query");
        assert!(
            line.contains("\"ok\":true") || line.contains("EXRQ000") || line.contains("FODC"),
            "[{spec}] unexpected response: {line}"
        );
    }
}
