//! Plan-cache semantics: hits return the shared plan, anything that
//! changes the compiled plan misses, run-specific state bypasses the
//! cache, and loading a document invalidates wholesale.

use exrquy::diag::{CancellationToken, Failpoints};
use exrquy::engine::StepAlgo;
use exrquy::frontend::OrderingMode;
use exrquy::opt::{OptOptions, RuleSet};
use exrquy::{QueryOptions, Session};
use std::sync::Arc;

const QUERY: &str = "for $a in doc(\"d.xml\")//a return fn:string($a)";

fn session() -> Session {
    let mut s = Session::new();
    s.load_document("d.xml", "<r><a>1</a><a>2</a></r>").unwrap();
    s
}

#[test]
fn identical_options_hit_and_share_the_plan() {
    let s = session();
    let opts = QueryOptions::order_indifferent();
    let first = s.prepare(QUERY, &opts).unwrap();
    let second = s.prepare(QUERY, &opts).unwrap();
    assert!(
        Arc::ptr_eq(&first, &second),
        "a cache hit must return the same Arc<Prepared>"
    );
    let stats = s.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 1));
    assert!(stats.hit_rate() > 0.0);
}

#[test]
fn different_query_text_misses() {
    let s = session();
    let opts = QueryOptions::order_indifferent();
    let a = s.prepare(QUERY, &opts).unwrap();
    let b = s.prepare("fn:count(doc(\"d.xml\")//a)", &opts).unwrap();
    assert!(!Arc::ptr_eq(&a, &b));
    assert_eq!(s.cache_stats().misses, 2);
}

#[test]
fn ordering_override_misses() {
    let s = session();
    let a = s
        .prepare(QUERY, &QueryOptions::order_indifferent())
        .unwrap();
    let mut forced = QueryOptions::order_indifferent();
    forced.ordering = Some(OrderingMode::Ordered);
    let b = s.prepare(QUERY, &forced).unwrap();
    assert!(!Arc::ptr_eq(&a, &b));
    let stats = s.cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 2));
}

#[test]
fn optimizer_toggles_miss() {
    let s = session();
    let a = s
        .prepare(QUERY, &QueryOptions::order_indifferent())
        .unwrap();
    let mut weakened = QueryOptions::order_indifferent();
    weakened.opt = OptOptions {
        weaken_rownum: false,
        ..weakened.opt
    };
    let b = s.prepare(QUERY, &weakened).unwrap();
    assert!(!Arc::ptr_eq(&a, &b));
    assert_eq!(s.cache_stats().misses, 2);
}

#[test]
fn individually_disabled_rules_miss() {
    // Attribution bisects by disabling single rewrite rules; every
    // distinct disabled-rule set must get its own cache entry, and the
    // same set must hit its own.
    let s = session();
    let all = s
        .prepare(QUERY, &QueryOptions::order_indifferent())
        .unwrap();
    let disable = |names: &[&str]| {
        let mut opts = QueryOptions::order_indifferent();
        opts.opt.disabled_rules = RuleSet::from_names(names.iter().copied()).unwrap();
        opts
    };
    let no_weaken = s.prepare(QUERY, &disable(&["weaken-criteria"])).unwrap();
    let no_prune = s.prepare(QUERY, &disable(&["project-prune"])).unwrap();
    let no_both = s
        .prepare(QUERY, &disable(&["weaken-criteria", "project-prune"]))
        .unwrap();
    assert!(!Arc::ptr_eq(&all, &no_weaken));
    assert!(!Arc::ptr_eq(&all, &no_prune));
    assert!(!Arc::ptr_eq(&no_weaken, &no_prune));
    assert!(!Arc::ptr_eq(&no_weaken, &no_both));
    assert_eq!(s.cache_stats().misses, 4);
    // The same disabled set is the same plan.
    assert!(Arc::ptr_eq(
        &no_weaken,
        &s.prepare(QUERY, &disable(&["weaken-criteria"])).unwrap()
    ));
    assert_eq!(s.cache_stats().hits, 1);
}

#[test]
fn step_algorithm_misses() {
    let s = session();
    let a = s
        .prepare(QUERY, &QueryOptions::order_indifferent())
        .unwrap();
    let mut naive = QueryOptions::order_indifferent();
    naive.step_algo = StepAlgo::Naive;
    let b = s.prepare(QUERY, &naive).unwrap();
    assert!(!Arc::ptr_eq(&a, &b));
    assert_eq!(s.cache_stats().misses, 2);
}

#[test]
fn baseline_and_exploiting_modes_cache_separately() {
    let s = session();
    let a = s.prepare(QUERY, &QueryOptions::baseline()).unwrap();
    let b = s
        .prepare(QUERY, &QueryOptions::order_indifferent())
        .unwrap();
    assert!(!Arc::ptr_eq(&a, &b));
    // Re-preparing each mode hits its own entry.
    assert!(Arc::ptr_eq(
        &a,
        &s.prepare(QUERY, &QueryOptions::baseline()).unwrap()
    ));
    assert!(Arc::ptr_eq(
        &b,
        &s.prepare(QUERY, &QueryOptions::order_indifferent())
            .unwrap()
    ));
    let stats = s.cache_stats();
    assert_eq!((stats.hits, stats.misses), (2, 2));
}

#[test]
fn document_load_invalidates_the_cache() {
    let mut s = session();
    let opts = QueryOptions::order_indifferent();
    let stale = s.prepare(QUERY, &opts).unwrap();
    s.load_document("d.xml", "<r><a>changed</a></r>").unwrap();
    let fresh = s.prepare(QUERY, &opts).unwrap();
    assert!(
        !Arc::ptr_eq(&stale, &fresh),
        "a (re)load must not serve plans compiled against the old catalog"
    );
    // The new executor starts with zeroed counters: this prepare was a miss.
    let stats = s.cache_stats();
    assert_eq!((stats.hits, stats.misses), (0, 1));
    // And the fresh plan sees the new content.
    let out = s.execute(&fresh).unwrap();
    assert_eq!(out.items.len(), 1);
}

#[test]
fn cancellation_token_bypasses_the_cache() {
    let s = session();
    let opts = QueryOptions::order_indifferent().with_cancel(CancellationToken::new());
    let a = s.prepare(QUERY, &opts).unwrap();
    let b = s.prepare(QUERY, &opts).unwrap();
    assert!(
        !Arc::ptr_eq(&a, &b),
        "run-specific plans must not be shared"
    );
    let stats = s.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.uncacheable), (0, 0, 2));
}

#[test]
fn armed_failpoints_bypass_the_cache() {
    let s = session();
    let opts = QueryOptions::order_indifferent()
        .with_failpoints(Failpoints::parse("cancel-after:5").unwrap());
    let a = s.prepare(QUERY, &opts).unwrap();
    let b = s.prepare(QUERY, &opts).unwrap();
    assert!(!Arc::ptr_eq(&a, &b));
    let stats = s.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.uncacheable), (0, 0, 2));
}

#[test]
fn thread_count_misses() {
    let s = session();
    let a = s
        .prepare(QUERY, &QueryOptions::order_indifferent())
        .unwrap();
    let b = s
        .prepare(QUERY, &QueryOptions::order_indifferent().with_threads(4))
        .unwrap();
    assert!(
        !Arc::ptr_eq(&a, &b),
        "thread count is part of the plan fingerprint"
    );
    assert!(Arc::ptr_eq(
        &b,
        &s.prepare(QUERY, &QueryOptions::order_indifferent().with_threads(4))
            .unwrap()
    ));
    let stats = s.cache_stats();
    assert_eq!((stats.hits, stats.misses), (1, 2));
}

#[test]
fn lru_eviction_drops_the_least_recently_used_plan() {
    let mut s = session();
    s.set_plan_cache_capacity(2);
    let opts = QueryOptions::order_indifferent();
    let queries = [
        "fn:count(doc(\"d.xml\")//a)",
        "fn:exists(doc(\"d.xml\")//a)",
        "fn:empty(doc(\"d.xml\")//a)",
    ];
    let q0 = s.prepare(queries[0], &opts).unwrap();
    let _q1 = s.prepare(queries[1], &opts).unwrap();
    // Refresh q0 so q1 is now the least recently used entry…
    assert!(Arc::ptr_eq(&q0, &s.prepare(queries[0], &opts).unwrap()));
    // …then overflow the capacity of 2: q1 must be the eviction victim.
    let _q2 = s.prepare(queries[2], &opts).unwrap();
    assert_eq!(s.cache_stats().evictions, 1);
    assert!(
        Arc::ptr_eq(&q0, &s.prepare(queries[0], &opts).unwrap()),
        "the recently used plan must survive the eviction"
    );
    // q1 was evicted, so re-preparing it recompiles (a miss)…
    let before = s.cache_stats().misses;
    let _q1_again = s.prepare(queries[1], &opts).unwrap();
    assert_eq!(s.cache_stats().misses, before + 1);
    // …which in turn evicts the next victim to stay within capacity.
    assert_eq!(s.cache_stats().evictions, 2);
}

#[test]
fn evicted_plans_remain_executable() {
    let mut s = session();
    s.set_plan_cache_capacity(1);
    let opts = QueryOptions::order_indifferent();
    let plan = s.prepare(QUERY, &opts).unwrap();
    // Force the eviction of `plan` while we still hold its Arc.
    let _other = s.prepare("fn:count(doc(\"d.xml\")//a)", &opts).unwrap();
    assert_eq!(s.cache_stats().evictions, 1);
    let out = s.execute(&plan).unwrap();
    assert_eq!(out.items.len(), 2);
}

#[test]
fn cached_plans_still_execute_correctly() {
    let s = session();
    let opts = QueryOptions::order_indifferent();
    let plan = s.prepare(QUERY, &opts).unwrap();
    let first = s.execute(&plan).unwrap();
    let again = s.prepare(QUERY, &opts).unwrap();
    let second = s.execute(&again).unwrap();
    let render = |items: &[exrquy::ResultItem]| {
        let mut v: Vec<String> = items.iter().map(|i| i.render()).collect();
        v.sort();
        v
    };
    assert_eq!(render(&first.items), render(&second.items));
}
