//! Data-driven conformance cases.
//!
//! Each `tests/cases/*.case` file holds one or more cases in a simple
//! sectioned format:
//!
//! ```text
//! ### case-name
//! --- doc d.xml
//! <r>…</r>
//! --- query
//! fn:count(doc("d.xml")//x)
//! --- expect
//! 2
//! ```
//!
//! Sections:
//! * `--- doc <url>` — load the following XML under `<url>` (repeatable);
//! * `--- query` — the XQuery text;
//! * `--- expect` — exact serialized result under the ordered baseline
//!   (also run under the order-indifferent configuration and compared as
//!   an item multiset);
//! * `--- expect-unordered-too` — additionally require exact equality
//!   under the order-indifferent configuration (order-determined result);
//! * `--- expect-error` — the query must fail, with the given substring
//!   in the error text.

use exrquy::{QueryOptions, Session};
use std::path::PathBuf;

#[derive(Debug, Default)]
struct Case {
    name: String,
    file: String,
    docs: Vec<(String, String)>,
    query: String,
    expect: Option<String>,
    exact_unordered: bool,
    expect_error: Option<String>,
}

fn parse_cases(file: &str, text: &str) -> Vec<Case> {
    let mut cases: Vec<Case> = Vec::new();
    let mut cur: Option<Case> = None;
    let mut section: Option<(String, String)> = None; // (kind+arg, content)

    fn flush_section(case: &mut Case, section: &mut Option<(String, String)>) {
        let Some((head, content)) = section.take() else {
            return;
        };
        let content = content.trim().to_string();
        let mut parts = head.splitn(2, ' ');
        match parts.next().unwrap() {
            "doc" => {
                let url = parts.next().expect("--- doc needs a url").to_string();
                case.docs.push((url, content));
            }
            "query" => case.query = content,
            "expect" => case.expect = Some(content),
            "expect-unordered-too" => {
                case.expect = Some(content);
                case.exact_unordered = true;
            }
            "expect-error" => case.expect_error = Some(content),
            other => panic!("unknown section `{other}` in {}", case.file),
        }
    }

    for line in text.lines() {
        if let Some(name) = line.strip_prefix("### ") {
            if let Some(mut c) = cur.take() {
                flush_section(&mut c, &mut section);
                cases.push(c);
            }
            cur = Some(Case {
                name: name.trim().to_string(),
                file: file.to_string(),
                ..Case::default()
            });
        } else if let Some(head) = line.strip_prefix("--- ") {
            if let Some(c) = cur.as_mut() {
                flush_section(c, &mut section);
                section = Some((head.trim().to_string(), String::new()));
            }
        } else if let Some((_, content)) = section.as_mut() {
            content.push_str(line);
            content.push('\n');
        }
    }
    if let Some(mut c) = cur.take() {
        flush_section(&mut c, &mut section);
        cases.push(c);
    }
    cases
}

fn run_case(case: &Case) {
    let label = format!("{}::{}", case.file, case.name);
    let mut session = Session::new();
    for (url, xml) in &case.docs {
        session
            .load_document(url, xml)
            .unwrap_or_else(|e| panic!("{label}: doc `{url}`: {e}"));
    }
    let baseline = session.query_with(&case.query, &QueryOptions::baseline());
    if let Some(err_sub) = &case.expect_error {
        let err = match baseline {
            Err(e) => e.to_string(),
            Ok(out) => panic!("{label}: expected error, got `{}`", out.to_xml()),
        };
        assert!(
            err.contains(err_sub),
            "{label}: error `{err}` lacks `{err_sub}`"
        );
        return;
    }
    let expect = case
        .expect
        .as_ref()
        .unwrap_or_else(|| panic!("{label}: no expectation"));
    let baseline = baseline.unwrap_or_else(|e| panic!("{label}: baseline failed: {e}"));
    assert_eq!(
        &baseline.to_xml(),
        expect,
        "{label}: baseline result mismatch"
    );
    let unordered = session
        .query_with(&case.query, &QueryOptions::order_indifferent())
        .unwrap_or_else(|e| panic!("{label}: unordered failed: {e}"));
    if case.exact_unordered {
        assert_eq!(
            &unordered.to_xml(),
            expect,
            "{label}: unordered result mismatch (exact)"
        );
    } else {
        let mut a: Vec<String> = baseline.items.iter().map(|i| i.render()).collect();
        let mut b: Vec<String> = unordered.items.iter().map(|i| i.render()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{label}: unordered multiset mismatch");
    }
}

#[test]
fn run_all_case_files() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/cases");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/cases directory exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "case"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no .case files found in {dir:?}");
    let mut total = 0;
    for f in files {
        let text = std::fs::read_to_string(&f).unwrap();
        let name = f.file_name().unwrap().to_string_lossy().to_string();
        let cases = parse_cases(&name, &text);
        assert!(!cases.is_empty(), "{name}: no cases parsed");
        for case in &cases {
            run_case(case);
            total += 1;
        }
    }
    println!("ran {total} conformance cases");
    assert!(total >= 40, "expected a substantial corpus, found {total}");
}
