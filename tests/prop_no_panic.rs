//! The robustness tentpole, distilled: NOTHING a user feeds the
//! pipeline — arbitrary bytes, mutated queries, hostile documents — may
//! panic. Every failure must surface as a typed `Result` error.
//!
//! Driven by the in-repo deterministic PRNG so the suite builds offline.

use exrquy::Session;
use exrquy_xml::rng::SmallRng;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Seed queries covering every expression family the frontend knows;
/// mutation starts from these so the fuzzer spends its time past the
/// first token.
const QUERY_CORPUS: &[&str] = &[
    r#"doc("d.xml")//(c|d)"#,
    r#"for $x at $p in doc("d.xml")//a return <e pos="{ $p }">{ $x }</e>"#,
    r#"fn:count(doc("d.xml")//a[b > 1])"#,
    "let $x := (1, 2, 3) return fn:sum($x)",
    "some $x in (1 to 10) satisfies $x > 5",
    "if (fn:exists((1))) then <y/> else ()",
    "unordered { for $i in (1 to 5) return $i * $i }",
    "declare ordering unordered; (1, 2)[. > 1]",
    r#"fn:string-join(("a", "b"), "-")"#,
    "<a b=\"{ 1 + 2 }\">text{ 3 }</a>",
];

const XML_CORPUS: &[&str] = &[
    "<r><a>1</a><b x='y'>2</b><!--c--></r>",
    "<a><b><c/></b>t&amp;x</a>",
    "<r xmlns='u'><p:q/></r>",
];

/// Printable fragments that keep mutants syntactically "interesting".
const TOKENS: &[&str] = &[
    "<",
    ">",
    "/",
    "(",
    ")",
    "[",
    "]",
    "{",
    "}",
    "$",
    "\"",
    "'",
    "&",
    ";",
    "for",
    "in",
    "return",
    "let",
    ":=",
    "doc",
    "!",
    "idiv",
    "0",
    "9999999999",
    " ",
    "@",
    "::",
    ",",
    "to",
    "..",
    "-",
    "=",
];

fn mutate(rng: &mut SmallRng, src: &str) -> String {
    let mut s: Vec<u8> = src.as_bytes().to_vec();
    for _ in 0..rng.gen_range(1usize..6) {
        let choice = rng.gen_range(0u32..4);
        match choice {
            // Insert a token at a random position.
            0 => {
                let tok = TOKENS[rng.gen_range(0usize..TOKENS.len())];
                let at = rng.gen_range(0usize..s.len() + 1);
                s.splice(at..at, tok.bytes());
            }
            // Delete a random slice.
            1 if !s.is_empty() => {
                let a = rng.gen_range(0usize..s.len());
                let b = (a + rng.gen_range(1usize..8)).min(s.len());
                s.drain(a..b);
            }
            // Overwrite one byte with an arbitrary one.
            2 if !s.is_empty() => {
                let at = rng.gen_range(0usize..s.len());
                s[at] = rng.gen_range(0u32..256) as u8;
            }
            // Duplicate a slice (nesting amplifier).
            _ if !s.is_empty() => {
                let a = rng.gen_range(0usize..s.len());
                let b = (a + rng.gen_range(1usize..16)).min(s.len());
                let copy: Vec<u8> = s[a..b].to_vec();
                s.splice(b..b, copy);
            }
            _ => {}
        }
    }
    String::from_utf8_lossy(&s).into_owned()
}

fn random_bytes(rng: &mut SmallRng, max_len: usize) -> String {
    let n = rng.gen_range(0usize..max_len);
    let bytes: Vec<u8> = (0..n).map(|_| rng.gen_range(0u32..256) as u8).collect();
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Run one (document, query) pair through a fresh session; the only
/// acceptable outcomes are Ok or a typed Error.
fn pipeline_must_not_panic(xml: &str, query: &str) {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let mut s = Session::new();
        let _ = s.load_document("d.xml", xml);
        match s.query(query) {
            Ok(out) => {
                let _ = out.to_xml();
            }
            Err(e) => {
                let _ = (e.code(), e.class(), e.stage(), e.render_line());
            }
        }
    }));
    assert!(
        outcome.is_ok(),
        "pipeline panicked on xml={xml:?} query={query:?}"
    );
}

#[test]
fn arbitrary_bytes_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0xFACE);
    for _case in 0..192 {
        let xml = random_bytes(&mut rng, 120);
        let query = random_bytes(&mut rng, 120);
        pipeline_must_not_panic(&xml, &query);
    }
}

#[test]
fn mutated_queries_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0xBEEF);
    for _case in 0..256 {
        let base = QUERY_CORPUS[rng.gen_range(0usize..QUERY_CORPUS.len())];
        let query = mutate(&mut rng, base);
        let xml = XML_CORPUS[rng.gen_range(0usize..XML_CORPUS.len())];
        pipeline_must_not_panic(xml, &query);
    }
}

#[test]
fn mutated_documents_never_panic() {
    let mut rng = SmallRng::seed_from_u64(0xD0C5);
    for _case in 0..256 {
        let base = XML_CORPUS[rng.gen_range(0usize..XML_CORPUS.len())];
        let xml = mutate(&mut rng, base);
        let query = QUERY_CORPUS[rng.gen_range(0usize..QUERY_CORPUS.len())];
        pipeline_must_not_panic(&xml, query);
    }
}

#[test]
fn hostile_depth_never_overflows_the_stack() {
    // Deep but well-formed inputs: both parsers must refuse them with
    // EXRQ0003 long before the stack gives out.
    for depth in [100, 1000, 10_000, 100_000] {
        let query = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
        pipeline_must_not_panic("<r/>", &query);
        let xml = format!("{}{}", "<e>".repeat(depth), "</e>".repeat(depth));
        pipeline_must_not_panic(&xml, "1 + 1");
    }
}
