//! The W3C "XML Query Use Cases" XMP suite (the classic bib/reviews
//! workload), transcribed to the supported dialect, with exact expected
//! results. Exercises multi-document joins, grouping, sorting and
//! reconstruction — and checks both compiler configurations agree.

use exrquy::{QueryOptions, Session};

const BIB: &str = r#"<bib>
  <book year="1994">
    <title>TCP/IP Illustrated</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="1992">
    <title>Advanced Programming in the Unix environment</title>
    <author><last>Stevens</last><first>W.</first></author>
    <publisher>Addison-Wesley</publisher>
    <price>65.95</price>
  </book>
  <book year="2000">
    <title>Data on the Web</title>
    <author><last>Abiteboul</last><first>Serge</first></author>
    <author><last>Buneman</last><first>Peter</first></author>
    <author><last>Suciu</last><first>Dan</first></author>
    <publisher>Morgan Kaufmann Publishers</publisher>
    <price>39.95</price>
  </book>
  <book year="1999">
    <title>The Economics of Technology and Content for Digital TV</title>
    <editor><last>Gerbarg</last><first>Darcy</first></editor>
    <publisher>Kluwer Academic Publishers</publisher>
    <price>129.95</price>
  </book>
</bib>"#;

const REVIEWS: &str = r#"<reviews>
  <entry>
    <title>Data on the Web</title>
    <price>34.95</price>
    <review>A very good discussion of semi-structured database systems and XML.</review>
  </entry>
  <entry>
    <title>Advanced Programming in the Unix environment</title>
    <price>65.95</price>
    <review>A clear and detailed discussion of UNIX programming.</review>
  </entry>
  <entry>
    <title>TCP/IP Illustrated</title>
    <price>65.95</price>
    <review>One of the best books on TCP/IP.</review>
  </entry>
</reviews>"#;

fn session() -> Session {
    let mut s = Session::new();
    s.load_document("bib.xml", BIB).unwrap();
    s.load_document("reviews.xml", REVIEWS).unwrap();
    s
}

/// Run under both configurations; return the baseline text after checking
/// the multisets agree (exact equality where order is determined by an
/// `order by` or a single constructed element).
fn run(s: &mut Session, q: &str) -> String {
    let base = s
        .query_with(q, &QueryOptions::baseline())
        .unwrap_or_else(|e| panic!("baseline `{q}`: {e}"));
    let oi = s
        .query_with(q, &QueryOptions::order_indifferent())
        .unwrap_or_else(|e| panic!("unordered `{q}`: {e}"));
    let mut a: Vec<String> = base.items.iter().map(|i| i.render()).collect();
    let mut b: Vec<String> = oi.items.iter().map(|i| i.render()).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b, "configurations disagree on `{q}`");
    base.to_xml()
}

#[test]
fn xmp_q1_publisher_and_year_filter() {
    // Q1: books published by Addison-Wesley after 1991, with year & title.
    let mut s = session();
    let out = run(
        &mut s,
        r#"<bib>{
             for $b in doc("bib.xml")/bib/book
             where $b/publisher = "Addison-Wesley" and $b/@year > 1991
             return <book year="{ $b/@year }">{ $b/title }</book>
           }</bib>"#,
    );
    assert_eq!(
        out,
        "<bib><book year=\"1994\"><title>TCP/IP Illustrated</title></book>\
         <book year=\"1992\"><title>Advanced Programming in the Unix environment</title></book></bib>"
    );
}

#[test]
fn xmp_q2_flat_title_author_pairs() {
    // Q2: one result element per (book, author) pair.
    let mut s = session();
    let out = run(
        &mut s,
        r#"<results>{
             for $b in doc("bib.xml")/bib/book, $t in $b/title, $a in $b/author
             return <result>{ $t }{ $a/last }</result>
           }</results>"#,
    );
    // 1 + 1 + 3 author pairs = 5 results.
    assert_eq!(out.matches("<result>").count(), 5);
    assert!(out.contains("<result><title>Data on the Web</title><last>Suciu</last></result>"));
}

#[test]
fn xmp_q3_titles_with_all_authors() {
    let mut s = session();
    let out = run(
        &mut s,
        r#"<results>{
             for $b in doc("bib.xml")/bib/book
             return <result>{ $b/title }{ $b/author }</result>
           }</results>"#,
    );
    assert_eq!(out.matches("<result>").count(), 4);
    assert!(out.contains(
        "<result><title>Data on the Web</title>\
         <author><last>Abiteboul</last><first>Serge</first></author>\
         <author><last>Buneman</last><first>Peter</first></author>\
         <author><last>Suciu</last><first>Dan</first></author></result>"
    ));
}

#[test]
fn xmp_q4_books_per_author() {
    // Q4 (adapted to string grouping): per distinct author last name, the
    // titles of their books.
    let mut s = session();
    let out = run(
        &mut s,
        r#"<results>{
             for $ln in fn:distinct-values(doc("bib.xml")//author/last)
             return <result><author>{ $ln }</author>{
                      for $b in doc("bib.xml")/bib/book
                      where $b/author/last = $ln
                      return $b/title
                    }</result>
           }</results>"#,
    );
    assert_eq!(out.matches("<result>").count(), 4);
    assert!(out.contains(
        "<result><author>Stevens</author><title>TCP/IP Illustrated</title>\
         <title>Advanced Programming in the Unix environment</title></result>"
    ));
}

#[test]
fn xmp_q5_join_with_reviews() {
    // Q5: books with both a bib price and a review price (two-document
    // join on title).
    let mut s = session();
    let out = run(
        &mut s,
        r#"<books-with-prices>{
             for $b in doc("bib.xml")/bib/book,
                 $a in doc("reviews.xml")/reviews/entry
             where $b/title = $a/title
             return <book-with-prices>{ $b/title }
                      <price-review>{ $a/price/text() }</price-review>
                      <price>{ $b/price/text() }</price>
                    </book-with-prices>
           }</books-with-prices>"#,
    );
    assert_eq!(out.matches("<book-with-prices>").count(), 3);
    assert!(out.contains(
        "<book-with-prices><title>Data on the Web</title>\
         <price-review>34.95</price-review><price>39.95</price></book-with-prices>"
    ));
}

#[test]
fn xmp_q6_books_with_multiple_authors() {
    let mut s = session();
    let out = run(
        &mut s,
        r#"for $b in doc("bib.xml")//book
           where fn:count($b/author) > 1
           return $b/title"#,
    );
    assert_eq!(out, "<title>Data on the Web</title>");
}

#[test]
fn xmp_q7_sorted_by_title() {
    // Q11-style: books after 1991, sorted by title.
    let s = session();
    for opts in [QueryOptions::baseline(), QueryOptions::order_indifferent()] {
        let out = s
            .query_with(
                r#"<bib>{
                     for $b in doc("bib.xml")//book
                     where $b/@year > 1991
                     order by fn:string($b/title)
                     return <book>{ $b/title }</book>
                   }</bib>"#,
                &opts,
            )
            .unwrap()
            .to_xml();
        assert_eq!(
            out,
            "<bib><book><title>Advanced Programming in the Unix environment</title></book>\
             <book><title>Data on the Web</title></book>\
             <book><title>TCP/IP Illustrated</title></book>\
             <book><title>The Economics of Technology and Content for Digital TV</title></book></bib>"
        );
    }
}

#[test]
fn xmp_q10_price_statistics() {
    let mut s = session();
    let out = run(
        &mut s,
        r#"<prices>
             <minimum>{ fn:min(doc("bib.xml")//price) }</minimum>
             <maximum>{ fn:max(doc("bib.xml")//price) }</maximum>
             <average>{ fn:avg(doc("bib.xml")//price) }</average>
           </prices>"#,
    );
    assert_eq!(
        out,
        "<prices><minimum>39.95</minimum><maximum>129.95</maximum>\
         <average>75.45</average></prices>"
    );
}

#[test]
fn xmp_q12_books_without_reviews() {
    let mut s = session();
    let out = run(
        &mut s,
        r#"for $b in doc("bib.xml")//book
           where fn:empty(for $e in doc("reviews.xml")//entry
                          where $e/title = $b/title return $e)
           return $b/title/text()"#,
    );
    assert_eq!(
        out,
        "The Economics of Technology and Content for Digital TV"
    );
}
