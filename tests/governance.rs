//! Execution budgets and cooperative cancellation: resource-governed
//! queries must return typed `EXRQ*` errors — never panic, never
//! materialize unbounded results — and the session must stay usable.

use exrquy::diag::{CancellationToken, ErrorClass, ErrorCode, ExecutionBudget};
use exrquy::{QueryOptions, Session};
use std::time::Duration;

fn session() -> Session {
    let mut s = Session::new();
    s.load_document("d.xml", "<r><a>1</a><a>2</a><a>3</a></r>")
        .unwrap();
    s
}

fn with_budget(budget: ExecutionBudget) -> QueryOptions {
    QueryOptions::honor_prolog().with_budget(budget)
}

#[test]
fn row_budget_stops_range_explosion() {
    let s = session();
    // 10^12 rows would exhaust memory; the cap must trip incrementally.
    let opts = with_budget(ExecutionBudget::default().with_max_rows_per_op(10_000));
    let err = s
        .query_with("fn:count((1 to 1000000000000))", &opts)
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::EXRQ0001, "{err}");
    assert_eq!(err.class(), ErrorClass::Resource);
    assert_eq!(err.class().exit_code(), 3);
}

#[test]
fn row_budget_stops_cross_product() {
    let s = session();
    let opts = with_budget(ExecutionBudget::default().with_max_rows_per_op(50));
    // Nested for-loops compile to a cross product: 20 × 20 = 400 > 50.
    let err = s
        .query_with(
            "for $x in (1 to 20) for $y in (1 to 20) return $x + $y",
            &opts,
        )
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::EXRQ0001, "{err}");
    // Under the cap the same shape succeeds.
    let opts = with_budget(ExecutionBudget::default().with_max_rows_per_op(1000));
    assert!(s
        .query_with(
            "fn:count(for $x in (1 to 20) for $y in (1 to 20) return $x + $y)",
            &opts,
        )
        .is_ok());
}

#[test]
fn total_row_budget_spans_operators() {
    let s = session();
    // Each operator stays small, but the plan as a whole crosses the
    // total-row ceiling.
    let opts = with_budget(ExecutionBudget::default().with_max_rows_total(10));
    let err = s
        .query_with("for $x in (1 to 8) return $x + 1", &opts)
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::EXRQ0001, "{err}");
}

#[test]
fn node_budget_stops_construction() {
    let s = session();
    let opts = with_budget(ExecutionBudget::default().with_max_nodes(10));
    // Content depends on $i, so every element is constructed at runtime
    // (a constant constructor would be materialized at compile time).
    let err = s
        .query_with("for $i in (1 to 50) return <e>{ $i }</e>", &opts)
        .unwrap_err();
    assert_eq!(err.code(), ErrorCode::EXRQ0001, "{err}");
    assert!(err.to_string().contains("nodes"), "{err}");
}

#[test]
fn zero_timeout_trips_immediately() {
    let s = session();
    let opts = with_budget(ExecutionBudget::default().with_max_wall(Duration::ZERO));
    let err = s.query_with(r#"doc("d.xml")//a"#, &opts).unwrap_err();
    assert_eq!(err.code(), ErrorCode::EXRQ0001, "{err}");
    assert!(err.to_string().contains("wall-clock"), "{err}");
}

#[test]
fn generous_budget_is_invisible() {
    let s = session();
    let opts = with_budget(
        ExecutionBudget::default()
            .with_max_rows_per_op(1_000_000)
            .with_max_rows_total(10_000_000)
            .with_max_wall(Duration::from_secs(60))
            .with_max_nodes(1_000_000)
            .with_max_depth(64),
    );
    assert_eq!(
        s.query_with(r#"fn:sum(doc("d.xml")//a)"#, &opts)
            .unwrap()
            .to_xml(),
        "6"
    );
}

#[test]
fn cancelled_token_aborts_execution() {
    let s = session();
    let token = CancellationToken::new();
    token.cancel();
    let opts = QueryOptions::honor_prolog().with_cancel(token);
    let err = s.query_with(r#"doc("d.xml")//a"#, &opts).unwrap_err();
    assert_eq!(err.code(), ErrorCode::EXRQ0002, "{err}");
    assert_eq!(err.class(), ErrorClass::Resource);
    assert!(err.to_string().contains("cancelled"), "{err}");
}

#[test]
fn uncancelled_token_is_invisible() {
    let s = session();
    let token = CancellationToken::new();
    let opts = QueryOptions::honor_prolog().with_cancel(token.clone());
    assert_eq!(
        s.query_with(r#"fn:count(doc("d.xml")//a)"#, &opts)
            .unwrap()
            .to_xml(),
        "3"
    );
    // A clone cancelled from "another thread" is seen by the session's copy.
    token.cancel();
    assert!(s.query_with("1 + 1", &opts).is_err());
}

#[test]
fn depth_budget_overrides_default() {
    let s = session();
    // 32 nested parens exceed an explicit depth budget of 16 …
    let q = format!("{}1{}", "(".repeat(32), ")".repeat(32));
    let opts = with_budget(ExecutionBudget::default().with_max_depth(16));
    let err = s.query_with(&q, &opts).unwrap_err();
    assert_eq!(err.code(), ErrorCode::EXRQ0003, "{err}");
    // … but pass under the built-in default.
    assert!(s.query(&q).is_ok());
}

#[test]
fn session_survives_budget_trips_without_leaking() {
    let s = session();
    let before = s.catalog().frag_count();
    let opts = with_budget(ExecutionBudget::default().with_max_nodes(5));
    let _ = s
        .query_with("for $i in (1 to 50) return <e>{ $i }</e>", &opts)
        .unwrap_err();
    // Partially constructed fragments were released …
    assert_eq!(s.catalog().frag_count(), before);
    // … and the session still answers queries.
    assert_eq!(
        s.query(r#"fn:count(doc("d.xml")//a)"#).unwrap().to_xml(),
        "3"
    );
}
