//! Parser/pretty-printer round-trip: for randomly generated ASTs,
//! `parse(pretty(ast)) == ast`.

use exrquy_frontend::{parse_module, pretty::pretty, BinOp, Clause, Expr, Quant};
use proptest::prelude::*;

fn var_name() -> impl Strategy<Value = String> {
    prop_oneof![Just("x"), Just("y"), Just("doc1"), Just("v_2")].prop_map(str::to_string)
}

fn elem_name() -> impl Strategy<Value = String> {
    prop_oneof![Just("item"), Just("e"), Just("person")].prop_map(str::to_string)
}

fn expr(depth: u32) -> BoxedStrategy<Expr> {
    let leaf = prop_oneof![
        (0i64..1000).prop_map(Expr::IntLit),
        Just(Expr::DblLit(2.5)),
        "[a-z ]{0,8}".prop_map(Expr::StrLit),
        Just(Expr::Empty),
        var_name().prop_map(Expr::Var),
    ];
    if depth == 0 {
        return leaf.boxed();
    }
    let inner = expr(depth - 1);
    prop_oneof![
        leaf,
        // sequences
        prop::collection::vec(expr(depth - 1), 2..4).prop_map(Expr::Sequence),
        // binary operators across all families
        (
            prop_oneof![
                Just(BinOp::Add),
                Just(BinOp::Mul),
                Just(BinOp::GenEq),
                Just(BinOp::GenLt),
                Just(BinOp::ValNe),
                Just(BinOp::And),
                Just(BinOp::Or),
                Just(BinOp::Union),
                Just(BinOp::Except),
                Just(BinOp::Before),
                Just(BinOp::Is),
            ],
            expr(depth - 1),
            expr(depth - 1)
        )
            .prop_map(|(op, l, r)| Expr::binary(op, l, r)),
        // FLWOR
        (var_name(), expr(depth - 1), expr(depth - 1)).prop_map(|(v, seq, ret)| Expr::Flwor {
            clauses: vec![Clause::For {
                var: v,
                pos_var: None,
                seq,
            }],
            order_by: vec![],
            reordered: false,
            ret: Box::new(ret),
        }),
        // let + where
        (var_name(), expr(depth - 1), expr(depth - 1), expr(depth - 1)).prop_map(
            |(v, e1, cond, ret)| Expr::Flwor {
                clauses: vec![
                    Clause::Let {
                        var: v,
                        expr: e1
                    },
                    Clause::Where(cond)
                ],
                order_by: vec![],
                reordered: false,
                ret: Box::new(ret),
            }
        ),
        // quantifier
        (var_name(), expr(depth - 1), expr(depth - 1)).prop_map(|(v, d, s)| Expr::Quantified {
            quant: Quant::Some,
            var: v,
            domain: Box::new(d),
            satisfies: Box::new(s),
        }),
        // conditional
        (expr(depth - 1), expr(depth - 1), expr(depth - 1)).prop_map(|(c, t, e)| Expr::If {
            cond: Box::new(c),
            then: Box::new(t),
            els: Box::new(e),
        }),
        // function calls
        (
            prop_oneof![Just("count"), Just("exists"), Just("string")],
            expr(depth - 1)
        )
            .prop_map(|(f, a)| Expr::Call {
                name: f.to_string(),
                args: vec![a],
            }),
        // unordered
        inner.prop_map(|e| Expr::Unordered(Box::new(e))),
        // computed constructors
        (elem_name(), expr(depth - 1)).prop_map(|(n, c)| Expr::ElemConstructor {
            name: n,
            content: Box::new(c),
        }),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn pretty_then_parse_roundtrips(ast in expr(3)) {
        let text = pretty(&ast);
        let reparsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("pretty output failed to parse: {e}\n{text}"))
            .body;
        // `Expr::Unordered` prints as `fn:unordered(…)`, which parses back
        // as a call — normalization reifies it again. Compare the
        // normalized forms (normalization is deterministic and applied to
        // both sides).
        let a = exrquy_frontend::normalize::norm(&ast);
        let b = exrquy_frontend::normalize::norm(&reparsed);
        prop_assert_eq!(&a, &b, "roundtrip mismatch via `{}`", &text);
    }
}
