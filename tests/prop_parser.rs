//! Parser/pretty-printer round-trip: for randomly generated ASTs,
//! `parse(pretty(ast)) == ast` (modulo normalization). Driven by the
//! in-repo deterministic PRNG so the suite builds offline.

use exrquy_frontend::{parse_module, pretty::pretty, BinOp, Clause, Expr, Quant};
use exrquy_xml::rng::SmallRng;

fn var_name(rng: &mut SmallRng) -> String {
    ["x", "y", "doc1", "v_2"][rng.gen_range(0usize..4)].to_string()
}

fn elem_name(rng: &mut SmallRng) -> String {
    ["item", "e", "person"][rng.gen_range(0usize..3)].to_string()
}

fn str_lit(rng: &mut SmallRng) -> String {
    let n = rng.gen_range(0usize..8);
    (0..n)
        .map(|_| {
            let c = rng.gen_range(0u32..27);
            if c == 26 {
                ' '
            } else {
                (b'a' + c as u8) as char
            }
        })
        .collect()
}

fn leaf(rng: &mut SmallRng) -> Expr {
    match rng.gen_range(0..5) {
        0 => Expr::IntLit(rng.gen_range(0i64..1000)),
        1 => Expr::DblLit(2.5),
        2 => Expr::StrLit(str_lit(rng)),
        3 => Expr::Empty,
        _ => Expr::Var(var_name(rng)),
    }
}

fn random_expr(rng: &mut SmallRng, depth: u32) -> Expr {
    if depth == 0 {
        return leaf(rng);
    }
    match rng.gen_range(0..10) {
        0 => leaf(rng),
        1 => {
            let n = rng.gen_range(2usize..4);
            Expr::Sequence((0..n).map(|_| random_expr(rng, depth - 1)).collect())
        }
        2 => {
            let ops = [
                BinOp::Add,
                BinOp::Mul,
                BinOp::GenEq,
                BinOp::GenLt,
                BinOp::ValNe,
                BinOp::And,
                BinOp::Or,
                BinOp::Union,
                BinOp::Except,
                BinOp::Before,
                BinOp::Is,
            ];
            let op = ops[rng.gen_range(0usize..ops.len())];
            Expr::binary(op, random_expr(rng, depth - 1), random_expr(rng, depth - 1))
        }
        3 => Expr::Flwor {
            clauses: vec![Clause::For {
                var: var_name(rng),
                pos_var: None,
                seq: random_expr(rng, depth - 1),
            }],
            order_by: vec![],
            reordered: false,
            ret: Box::new(random_expr(rng, depth - 1)),
        },
        4 => Expr::Flwor {
            clauses: vec![
                Clause::Let {
                    var: var_name(rng),
                    expr: random_expr(rng, depth - 1),
                },
                Clause::Where(random_expr(rng, depth - 1)),
            ],
            order_by: vec![],
            reordered: false,
            ret: Box::new(random_expr(rng, depth - 1)),
        },
        5 => Expr::Quantified {
            quant: Quant::Some,
            var: var_name(rng),
            domain: Box::new(random_expr(rng, depth - 1)),
            satisfies: Box::new(random_expr(rng, depth - 1)),
        },
        6 => Expr::If {
            cond: Box::new(random_expr(rng, depth - 1)),
            then: Box::new(random_expr(rng, depth - 1)),
            els: Box::new(random_expr(rng, depth - 1)),
        },
        7 => {
            let f = ["count", "exists", "string"][rng.gen_range(0usize..3)];
            Expr::Call {
                name: f.to_string(),
                args: vec![random_expr(rng, depth - 1)],
            }
        }
        8 => Expr::Unordered(Box::new(random_expr(rng, depth - 1))),
        _ => Expr::ElemConstructor {
            name: elem_name(rng),
            content: Box::new(random_expr(rng, depth - 1)),
        },
    }
}

#[test]
fn pretty_then_parse_roundtrips() {
    let mut rng = SmallRng::seed_from_u64(0x9A123);
    for _case in 0..128 {
        let ast = random_expr(&mut rng, 3);
        let text = pretty(&ast);
        let reparsed = parse_module(&text)
            .unwrap_or_else(|e| panic!("pretty output failed to parse: {e}\n{text}"))
            .body;
        // `Expr::Unordered` prints as `fn:unordered(…)`, which parses back
        // as a call — normalization reifies it again. Compare the
        // normalized forms (normalization is deterministic and applied to
        // both sides).
        let a = exrquy_frontend::normalize::norm(&ast);
        let b = exrquy_frontend::normalize::norm(&reparsed);
        assert_eq!(&a, &b, "roundtrip mismatch via `{}`", &text);
    }
}
