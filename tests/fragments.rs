//! Document order across multiple trees: base documents and runtime-
//! constructed fragments. XQuery leaves the relative order of distinct
//! trees implementation-defined but requires it to be *stable*; our
//! `(fragment, preorder)` node ids deliver that (xml crate docs).

use exrquy::{QueryOptions, Session};

fn session() -> Session {
    let mut s = Session::new();
    s.load_document("one.xml", "<one><x>1</x></one>").unwrap();
    s.load_document("two.xml", "<two><x>2</x></two>").unwrap();
    s
}

fn eval(s: &mut Session, q: &str) -> String {
    s.query_with(q, &QueryOptions::baseline())
        .unwrap_or_else(|e| panic!("`{q}`: {e}"))
        .to_xml()
}

#[test]
fn union_across_documents_is_stable() {
    let mut s = session();
    // Document order between the two docs is fixed by load order.
    let a = eval(&mut s, r#"doc("one.xml")//x | doc("two.xml")//x"#);
    let b = eval(&mut s, r#"doc("two.xml")//x | doc("one.xml")//x"#);
    assert_eq!(a, "<x>1</x><x>2</x>");
    assert_eq!(
        a, b,
        "union must be order-stable regardless of operand order"
    );
}

#[test]
fn node_comparisons_across_documents() {
    let mut s = session();
    assert_eq!(
        eval(&mut s, r#"doc("one.xml")//x << doc("two.xml")//x"#),
        "true"
    );
    assert_eq!(
        eval(&mut s, r#"doc("one.xml")//x is doc("one.xml")//x"#),
        "true"
    );
    assert_eq!(
        eval(&mut s, r#"doc("one.xml")//x is doc("two.xml")//x"#),
        "false"
    );
}

#[test]
fn constructed_nodes_sort_after_loaded_documents() {
    let mut s = session();
    // A node constructed during the query is a new tree; `<<` against base
    // documents must be deterministic (new fragments sort last).
    assert_eq!(
        eval(&mut s, r#"let $n := <n/> return doc("one.xml")//x << $n"#),
        "true"
    );
}

#[test]
fn intersect_and_except_across_trees() {
    let mut s = session();
    assert_eq!(
        eval(
            &mut s,
            r#"fn:count((doc("one.xml")//x | doc("two.xml")//x) intersect doc("one.xml")//x)"#
        ),
        "1"
    );
    // A constructed copy is never identical to its source node.
    assert_eq!(
        eval(
            &mut s,
            r#"let $c := <c>{ doc("one.xml")//x }</c>
               return fn:count($c/x intersect doc("one.xml")//x)"#
        ),
        "0"
    );
}

#[test]
fn steps_over_mixed_fragment_contexts() {
    let mut s = session();
    // One context sequence spanning two documents and a constructed tree;
    // the step operator partitions by fragment internally.
    assert_eq!(
        eval(
            &mut s,
            r#"let $mix := (doc("one.xml")/one, doc("two.xml")/two, <three><x>3</x></three>)
               return for $m in $mix return fn:string($m/x)"#
        ),
        "1 2 3"
    );
}

#[test]
fn deep_construction_chains() {
    let mut s = session();
    // Constructors consuming constructors: each copy is deep.
    assert_eq!(
        eval(
            &mut s,
            r#"let $a := <a><k>7</k></a>
               let $b := <b>{ $a, $a }</b>
               let $c := <c>{ $b/a/k }</c>
               return ($c, fn:count($b/a), fn:sum($c/k))"#
        ),
        "<c><k>7</k><k>7</k></c>2 14"
    );
}
