//! Pipeline-level property tests: on random documents, every compiler /
//! optimizer / engine configuration must produce the same result
//! *multiset* for a battery of queries, and order-determined queries must
//! agree exactly. Driven by the in-repo deterministic PRNG so the suite
//! builds offline.

use exrquy::{QueryOptions, Session};
use exrquy_opt::OptOptions;
use exrquy_xml::rng::SmallRng;

/// Random small document: nested `a`/`b`/`c` elements with `v` attributes
/// and numeric text.
fn random_doc(rng: &mut SmallRng) -> String {
    fn node(rng: &mut SmallRng, depth: u32) -> String {
        let leaf = |rng: &mut SmallRng| {
            let n = rng.gen_range(0u32..100);
            format!("<c v=\"{n}\">{n}</c>")
        };
        if depth == 0 || rng.gen_bool(0.4) {
            leaf(rng)
        } else {
            let tag = if rng.gen_bool(0.5) { "a" } else { "b" };
            let n = rng.gen_range(0usize..4);
            let kids: String = (0..n).map(|_| node(rng, depth - 1)).collect();
            format!("<{tag}>{kids}</{tag}>")
        }
    }
    let n = rng.gen_range(1usize..5);
    let kids: String = (0..n).map(|_| node(rng, 3)).collect();
    format!("<root>{kids}</root>")
}

/// Queries whose results are fully order-determined (they must agree
/// exactly under every configuration).
const DETERMINED: &[&str] = &[
    r#"fn:count(doc("d.xml")//c)"#,
    r#"fn:sum(doc("d.xml")//c/@v)"#,
    r#"fn:max(doc("d.xml")//c)"#,
    r#"fn:count(doc("d.xml")//a/c | doc("d.xml")//b/c)"#,
    r#"fn:exists(doc("d.xml")//b)"#,
    r#"some $c in doc("d.xml")//c satisfies $c/@v > 50"#,
    r#"every $c in doc("d.xml")//c satisfies $c/@v >= 0"#,
    r#"fn:count(for $x in doc("d.xml")//a return fn:count($x//c))"#,
    r#"fn:count(doc("d.xml")//c[@v > 20])"#,
    r#"for $v in doc("d.xml")//c/@v order by fn:number($v) return fn:data($v)"#,
    r#"<e x="{ for $v in doc("d.xml")//c/@v order by fn:number($v) return fn:data($v) }"/>"#,
];

/// Queries whose sequence order may legitimately differ between the
/// configurations (multiset equality required).
const MULTISET: &[&str] = &[
    r#"doc("d.xml")//(a|c)"#,
    r#"for $x in doc("d.xml")//c return $x/@v"#,
    r#"for $x in doc("d.xml")//a for $y in $x//c return fn:data($y/@v)"#,
    r#"fn:distinct-values(doc("d.xml")//c/@v)"#,
    r#"for $x in doc("d.xml")//c where $x/@v > 10 return <hit>{ fn:data($x/@v) }</hit>"#,
];

fn configs() -> Vec<(&'static str, QueryOptions)> {
    let mut no_weaken = QueryOptions::order_indifferent();
    no_weaken.opt.weaken_rownum = false;
    let mut no_merge = QueryOptions::order_indifferent();
    no_merge.opt.merge_steps = false;
    let mut no_cda = QueryOptions::order_indifferent();
    no_cda.opt = OptOptions::disabled();
    let mut naive_steps = QueryOptions::baseline();
    naive_steps.step_algo = exrquy::engine::StepAlgo::Naive;
    let mut name_streams = QueryOptions::baseline();
    name_streams.step_algo = exrquy::engine::StepAlgo::NameStream;
    let mut unordered_streams = QueryOptions::order_indifferent();
    unordered_streams.step_algo = exrquy::engine::StepAlgo::NameStream;
    let mut ordered_opt = QueryOptions::baseline();
    ordered_opt.exploit = true;
    ordered_opt.opt = OptOptions::default();
    let mut physical = QueryOptions::baseline();
    physical.opt = OptOptions {
        physical_order: true,
        ..OptOptions::default()
    };
    let mut unordered_physical = QueryOptions::order_indifferent();
    unordered_physical.opt.physical_order = true;
    vec![
        ("baseline", QueryOptions::baseline()),
        ("baseline+naive-steps", naive_steps),
        ("ordered+analysis", ordered_opt),
        ("unordered", QueryOptions::order_indifferent()),
        ("unordered-no-weaken", no_weaken),
        ("unordered-no-merge", no_merge),
        ("unordered-no-analysis", no_cda),
        ("ordered+physical-order", physical),
        ("unordered+physical-order", unordered_physical),
        ("baseline+name-streams", name_streams),
        ("unordered+name-streams", unordered_streams),
    ]
}

#[test]
fn all_configurations_agree() {
    let mut rng = SmallRng::seed_from_u64(0x1b1b);
    for _case in 0..24 {
        let xml = random_doc(&mut rng);
        let mut session = Session::new();
        session.load_document("d.xml", &xml).unwrap();
        let configs = configs();
        for q in DETERMINED {
            let reference: Vec<String> = session
                .query_with(q, &configs[0].1)
                .unwrap_or_else(|e| panic!("{q} failed on {xml}: {e}"))
                .items
                .iter()
                .map(|i| i.render())
                .collect();
            for (name, opts) in &configs[1..] {
                let got: Vec<String> = session
                    .query_with(q, opts)
                    .unwrap_or_else(|e| panic!("{q} under {name} failed: {e}"))
                    .items
                    .iter()
                    .map(|i| i.render())
                    .collect();
                assert_eq!(
                    &reference, &got,
                    "query {} differs under {} on {}",
                    q, name, &xml
                );
            }
        }
        for q in MULTISET {
            let mut reference: Vec<String> = session
                .query_with(q, &configs[0].1)
                .unwrap()
                .items
                .iter()
                .map(|i| i.render())
                .collect();
            reference.sort();
            for (name, opts) in &configs[1..] {
                let mut got: Vec<String> = session
                    .query_with(q, opts)
                    .unwrap_or_else(|e| panic!("{q} under {name} failed: {e}"))
                    .items
                    .iter()
                    .map(|i| i.render())
                    .collect();
                got.sort();
                assert_eq!(
                    &reference, &got,
                    "multiset of {} differs under {} on {}",
                    q, name, &xml
                );
            }
        }
    }
}

#[test]
fn baseline_results_are_document_ordered() {
    let mut rng = SmallRng::seed_from_u64(0xD0C);
    for _case in 0..24 {
        let xml = random_doc(&mut rng);
        let mut session = Session::new();
        session.load_document("d.xml", &xml).unwrap();
        // Path results under the baseline must be in document order: the
        // serialization of //c equals the document-order scan.
        let out = session
            .query_with(r#"doc("d.xml")//c/@v"#, &QueryOptions::baseline())
            .unwrap();
        let got: Vec<String> = out.items.iter().map(|i| i.render()).collect();
        // Reference: extract v="…" left to right from the serialized doc.
        let expect: Vec<String> = xml
            .match_indices("v=\"")
            .map(|(i, _)| {
                let rest = &xml[i + 3..];
                let end = rest.find('"').unwrap();
                format!("v=\"{}\"", &rest[..end])
            })
            .collect();
        assert_eq!(got, expect);
    }
}
