//! Larger-scale XMark consistency run (ignored by default — takes tens of
//! seconds). Run with:
//!
//! ```sh
//! cargo test --release --test xmark_large -- --ignored
//! ```

use exrquy::{QueryOptions, Session};
use exrquy_xmark::{generate, query, XmarkConfig};

#[test]
#[ignore = "large-scale run; invoke explicitly with --ignored"]
fn all_queries_agree_at_scale_0_05() {
    let cfg = XmarkConfig::at_scale(0.05);
    let xml = generate(&cfg);
    let mut s = Session::new();
    s.load_document("auction.xml", &xml).unwrap();
    for n in 1..=20 {
        let base = s
            .query_with(query(n), &QueryOptions::baseline())
            .unwrap_or_else(|e| panic!("Q{n} baseline: {e}"));
        let oi = s
            .query_with(query(n), &QueryOptions::order_indifferent())
            .unwrap_or_else(|e| panic!("Q{n} unordered: {e}"));
        let mut a: Vec<String> = base.items.iter().map(|i| i.render()).collect();
        let mut b: Vec<String> = oi.items.iter().map(|i| i.render()).collect();
        a.sort();
        b.sort();
        assert_eq!(a.len(), b.len(), "Q{n} cardinality");
        assert_eq!(a, b, "Q{n} multiset");
    }
}

#[test]
#[ignore = "large-scale run; invoke explicitly with --ignored"]
fn physical_order_configuration_agrees_at_scale() {
    let cfg = XmarkConfig::at_scale(0.02);
    let xml = generate(&cfg);
    let mut s = Session::new();
    s.load_document("auction.xml", &xml).unwrap();
    let mut physical = QueryOptions::order_indifferent();
    physical.opt.physical_order = true;
    for n in 1..=20 {
        let reference = s
            .query_with(query(n), &QueryOptions::order_indifferent())
            .unwrap();
        let got = s.query_with(query(n), &physical).unwrap();
        let mut a: Vec<String> = reference.items.iter().map(|i| i.render()).collect();
        let mut b: Vec<String> = got.items.iter().map(|i| i.render()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b, "Q{n} multiset under physical-order inference");
    }
}
