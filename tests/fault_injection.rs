//! Tier-1 fault-injection suite: the default matrix from
//! `exrquy-verify`, plus direct end-to-end checks that each injected
//! fault surfaces as its typed error with no residual session damage.

use exrquy::diag::{ErrorClass, ErrorCode, Failpoints};
use exrquy::{QueryOptions, Session};
use exrquy_verify::{default_cases, run_fault_matrix, FaultCase};

fn session_with_doc() -> Session {
    let mut s = Session::new();
    s.load_document("d.xml", "<r><x>1</x><y><x>2</x></y></r>")
        .expect("load");
    s
}

fn opts_with(spec: &str) -> QueryOptions {
    QueryOptions::order_indifferent().with_failpoints(Failpoints::parse(spec).expect("spec"))
}

#[test]
fn default_fault_matrix_degrades_gracefully() {
    let report = run_fault_matrix(&default_cases());
    assert!(report.all_graceful(), "{report}");
}

#[test]
fn injected_doc_io_fault_is_a_retrieval_error() {
    let s = session_with_doc();
    let err = s
        .query_with(r#"doc("d.xml")//x"#, &opts_with("doc-io:1"))
        .expect_err("doc-io:1 must fail the first access");
    assert_eq!(err.code(), ErrorCode::FODC0002);
    assert!(err.to_string().contains("d.xml"), "{err}");
    // The same query succeeds once the failpoint is disarmed.
    let out = s
        .query_with(r#"doc("d.xml")//x"#, &QueryOptions::order_indifferent())
        .expect("rerun");
    assert_eq!(out.items.len(), 2);
}

#[test]
fn injected_parse_fault_is_malformed_content_and_leaves_no_fragment() {
    let mut s = Session::new();
    s.set_failpoints(Failpoints::parse("doc-parse:1").expect("spec"));
    let frags_before = s.catalog().frag_count();
    let err = s
        .load_document("bad.xml", "<ok/>")
        .expect_err("doc-parse:1 must reject the first load");
    assert_eq!(err.code(), ErrorCode::FODC0006);
    assert_eq!(
        s.catalog().frag_count(),
        frags_before,
        "a failed load must not register a fragment"
    );
    // Disarmed, the same document loads and queries fine.
    s.set_failpoints(Failpoints::none());
    s.load_document("bad.xml", "<ok/>").expect("reload");
    let out = s
        .query_with(r#"doc("bad.xml")"#, &QueryOptions::order_indifferent())
        .expect("query");
    assert_eq!(out.items.len(), 1);
}

#[test]
fn injected_budget_trip_is_a_resource_error() {
    let s = session_with_doc();
    let err = s
        .query_with(r#"doc("d.xml")//x"#, &opts_with("budget-trip:step"))
        .expect_err("budget-trip:step must trip in the step operator");
    assert_eq!(err.code(), ErrorCode::EXRQ0001);
    assert_eq!(err.code().class(), ErrorClass::Resource);
    assert!(err.to_string().contains("injected"), "{err}");
}

#[test]
fn injected_cancellation_is_a_cancellation_error() {
    let s = session_with_doc();
    for spec in ["cancel-after:0", "cancel-after:2"] {
        let err = s
            .query_with(r#"doc("d.xml")//x"#, &opts_with(spec))
            .expect_err("injected cancellation must abort the query");
        assert_eq!(err.code(), ErrorCode::EXRQ0002, "{spec}");
    }
    // Store untouched by the aborted runs.
    let out = s
        .query_with(r#"doc("d.xml")//x"#, &QueryOptions::order_indifferent())
        .expect("rerun");
    assert_eq!(out.items.len(), 2);
}

#[test]
fn matrix_rejects_silent_success_as_non_graceful() {
    // `cancel-after:1000000` never fires: the query succeeds, which the
    // harness must flag (an armed failpoint that cannot fire is a hole in
    // the matrix, not a pass).
    let case = FaultCase::new(
        "cancel-never-fires",
        "cancel-after:1000000",
        r#"doc("d.xml")//x"#,
        vec![ErrorCode::EXRQ0002],
        false,
    );
    let report = run_fault_matrix(&[case]);
    assert!(!report.all_graceful());
    assert!(report.to_string().contains("query succeeded"), "{report}");
}

#[test]
fn malformed_inject_specs_are_rejected_with_context() {
    // (`budget-trip:<anything>` is accepted — unknown aliases pass through
    // as canonical kind names — so it is not in this list.)
    for bad in ["doc-io", "doc-io:x", "unknown:1", "oracle-perturb:sideways"] {
        let err = Failpoints::parse(bad).expect_err(bad);
        assert!(
            err.to_string().contains(bad.split(':').next().unwrap()),
            "{err}"
        );
    }
}
