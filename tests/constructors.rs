//! Node construction: direct and computed constructors, deep-copy
//! semantics, attribute handling, and the seq→doc order interaction (2©).

use exrquy::{QueryOptions, Session};

fn session() -> Session {
    let mut s = Session::new();
    s.load_document("d.xml", r#"<r><a k="1">x</a><b>y</b></r>"#)
        .unwrap();
    s
}

fn eval(s: &mut Session, q: &str) -> String {
    s.query_with(q, &QueryOptions::baseline())
        .unwrap_or_else(|e| panic!("`{q}`: {e}"))
        .to_xml()
}

#[test]
fn direct_element_with_literal_content() {
    let mut s = session();
    assert_eq!(eval(&mut s, "<e>hi</e>"), "<e>hi</e>");
    assert_eq!(eval(&mut s, "<e/>"), "<e/>");
    assert_eq!(eval(&mut s, "<e a=\"1\" b=\"2\"/>"), r#"<e a="1" b="2"/>"#);
}

#[test]
fn enclosed_expressions_and_atomic_spacing() {
    let mut s = session();
    // Adjacent atomics merge into one text node, space-separated.
    assert_eq!(eval(&mut s, "<e>{ 1, 2, 3 }</e>"), "<e>1 2 3</e>");
    assert_eq!(eval(&mut s, "<e>{ 1 }-{ 2 }</e>"), "<e>1-2</e>");
    // Expressions mixing nodes and atomics.
    assert_eq!(
        eval(&mut s, r#"<e>{ 1, doc("d.xml")//b, 2 }</e>"#),
        "<e>1<b>y</b>2</e>"
    );
}

#[test]
fn content_nodes_are_deep_copies() {
    let mut s = session();
    // The copy lives in a new tree: its parent chain ends at the new
    // element, and the original is untouched.
    assert_eq!(
        eval(
            &mut s,
            r#"let $e := <e>{ doc("d.xml")//a }</e> return fn:count($e/a/ancestor::r)"#
        ),
        "0"
    );
    assert_eq!(
        eval(
            &mut s,
            r#"let $e := <e>{ doc("d.xml")//a }</e> return fn:count(doc("d.xml")//a/ancestor::r)"#
        ),
        "1"
    );
    // Attributes of copied elements survive.
    assert_eq!(
        eval(
            &mut s,
            r#"let $e := <e>{ doc("d.xml")//a }</e> return fn:data($e/a/@k)"#
        ),
        "1"
    );
}

#[test]
fn attribute_value_templates() {
    let mut s = session();
    assert_eq!(
        eval(&mut s, r#"<e x="a{1+1}b{ "c" }"/>"#),
        r#"<e x="a2bc"/>"#
    );
    // Sequence in template joins with spaces.
    assert_eq!(eval(&mut s, r#"<e x="{ (1,2,3) }"/>"#), r#"<e x="1 2 3"/>"#);
    // Node in template atomizes to string value.
    assert_eq!(
        eval(&mut s, r#"<e x="{ doc("d.xml")//b }"/>"#),
        r#"<e x="y"/>"#
    );
    // Empty sequence → empty string.
    assert_eq!(eval(&mut s, r#"<e x="{ () }"/>"#), r#"<e x=""/>"#);
}

#[test]
fn computed_constructors() {
    let mut s = session();
    assert_eq!(eval(&mut s, "element out { 1, 2 }"), "<out>1 2</out>");
    assert_eq!(eval(&mut s, "text { 'hello' }"), "hello");
    // A computed attribute used as element content becomes an attribute.
    assert_eq!(
        eval(&mut s, r#"<e>{ attribute k { "v" } }</e>"#),
        r#"<e k="v"/>"#
    );
}

#[test]
fn seq_to_doc_order_interaction() {
    let s = session();
    // Content sequence order becomes document order in the new fragment —
    // regardless of the ordering mode (the paper's interaction 2© is not
    // weakened, Figure 3).
    for opts in [QueryOptions::baseline(), QueryOptions::order_indifferent()] {
        let out = s
            .query_with(
                r#"let $b := doc("d.xml")//b, $a := doc("d.xml")//a
                   return <e>{ $b, $a }</e>"#,
                &opts,
            )
            .unwrap()
            .to_xml();
        assert_eq!(out, r#"<e><b>y</b><a k="1">x</a></e>"#);
    }
}

#[test]
fn constructors_inside_iterations() {
    let mut s = session();
    assert_eq!(
        eval(
            &mut s,
            "for $i in (1, 2) return <n v=\"{ $i }\">{ $i * 10 }</n>"
        ),
        r#"<n v="1">10</n><n v="2">20</n>"#
    );
    // Nested constructors per iteration.
    assert_eq!(
        eval(&mut s, "for $i in (1, 2) return <o><i>{ $i }</i></o>"),
        "<o><i>1</i></o><o><i>2</i></o>"
    );
}

#[test]
fn escaped_braces_and_entities() {
    let mut s = session();
    assert_eq!(eval(&mut s, "<e>a{{b}}c</e>"), "<e>a{b}c</e>");
    assert_eq!(eval(&mut s, "<e>&lt;&amp;</e>"), "<e>&lt;&amp;</e>");
}

#[test]
fn attribute_after_content_is_an_error() {
    let s = session();
    let err = s
        .query(r#"<e>{ "text", attribute k { "v" } }</e>"#)
        .unwrap_err();
    assert!(err.to_string().contains("XQTY0024"), "{err}");
}

#[test]
fn querying_constructed_fragments() {
    let mut s = session();
    // Navigate into freshly constructed nodes (paper Expression (3) uses
    // $e/b): steps over constructed fragments work.
    assert_eq!(
        eval(
            &mut s,
            r#"let $e := <e><p>1</p><q/></e> return fn:count($e/*)"#
        ),
        "2"
    );
    assert_eq!(
        eval(&mut s, r#"let $e := <e><p>7</p></e> return $e/p + 1"#),
        "8"
    );
}
