//! Serialize→parse round-trip property: for randomly generated XML
//! trees, parsing the serializer's output reproduces the exact
//! pre/size/level encoding. Driven by the in-repo deterministic PRNG so
//! the suite builds offline.

use exrquy_xml::rng::SmallRng;
use exrquy_xml::serialize::{escape_attr, escape_text, serialize_subtree};
use exrquy_xml::{parse_document, Document, NamePool};

/// Abstract content node; the generator emits these, an emitter renders
/// them to markup, and the parser's encoding is what we compare.
enum Node {
    Elem {
        name: String,
        attrs: Vec<(String, String)>,
        children: Vec<Node>,
    },
    Text(String),
    Comment(String),
    Pi(String, String),
}

fn elem_name(rng: &mut SmallRng) -> String {
    ["item", "person", "e", "ns_x", "long-name.v2"][rng.gen_range(0usize..5)].to_string()
}

/// Text content, biased towards characters that need escaping.
fn text_content(rng: &mut SmallRng) -> String {
    let n = rng.gen_range(1usize..12);
    let mut s = String::new();
    for _ in 0..n {
        match rng.gen_range(0u32..10) {
            0 => s.push('<'),
            1 => s.push('&'),
            2 => s.push('>'),
            3 => s.push('"'),
            4 => s.push(' '),
            _ => s.push((b'a' + rng.gen_range(0u32..26) as u8) as char),
        }
    }
    // Whitespace-only text is representable but easy to confuse with
    // indentation; keep at least one visible character.
    if s.trim().is_empty() {
        s.push('t');
    }
    s
}

/// Comment/PI bodies stay in a safe alphabet: `--` inside a comment and
/// `?>` inside a PI are unserializable, and leading whitespace in PI data
/// is trimmed by the parser.
fn safe_content(rng: &mut SmallRng) -> String {
    let n = rng.gen_range(1usize..10);
    (0..n)
        .map(|_| {
            let c = rng.gen_range(0u32..27);
            if c == 26 {
                ' '
            } else {
                (b'a' + c as u8) as char
            }
        })
        .collect::<String>()
        .trim()
        .to_string()
        + "z"
}

fn random_elem(rng: &mut SmallRng, depth: u32) -> Node {
    let n_attrs = rng.gen_range(0usize..3);
    let attrs = (0..n_attrs)
        .map(|i| (format!("a{i}"), text_content(rng)))
        .collect();
    let mut children = Vec::new();
    if depth > 0 {
        let n = rng.gen_range(0usize..4);
        let mut last_was_text = false;
        for _ in 0..n {
            // Adjacent text nodes merge on reparse, so never emit two in
            // a row — the property is about the encoding, not about text
            // coalescing.
            let choice = if last_was_text {
                rng.gen_range(1u32..4)
            } else {
                rng.gen_range(0u32..5)
            };
            let child = match choice {
                0 | 4 => {
                    last_was_text = true;
                    Node::Text(text_content(rng))
                }
                1 => {
                    last_was_text = false;
                    random_elem(rng, depth - 1)
                }
                2 => {
                    last_was_text = false;
                    Node::Comment(safe_content(rng))
                }
                _ => {
                    last_was_text = false;
                    Node::Pi("go".to_string(), safe_content(rng))
                }
            };
            children.push(child);
        }
    }
    Node::Elem {
        name: elem_name(rng),
        attrs,
        children,
    }
}

fn emit(node: &Node, out: &mut String) {
    match node {
        Node::Elem {
            name,
            attrs,
            children,
        } => {
            out.push('<');
            out.push_str(name);
            for (k, v) in attrs {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                escape_attr(v, out);
                out.push('"');
            }
            if children.is_empty() {
                out.push_str("/>");
            } else {
                out.push('>');
                for c in children {
                    emit(c, out);
                }
                out.push_str("</");
                out.push_str(name);
                out.push('>');
            }
        }
        Node::Text(t) => escape_text(t, out),
        Node::Comment(t) => {
            out.push_str("<!--");
            out.push_str(t);
            out.push_str("-->");
        }
        Node::Pi(target, data) => {
            out.push_str("<?");
            out.push_str(target);
            out.push(' ');
            out.push_str(data);
            out.push_str("?>");
        }
    }
}

/// Everything the pre/size/level encoding stores, with names resolved
/// through the pool so the comparison is independent of interning order.
fn encoding_fingerprint(doc: &Document, pool: &NamePool) -> Vec<String> {
    use exrquy_xml::NodeKind;
    (0..doc.len() as u32)
        .map(|pre| {
            let named = matches!(
                doc.kind(pre),
                NodeKind::Element | NodeKind::Attribute | NodeKind::ProcessingInstruction
            );
            let name = if named {
                pool.resolve(doc.name(pre))
            } else {
                ""
            };
            format!(
                "{} name={name:?} size={} level={} parent={:?} text={:?}",
                doc.kind(pre),
                doc.size(pre),
                doc.level(pre),
                doc.parent(pre),
                doc.text(pre),
            )
        })
        .collect()
}

#[test]
fn serialize_parse_preserves_pre_size_level_encoding() {
    let mut rng = SmallRng::seed_from_u64(0xE17A);
    for case in 0..200 {
        let tree = random_elem(&mut rng, 3);
        let mut text = String::new();
        emit(&tree, &mut text);

        let mut pool1 = NamePool::new();
        let doc1 = parse_document(&text, &mut pool1)
            .unwrap_or_else(|e| panic!("case {case}: generated XML failed to parse: {e}\n{text}"));
        doc1.check_invariants()
            .unwrap_or_else(|e| panic!("case {case}: first parse broke invariants: {e}"));

        let mut serialized = String::new();
        serialize_subtree(&doc1, 0, &pool1, &mut serialized);

        let mut pool2 = NamePool::new();
        let doc2 = parse_document(&serialized, &mut pool2).unwrap_or_else(|e| {
            panic!("case {case}: serialized XML failed to reparse: {e}\n{serialized}")
        });
        doc2.check_invariants()
            .unwrap_or_else(|e| panic!("case {case}: reparse broke invariants: {e}"));

        assert_eq!(
            encoding_fingerprint(&doc1, &pool1),
            encoding_fingerprint(&doc2, &pool2),
            "case {case}: round-trip changed the encoding\noriginal: {text}\nserialized: {serialized}"
        );

        // The fixpoint must be reached after one round: serializing the
        // reparsed document reproduces the same bytes.
        let mut serialized2 = String::new();
        serialize_subtree(&doc2, 0, &pool2, &mut serialized2);
        assert_eq!(
            serialized, serialized2,
            "case {case}: serializer not a fixpoint"
        );
    }
}

#[test]
fn roundtrip_covers_depth_and_width_extremes() {
    // A deep chain and a wide fan-out exercise `size`/`level` bookkeeping
    // at the boundaries the random sampler rarely hits.
    let deep = {
        let mut s = String::new();
        for _ in 0..40 {
            s.push_str("<d>");
        }
        s.push_str("leaf");
        for _ in 0..40 {
            s.push_str("</d>");
        }
        s
    };
    let wide = {
        let mut s = String::from("<w>");
        for i in 0..120 {
            s.push_str(&format!("<c i=\"{i}\"/>"));
        }
        s.push_str("</w>");
        s
    };
    for text in [deep, wide] {
        let mut pool1 = NamePool::new();
        let doc1 = parse_document(&text, &mut pool1).expect("parse");
        let mut out = String::new();
        serialize_subtree(&doc1, 0, &pool1, &mut out);
        let mut pool2 = NamePool::new();
        let doc2 = parse_document(&out, &mut pool2).expect("reparse");
        assert_eq!(
            encoding_fingerprint(&doc1, &pool1),
            encoding_fingerprint(&doc2, &pool2)
        );
    }
}
