//! Tier-1 serial/parallel determinism: intra-query parallel execution
//! must be invisible in the output.
//!
//! Every query run with worker threads must serialize *byte-identically*
//! to the serial run — exact sequence equality of rendered items,
//! deliberately stricter than the bag equivalence the unordered mode
//! would grant — because morsel kernels concatenate partial results in
//! morsel order and node construction executes in the exact serial
//! topological sequence on the owning thread.

use exrquy::{QueryOptions, ResultItem, Session};
use exrquy_verify::{run_parallel_differential, ParallelConfig};

/// The full default corpus: all 20 XMark queries at 2 and 4 worker
/// threads, plus 25 fuzz-generated cells per profile.
#[test]
fn xmark_and_fuzz_corpora_serialize_identically_across_thread_counts() {
    let report = run_parallel_differential(&ParallelConfig::default());
    assert!(report.passed(), "{report}");
    assert!(report.cells > 0);
}

/// Node construction inside a parallel run: fragment ids and interned
/// names are assigned on the owning thread in serial topological order,
/// so even freshly built elements render byte-identically.
#[test]
fn constructed_nodes_render_identically() {
    let mut s = Session::new();
    s.load_document(
        "d.xml",
        "<site><a n='1'><b>x</b><b>y</b></a><a n='2'><b>z</b></a></site>",
    )
    .unwrap();
    let query = "for $a in doc(\"d.xml\")//a \
                 return <hit n=\"{fn:string($a/@n)}\">{$a/b}</hit>";
    let render = |out: &[ResultItem]| out.iter().map(ResultItem::render).collect::<Vec<_>>();
    let serial = s
        .query_with(query, &QueryOptions::order_indifferent().with_threads(1))
        .unwrap();
    for threads in [2, 4, 8] {
        let par = s
            .query_with(
                query,
                &QueryOptions::order_indifferent().with_threads(threads),
            )
            .unwrap();
        assert_eq!(
            render(&serial.items),
            render(&par.items),
            "threads={threads} diverged from serial"
        );
    }
}
