//! Built-in function coverage: every supported function, exercised through
//! the full pipeline under both compiler configurations.

use exrquy::{QueryOptions, ResultItem, Session};

fn session() -> Session {
    let mut s = Session::new();
    s.load_document(
        "d.xml",
        r#"<r><n>3</n><n>1</n><n>2</n><s>hello world</s><e/><deep><x><y>leaf</y></x></deep></r>"#,
    )
    .unwrap();
    s
}

/// Run under both configurations; assert identical rendered results.
fn eval(s: &mut Session, q: &str) -> String {
    let a = s
        .query_with(q, &QueryOptions::baseline())
        .unwrap_or_else(|e| panic!("`{q}` baseline: {e}"))
        .to_xml();
    let b = s
        .query_with(q, &QueryOptions::order_indifferent())
        .unwrap_or_else(|e| panic!("`{q}` unordered: {e}"))
        .to_xml();
    assert_eq!(a, b, "configurations disagree on `{q}`");
    a
}

#[test]
fn numeric_aggregates() {
    let mut s = session();
    assert_eq!(eval(&mut s, r#"fn:count(doc("d.xml")//n)"#), "3");
    assert_eq!(eval(&mut s, r#"fn:sum(doc("d.xml")//n)"#), "6");
    assert_eq!(eval(&mut s, r#"fn:avg(doc("d.xml")//n)"#), "2");
    assert_eq!(eval(&mut s, r#"fn:max(doc("d.xml")//n)"#), "3");
    assert_eq!(eval(&mut s, r#"fn:min(doc("d.xml")//n)"#), "1");
    assert_eq!(eval(&mut s, "fn:count(())"), "0");
    assert_eq!(eval(&mut s, "fn:sum(())"), "0");
    assert_eq!(eval(&mut s, "fn:max(())"), "");
    assert_eq!(eval(&mut s, "fn:sum((1.5, 2.5))"), "4");
}

#[test]
fn boolean_family() {
    let mut s = session();
    assert_eq!(eval(&mut s, r#"fn:exists(doc("d.xml")//n)"#), "true");
    assert_eq!(eval(&mut s, r#"fn:exists(doc("d.xml")//zz)"#), "false");
    assert_eq!(eval(&mut s, r#"fn:empty(doc("d.xml")//zz)"#), "true");
    assert_eq!(eval(&mut s, "fn:not(fn:true())"), "false");
    assert_eq!(eval(&mut s, "fn:boolean((0))"), "false");
    assert_eq!(eval(&mut s, "fn:boolean(('x'))"), "true");
    assert_eq!(eval(&mut s, r#"fn:boolean(doc("d.xml")//e)"#), "true");
    assert_eq!(eval(&mut s, "fn:true()"), "true");
    assert_eq!(eval(&mut s, "fn:false()"), "false");
}

#[test]
fn string_family() {
    let mut s = session();
    assert_eq!(eval(&mut s, r#"fn:contains("seafood", "foo")"#), "true");
    assert_eq!(eval(&mut s, r#"fn:contains((), "x")"#), "false");
    assert_eq!(eval(&mut s, r#"fn:starts-with("seafood", "sea")"#), "true");
    assert_eq!(eval(&mut s, r#"fn:string-length("héllo")"#), "5");
    assert_eq!(eval(&mut s, r#"fn:substring("seafood", 4)"#), "food");
    assert_eq!(eval(&mut s, r#"fn:substring("seafood", 2, 3)"#), "eaf");
    assert_eq!(eval(&mut s, r#"fn:upper-case("aBc")"#), "ABC");
    assert_eq!(eval(&mut s, r#"fn:lower-case("aBc")"#), "abc");
    assert_eq!(eval(&mut s, r#"fn:translate("abcd", "bd", "BD")"#), "aBcD");
    assert_eq!(eval(&mut s, r#"fn:translate("abcd", "d", "")"#), "abc");
    assert_eq!(eval(&mut s, r#"fn:concat("a", 1, "b")"#), "a1b");
    assert_eq!(eval(&mut s, r#"fn:string(doc("d.xml")//y)"#), "leaf");
    assert_eq!(eval(&mut s, r#"fn:string(())"#), "");
    assert_eq!(eval(&mut s, r#"fn:string(doc("d.xml")//n)"#), "3 1 2");
}

#[test]
fn numeric_functions() {
    let mut s = session();
    assert_eq!(eval(&mut s, "fn:round(2.5)"), "3");
    assert_eq!(eval(&mut s, "fn:floor(2.7)"), "2");
    assert_eq!(eval(&mut s, "fn:ceiling(2.1)"), "3");
    assert_eq!(eval(&mut s, r#"fn:number("42")"#), "42");
    assert_eq!(eval(&mut s, r#"fn:number("nope")"#), "NaN");
    assert_eq!(eval(&mut s, r#"fn:number(doc("d.xml")//n[1])"#), "3");
}

#[test]
fn node_functions() {
    let mut s = session();
    assert_eq!(eval(&mut s, r#"fn:local-name(doc("d.xml")/r)"#), "r");
    assert_eq!(eval(&mut s, r#"fn:name(doc("d.xml")//y)"#), "y");
    assert_eq!(
        eval(&mut s, r#"fn:count(fn:root(doc("d.xml")//y)//n)"#),
        "3"
    );
    assert_eq!(eval(&mut s, r#"fn:data(doc("d.xml")//n[2])"#), "1");
}

#[test]
fn distinct_values_multiset() {
    let s = session();
    // Order of distinct-values is implementation-defined: compare sorted.
    let q = r#"fn:distinct-values((1, 2, 1, 3, 2))"#;
    for opts in [QueryOptions::baseline(), QueryOptions::order_indifferent()] {
        let out = s.query_with(q, &opts).unwrap();
        let mut vals: Vec<String> = out.items.iter().map(|i| i.render()).collect();
        vals.sort();
        assert_eq!(vals, vec!["1", "2", "3"]);
    }
}

#[test]
fn cardinality_assertions_are_identity() {
    let mut s = session();
    assert_eq!(eval(&mut s, "fn:zero-or-one(())"), "");
    assert_eq!(eval(&mut s, "fn:zero-or-one((7))"), "7");
    assert_eq!(eval(&mut s, "fn:exactly-one((7))"), "7");
    assert_eq!(eval(&mut s, "fn:one-or-more((7, 8))"), "7 8");
}

#[test]
fn arithmetic_edge_cases() {
    let mut s = session();
    assert_eq!(eval(&mut s, "7 idiv 2"), "3");
    assert_eq!(eval(&mut s, "7 mod 2"), "1");
    assert_eq!(eval(&mut s, "1 div 2"), "0.5");
    assert_eq!(eval(&mut s, "-(3)"), "-3");
    assert_eq!(eval(&mut s, "2 + ()"), ""); // arithmetic with () is ()
    assert_eq!(eval(&mut s, r#"doc("d.xml")//n[1] * 2"#), "6");
    assert_eq!(eval(&mut s, "1 + 2 * 3 - 4"), "3");
}

#[test]
fn unknown_function_is_a_compile_error() {
    let s = session();
    let err = s.query("fn:no-such-function(1)").unwrap_err();
    assert!(err.to_string().contains("unsupported function"), "{err}");
}

#[test]
fn value_vs_general_comparisons() {
    let mut s = session();
    assert_eq!(eval(&mut s, "2 eq 2"), "true");
    assert_eq!(eval(&mut s, "'a' lt 'b'"), "true");
    assert_eq!(eval(&mut s, "(1,2) = (2,3)"), "true");
    assert_eq!(eval(&mut s, "(1,2) = (3,4)"), "false");
    // untyped promotion: element text vs number
    assert_eq!(eval(&mut s, r#"doc("d.xml")//n = 2"#), "true");
    assert_eq!(eval(&mut s, r#"doc("d.xml")//n > 5"#), "false");
}

#[test]
fn boolean_as_value_and_in_branches() {
    let mut s = session();
    assert_eq!(eval(&mut s, "(1 = 1, 1 = 2)"), "true false");
    assert_eq!(eval(&mut s, "for $b in (1, 2) return $b = 1"), "true false");
    // Under unordered mode the FLWOR result may be permuted (iteration
    // order is arbitrary); the baseline fixes document order.
    let q = r#"for $n in doc("d.xml")//n
               return if ($n >= 2) then fn:concat($n, "!") else "small""#;
    let base = s.query_with(q, &QueryOptions::baseline()).unwrap().to_xml();
    assert_eq!(base, "3! small 2!");
    let mut oi: Vec<String> = s
        .query_with(q, &QueryOptions::order_indifferent())
        .unwrap()
        .items
        .iter()
        .map(|i| i.render())
        .collect();
    oi.sort();
    assert_eq!(oi, vec!["2!", "3!", "small"]);
}

#[test]
fn results_have_expected_types() {
    let s = session();
    let out = s.query("(1, 1.5, 'x', 2 = 2)").unwrap();
    assert_eq!(
        out.items,
        vec![
            ResultItem::Int(1),
            ResultItem::Dbl(1.5),
            ResultItem::Str("x".into()),
            ResultItem::Bool(true),
        ]
    );
}

#[test]
fn range_expressions() {
    let mut s = session();
    assert_eq!(eval(&mut s, "1 to 5"), "1 2 3 4 5");
    assert_eq!(eval(&mut s, "3 to 3"), "3");
    assert_eq!(eval(&mut s, "5 to 3"), "");
    assert_eq!(eval(&mut s, "fn:count(1 to 100)"), "100");
    assert_eq!(eval(&mut s, "fn:sum(1 to 10)"), "55");
    assert_eq!(eval(&mut s, "for $i in 1 to 3 return $i * $i"), "1 4 9");
    // range bounds from node content
    assert_eq!(eval(&mut s, r#"fn:count(1 to doc("d.xml")//n[1])"#), "3");
}

#[test]
fn declared_variables_in_prolog() {
    let mut s = session();
    assert_eq!(
        eval(
            &mut s,
            "declare variable $base := 10; declare variable $sq := $base * $base; $sq + 1"
        ),
        "101"
    );
}

#[test]
fn extended_string_functions() {
    let mut s = session();
    assert_eq!(
        eval(&mut s, r#"fn:normalize-space("  a   b  c ")"#),
        "a b c"
    );
    assert_eq!(
        eval(&mut s, r#"fn:substring-before("1999/04/01", "/")"#),
        "1999"
    );
    assert_eq!(
        eval(&mut s, r#"fn:substring-after("1999/04/01", "/")"#),
        "04/01"
    );
    assert_eq!(eval(&mut s, r#"fn:substring-before("abc", "z")"#), "");
    assert_eq!(eval(&mut s, r#"fn:ends-with("seafood", "food")"#), "true");
    assert_eq!(eval(&mut s, r#"fn:ends-with((), "x")"#), "false");
    assert_eq!(eval(&mut s, "fn:abs(-3.5)"), "3.5");
}
