//! Tier-1 differential-oracle suite: every XMark query through the
//! three-way oracle, plus end-to-end checks that an injected divergence
//! is caught and reported with the typed code and a plan diff.

use exrquy::diag::{ErrorCode, Failpoints};
use exrquy::{Equivalence, QueryOptions, Session};
use exrquy_verify::{run_xmark_suite, SuiteConfig};
use exrquy_xmark::{generate, XmarkConfig};

fn xmark_session() -> Session {
    let mut s = Session::new();
    let xml = generate(&XmarkConfig {
        scale: 0.0025,
        seed: 42,
    });
    s.load_document("auction.xml", &xml).expect("load");
    s
}

#[test]
fn all_twenty_xmark_queries_pass_the_oracle() {
    let report = run_xmark_suite(&SuiteConfig::default());
    assert!(report.all_passed(), "{report}");
    assert_eq!(report.outcomes.len(), 20);
}

#[test]
fn suite_is_stable_across_generator_seeds() {
    // A second seed changes every document value; the oracle must still
    // agree on a representative query slice.
    let cfg = SuiteConfig {
        queries: vec![2, 8, 11, 17, 19],
        ..SuiteConfig::default()
    }
    .with_seeds(vec![7, 1234]);
    let report = run_xmark_suite(&cfg);
    assert!(report.all_passed(), "{report}");
    assert_eq!(report.outcomes.len(), 10);
}

#[test]
fn oracle_reports_equivalence_matching_ordering_mode() {
    let s = xmark_session();
    let unordered = s
        .verify(
            "for $i in doc(\"auction.xml\")//item return $i/@id",
            &QueryOptions::order_indifferent(),
        )
        .expect("oracle");
    assert_eq!(unordered.equivalence, Equivalence::Bag);
    assert_eq!(unordered.arms.len(), 3);

    let ordered = s
        .verify(
            "for $i in doc(\"auction.xml\")//item return $i/@id",
            &QueryOptions::honor_prolog(),
        )
        .expect("oracle");
    assert_eq!(ordered.equivalence, Equivalence::Sequence);
}

#[test]
fn injected_divergence_fails_with_exrq0004_and_plan_diff() {
    let s = xmark_session();
    for arm in ["baseline", "optimized", "noweaken"] {
        let fp = Failpoints::parse(&format!("oracle-perturb:{arm}")).expect("spec");
        let opts = QueryOptions::order_indifferent().with_failpoints(fp);
        let err = s
            .verify("doc(\"auction.xml\")//item/name", &opts)
            .expect_err("perturbed arm must diverge");
        assert_eq!(err.code(), ErrorCode::EXRQ0004, "arm {arm}: {err}");
        let rendered = err.to_string();
        assert!(
            rendered.contains("plan diff vs baseline") || arm == "baseline",
            "arm {arm} divergence must carry a plan diff: {rendered}"
        );
    }
}
