//! The paper's running examples: Expressions (1)–(7), the four order
//! interactions of §2 (Figure 2), the partially-detached interactions of
//! ordering mode `unordered` (Figure 3), and the §2.2 pitfalls.

use exrquy::{QueryOptions, Session};

/// Figure 1's fragment, bound to `$t` via `doc("t.xml")/a`.
fn session() -> Session {
    let mut s = Session::new();
    s.load_document("t.xml", "<a><b><c/><d/></b><c/></a>")
        .unwrap();
    s
}

const T: &str = r#"let $t := doc("t.xml")/a return "#;

fn q(body: &str) -> String {
    format!("{T}{body}")
}

fn run(s: &mut Session, body: &str, opts: &QueryOptions) -> Vec<String> {
    s.query_with(&q(body), opts)
        .unwrap_or_else(|e| panic!("query `{body}` failed: {e}"))
        .items
        .iter()
        .map(|i| i.render())
        .collect()
}

// ------------------------------------------------------------------ §1

#[test]
fn expression_1_document_order() {
    // $t//(c|d) yields (c1, d, c2) in document order — interaction 1©.
    let mut s = session();
    let out = run(&mut s, "$t//(c|d)", &QueryOptions::baseline());
    assert_eq!(out, vec!["<c/>", "<d/>", "<c/>"]);
}

#[test]
fn expression_2_unordered_admits_concatenation() {
    // unordered { $t//(c|d) } ≡ (unordered{$t//c}, unordered{$t//d}):
    // same multiset, any order admissible.
    let mut s = session();
    let opts = QueryOptions::honor_prolog();
    let mut a = run(&mut s, "unordered { $t//(c|d) }", &opts);
    let mut b = run(&mut s, "(unordered { $t//c }, unordered { $t//d })", &opts);
    a.sort();
    b.sort();
    assert_eq!(a, b);
    assert_eq!(a, vec!["<c/>", "<c/>", "<d/>"]);
}

// ------------------------------------------------------------------ §2

#[test]
fn expression_3_sequence_order_establishes_document_order() {
    // Constructing <e>{ $d, $b }</e> flips the document order of the
    // copies: ($b << $d, $e/b << $e/d) = (true, false). Interaction 2©.
    let mut s = session();
    let body = r#"
        for $b in $t//b
        for $d in $t//d
        let $e := <e>{ $d, $b }</e>
        return ($b << $d, $e/b << $e/d)"#;
    let out = run(&mut s, body, &QueryOptions::baseline());
    assert_eq!(out, vec!["true", "false"]);
    // The interaction is NOT weakened by ordering mode unordered.
    let out = run(&mut s, body, &QueryOptions::order_indifferent());
    assert_eq!(out, vec!["true", "false"]);
}

#[test]
fn expression_4_iteration_order_and_positional_variable() {
    // for $x at $p in ("a","b","c") …: result in sequence order under
    // ordered mode; $p always reflects the binding-sequence position.
    let mut s = session();
    let body = r#"for $x at $p in ("a","b","c")
                  return <e pos="{ $p }">{ $x }</e>"#;
    let out = run(&mut s, body, &QueryOptions::baseline());
    assert_eq!(
        out,
        vec![
            r#"<e pos="1">a</e>"#,
            r#"<e pos="2">b</e>"#,
            r#"<e pos="3">c</e>"#
        ]
    );
    // Under unordered mode: any permutation of the three elements, but
    // each item keeps its position association ("a" ↔ 1 etc.).
    let out = run(&mut s, body, &QueryOptions::order_indifferent());
    let mut sorted = out.clone();
    sorted.sort();
    assert_eq!(
        sorted,
        vec![
            r#"<e pos="1">a</e>"#,
            r#"<e pos="2">b</e>"#,
            r#"<e pos="3">c</e>"#
        ]
    );
}

#[test]
fn expression_5_iter_to_seq_interaction_survives_unordered() {
    // for $x in (1,2) return ($x, $x*10) = (1,10,2,20). Under unordered
    // mode (2,20,1,10) is admissible but (1,20,2,10) is NOT: interaction
    // 4© (iter → seq) remains intact in Figure 3.
    let mut s = session();
    let body = "for $x in (1,2) return ($x, $x * 10)";
    let ordered = run(&mut s, body, &QueryOptions::baseline());
    assert_eq!(ordered, vec!["1", "10", "2", "20"]);

    let unordered = run(&mut s, body, &QueryOptions::order_indifferent());
    // Check admissibility: one of the two iteration orders, internally
    // intact.
    let a: Vec<String> = vec!["1".into(), "10".into(), "2".into(), "20".into()];
    let b: Vec<String> = vec!["2".into(), "20".into(), "1".into(), "10".into()];
    assert!(
        unordered == a || unordered == b,
        "inadmissible unordered result {unordered:?}"
    );
}

#[test]
fn expression_5_under_fn_unordered_allows_full_shuffle() {
    // fn:unordered(for …) removes the seq loop: any permutation of the
    // 4 items is admissible — the multiset must still match.
    let mut s = session();
    let body = "fn:unordered(for $x in (1,2) return ($x, $x * 10))";
    let mut out = run(&mut s, body, &QueryOptions::honor_prolog());
    out.sort();
    assert_eq!(out, vec!["1", "10", "2", "20"]);
}

#[test]
fn expressions_6_and_7_nested_iteration() {
    // Nested for over (1,2) × (10,20): ordered result fixed; unordered
    // admits 24 permutations of the <a> elements but the pairing inside
    // each element is fixed.
    let mut s = session();
    let body = r#"for $x in (1,2) for $y in (10,20)
                  return <a>{ $x, $y }</a>"#;
    let ordered = run(&mut s, body, &QueryOptions::baseline());
    assert_eq!(
        ordered,
        vec!["<a>1 10</a>", "<a>1 20</a>", "<a>2 10</a>", "<a>2 20</a>"]
    );
    let mut unordered = run(&mut s, body, &QueryOptions::order_indifferent());
    unordered.sort();
    assert_eq!(
        unordered,
        vec!["<a>1 10</a>", "<a>1 20</a>", "<a>2 10</a>", "<a>2 20</a>"]
    );
}

// --------------------------------------------------------------- §2.2

#[test]
fn unfolding_let_must_not_leak_nondeterminism() {
    // let $c2 := $t//c[2] return unordered { $c2 } — the positional
    // predicate is evaluated OUTSIDE the unordered scope: always c2
    // (the second c in document order), never nondeterministic.
    let mut s = session();
    let body = r#"
        let $c2 := $t//c[2]
        return unordered { ($c2, fn:count($t//b[$c2]) ) }"#;
    let _ = body; // the count predicate variant is exercised below
    let simple = r#"let $c2 := $t//c[2] return unordered { $c2 }"#;
    for _ in 0..3 {
        let out = run(&mut s, simple, &QueryOptions::honor_prolog());
        assert_eq!(out, vec!["<c/>"], "let-bound value changed under unordered");
    }
    // Verify it is indeed the *second* c: its parent is <a>, not <b>.
    let check = r#"let $c2 := $t//c[2] return fn:count($c2/parent::a)"#;
    let out = run(&mut s, check, &QueryOptions::baseline());
    assert_eq!(out, vec!["1"]);
}

#[test]
fn quantifiers_are_domain_order_indifferent() {
    let mut s = session();
    for opts in [QueryOptions::baseline(), QueryOptions::order_indifferent()] {
        let out = run(
            &mut s,
            "some $x in ($t//c, $t//d) satisfies fn:count($x/parent::b) = 1",
            &opts,
        );
        assert_eq!(out, vec!["true"]);
        let out = run(
            &mut s,
            "every $x in $t//c satisfies fn:exists($x/parent::node())",
            &opts,
        );
        assert_eq!(out, vec!["true"]);
    }
}

#[test]
fn general_comparison_existential_semantics() {
    let mut s = session();
    for opts in [QueryOptions::baseline(), QueryOptions::order_indifferent()] {
        assert_eq!(run(&mut s, "(1,2,3) = (3,4)", &opts), vec!["true"]);
        assert_eq!(run(&mut s, "(1,2,3) = (4,5)", &opts), vec!["false"]);
        assert_eq!(run(&mut s, "(1,2) != (2)", &opts), vec!["true"]); // 1 != 2
        assert_eq!(run(&mut s, "() = (1)", &opts), vec!["false"]);
        assert_eq!(run(&mut s, "(1,5) < (0,2)", &opts), vec!["true"]);
    }
}

// ------------------------------------------------- aggregate contexts

#[test]
fn aggregates_ignore_order_but_keep_values() {
    let mut s = session();
    for opts in [QueryOptions::baseline(), QueryOptions::order_indifferent()] {
        assert_eq!(run(&mut s, "fn:count($t//(c|d))", &opts), vec!["3"]);
        assert_eq!(run(&mut s, "fn:sum((1,2,3))", &opts), vec!["6"]);
        assert_eq!(run(&mut s, "fn:max((3,1,2))", &opts), vec!["3"]);
        assert_eq!(run(&mut s, "fn:min((3,1,2))", &opts), vec!["1"]);
        assert_eq!(run(&mut s, "fn:avg((1,2,3))", &opts), vec!["2"]);
        assert_eq!(run(&mut s, "fn:count(())", &opts), vec!["0"]);
        assert_eq!(run(&mut s, "fn:sum(())", &opts), vec!["0"]);
    }
}

#[test]
fn order_by_reorders_regardless_of_mode() {
    let mut s = session();
    let body = "for $x in (3,1,2) order by $x return $x * 10";
    for opts in [QueryOptions::baseline(), QueryOptions::order_indifferent()] {
        assert_eq!(run(&mut s, body, &opts), vec!["10", "20", "30"]);
    }
    let body = "for $x in (3,1,2) order by $x descending return $x";
    assert_eq!(
        run(&mut s, body, &QueryOptions::order_indifferent()),
        vec!["3", "2", "1"]
    );
}

#[test]
fn positional_predicates_under_ordered_mode() {
    let mut s = session();
    let opts = QueryOptions::baseline();
    assert_eq!(run(&mut s, "$t//c[1]/..", &opts), vec!["<b><c/><d/></b>"]);
    assert_eq!(run(&mut s, "($t//(c|d))[2]", &opts), vec!["<d/>"]);
    assert_eq!(run(&mut s, "($t//(c|d))[last()]", &opts), vec!["<c/>"]);
}

#[test]
fn node_set_operations() {
    let mut s = session();
    for opts in [QueryOptions::baseline(), QueryOptions::order_indifferent()] {
        assert_eq!(
            run(&mut s, "fn:count($t//c | $t//c)", &opts),
            vec!["2"],
            "union dedups"
        );
        assert_eq!(
            run(&mut s, "fn:count(($t//(c|d)) intersect ($t//c))", &opts),
            vec!["2"]
        );
        assert_eq!(
            run(&mut s, "fn:count(($t//(c|d)) except ($t//c))", &opts),
            vec!["1"]
        );
    }
}

#[test]
fn result_of_if_with_empty_branches() {
    let mut s = session();
    for opts in [QueryOptions::baseline(), QueryOptions::order_indifferent()] {
        assert_eq!(
            run(&mut s, "if (fn:exists($t//d)) then \"yes\" else ()", &opts),
            vec!["yes"]
        );
        assert_eq!(
            run(&mut s, "if ($t//z) then \"yes\" else \"no\"", &opts),
            vec!["no"]
        );
    }
}
