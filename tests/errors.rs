//! Error paths: parse errors, static (compile) errors, and dynamic
//! (runtime) errors must surface as typed errors, never panics.

use exrquy::{QueryOptions, Session};

fn session() -> Session {
    let mut s = Session::new();
    s.load_document("d.xml", "<r><a>1</a><b>x</b></r>").unwrap();
    s
}

#[test]
fn parse_errors_carry_positions() {
    let mut s = session();
    for q in [
        "1 +",
        "for $x in",
        "<a><b></a>",
        "if (1) then 2",
        "let $x = 3 return $x", // `=` instead of `:=`
        "some $x in (1)",       // missing satisfies
        "$x[",
        "\"unterminated",
    ] {
        let err = s.query(q).unwrap_err();
        assert!(
            err.to_string().contains("XQuery error at byte"),
            "`{q}` gave: {err}"
        );
    }
}

#[test]
fn static_errors() {
    let mut s = session();
    // Unbound variable.
    let err = s.query("$nobody").unwrap_err();
    assert!(err.to_string().contains("unbound variable $nobody"));
    // Context item without focus.
    let err = s.query(".").unwrap_err();
    assert!(err.to_string().contains("context item"), "{err}");
    // Unknown function.
    let err = s.query("fn:frobnicate()").unwrap_err();
    assert!(err.to_string().contains("unsupported function"));
    // fn:doc with non-literal URL.
    let err = s.query("fn:doc($nobody)").unwrap_err();
    assert!(err.to_string().contains("unbound variable"), "{err}");
}

#[test]
fn dynamic_errors() {
    let mut s = session();
    // Unknown document.
    let err = s.query(r#"doc("missing.xml")/x"#).unwrap_err();
    assert!(err.to_string().contains("not loaded"), "{err}");
    // Integer division by zero.
    let err = s.query("1 idiv 0").unwrap_err();
    assert!(err.to_string().contains("division by zero"), "{err}");
    // EBV of a multi-item atomic sequence (FORG0006).
    let err = s.query("if ((1, 2)) then 1 else 2").unwrap_err();
    assert!(err.to_string().contains("FORG0006"), "{err}");
    // Path step over atomic values.
    let err = s.query("(1)/child::a").unwrap_err();
    assert!(err.to_string().contains("atomic"), "{err}");
    // Arithmetic on a non-numeric string value.
    let err = s.query(r#"doc("d.xml")//b + 1"#).unwrap_err();
    assert!(err.to_string().contains("number"), "{err}");
}

#[test]
fn malformed_documents_are_rejected() {
    let mut s = Session::new();
    for xml in ["<a>", "<a></b>", "text only", "<a b=c/>", ""] {
        assert!(
            s.load_document("bad.xml", xml).is_err(),
            "accepted malformed `{xml}`"
        );
    }
}

#[test]
fn errors_are_equal_across_configurations() {
    // A query that fails must fail under every configuration (the
    // optimizer may not mask or invent errors for always-evaluated code).
    let mut s = session();
    for q in ["1 idiv 0", r#"doc("missing.xml")/x"#] {
        assert!(s.query_with(q, &QueryOptions::baseline()).is_err());
        assert!(s
            .query_with(q, &QueryOptions::order_indifferent())
            .is_err());
    }
}

#[test]
fn session_stays_usable_after_errors() {
    let mut s = session();
    let _ = s.query("1 idiv 0").unwrap_err();
    let _ = s.query("$nope").unwrap_err();
    assert_eq!(s.query("1 + 1").unwrap().to_xml(), "2");
    assert_eq!(s.query(r#"fn:count(doc("d.xml")//a)"#).unwrap().to_xml(), "1");
}
