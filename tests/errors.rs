//! Error paths: parse errors, static (compile) errors, and dynamic
//! (runtime) errors must surface as typed errors, never panics — and
//! every error carries a stable machine-readable code.

use exrquy::diag::{ErrorClass, ErrorCode};
use exrquy::{QueryOptions, Session};

fn session() -> Session {
    let mut s = Session::new();
    s.load_document("d.xml", "<r><a>1</a><b>x</b></r>").unwrap();
    s
}

#[test]
fn parse_errors_carry_positions() {
    let s = session();
    for q in [
        "1 +",
        "for $x in",
        "<a><b></a>",
        "if (1) then 2",
        "let $x = 3 return $x", // `=` instead of `:=`
        "some $x in (1)",       // missing satisfies
        "$x[",
        "\"unterminated",
    ] {
        let err = s.query(q).unwrap_err();
        assert!(
            err.to_string().contains("XQuery error at byte"),
            "`{q}` gave: {err}"
        );
    }
}

#[test]
fn static_errors() {
    let s = session();
    // Unbound variable.
    let err = s.query("$nobody").unwrap_err();
    assert!(err.to_string().contains("unbound variable $nobody"));
    // Context item without focus.
    let err = s.query(".").unwrap_err();
    assert!(err.to_string().contains("context item"), "{err}");
    // Unknown function.
    let err = s.query("fn:frobnicate()").unwrap_err();
    assert!(err.to_string().contains("unsupported function"));
    // fn:doc with non-literal URL.
    let err = s.query("fn:doc($nobody)").unwrap_err();
    assert!(err.to_string().contains("unbound variable"), "{err}");
}

#[test]
fn dynamic_errors() {
    let s = session();
    // Unknown document.
    let err = s.query(r#"doc("missing.xml")/x"#).unwrap_err();
    assert!(err.to_string().contains("not loaded"), "{err}");
    // Integer division by zero.
    let err = s.query("1 idiv 0").unwrap_err();
    assert!(err.to_string().contains("division by zero"), "{err}");
    // EBV of a multi-item atomic sequence (FORG0006).
    let err = s.query("if ((1, 2)) then 1 else 2").unwrap_err();
    assert!(err.to_string().contains("FORG0006"), "{err}");
    // Path step over atomic values.
    let err = s.query("(1)/child::a").unwrap_err();
    assert!(err.to_string().contains("atomic"), "{err}");
    // Arithmetic on a non-numeric string value.
    let err = s.query(r#"doc("d.xml")//b + 1"#).unwrap_err();
    assert!(err.to_string().contains("number"), "{err}");
}

#[test]
fn malformed_documents_are_rejected() {
    let mut s = Session::new();
    for xml in ["<a>", "<a></b>", "text only", "<a b=c/>", ""] {
        assert!(
            s.load_document("bad.xml", xml).is_err(),
            "accepted malformed `{xml}`"
        );
    }
}

#[test]
fn malformed_documents_carry_codes() {
    let mut s = Session::new();
    // Truncated documents, mismatched tags, bad entity references,
    // attribute syntax junk: all FODC0006 (malformed content) — distinct
    // from FODC0002, which is reserved for retrieval failures (the
    // document does not exist or cannot be read).
    for xml in [
        "<a><b>",         // truncated: b and a never close
        "<a><b></a></b>", // mismatched close ordering
        "<a>&nope;</a>",  // unknown entity reference
        "<a>&#xZZ;</a>",  // malformed character reference
        "<a foo></a>",    // attribute without value
        "<a foo=bar/>",   // unquoted attribute value
        "<a/><b/>",       // two roots
        "<>x</>",         // empty tag name
    ] {
        let err = s.load_document("bad.xml", xml).unwrap_err();
        assert_eq!(err.code(), ErrorCode::FODC0006, "`{xml}` gave {err}");
        assert_eq!(err.class(), ErrorClass::Dynamic);
        assert!(
            err.to_string()
                .contains("XML parse error in `bad.xml` at byte"),
            "{err}"
        );
    }
    // Absurdly deep nesting is a resource error, not a stack overflow.
    let deep = format!("{}{}", "<e>".repeat(4000), "</e>".repeat(4000));
    let err = s.load_document("deep.xml", &deep).unwrap_err();
    assert_eq!(err.code(), ErrorCode::EXRQ0003, "{err}");
    assert_eq!(err.class(), ErrorClass::Resource);
}

#[test]
fn malformed_documents_name_path_and_byte_offset() {
    let mut s = Session::new();
    // The mismatched close tag sits at a known offset; the message must
    // name the document and point into it.
    let xml = "<root><ok/></wrong>";
    let err = s.load_document("data/feed.xml", xml).unwrap_err();
    assert_eq!(err.code(), ErrorCode::FODC0006);
    let msg = err.to_string();
    assert!(msg.contains("`data/feed.xml`"), "{msg}");
    let offset: usize = msg
        .split("at byte ")
        .nth(1)
        .and_then(|rest| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()
                .and_then(|d| d.parse().ok())
        })
        .unwrap_or_else(|| panic!("no byte offset in `{msg}`"));
    assert!(
        offset >= xml.find("</wrong>").unwrap() && offset < xml.len(),
        "offset {offset} does not point at the bad close tag in `{msg}`"
    );
    // A missing document stays FODC0002: retrieval, not content.
    let s2 = session();
    let err = s2.query(r#"doc("nope.xml")/x"#).unwrap_err();
    assert_eq!(err.code(), ErrorCode::FODC0002);
}

#[test]
fn query_errors_carry_codes() {
    let s = session();
    let cases: &[(&str, ErrorCode)] = &[
        // Syntax.
        ("1 +", ErrorCode::XPST0003),
        ("<a><b></a>", ErrorCode::XPST0003),
        ("for $x in", ErrorCode::XPST0003),
        ("\"unterminated", ErrorCode::XPST0003),
        // Static references.
        ("$nobody", ErrorCode::XPST0008),
        ("fn:frobnicate()", ErrorCode::XPST0017),
        (".", ErrorCode::XPDY0002),
        ("/r", ErrorCode::XPDY0002),
        // Dynamic.
        (r#"doc("missing.xml")/x"#, ErrorCode::FODC0002),
        ("1 idiv 0", ErrorCode::FOAR0001),
        ("5 mod 0", ErrorCode::FOAR0001),
        (r#"doc("d.xml")//b + 1"#, ErrorCode::FORG0001),
        ("if ((1, 2)) then 1 else 2", ErrorCode::FORG0006),
        ("(1)/child::a", ErrorCode::XPTY0004),
        // Absurd nesting depth.
        (
            Box::leak(format!("{}1{}", "(".repeat(400), ")".repeat(400)).into_boxed_str()),
            ErrorCode::EXRQ0003,
        ),
    ];
    for (q, code) in cases {
        let err = s.query(q).unwrap_err();
        assert_eq!(err.code(), *code, "`{q}` gave [{}] {err}", err.code());
        // The one-line rendering leads with the code.
        assert!(err.render_line().starts_with(&format!("[{code:?}]")));
    }
}

#[test]
fn absurd_predicate_nesting_is_governed() {
    // A predicate tower is expression nesting too: each `[...]` level
    // must count against the depth budget rather than recurse freely.
    let s = session();
    let q = format!(
        r#"doc("d.xml"){}"#,
        "[a[1][b".repeat(80) + &"]]".repeat(80) + &"]".repeat(80)
    );
    let err = s.query(&q).unwrap_err();
    assert!(
        matches!(err.code(), ErrorCode::EXRQ0003 | ErrorCode::XPST0003),
        "{err}"
    );
}

#[test]
fn errors_are_equal_across_configurations() {
    // A query that fails must fail under every configuration (the
    // optimizer may not mask or invent errors for always-evaluated code).
    let s = session();
    for q in ["1 idiv 0", r#"doc("missing.xml")/x"#] {
        assert!(s.query_with(q, &QueryOptions::baseline()).is_err());
        assert!(s.query_with(q, &QueryOptions::order_indifferent()).is_err());
    }
}

#[test]
fn session_stays_usable_after_errors() {
    let s = session();
    let _ = s.query("1 idiv 0").unwrap_err();
    let _ = s.query("$nope").unwrap_err();
    assert_eq!(s.query("1 + 1").unwrap().to_xml(), "2");
    assert_eq!(
        s.query(r#"fn:count(doc("d.xml")//a)"#).unwrap().to_xml(),
        "1"
    );
}
