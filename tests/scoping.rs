//! Variable scoping, shadowing, and nesting edge cases of the
//! loop-lifting compiler.

use exrquy::{QueryOptions, Session};

fn session() -> Session {
    let mut s = Session::new();
    s.load_document("d.xml", "<r><a>1</a><a>2</a><b>9</b></r>")
        .unwrap();
    s
}

fn eval(s: &mut Session, q: &str) -> String {
    let a = s
        .query_with(q, &QueryOptions::baseline())
        .unwrap_or_else(|e| panic!("`{q}`: {e}"))
        .to_xml();
    a
}

#[test]
fn let_shadows_let() {
    let mut s = session();
    assert_eq!(eval(&mut s, "let $x := 1 let $x := $x + 1 return $x"), "2");
    assert_eq!(
        eval(&mut s, "let $x := 1 return (let $x := 2 return $x, $x)"),
        "2 1"
    );
}

#[test]
fn for_shadows_outer_for() {
    let mut s = session();
    assert_eq!(
        eval(
            &mut s,
            "for $x in (1,2) return (for $x in (10,20) return $x, $x)"
        ),
        "10 20 1 10 20 2"
    );
}

#[test]
fn quantifier_variable_scope_is_local() {
    let mut s = session();
    assert_eq!(
        eval(
            &mut s,
            "let $x := 99 return ((some $x in (1,2) satisfies $x = 2), $x)"
        ),
        "true 99"
    );
}

#[test]
fn deep_nesting_with_cross_level_references() {
    let mut s = session();
    // Three nested loops; the innermost return references all levels.
    assert_eq!(
        eval(
            &mut s,
            "for $a in (1,2) for $b in (10,20) for $c in (100)
             return $a + $b + $c"
        ),
        "111 121 112 122"
    );
}

#[test]
fn hoisted_lets_are_visible_in_deep_scopes() {
    let mut s = session();
    assert_eq!(
        eval(
            &mut s,
            r#"let $doc := doc("d.xml")
               for $a in $doc//a
               let $bound := fn:count($doc//b)
               return $a + $bound"#
        ),
        "2 3"
    );
}

#[test]
fn context_item_nesting_in_predicates() {
    let mut s = session();
    // Predicates re-focus `.`; nested predicates each get their own focus.
    assert_eq!(eval(&mut s, r#"fn:count(doc("d.xml")//a[. = 2])"#), "1");
    assert_eq!(
        eval(
            &mut s,
            r#"fn:count(doc("d.xml")/r[fn:count(a[. > 0]) = 2])"#
        ),
        "1"
    );
}

#[test]
fn positional_variable_scope() {
    let mut s = session();
    assert_eq!(
        eval(
            &mut s,
            "for $x at $i in ('a','b') for $y at $j in ('c','d')
             return fn:concat($i, $j)"
        ),
        "11 12 21 22"
    );
}

#[test]
fn where_restriction_applies_to_subsequent_clauses() {
    let mut s = session();
    assert_eq!(
        eval(
            &mut s,
            "for $x in (1,2,3,4) where $x mod 2 = 0
             let $sq := $x * $x return $sq"
        ),
        "4 16"
    );
    // Two where clauses conjoin.
    assert_eq!(
        eval(
            &mut s,
            "for $x in (1,2,3,4,5,6) where $x > 2 where $x < 5 return $x"
        ),
        "3 4"
    );
}

#[test]
fn variable_used_at_multiple_depths() {
    let mut s = session();
    // $base used at depth 0 (directly) and depth 2 (in nested loops).
    assert_eq!(
        eval(
            &mut s,
            "let $base := 100 return
             ($base, for $x in (1,2) return
                        for $y in (10) return $base + $x + $y)"
        ),
        "100 111 112"
    );
}

#[test]
fn if_branches_restrict_loops() {
    let mut s = session();
    assert_eq!(
        eval(
            &mut s,
            "for $x in (1,2,3) return if ($x = 2) then $x * 10 else $x"
        ),
        "1 20 3"
    );
    // Aggregates inside branches see only their branch's iterations.
    assert_eq!(
        eval(
            &mut s,
            r#"for $x in (0,1) return
               if ($x = 1) then fn:count(doc("d.xml")//a) else -1"#
        ),
        "-1 2"
    );
}

#[test]
fn empty_binding_sequences_yield_empty_loops() {
    let mut s = session();
    assert_eq!(eval(&mut s, "for $x in () return $x + 1"), "");
    assert_eq!(eval(&mut s, "fn:count(for $x in () return 1)"), "0");
    assert_eq!(
        eval(
            &mut s,
            "for $x in (1,2) return fn:count(for $y in () return $y)"
        ),
        "0 0"
    );
}

#[test]
fn physical_order_inference_removes_presorted_sorts() {
    // The [15]-style extension (§6): under the fully order-aware ordered
    // mode, the engine emits step results presorted by (iter, item), so
    // the LOC-rule % needs no sort once physical order inference runs.
    use exrquy_opt::OptOptions;
    let s = session();
    let q = r#"doc("d.xml")//a/text()"#;
    let mut plain = QueryOptions::baseline();
    plain.opt = OptOptions::default(); // logical analysis only
    let mut physical = plain.clone();
    physical.opt.physical_order = true;
    let p1 = s.prepare(q, &plain).unwrap();
    let p2 = s.prepare(q, &physical).unwrap();
    let c1 = exrquy::algebra::stats::costly_rownums(&p1.dag, p1.root);
    let c2 = exrquy::algebra::stats::costly_rownums(&p2.dag, p2.root);
    assert!(c2 < c1, "physical order had no effect: {c1} vs {c2}");
    // Results identical (the presorted % numbers in the same order).
    let r1 = s.execute(&p1).unwrap().to_xml();
    let r2 = s.execute(&p2).unwrap().to_xml();
    assert_eq!(r1, r2);
}

#[test]
fn position_and_last_in_predicate_expressions() {
    let mut s = session();
    let q = r#"for $x in (10,20,30,40) return ()"#;
    let _ = q;
    assert_eq!(eval(&mut s, "(10,20,30,40)[position() > 2]"), "30 40");
    assert_eq!(eval(&mut s, "(10,20,30,40)[position() = last()]"), "40");
    assert_eq!(eval(&mut s, "(10,20,30,40)[position() mod 2 = 0]"), "20 40");
    // Combined with a value condition on the focus.
    assert_eq!(
        eval(&mut s, "(10,20,30,40)[position() < 3 and . > 10]"),
        "20"
    );
    // Nested predicate re-focuses: inner position() is the inner rank.
    assert_eq!(
        eval(
            &mut s,
            r#"doc("d.xml")/r[fn:count(a[position() = 2]) = 1]/b"#
        ),
        "<b>9</b>"
    );
    // Path steps: second `a` element.
    assert_eq!(
        eval(&mut s, r#"doc("d.xml")//a[position() = 2]"#),
        "<a>2</a>"
    );
}
