//! Pretty-print round-trip property over the fuzzer's query grammar:
//! for every AST the generator can produce, parsing the pretty-printed
//! text reproduces the AST exactly, and pretty-printing is a fixpoint.
//!
//! This property is load-bearing for the minimizer: the shrinker probes
//! each candidate by pretty-printing and re-parsing it, so any corner of
//! the grammar where `parse ∘ pretty ≠ id` would silently redirect a
//! shrink step onto a *different* query than the one reported.

use exrquy_frontend::{parse_module, pretty};
use exrquy_verify::fuzz::cell_rng;
use exrquy_verify::{gen_doc, gen_query, FuzzProfile};

#[test]
fn parse_pretty_is_identity_on_generated_queries() {
    for profile in [FuzzProfile::Ordered, FuzzProfile::Unordered] {
        for i in 0..400 {
            // Same stream discipline as the fuzzer's cells: the document
            // draw comes first, so these are exactly the queries a hunt
            // with this seed would run.
            let mut rng = cell_rng(0xF00D, i, profile);
            let _doc = gen_doc(&mut rng);
            let ast = gen_query(&mut rng, profile);
            let text = pretty(&ast);
            let module = parse_module(&text).unwrap_or_else(|e| {
                panic!("{profile:?} #{i}: pretty output failed to parse: {e}\n{text}")
            });
            assert_eq!(
                module.body, ast,
                "{profile:?} #{i}: parse(pretty(ast)) != ast\n{text}"
            );
            // One round must reach the fixpoint: re-printing the reparsed
            // AST reproduces the same bytes.
            assert_eq!(
                pretty(&module.body),
                text,
                "{profile:?} #{i}: pretty not a fixpoint"
            );
        }
    }
}

#[test]
fn roundtrip_covers_handwritten_corners() {
    // Constructs the generator emits rarely (or with low probability
    // combined): attribute axes in order keys, positional variables,
    // nested constructors, quantifiers over unions.
    let corners = [
        r#"for $x at $p in doc("f.xml")//a where $p > 1 order by $x/attribute::id descending return <out k="1">{ $x }</out>"#,
        r#"unordered { for $a in doc("f.xml")/child::a for $b in doc("f.xml")//b return ($a, $b) }"#,
        r#"element out { fn:string(doc("f.xml")//a[1]/attribute::id) }"#,
        r#"some $v in (doc("f.xml")//a | doc("f.xml")//b) satisfies $v/attribute::id = 2"#,
        r#"if (fn:exists(doc("f.xml")//a[attribute::id > 1])) then fn:count(doc("f.xml")//a) else 0"#,
    ];
    for (i, text) in corners.iter().enumerate() {
        let ast = parse_module(text)
            .unwrap_or_else(|e| panic!("corner #{i} failed to parse: {e}\n{text}"))
            .body;
        let printed = pretty(&ast);
        let reparsed = parse_module(&printed)
            .unwrap_or_else(|e| {
                panic!("corner #{i}: pretty output failed to parse: {e}\n{printed}")
            })
            .body;
        assert_eq!(
            reparsed, ast,
            "corner #{i}: round-trip changed the AST\n{printed}"
        );
    }
}
