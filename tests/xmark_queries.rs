//! End-to-end integration: all 20 XMark queries, run against a generated
//! auction document under both compiler configurations.
//!
//! The key invariant of the paper: the order-indifferent configuration may
//! permute result sequences (only where order is unobservable!) but never
//! changes the result *multiset*; queries whose result order is fully
//! determined (aggregates, single constructors) must agree exactly.

use exrquy::{QueryOptions, ResultItem, Session};
use exrquy_xmark::{generate, query, XmarkConfig};

fn session() -> Session {
    // ≈64 persons, 54 items, 30 open auctions, 24 closed auctions.
    let cfg = XmarkConfig::at_scale(0.0025);
    let xml = generate(&cfg);
    let mut s = Session::new();
    s.load_document("auction.xml", &xml).unwrap();
    s
}

fn render(items: &[ResultItem]) -> Vec<String> {
    items.iter().map(|i| i.render()).collect()
}

/// Run Qn in both configurations; return (baseline, order-indifferent).
fn run_both(s: &mut Session, n: usize) -> (Vec<String>, Vec<String>) {
    let base = s
        .query_with(query(n), &QueryOptions::baseline())
        .unwrap_or_else(|e| panic!("Q{n} baseline failed: {e}"));
    let oi = s
        .query_with(query(n), &QueryOptions::order_indifferent())
        .unwrap_or_else(|e| panic!("Q{n} order-indifferent failed: {e}"));
    (render(&base.items), render(&oi.items))
}

#[test]
fn all_twenty_queries_agree_as_multisets() {
    let mut s = session();
    for n in 1..=20 {
        let (mut base, mut oi) = run_both(&mut s, n);
        assert_eq!(
            base.len(),
            oi.len(),
            "Q{n}: cardinality differs (baseline {} vs unordered {})",
            base.len(),
            oi.len()
        );
        base.sort();
        oi.sort();
        assert_eq!(base, oi, "Q{n}: result multiset differs");
    }
}

#[test]
fn aggregate_queries_agree_exactly() {
    // Q5, Q6, Q7, Q20 produce order-determined results: the two
    // configurations must agree without sorting.
    let mut s = session();
    for n in [5, 6, 7, 20] {
        let (base, oi) = run_both(&mut s, n);
        assert_eq!(base, oi, "Q{n}: exact results differ");
    }
}

#[test]
fn q1_returns_person0_name() {
    let s = session();
    let out = s.query(query(1)).unwrap();
    assert_eq!(out.items.len(), 1);
    // person0's <name> text: a "First Last" string.
    let name = out.items[0].render();
    assert!(name.contains(' '), "unexpected name {name:?}");
}

#[test]
fn q5_counts_expensive_closed_auctions() {
    let s = session();
    let out = s.query(query(5)).unwrap();
    assert_eq!(out.items.len(), 1);
    let ResultItem::Int(n) = out.items[0] else {
        panic!("Q5 must return an integer, got {:?}", out.items[0]);
    };
    // price ∈ [5, 200) uniform → around 80 % of 24 closed auctions.
    assert!(n > 0 && n <= 24, "implausible Q5 count {n}");
}

#[test]
fn q6_counts_all_items() {
    let s = session();
    let out = s.query(query(6)).unwrap();
    // One count per regions element (exactly one in the document).
    assert_eq!(out.items.len(), 1);
    let cfg = XmarkConfig::at_scale(0.0025);
    assert_eq!(out.items[0], ResultItem::Int(cfg.items() as i64));
}

#[test]
fn q10_produces_one_element_per_category_used() {
    let s = session();
    let out = s.query(query(10)).unwrap();
    assert!(!out.items.is_empty());
    for item in &out.items {
        let x = item.render();
        assert!(x.starts_with("<categorie>"), "bad Q10 item: {x}");
    }
}

#[test]
fn q11_counts_match_a_reference_computation() {
    let s = session();
    let out = s.query(query(11)).unwrap();
    let cfg = XmarkConfig::at_scale(0.0025);
    assert_eq!(out.items.len(), cfg.persons());
    // Each result is <items name="…">N</items>; N must never exceed the
    // number of open auctions.
    for item in &out.items {
        let x = item.render();
        let inner: String = x
            .chars()
            .skip_while(|&c| c != '>')
            .skip(1)
            .take_while(|&c| c != '<')
            .collect();
        let n: i64 = inner.parse().unwrap_or_else(|_| panic!("bad Q11 item {x}"));
        assert!((0..=cfg.open_auctions() as i64).contains(&n));
    }
}

#[test]
fn q17_complements_homepage_presence() {
    let s = session();
    let q17 = s.query(query(17)).unwrap();
    let with_homepage = s
        .query(
            r#"let $auction := doc("auction.xml") return
               fn:count(for $p in $auction/site/people/person
                        where fn:exists($p/homepage/text()) return $p)"#,
        )
        .unwrap();
    let ResultItem::Int(with) = with_homepage.items[0] else {
        panic!()
    };
    let cfg = XmarkConfig::at_scale(0.0025);
    assert_eq!(q17.items.len() + with as usize, cfg.persons());
}

#[test]
fn q19_is_sorted_by_location() {
    let s = session();
    let out = s.query(query(19)).unwrap();
    let cfg = XmarkConfig::at_scale(0.0025);
    assert_eq!(out.items.len(), cfg.items());
    // Extract the location text (element content) and check it ascends.
    let locations: Vec<String> = out
        .items
        .iter()
        .map(|i| {
            let x = i.render();
            x.chars()
                .skip_while(|&c| c != '>')
                .skip(1)
                .take_while(|&c| c != '<')
                .collect()
        })
        .collect();
    let mut sorted = locations.clone();
    sorted.sort();
    assert_eq!(locations, sorted, "Q19 output not sorted by location");
}

#[test]
fn unordered_plans_have_fewer_costly_rownums() {
    let s = session();
    for n in 1..=20 {
        let base = s.prepare(query(n), &QueryOptions::baseline()).unwrap();
        let oi = s
            .prepare(query(n), &QueryOptions::order_indifferent())
            .unwrap();
        let base_rn = exrquy::algebra::stats::costly_rownums(&base.dag, base.root);
        let oi_rn = exrquy::algebra::stats::costly_rownums(&oi.dag, oi.root);
        assert!(
            oi_rn <= base_rn,
            "Q{n}: unordered plan has MORE costly %: {oi_rn} vs {base_rn}"
        );
    }
}
