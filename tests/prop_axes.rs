//! Randomized property tests: staircase join ≡ the naive reference axis
//! semantics on random trees, for every axis and node test. Driven by
//! the in-repo deterministic PRNG (seeded loops stand in for proptest
//! strategies so the suite builds offline).

use exrquy_xml::rng::SmallRng;
use exrquy_xml::{axis, Axis, Document, NamePool, NodeTest, TreeBuilder};

/// A recipe for a random tree: a preorder walk encoded as actions.
#[derive(Debug, Clone)]
enum Action {
    Open(u8),
    Close,
    Attr(u8),
    Text,
    Comment,
}

fn random_actions(rng: &mut SmallRng) -> Vec<Action> {
    let n = rng.gen_range(0usize..60);
    (0..n)
        .map(|_| match rng.gen_range(0..5) {
            0 => Action::Open(rng.gen_range(0u32..6) as u8),
            1 => Action::Close,
            2 => Action::Attr(rng.gen_range(0u32..4) as u8),
            3 => Action::Text,
            _ => Action::Comment,
        })
        .collect()
}

/// Build a well-formed document from an arbitrary action list.
fn build(actions: &[Action], pool: &mut NamePool) -> Document {
    let names: Vec<_> = (0..6).map(|i| pool.intern(&format!("n{i}"))).collect();
    let attrs: Vec<_> = (0..4).map(|i| pool.intern(&format!("a{i}"))).collect();
    let mut b = TreeBuilder::new();
    let root = pool.intern("root");
    b.open_element(root);
    let mut depth = 1;
    let mut can_attr = true;
    // Avoid adjacent text nodes: the XDM merges them, which would break
    // the reparse-length check.
    let mut last_was_text = false;
    for a in actions {
        match a {
            Action::Open(i) => {
                b.open_element(names[*i as usize]);
                depth += 1;
                can_attr = true;
                last_was_text = false;
            }
            Action::Close => {
                if depth > 1 {
                    b.close();
                    depth -= 1;
                    can_attr = false;
                    last_was_text = false;
                }
            }
            Action::Attr(i) => {
                if can_attr {
                    // Attribute names may repeat on one element — the
                    // encoding tolerates it and nothing here validates.
                    b.attribute(attrs[*i as usize], "v");
                }
            }
            Action::Text => {
                if !last_was_text {
                    b.text("t");
                    can_attr = false;
                    last_was_text = true;
                }
            }
            Action::Comment => {
                b.comment("c");
                can_attr = false;
                last_was_text = false;
            }
        }
    }
    while depth > 0 {
        b.close();
        depth -= 1;
    }
    b.finish()
}

const AXES: [Axis; 12] = [
    Axis::Child,
    Axis::Descendant,
    Axis::DescendantOrSelf,
    Axis::SelfAxis,
    Axis::Attribute,
    Axis::Parent,
    Axis::Ancestor,
    Axis::AncestorOrSelf,
    Axis::FollowingSibling,
    Axis::PrecedingSibling,
    Axis::Following,
    Axis::Preceding,
];

#[test]
fn staircase_equals_naive() {
    let mut rng = SmallRng::seed_from_u64(0xA7E5);
    for _case in 0..64 {
        let acts = random_actions(&mut rng);
        let mut pool = NamePool::new();
        let doc = build(&acts, &mut pool);
        assert!(doc.check_invariants().is_ok());
        // Context: random subset of all nodes.
        let ctx: Vec<u32> = (0..doc.len() as u32)
            .filter(|_| rng.gen_bool(0.5))
            .collect();
        let tests = [
            NodeTest::AnyKind,
            NodeTest::Wildcard,
            NodeTest::Name(pool.intern("n1")),
            NodeTest::Name(pool.intern("a1")),
            NodeTest::Text,
            NodeTest::Comment,
            NodeTest::Element,
            NodeTest::DocumentNode,
        ];
        for &ax in &AXES {
            for &t in &tests {
                let fast = axis::step(&doc, &ctx, ax, t);
                let slow = axis::naive(&doc, &ctx, ax, t);
                assert_eq!(
                    &fast,
                    &slow,
                    "axis {:?} test {:?} ctx {:?}\n{}",
                    ax,
                    t,
                    &ctx,
                    doc.dump(&pool)
                );
                // Results are sorted & duplicate-free.
                assert!(fast.windows(2).all(|w| w[0] < w[1]));
                // The TwigStack-style name-stream algorithm agrees too.
                let streamed = axis::step_name_stream(&doc, &ctx, ax, t);
                assert_eq!(
                    &streamed, &slow,
                    "name-stream axis {:?} test {:?} ctx {:?}",
                    ax, t, &ctx
                );
            }
        }
    }
}

#[test]
fn subtree_copy_preserves_structure() {
    let mut rng = SmallRng::seed_from_u64(0xC0B1);
    for _case in 0..64 {
        let acts = random_actions(&mut rng);
        let mut pool = NamePool::new();
        let doc = build(&acts, &mut pool);
        // Copy the whole root into a fresh builder and compare serialized
        // forms (deep copy is what constructors rely on).
        let mut b = TreeBuilder::new();
        b.copy_subtree(&doc, 0);
        let copy = b.finish();
        assert!(copy.check_invariants().is_ok());
        let mut s1 = String::new();
        let mut s2 = String::new();
        exrquy_xml::serialize::serialize_subtree(&doc, 0, &pool, &mut s1);
        exrquy_xml::serialize::serialize_subtree(&copy, 0, &pool, &mut s2);
        assert_eq!(s1, s2);
    }
}

#[test]
fn parse_serialize_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(0x51DE);
    for _case in 0..64 {
        let acts = random_actions(&mut rng);
        let mut pool = NamePool::new();
        let doc = build(&acts, &mut pool);
        let mut xml = String::new();
        exrquy_xml::serialize::serialize_subtree(&doc, 0, &pool, &mut xml);
        let mut pool2 = NamePool::new();
        let reparsed = exrquy_xml::parse_document(&xml, &mut pool2).unwrap();
        // Reparsed adds a document node at pre 0.
        assert_eq!(reparsed.len(), doc.len() + 1);
        let mut xml2 = String::new();
        exrquy_xml::serialize::serialize_subtree(&reparsed, 0, &pool2, &mut xml2);
        assert_eq!(xml, xml2);
    }
}
