//! Property tests: staircase join ≡ the naive reference axis semantics on
//! random trees, for every axis and node test.

use exrquy_xml::{axis, Axis, Document, NamePool, NodeTest, TreeBuilder};
use proptest::prelude::*;

/// A recipe for a random tree: a preorder walk encoded as actions.
#[derive(Debug, Clone)]
enum Action {
    Open(u8),
    Close,
    Attr(u8),
    Text,
    Comment,
}

fn actions() -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..6).prop_map(Action::Open),
            Just(Action::Close),
            (0u8..4).prop_map(Action::Attr),
            Just(Action::Text),
            Just(Action::Comment),
        ],
        0..60,
    )
}

/// Build a well-formed document from an arbitrary action list.
fn build(actions: &[Action], pool: &mut NamePool) -> Document {
    let names: Vec<_> = (0..6).map(|i| pool.intern(&format!("n{i}"))).collect();
    let attrs: Vec<_> = (0..4).map(|i| pool.intern(&format!("a{i}"))).collect();
    let mut b = TreeBuilder::new();
    let root = pool.intern("root");
    b.open_element(root);
    let mut depth = 1;
    let mut can_attr = true;
    // Avoid adjacent text nodes: the XDM merges them, which would break
    // the reparse-length check.
    let mut last_was_text = false;
    for a in actions {
        match a {
            Action::Open(i) => {
                b.open_element(names[*i as usize]);
                depth += 1;
                can_attr = true;
                last_was_text = false;
            }
            Action::Close => {
                if depth > 1 {
                    b.close();
                    depth -= 1;
                    can_attr = false;
                    last_was_text = false;
                }
            }
            Action::Attr(i) => {
                if can_attr {
                    // Attribute names may repeat on one element — the
                    // encoding tolerates it and nothing here validates.
                    b.attribute(attrs[*i as usize], "v");
                }
            }
            Action::Text => {
                if !last_was_text {
                    b.text("t");
                    can_attr = false;
                    last_was_text = true;
                }
            }
            Action::Comment => {
                b.comment("c");
                can_attr = false;
                last_was_text = false;
            }
        }
    }
    while depth > 0 {
        b.close();
        depth -= 1;
    }
    b.finish()
}

const AXES: [Axis; 12] = [
    Axis::Child,
    Axis::Descendant,
    Axis::DescendantOrSelf,
    Axis::SelfAxis,
    Axis::Attribute,
    Axis::Parent,
    Axis::Ancestor,
    Axis::AncestorOrSelf,
    Axis::FollowingSibling,
    Axis::PrecedingSibling,
    Axis::Following,
    Axis::Preceding,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn staircase_equals_naive(acts in actions(), ctx_mask in prop::collection::vec(any::<bool>(), 61)) {
        let mut pool = NamePool::new();
        let doc = build(&acts, &mut pool);
        prop_assert!(doc.check_invariants().is_ok());
        // Context: masked subset of all nodes.
        let ctx: Vec<u32> = (0..doc.len() as u32)
            .filter(|&p| ctx_mask.get(p as usize).copied().unwrap_or(false))
            .collect();
        let tests = [
            NodeTest::AnyKind,
            NodeTest::Wildcard,
            NodeTest::Name(pool.intern("n1")),
            NodeTest::Name(pool.intern("a1")),
            NodeTest::Text,
            NodeTest::Comment,
            NodeTest::Element,
            NodeTest::DocumentNode,
        ];
        for &ax in &AXES {
            for &t in &tests {
                let fast = axis::step(&doc, &ctx, ax, t);
                let slow = axis::naive(&doc, &ctx, ax, t);
                prop_assert_eq!(
                    &fast, &slow,
                    "axis {:?} test {:?} ctx {:?}\n{}",
                    ax, t, &ctx, doc.dump(&pool)
                );
                // Results are sorted & duplicate-free.
                prop_assert!(fast.windows(2).all(|w| w[0] < w[1]));
                // The TwigStack-style name-stream algorithm agrees too.
                let streamed = axis::step_name_stream(&doc, &ctx, ax, t);
                prop_assert_eq!(
                    &streamed, &slow,
                    "name-stream axis {:?} test {:?} ctx {:?}",
                    ax, t, &ctx
                );
            }
        }
    }

    #[test]
    fn subtree_copy_preserves_structure(acts in actions()) {
        let mut pool = NamePool::new();
        let doc = build(&acts, &mut pool);
        // Copy the whole root into a fresh builder and compare serialized
        // forms (deep copy is what constructors rely on).
        let mut b = TreeBuilder::new();
        b.copy_subtree(&doc, 0);
        let copy = b.finish();
        prop_assert!(copy.check_invariants().is_ok());
        let mut s1 = String::new();
        let mut s2 = String::new();
        exrquy_xml::serialize::serialize_subtree(&doc, 0, &pool, &mut s1);
        exrquy_xml::serialize::serialize_subtree(&copy, 0, &pool, &mut s2);
        prop_assert_eq!(s1, s2);
    }

    #[test]
    fn parse_serialize_roundtrip(acts in actions()) {
        let mut pool = NamePool::new();
        let doc = build(&acts, &mut pool);
        let mut xml = String::new();
        exrquy_xml::serialize::serialize_subtree(&doc, 0, &pool, &mut xml);
        let mut pool2 = NamePool::new();
        let reparsed = exrquy_xml::parse_document(&xml, &mut pool2).unwrap();
        // Reparsed adds a document node at pre 0.
        prop_assert_eq!(reparsed.len(), doc.len() + 1);
        let mut xml2 = String::new();
        exrquy_xml::serialize::serialize_subtree(&reparsed, 0, &pool2, &mut xml2);
        prop_assert_eq!(xml, xml2);
    }
}
