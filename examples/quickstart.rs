//! Quickstart: load a document, run queries, inspect results and plans.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use exrquy::{QueryOptions, Session};

fn main() {
    let mut session = Session::new();

    // A small bibliography document.
    session
        .load_document(
            "bib.xml",
            r#"<bib>
                 <book year="1994"><title>TCP/IP Illustrated</title>
                   <author>Stevens</author><price>65.95</price></book>
                 <book year="2000"><title>Data on the Web</title>
                   <author>Abiteboul</author><author>Buneman</author>
                   <author>Suciu</author><price>39.95</price></book>
                 <book year="1999"><title>The Economics of Technology</title>
                   <author>Gerbarg</author><price>129.95</price></book>
               </bib>"#,
        )
        .expect("document parses");

    // 1. Paths and predicates.
    let out = session
        .query(r#"doc("bib.xml")/bib/book[@year > 1995]/title/text()"#)
        .unwrap();
    println!("titles after 1995: {}", out.to_xml());

    // 2. FLWOR with constructors.
    let out = session
        .query(
            r#"for $b in doc("bib.xml")/bib/book
               where $b/price < 100
               order by $b/title
               return <cheap title="{ $b/title/text() }">{ $b/price/text() }</cheap>"#,
        )
        .unwrap();
    println!("cheap books:       {}", out.to_xml());

    // 3. Aggregates and quantifiers.
    let out = session
        .query(r#"fn:count(doc("bib.xml")//author)"#)
        .unwrap();
    println!("author count:      {}", out.to_xml());
    let out = session
        .query(
            r#"some $b in doc("bib.xml")//book
               satisfies fn:count($b/author) >= 3"#,
        )
        .unwrap();
    println!("a 3-author book?   {}", out.to_xml());

    // 4. Plans: the same query under the paper's two compiler
    //    configurations.
    let q = r#"fn:count(doc("bib.xml")//book/author)"#;
    let baseline = session.prepare(q, &QueryOptions::baseline()).unwrap();
    let enabled = session
        .prepare(q, &QueryOptions::order_indifferent())
        .unwrap();
    println!(
        "\nplan, order-aware baseline:      {}",
        baseline.stats_final
    );
    println!("plan, order indifference on:     {}", enabled.stats_final);
    println!("\norder-indifferent plan:\n{}", enabled.plan_text());
}
