//! Generate an XMark auction document, run benchmark queries against it,
//! and compare the two compiler configurations.
//!
//! ```sh
//! cargo run --release --example xmark_explore -- [scale]
//! ```

use exrquy::{QueryOptions, Session};
use exrquy_xmark::{generate, query, query_name, XmarkConfig};
use std::time::Instant;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.005);
    let cfg = XmarkConfig::at_scale(scale);
    print!("generating XMark instance at scale {scale}… ");
    let xml = generate(&cfg);
    println!(
        "{:.2} MB, {} persons, {} items, {} open auctions",
        xml.len() as f64 / 1e6,
        cfg.persons(),
        cfg.items(),
        cfg.open_auctions()
    );

    let mut session = Session::new();
    session.load_document("auction.xml", &xml).unwrap();
    println!("loaded: {} nodes\n", session.store_nodes());

    for n in [1usize, 2, 5, 6, 8, 11, 14, 17, 19, 20] {
        let q = query(n);
        let started = Instant::now();
        let base = session.query_with(q, &QueryOptions::baseline()).unwrap();
        let t_base = started.elapsed();
        let started = Instant::now();
        let oi = session
            .query_with(q, &QueryOptions::order_indifferent())
            .unwrap();
        let t_oi = started.elapsed();
        let preview = {
            let x = oi.to_xml();
            let p: String = x.chars().take(48).collect();
            if x.len() > 48 {
                format!("{p}…")
            } else {
                p
            }
        };
        println!(
            "{:>4}: {:>5} items | baseline {:>8.2} ms | unordered {:>8.2} ms | {}",
            query_name(n),
            base.items.len(),
            t_base.as_secs_f64() * 1e3,
            t_oi.as_secs_f64() * 1e3,
            preview
        );
        assert_eq!(base.items.len(), oi.items.len(), "cardinality must agree");
    }
}
