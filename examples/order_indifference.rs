//! The paper's §1 walk-through: `unordered { $t//(c|d) }` trades the
//! document-order-aware node-set union `|` for a cheap sequence
//! concatenation `,`.
//!
//! ```sh
//! cargo run --example order_indifference
//! ```

use exrquy::{QueryOptions, Session};
use exrquy_algebra::stats::costly_rownums;
use exrquy_opt::OptOptions;

fn main() {
    let mut session = Session::new();
    // Figure 1's fragment.
    session
        .load_document("t.xml", "<a><b><c/><d/></b><c/></a>")
        .unwrap();

    let ordered_q = r#"let $t := doc("t.xml")/a return $t//(c|d)"#;
    let unordered_q = r#"let $t := doc("t.xml")/a return unordered { $t//(c|d) }"#;

    // Expression (1): document order.
    let out = session
        .query_with(ordered_q, &QueryOptions::baseline())
        .unwrap();
    println!("$t//(c|d)                (ordered):   {}", out.to_xml());

    // Expression (2)'s effect: any order admissible under unordered { }.
    let out = session
        .query_with(unordered_q, &QueryOptions::order_indifferent())
        .unwrap();
    println!("unordered {{ $t//(c|d) }} (unordered): {}", out.to_xml());

    // Figure 10, left: the unordered plan before column dependency
    // analysis still carries the % operators…
    let mut no_cda = QueryOptions::order_indifferent();
    no_cda.opt = OptOptions::disabled();
    let before = session.prepare(unordered_q, &no_cda).unwrap();

    // …and right: after the analysis all of them are gone — ‘|’ became ‘,’.
    let after = session
        .prepare(unordered_q, &QueryOptions::order_indifferent())
        .unwrap();
    let baseline = session
        .prepare(ordered_q, &QueryOptions::baseline())
        .unwrap();

    println!("\n                       ops  costly-%  #");
    for (label, plan) in [
        ("ordered baseline    ", &baseline),
        ("unordered, pre-CDA  ", &before),
        ("unordered, post-CDA ", &after),
    ] {
        println!(
            "{label} {:>4}  {:>8}  {}",
            plan.stats_final.total,
            costly_rownums(&plan.dag, plan.root),
            plan.stats_final.rowids()
        );
    }

    println!("\nfinal plan (Figure 10, right — ∪̇ of bare steps, no %):");
    println!("{}", after.plan_text());
}
