//! Compile an arbitrary query (from the command line) and print its plan
//! under both compiler configurations — a debugging lens into the paper's
//! machinery.
//!
//! ```sh
//! cargo run --example plan_viewer -- 'fn:count(doc("auction.xml")//item)'
//! ```

use exrquy::{QueryOptions, Session};
use exrquy_opt::OptOptions;

fn main() {
    let query = std::env::args()
        .nth(1)
        .unwrap_or_else(|| r#"fn:count(doc("auction.xml")//item)"#.to_string());

    let mut session = Session::new();
    // Compilation only needs the document registry name to exist lazily;
    // load a stub so the query also runs.
    session
        .load_document("auction.xml", "<site><item/><item/></site>")
        .unwrap();

    println!("query:\n  {query}\n");

    let configs = [
        ("order-aware baseline (LOC/BIND, no analysis)", {
            QueryOptions::baseline()
        }),
        ("unordered, before analysis (LOC#/BIND#)", {
            let mut o = QueryOptions::order_indifferent();
            o.opt = OptOptions::disabled();
            o
        }),
        (
            "unordered, after column dependency analysis",
            QueryOptions::order_indifferent(),
        ),
    ];

    for (label, opts) in configs {
        match session.prepare(&query, &opts) {
            Ok(plan) => {
                println!("== {label} ==");
                println!("   {}", plan.stats_final);
                println!("{}", plan.plan_text());
            }
            Err(e) => {
                eprintln!("{label}: {e}");
                std::process::exit(1);
            }
        }
    }

    match session.query(&query) {
        Ok(out) => println!("result: {}", out.to_xml()),
        Err(e) => println!("execution failed: {e}"),
    }
}
