//! "XQuery on SQL Hosts": show a query's SQL:1999 translation under both
//! compiler configurations — the `%` ⇒ `ROW_NUMBER() OVER (…)` mapping
//! the paper's Table 1 is built around.
//!
//! ```sh
//! cargo run --example sql_hosts
//! ```

use exrquy::{QueryOptions, Session};

fn main() {
    let mut session = Session::new();
    session
        .load_document("t.xml", "<a><b><c/><d/></b><c/></a>")
        .unwrap();

    let query = r#"fn:count(doc("t.xml")//c)"#;
    println!("query:\n  {query}\n");

    let baseline = session.prepare(query, &QueryOptions::baseline()).unwrap();
    println!("== order-aware baseline ==");
    println!("{}\n", baseline.to_sql());
    println!(
        "note the sorting window function{}:\n",
        if baseline
            .to_sql()
            .contains("ROW_NUMBER() OVER (PARTITION BY")
        {
            " ROW_NUMBER() OVER (PARTITION BY iter ORDER BY item)"
        } else {
            "s"
        }
    );

    let enabled = session
        .prepare(query, &QueryOptions::order_indifferent())
        .unwrap();
    println!("== order indifference enabled ==");
    println!("{}\n", enabled.to_sql());
    println!(
        "after normalization (Rule FN:COUNT), Rule FN:UNORDERED and column\n\
         dependency analysis, no ORDER BY window remains — the aggregate\n\
         consumes an unordered table, exactly the paper's point."
    );
    assert!(
        !enabled
            .to_sql()
            .contains("OVER (PARTITION BY iter ORDER BY item)"),
        "unexpected sorting window in the order-indifferent plan"
    );
}
