//! Workspace umbrella for the eXrQuy reproduction.
//!
//! This package hosts the cross-crate integration tests (`tests/`,
//! including the data-driven conformance corpus in `tests/cases/`) and
//! the runnable examples (`examples/`); the library surface simply
//! re-exports the [`exrquy`] facade crate.
//!
//! Start at [`exrquy::Session`] for the API, `README.md` for the project
//! overview, `DESIGN.md` for the system inventory, and `EXPERIMENTS.md`
//! for the paper-vs-measured evaluation.

pub use exrquy::*;
