//! Structural tests of the SQL emission: the Table 1 ↔ SQL:1999
//! correspondences the paper calls out must be visible in the output.

use crate::{to_sql, SqlOptions};
use exrquy_algebra::{AValue, Col, Dag, Op, OpId, SortKey};
use exrquy_compiler::Compiler;
use exrquy_frontend::{normalize_opts, parse_module, OrderingMode};
use exrquy_opt::{optimize, OptOptions};
use exrquy_xml::Catalog;

fn compile_to_sql(q: &str, unordered: bool) -> String {
    let mut m = parse_module(q).unwrap();
    m.ordering = if unordered {
        OrderingMode::Unordered
    } else {
        OrderingMode::Ordered
    };
    let m = normalize_opts(&m, unordered);
    let catalog = Catalog::new();
    let plan = Compiler::new(&catalog).compile_module(&m).unwrap();
    let mut dag = plan.dag;
    let root = if unordered {
        optimize(&mut dag, plan.root, &OptOptions::default()).0
    } else {
        plan.root
    };
    to_sql(&dag, root, &SqlOptions::default())
}

#[test]
fn rownum_maps_to_partitioned_row_number() {
    // Rule LOC's % pos:⟨item⟩‖iter — the paper's "exactly mimics
    // ROW_NUMBER() OVER (PARTITION BY c ORDER BY b)".
    let sql = compile_to_sql(r#"doc("a.xml")/site"#, false);
    assert!(
        sql.contains("ROW_NUMBER() OVER (PARTITION BY iter ORDER BY item) AS pos"),
        "{sql}"
    );
}

#[test]
fn rowid_maps_to_orderless_row_number() {
    // Rule LOC#'s # pos — a free ROW_NUMBER() OVER ().
    let sql = compile_to_sql(r#"doc("a.xml")/site"#, true);
    assert!(sql.contains("ROW_NUMBER() OVER () AS pos"), "{sql}");
    assert!(
        !sql.contains("PARTITION BY iter ORDER BY item"),
        "unordered plan still sorts: {sql}"
    );
}

#[test]
fn steps_emit_staircase_predicates() {
    let sql = compile_to_sql(r#"doc("a.xml")//item"#, false);
    // descendant window arithmetic + name test
    assert!(
        sql.contains("d.pre > v.pre AND d.pre <= v.pre + v.size")
            || sql.contains("d.pre >= v.pre AND d.pre <= v.pre + v.size"),
        "{sql}"
    );
    assert!(sql.contains("d.kind = 'elem' AND d.name ="), "{sql}");
    assert!(sql.contains("FROM doc_nodes d"), "{sql}");
}

#[test]
fn aggregates_emit_group_by() {
    let sql = compile_to_sql(
        r#"for $x in doc("a.xml")//item return fn:count($x/bold)"#,
        true,
    );
    assert!(sql.contains("COUNT(*)"), "{sql}");
    assert!(sql.contains("GROUP BY iter"), "{sql}");
}

#[test]
fn whole_query_is_one_with_chain() {
    let sql = compile_to_sql(r#"fn:count(doc("a.xml")//item)"#, true);
    assert!(sql.starts_with("WITH\n"), "{sql}");
    assert!(sql.trim_end().ends_with("ORDER BY pos"), "{sql}");
    // Every CTE reference resolves (opN AS … precedes any FROM opN).
    for (i, _) in sql.match_indices("FROM op") {
        let rest = &sql[i + 5..];
        let name: String = rest
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric())
            .collect();
        assert!(
            sql.find(&format!("{name} AS (")).unwrap() < i,
            "forward reference to {name}"
        );
    }
}

#[test]
fn theta_join_emits_inequality_join() {
    let sql = compile_to_sql(
        r#"let $auction := doc("auction.xml")
           for $p in $auction/site/people/person
           let $l := for $i in $auction/site/open_auctions/open_auction/initial
                     where $p/profile/@income > 5000 * $i
                     return $i
           return fn:count($l)"#,
        true,
    );
    assert!(
        sql.contains("JOIN") && sql.contains("ON l.item1 > r.item2"),
        "{sql}"
    );
}

#[test]
fn literals_and_unions() {
    let mut dag = Dag::new();
    let a = dag.add(Op::Lit {
        cols: vec![Col::ITER, Col::ITEM],
        rows: vec![
            vec![AValue::Int(1), AValue::str("x")],
            vec![AValue::Int(2), AValue::str("it's")],
        ],
    });
    let b = dag.add(Op::Lit {
        cols: vec![Col::ITER, Col::ITEM],
        rows: vec![],
    });
    let u = dag.add(Op::Union { l: a, r: b });
    let rn = dag.add(Op::RowNum {
        input: u,
        new: Col::POS,
        order: vec![SortKey::asc(Col::ITER)],
        part: None,
    });
    let root = dag.add(Op::Serialize { input: rn });
    let sql = to_sql(&dag, root, &SqlOptions::default());
    assert!(sql.contains("SELECT 1 AS iter, 'x' AS item"), "{sql}");
    assert!(sql.contains("'it''s'"), "string quoting: {sql}");
    assert!(sql.contains("WHERE 1 = 0"), "empty literal: {sql}");
    assert!(sql.contains("UNION ALL"), "{sql}");
    assert!(sql.contains("ROW_NUMBER() OVER (ORDER BY iter)"), "{sql}");
}

#[test]
fn difference_emits_anti_join() {
    let mut dag = Dag::new();
    let a = dag.add(Op::Lit {
        cols: vec![Col::ITER, Col::POS, Col::ITEM],
        rows: vec![],
    });
    let b = dag.add(Op::Lit {
        cols: vec![Col::ITER1],
        rows: vec![],
    });
    let d = dag.add(Op::Difference {
        l: a,
        r: b,
        on: vec![(Col::ITER, Col::ITER1)],
    });
    let root = dag.add(Op::Serialize { input: d });
    let sql = to_sql(&dag, root, &SqlOptions::default());
    assert!(sql.contains("NOT EXISTS"), "{sql}");
    assert!(sql.contains("r.iter1 = l.iter"), "{sql}");
}

fn roots_of(dag: &Dag, root: OpId) -> usize {
    dag.reachable(root).len()
}

#[test]
fn cte_count_matches_plan_size() {
    let mut m = parse_module(r#"fn:count(doc("a.xml")//x)"#).unwrap();
    m.ordering = OrderingMode::Unordered;
    let m = normalize_opts(&m, true);
    let catalog = Catalog::new();
    let plan = Compiler::new(&catalog).compile_module(&m).unwrap();
    let mut dag = plan.dag;
    let (root, _) = optimize(&mut dag, plan.root, &OptOptions::default());
    let sql = to_sql(&dag, root, &SqlOptions::default());
    let ctes = sql.matches(" AS (").count();
    assert_eq!(ctes, roots_of(&dag, root), "{sql}");
}
