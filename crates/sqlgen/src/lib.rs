//! SQL:1999 emission for algebra plans — the "XQuery on SQL Hosts"
//! mapping \[Grust, Sakr, Teubner, VLDB 2004\] the paper builds on.
//!
//! The paper's Table 1 stresses that the algebra dialect was "guided by
//! the processing capabilities of SQL-centric relational database
//! kernels": in particular, `% a:⟨b⟩‖c` *exactly mimics*
//! `ROW_NUMBER() OVER (PARTITION BY c ORDER BY b) AS a` of the SQL:1999
//! OLAP amendment, and `# a` corresponds to a free
//! `ROW_NUMBER() OVER ()` (or the kernel's hidden ROWID). This crate
//! makes that mapping concrete by translating any plan DAG into one SQL
//! query: a `WITH` chain with one common table expression per operator.
//!
//! ## Target schema
//!
//! The encoded documents (paper Fig. 5) are assumed shredded into
//!
//! ```sql
//! CREATE TABLE doc_nodes (
//!   url    TEXT,     -- fn:doc() URL
//!   pre    INTEGER,  -- preorder rank (the node identifier)
//!   size   INTEGER,  -- subtree size
//!   level  INTEGER,  -- depth
//!   parent INTEGER,  -- preorder rank of the parent (NULL for roots)
//!   kind   TEXT,     -- 'doc' | 'elem' | 'attr' | 'text' | 'comment' | 'pi'
//!   name   TEXT,     -- tag / attribute name (NULL otherwise)
//!   value  TEXT      -- text / attribute content (NULL otherwise)
//! );
//! ```
//!
//! XPath steps translate to the pre/size/level predicates of staircase
//! join \[12\] over this table. A handful of XQuery-specific scalar
//! operations (node string value, node construction) emit calls to
//! documented UDFs (`xq_string_value`, `xq_element`, …) — exactly the
//! pieces MonetDB/XQuery also realized with dedicated kernel extensions.
//!
//! The emitted SQL is *not executed* in this repository (our engine
//! evaluates plans natively); the generator is validated structurally by
//! its test suite and serves as the bridge documentation between the
//! plans in `exrquy-algebra` and a SQL host.

use exrquy_algebra::{AValue, AggrKind, Col, Dag, FunKind, Op, OpId, SortKey};
use exrquy_xml::{Axis, NameId, NamePool, NodeTest};
use std::fmt::Write;
use std::sync::Arc;

/// Options for SQL emission.
#[derive(Debug, Clone)]
pub struct SqlOptions {
    /// Interned node-test names (the plan's frozen pool snapshot, shared —
    /// not copied — with the prepared plan); ids beyond the pool render as
    /// `name_<id>`.
    pub names: Arc<NamePool>,
    /// Pretty line breaks between CTEs (default on).
    pub pretty: bool,
}

impl Default for SqlOptions {
    fn default() -> Self {
        SqlOptions {
            names: Arc::new(NamePool::new()),
            pretty: true,
        }
    }
}

impl SqlOptions {
    fn resolve(&self, id: NameId) -> String {
        self.names
            .get(id)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("name_{}", id.0))
    }
}

/// Translate the plan rooted at `root` into one SQL query.
pub fn to_sql(dag: &Dag, root: OpId, opts: &SqlOptions) -> String {
    let order = dag.topo_order(root);
    let mut ctes: Vec<(String, String)> = Vec::new();
    for id in &order {
        let body = emit_op(dag, *id, opts);
        ctes.push((cte_name(*id), body));
    }
    let sep = if opts.pretty { ",\n  " } else { ", " };
    let mut sql = String::from("WITH\n  ");
    sql.push_str(
        &ctes
            .iter()
            .map(|(n, b)| format!("{n} AS ({b})"))
            .collect::<Vec<_>>()
            .join(sep),
    );
    let _ = write!(sql, "\nSELECT * FROM {} ORDER BY pos", cte_name(root));
    sql
}

fn cte_name(id: OpId) -> String {
    format!("op{}", id.0)
}

fn ident(c: Col) -> String {
    // Col names are already valid lowercase identifiers (iter, pos, c42…).
    c.name()
}

fn literal(v: &AValue) -> String {
    match v {
        AValue::Int(i) => i.to_string(),
        AValue::Dbl(b) => {
            let f = f64::from_bits(*b);
            if f.is_finite() {
                format!("{f:?}")
            } else {
                "NULL /* non-finite */".into()
            }
        }
        AValue::Str(s) => format!("'{}'", s.replace('\'', "''")),
        AValue::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
    }
}

fn order_by(order: &[SortKey]) -> String {
    order
        .iter()
        .map(|k| {
            if k.desc {
                format!("{} DESC", ident(k.col))
            } else {
                ident(k.col)
            }
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn fun_expr(kind: FunKind, args: &[Col]) -> String {
    let a = |i: usize| ident(args[i]);
    match kind {
        FunKind::Add => format!("({} + {})", a(0), a(1)),
        FunKind::Sub => format!("({} - {})", a(0), a(1)),
        FunKind::Mul => format!("({} * {})", a(0), a(1)),
        FunKind::Div => format!("({} / {})", a(0), a(1)),
        FunKind::IDiv => format!("CAST({} / {} AS INTEGER)", a(0), a(1)),
        FunKind::Mod => format!("MOD({}, {})", a(0), a(1)),
        FunKind::UnaryMinus => format!("(-{})", a(0)),
        FunKind::Eq => format!("({} = {})", a(0), a(1)),
        FunKind::Ne => format!("({} <> {})", a(0), a(1)),
        FunKind::Lt => format!("({} < {})", a(0), a(1)),
        FunKind::Le => format!("({} <= {})", a(0), a(1)),
        FunKind::Gt => format!("({} > {})", a(0), a(1)),
        FunKind::Ge => format!("({} >= {})", a(0), a(1)),
        FunKind::And => format!("({} AND {})", a(0), a(1)),
        FunKind::Or => format!("({} OR {})", a(0), a(1)),
        FunKind::Not => format!("(NOT {})", a(0)),
        FunKind::Concat => {
            let parts: Vec<String> = args.iter().map(|&c| ident(c)).collect();
            format!("({})", parts.join(" || "))
        }
        FunKind::Contains => format!("(POSITION({} IN {}) > 0)", a(1), a(0)),
        FunKind::StartsWith => {
            format!(
                "(SUBSTRING({} FROM 1 FOR CHAR_LENGTH({})) = {})",
                a(0),
                a(1),
                a(1)
            )
        }
        FunKind::EndsWith => format!("xq_ends_with({}, {})", a(0), a(1)),
        FunKind::StringLength => format!("CHAR_LENGTH({})", a(0)),
        FunKind::Substring2 => format!("SUBSTRING({} FROM {})", a(0), a(1)),
        FunKind::Substring3 => format!("SUBSTRING({} FROM {} FOR {})", a(0), a(1), a(2)),
        FunKind::UpperCase => format!("UPPER({})", a(0)),
        FunKind::LowerCase => format!("LOWER({})", a(0)),
        FunKind::Translate => format!("TRANSLATE({}, {}, {})", a(0), a(1), a(2)),
        FunKind::NormalizeSpace => format!("xq_normalize_space({})", a(0)),
        FunKind::SubstringBefore => format!("xq_substring_before({}, {})", a(0), a(1)),
        FunKind::SubstringAfter => format!("xq_substring_after({}, {})", a(0), a(1)),
        FunKind::StringJoinSep => format!("({} || {})", a(0), a(1)),
        FunKind::Atomize => format!("xq_string_value({})", a(0)),
        FunKind::ToNum => format!("CAST(xq_string_value({}) AS DOUBLE PRECISION)", a(0)),
        FunKind::ToStr => format!("CAST({} AS TEXT)", a(0)),
        FunKind::NameOf => format!("xq_node_name({})", a(0)),
        FunKind::ItemEbv => format!("xq_ebv({})", a(0)),
        FunKind::NodeBefore => format!("({} < {})", a(0), a(1)),
        FunKind::NodeAfter => format!("({} > {})", a(0), a(1)),
        FunKind::NodeIs => format!("({} = {})", a(0), a(1)),
        FunKind::Round => format!("ROUND({})", a(0)),
        FunKind::Floor => format!("FLOOR({})", a(0)),
        FunKind::Ceiling => format!("CEILING({})", a(0)),
        FunKind::Abs => format!("ABS({})", a(0)),
    }
}

fn aggr_expr(kind: AggrKind, arg: Option<Col>) -> String {
    match (kind, arg) {
        (AggrKind::Count, _) => "COUNT(*)".into(),
        (AggrKind::Sum, Some(a)) => format!("SUM({})", ident(a)),
        (AggrKind::Avg, Some(a)) => format!("AVG({})", ident(a)),
        (AggrKind::Max, Some(a)) => format!("MAX({})", ident(a)),
        (AggrKind::Min, Some(a)) => format!("MIN({})", ident(a)),
        (AggrKind::Any, Some(a)) => format!("BOOL_OR({})", ident(a)),
        (AggrKind::All, Some(a)) => format!("BOOL_AND({})", ident(a)),
        (AggrKind::Ebv, Some(a)) => format!("xq_ebv_agg({})", ident(a)),
        (AggrKind::StrJoin, Some(a)) => {
            format!("STRING_AGG({}, ' ' ORDER BY pos)", ident(a))
        }
        (k, None) => format!("/* aggregate {k:?} without argument */ NULL"),
    }
}

/// Axis → SQL predicate between context node `v` and candidate `d`
/// (columns of two `doc_nodes` aliases). Pre/size/level arithmetic of
/// staircase join \[12\].
fn axis_predicate(axis: Axis) -> &'static str {
    match axis {
        Axis::Child => "d.parent = v.pre",
        Axis::Descendant => "d.pre > v.pre AND d.pre <= v.pre + v.size",
        Axis::DescendantOrSelf => "d.pre >= v.pre AND d.pre <= v.pre + v.size",
        Axis::SelfAxis => "d.pre = v.pre",
        Axis::Attribute => "d.parent = v.pre",
        Axis::Parent => "v.parent = d.pre",
        Axis::Ancestor => "v.pre > d.pre AND v.pre <= d.pre + d.size",
        Axis::AncestorOrSelf => "v.pre >= d.pre AND v.pre <= d.pre + d.size",
        Axis::FollowingSibling => "d.parent = v.parent AND d.pre > v.pre",
        Axis::PrecedingSibling => "d.parent = v.parent AND d.pre < v.pre",
        Axis::Following => "d.pre > v.pre + v.size",
        Axis::Preceding => "d.pre + d.size < v.pre",
    }
}

fn test_predicate(axis: Axis, test: NodeTest, opts: &SqlOptions) -> String {
    let principal = if axis == Axis::Attribute {
        "attr"
    } else {
        "elem"
    };
    match test {
        NodeTest::AnyKind => {
            if axis == Axis::Attribute {
                "d.kind = 'attr'".into()
            } else {
                "d.kind <> 'attr'".into()
            }
        }
        NodeTest::Wildcard => format!("d.kind = '{principal}'"),
        NodeTest::Name(n) => format!(
            "d.kind = '{principal}' AND d.name = '{}'",
            opts.resolve(n).replace('\'', "''")
        ),
        NodeTest::Text => "d.kind = 'text'".into(),
        NodeTest::Comment => "d.kind = 'comment'".into(),
        NodeTest::Pi(None) => "d.kind = 'pi'".into(),
        NodeTest::Pi(Some(t)) => format!(
            "d.kind = 'pi' AND d.name = '{}'",
            opts.resolve(t).replace('\'', "''")
        ),
        NodeTest::DocumentNode => "d.kind = 'doc'".into(),
        NodeTest::Element => "d.kind = 'elem'".into(),
    }
}

fn select_list(cols: &[Col], from: &str) -> String {
    cols.iter()
        .map(|c| format!("{from}.{}", ident(*c)))
        .collect::<Vec<_>>()
        .join(", ")
}

fn emit_op(dag: &Dag, id: OpId, opts: &SqlOptions) -> String {
    let op = dag.op(id);
    match op {
        Op::Lit { cols, rows } => {
            if rows.is_empty() {
                let list = cols
                    .iter()
                    .map(|c| format!("NULL AS {}", ident(*c)))
                    .collect::<Vec<_>>()
                    .join(", ");
                return format!("SELECT {list} WHERE 1 = 0");
            }
            rows.iter()
                .map(|row| {
                    let list = row
                        .iter()
                        .zip(cols)
                        .map(|(v, c)| format!("{} AS {}", literal(v), ident(*c)))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("SELECT {list}")
                })
                .collect::<Vec<_>>()
                .join(" UNION ALL ")
        }
        Op::Doc { url } => format!(
            "SELECT d.pre AS item FROM doc_nodes d \
             WHERE d.url = '{}' AND d.kind = 'doc'",
            url.replace('\'', "''")
        ),
        Op::Project { input, cols } => {
            let list = cols
                .iter()
                .map(|(new, src)| {
                    if new == src {
                        ident(*new)
                    } else {
                        format!("{} AS {}", ident(*src), ident(*new))
                    }
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!("SELECT {list} FROM {}", cte_name(*input))
        }
        Op::Select { input, col } => {
            format!("SELECT * FROM {} WHERE {}", cte_name(*input), ident(*col))
        }
        Op::Sort { input, keys } => {
            let order = keys
                .iter()
                .map(|k| ident(*k))
                .collect::<Vec<_>>()
                .join(", ");
            format!("SELECT * FROM {} ORDER BY {order}", cte_name(*input))
        }
        Op::RowNum {
            input,
            new,
            order,
            part,
        } => {
            // The paper's % : exactly ROW_NUMBER() OVER (…).
            let mut window = String::new();
            if let Some(p) = part {
                let _ = write!(window, "PARTITION BY {}", ident(*p));
            }
            if !order.is_empty() {
                if !window.is_empty() {
                    window.push(' ');
                }
                let _ = write!(window, "ORDER BY {}", order_by(order));
            }
            format!(
                "SELECT *, ROW_NUMBER() OVER ({window}) AS {} FROM {}",
                ident(*new),
                cte_name(*input)
            )
        }
        Op::RowId { input, new } => format!(
            // The paper's # : arbitrary unique numbers — the hidden ROWID
            // or an order-free ROW_NUMBER.
            "SELECT *, ROW_NUMBER() OVER () AS {} FROM {}",
            ident(*new),
            cte_name(*input)
        ),
        Op::Attach { input, col, value } => format!(
            "SELECT *, {} AS {} FROM {}",
            literal(value),
            ident(*col),
            cte_name(*input)
        ),
        Op::Fun {
            input,
            new,
            kind,
            args,
        } => format!(
            "SELECT *, {} AS {} FROM {}",
            fun_expr(*kind, args),
            ident(*new),
            cte_name(*input)
        ),
        Op::Aggr {
            input,
            kind,
            new,
            arg,
            part,
        } => match part {
            Some(p) => format!(
                "SELECT {}, {} AS {} FROM {} GROUP BY {}",
                ident(*p),
                aggr_expr(*kind, *arg),
                ident(*new),
                cte_name(*input),
                ident(*p)
            ),
            None => format!(
                "SELECT {} AS {} FROM {}",
                aggr_expr(*kind, *arg),
                ident(*new),
                cte_name(*input)
            ),
        },
        Op::Distinct { input } => format!("SELECT DISTINCT * FROM {}", cte_name(*input)),
        Op::Step { input, axis, test } => {
            // Staircase join over the shredded document: join the context
            // items back to doc_nodes for pre/size/parent arithmetic.
            format!(
                "SELECT DISTINCT c.iter, d.pre AS item \
                 FROM {} c \
                 JOIN doc_nodes v ON v.pre = c.item \
                 JOIN doc_nodes d ON d.url = v.url AND {} \
                 WHERE {}",
                cte_name(*input),
                axis_predicate(*axis),
                test_predicate(*axis, *test, opts)
            )
        }
        Op::Cross { l, r } => format!(
            "SELECT {}, {} FROM {} l CROSS JOIN {} r",
            select_list(dag.schema(*l), "l"),
            select_list(dag.schema(*r), "r"),
            cte_name(*l),
            cte_name(*r)
        ),
        Op::EquiJoin { l, r, lcol, rcol } => format!(
            "SELECT {}, {} FROM {} l JOIN {} r ON l.{} = r.{}",
            select_list(dag.schema(*l), "l"),
            select_list(dag.schema(*r), "r"),
            cte_name(*l),
            cte_name(*r),
            ident(*lcol),
            ident(*rcol)
        ),
        Op::ThetaJoin { l, r, pred } => {
            let on = pred
                .iter()
                .map(|(lc, k, rc)| {
                    let sym = match k {
                        FunKind::Eq => "=",
                        FunKind::Ne => "<>",
                        FunKind::Lt => "<",
                        FunKind::Le => "<=",
                        FunKind::Gt => ">",
                        FunKind::Ge => ">=",
                        other => panic!("non-comparison theta predicate {other:?}"),
                    };
                    format!("l.{} {} r.{}", ident(*lc), sym, ident(*rc))
                })
                .collect::<Vec<_>>()
                .join(" AND ");
            format!(
                "SELECT {}, {} FROM {} l JOIN {} r ON {}",
                select_list(dag.schema(*l), "l"),
                select_list(dag.schema(*r), "r"),
                cte_name(*l),
                cte_name(*r),
                on
            )
        }
        Op::Union { l, r } => {
            // ∪̇ is bag append: align column order explicitly.
            let cols = dag.schema(*l);
            format!(
                "SELECT {} FROM {} UNION ALL SELECT {} FROM {}",
                cols.iter()
                    .map(|c| ident(*c))
                    .collect::<Vec<_>>()
                    .join(", "),
                cte_name(*l),
                cols.iter()
                    .map(|c| ident(*c))
                    .collect::<Vec<_>>()
                    .join(", "),
                cte_name(*r)
            )
        }
        Op::Difference { l, r, on } => {
            let cond = on
                .iter()
                .map(|(lc, rc)| format!("r.{} = l.{}", ident(*rc), ident(*lc)))
                .collect::<Vec<_>>()
                .join(" AND ");
            format!(
                "SELECT * FROM {} l WHERE NOT EXISTS \
                 (SELECT 1 FROM {} r WHERE {})",
                cte_name(*l),
                cte_name(*r),
                cond
            )
        }
        Op::Range { input, lo, hi, new } => format!(
            // Integer range expansion: generate_series (PostgreSQL) /
            // a recursive CTE on other hosts.
            "SELECT i.*, g.{} FROM {} i \
             CROSS JOIN LATERAL generate_series(i.{}, i.{}) AS g({})",
            ident(*new),
            cte_name(*input),
            ident(*lo),
            ident(*hi),
            ident(*new)
        ),
        Op::Element { names, content } => format!(
            // Node construction is the back-end-specific piece (MonetDB/
            // XQuery used dedicated kernel operators): an aggregate UDF
            // assembling the per-iteration content sequence in pos order.
            "SELECT n.iter, xq_element(n.item, \
             (SELECT xq_content_agg(c.item ORDER BY c.pos) \
              FROM {content} c WHERE c.iter = n.iter)) AS item \
             FROM {names} n",
            names = cte_name(*names),
            content = cte_name(*content),
        ),
        Op::Attr { names, values } => format!(
            "SELECT n.iter, xq_attribute(n.item, v.item) AS item \
             FROM {} n JOIN {} v ON v.iter = n.iter",
            cte_name(*names),
            cte_name(*values)
        ),
        Op::TextNode { content } => format!(
            "SELECT iter, xq_text(item) AS item FROM {}",
            cte_name(*content)
        ),
        Op::Serialize { input } => format!("SELECT * FROM {}", cte_name(*input)),
        Op::Fanout { lo, hi, .. } => format!(
            // One shard of the collection scan: document roots of the
            // shard's fragment range, pos = the global collection rank.
            "SELECT d.frag + 1 AS pos, d.pre AS item FROM doc_nodes d \
             WHERE d.kind = 'doc' AND d.frag >= {lo} AND d.frag < {hi}"
        ),
        Op::ShardUnion { parts } => {
            // ∪̂ is an n-ary bag append: align column order explicitly.
            let cols = dag.schema(parts[0]);
            let list = cols
                .iter()
                .map(|c| ident(*c))
                .collect::<Vec<_>>()
                .join(", ");
            parts
                .iter()
                .map(|p| format!("SELECT {list} FROM {}", cte_name(*p)))
                .collect::<Vec<_>>()
                .join(" UNION ALL ")
        }
    }
}

#[cfg(test)]
mod tests;
