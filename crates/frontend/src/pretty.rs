//! AST → XQuery surface-syntax printer.
//!
//! Produces parseable text; `parse(pretty(parse(q)))` yields the same AST
//! (verified by the round-trip property tests). Used for debugging,
//! error messages, and to embed normalized queries in reports.

use crate::ast::*;
use std::fmt::Write;

/// Render an expression as XQuery text.
pub fn pretty(e: &Expr) -> String {
    let mut s = String::new();
    go(e, &mut s);
    s
}

/// Render a whole module (prolog + body).
pub fn pretty_module(m: &Module) -> String {
    let mut s = String::new();
    if m.ordering == OrderingMode::Unordered {
        s.push_str("declare ordering unordered; ");
    }
    for (name, e) in &m.variables {
        let _ = write!(s, "declare variable ${name} := {}; ", pretty(e));
    }
    go(&m.body, &mut s);
    s
}

fn escape_str(s: &str) -> String {
    let mut out = String::new();
    for c in s.chars() {
        match c {
            '"' => out.push_str("\"\""),
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            _ => out.push(c),
        }
    }
    out
}

fn node_test(t: &NodeTestAst) -> String {
    match t {
        NodeTestAst::AnyKind => "node()".into(),
        NodeTestAst::Wildcard => "*".into(),
        NodeTestAst::Name(n) => n.clone(),
        NodeTestAst::Text => "text()".into(),
        NodeTestAst::Comment => "comment()".into(),
        NodeTestAst::Pi(None) => "processing-instruction()".into(),
        NodeTestAst::Pi(Some(t)) => format!("processing-instruction({t})"),
        NodeTestAst::Element => "element()".into(),
        NodeTestAst::DocumentNode => "document-node()".into(),
    }
}

fn bin_op(op: BinOp) -> &'static str {
    match op {
        BinOp::Add => "+",
        BinOp::Sub => "-",
        BinOp::Mul => "*",
        BinOp::Div => "div",
        BinOp::IDiv => "idiv",
        BinOp::Mod => "mod",
        BinOp::GenEq => "=",
        BinOp::GenNe => "!=",
        BinOp::GenLt => "<",
        BinOp::GenLe => "<=",
        BinOp::GenGt => ">",
        BinOp::GenGe => ">=",
        BinOp::ValEq => "eq",
        BinOp::ValNe => "ne",
        BinOp::ValLt => "lt",
        BinOp::ValLe => "le",
        BinOp::ValGt => "gt",
        BinOp::ValGe => "ge",
        BinOp::Is => "is",
        BinOp::Before => "<<",
        BinOp::After => ">>",
        BinOp::And => "and",
        BinOp::Or => "or",
        BinOp::Union => "|",
        BinOp::Intersect => "intersect",
        BinOp::Except => "except",
        BinOp::To => "to",
    }
}

fn go(e: &Expr, s: &mut String) {
    match e {
        Expr::IntLit(i) => {
            let _ = write!(s, "{i}");
        }
        Expr::DblLit(d) => {
            if d.fract() == 0.0 && d.is_finite() {
                let _ = write!(s, "{d:.1}");
            } else {
                let _ = write!(s, "{d}");
            }
        }
        Expr::StrLit(v) => {
            let _ = write!(s, "\"{}\"", escape_str(v));
        }
        Expr::Empty => s.push_str("()"),
        Expr::Sequence(items) => {
            s.push('(');
            for (i, it) in items.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                go(it, s);
            }
            s.push(')');
        }
        Expr::Var(v) => {
            let _ = write!(s, "${v}");
        }
        Expr::ContextItem => s.push('.'),
        Expr::Root => s.push('/'),
        Expr::PathStep {
            input,
            axis,
            test,
            predicates,
        } => {
            match **input {
                Expr::ContextItem => {}
                Expr::Root => s.push('/'),
                _ => {
                    go(input, s);
                    s.push('/');
                }
            }
            let _ = write!(s, "{}::{}", axis.as_str(), node_test(test));
            for p in predicates {
                s.push('[');
                go(p, s);
                s.push(']');
            }
        }
        Expr::Filter { input, predicate } => {
            // A path input must be parenthesized: `a/b[2]` is a *step*
            // predicate (positional per parent), while `(a/b)[2]`
            // filters the whole sequence — the two parse differently
            // and mean different things.
            let needs_parens =
                matches!(input.as_ref(), Expr::PathStep { .. } | Expr::PathSeq { .. });
            if needs_parens {
                s.push('(');
            }
            go(input, s);
            if needs_parens {
                s.push(')');
            }
            s.push('[');
            go(predicate, s);
            s.push(']');
        }
        Expr::PathSeq { input, step } => {
            go(input, s);
            s.push_str("/(");
            go(step, s);
            s.push(')');
        }
        Expr::Flwor {
            clauses,
            order_by,
            ret,
            ..
        } => {
            // FLWOR is an ExprSingle: parenthesize so it can be printed in
            // any operand position.
            s.push('(');
            for c in clauses {
                match c {
                    Clause::For { var, pos_var, seq } => {
                        let _ = write!(s, "for ${var} ");
                        if let Some(p) = pos_var {
                            let _ = write!(s, "at ${p} ");
                        }
                        s.push_str("in ");
                        go_single(seq, s);
                        s.push(' ');
                    }
                    Clause::Let { var, expr } => {
                        let _ = write!(s, "let ${var} := ");
                        go_single(expr, s);
                        s.push(' ');
                    }
                    Clause::Where(e) => {
                        s.push_str("where ");
                        go_single(e, s);
                        s.push(' ');
                    }
                }
            }
            if !order_by.is_empty() {
                s.push_str("order by ");
                for (i, o) in order_by.iter().enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    go_single(&o.key, s);
                    if o.descending {
                        s.push_str(" descending");
                    }
                }
                s.push(' ');
            }
            s.push_str("return ");
            go_single(ret, s);
            s.push(')');
        }
        Expr::Quantified {
            quant,
            var,
            domain,
            satisfies,
        } => {
            let kw = match quant {
                Quant::Some => "some",
                Quant::Every => "every",
            };
            let _ = write!(s, "({kw} ${var} in ");
            go_single(domain, s);
            s.push_str(" satisfies ");
            go_single(satisfies, s);
            s.push(')');
        }
        Expr::If { cond, then, els } => {
            s.push_str("(if (");
            go(cond, s);
            s.push_str(") then ");
            go_single(then, s);
            s.push_str(" else ");
            go_single(els, s);
            s.push(')');
        }
        Expr::Binary { op, l, r } => {
            s.push('(');
            go(l, s);
            let _ = write!(s, " {} ", bin_op(*op));
            go(r, s);
            s.push(')');
        }
        Expr::Unary { op, expr } => {
            s.push(match op {
                UnOp::Minus => '-',
                UnOp::Plus => '+',
            });
            go(expr, s);
        }
        Expr::Call { name, args } => {
            let _ = write!(s, "fn:{name}(");
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    s.push_str(", ");
                }
                go_single(a, s);
            }
            s.push(')');
        }
        Expr::Unordered(e) => {
            s.push_str("fn:unordered(");
            go_single(e, s);
            s.push(')');
        }
        Expr::OrderingScope { mode, expr } => {
            s.push_str(match mode {
                OrderingMode::Ordered => "ordered { ",
                OrderingMode::Unordered => "unordered { ",
            });
            go(expr, s);
            s.push_str(" }");
        }
        Expr::DirElement {
            name,
            attrs,
            content,
        } => {
            let _ = write!(s, "<{name}");
            for a in attrs {
                let _ = write!(s, " {}=\"", a.name);
                for p in &a.value {
                    match p {
                        AttrPart::Lit(t) => {
                            for c in t.chars() {
                                match c {
                                    '"' => s.push_str("&quot;"),
                                    '&' => s.push_str("&amp;"),
                                    '<' => s.push_str("&lt;"),
                                    '{' => s.push_str("{{"),
                                    '}' => s.push_str("}}"),
                                    _ => s.push(c),
                                }
                            }
                        }
                        AttrPart::Expr(e) => {
                            s.push('{');
                            go(e, s);
                            s.push('}');
                        }
                    }
                }
                s.push('"');
            }
            if content.is_empty() {
                s.push_str("/>");
                return;
            }
            s.push('>');
            for c in content {
                match c {
                    ElemContent::Text(t) => {
                        for c in t.chars() {
                            match c {
                                '&' => s.push_str("&amp;"),
                                '<' => s.push_str("&lt;"),
                                '{' => s.push_str("{{"),
                                '}' => s.push_str("}}"),
                                _ => s.push(c),
                            }
                        }
                    }
                    ElemContent::Expr(e) => match e {
                        Expr::DirElement { .. } => go(e, s),
                        _ => {
                            s.push('{');
                            go(e, s);
                            s.push('}');
                        }
                    },
                }
            }
            let _ = write!(s, "</{name}>");
        }
        Expr::TextConstructor(e) => {
            s.push_str("text { ");
            go(e, s);
            s.push_str(" }");
        }
        Expr::AttrConstructor { name, value } => {
            let _ = write!(s, "attribute {name} {{ ");
            go(value, s);
            s.push_str(" }");
        }
        Expr::ElemConstructor { name, content } => {
            let _ = write!(s, "element {name} {{ ");
            go(content, s);
            s.push_str(" }");
        }
    }
}

/// Like [`go`] but parenthesizes top-level sequences (contexts where a
/// bare `,` would be ambiguous).
fn go_single(e: &Expr, s: &mut String) {
    match e {
        Expr::Sequence(_) => go(e, s), // Sequence already parenthesizes
        _ => go(e, s),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn roundtrip(q: &str) {
        let ast1 = parse_module(q).unwrap().body;
        let text = pretty(&ast1);
        let ast2 = parse_module(&text)
            .unwrap_or_else(|e| panic!("re-parse of `{text}` failed: {e}"))
            .body;
        assert_eq!(ast1, ast2, "roundtrip mismatch via `{text}`");
    }

    #[test]
    fn roundtrips() {
        for q in [
            "1 + 2 * 3",
            "(1, 2, 3)",
            "$t//c",
            "$t//(c|d)",
            "$p/profile/@income > 5000 * $i",
            "for $x at $p in (\"a\",\"b\",\"c\") return <e pos=\"{ $p }\">{ $x }</e>",
            "unordered { $t//c }",
            "if ($x = 1) then \"a\" else \"b\"",
            "some $x in $d satisfies $x eq 1",
            "fn:count($l)",
            "let $b := $t//b let $d := $t//d return ($b << $d)",
            "for $x in (3,1,2) order by $x descending return $x",
            "element out { text { \"hi\" } }",
            "$a except $b",
            "1 to 5",
            "-$x",
        ] {
            roundtrip(q);
        }
    }

    #[test]
    fn escapes_in_constructors() {
        roundtrip(r#"<a x="q&quot;{1}">l&lt;r{2}</a>"#);
    }
}
