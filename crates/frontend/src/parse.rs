//! Recursive-descent XQuery parser.
//!
//! The scanner and parser are fused: XQuery cannot be tokenized
//! independently of parse context (direct constructors switch the lexical
//! mode, and keywords such as `and`, `div` or `order` are only reserved in
//! operator position), so the parser reads from a character cursor and
//! applies the appropriate micro-lexer for each position.

use crate::ast::*;
use exrquy_diag::ErrorCode;
use exrquy_xml::parse::decode_entities;
use exrquy_xml::Axis;
use std::fmt;

/// Default expression-nesting ceiling. Each nesting level costs a
/// handful of stack frames in the recursive-descent parser, so this
/// bounds worst-case stack use on hostile input while being far deeper
/// than any realistic query.
pub const DEFAULT_MAX_DEPTH: usize = 128;

/// Frontend error (parse or normalization) with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XqError {
    pub offset: usize,
    pub message: String,
    /// Machine-readable code (`XPST0003` for syntax errors, `EXRQ0003`
    /// for nesting-depth overflow).
    pub code: ErrorCode,
}

impl fmt::Display for XqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "XQuery error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XqError {}

/// Parse a full query (prolog + body).
pub fn parse_module(src: &str) -> Result<Module, XqError> {
    parse_module_with(src, DEFAULT_MAX_DEPTH)
}

/// [`parse_module`] with an explicit expression-nesting ceiling.
pub fn parse_module_with(src: &str, max_depth: usize) -> Result<Module, XqError> {
    let mut p = P::new(src);
    p.max_depth = max_depth;
    let module = p.module()?;
    p.ws();
    if !p.at_end() {
        return Err(p.err("trailing content after query body"));
    }
    Ok(module)
}

/// Parse a query that consists of a body only (no prolog required; a
/// prolog is still accepted).
pub fn parse_query(src: &str) -> Result<Module, XqError> {
    parse_module(src)
}

struct P<'a> {
    src: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl<'a> P<'a> {
    fn new(src: &'a str) -> Self {
        P {
            src: src.as_bytes(),
            pos: 0,
            depth: 0,
            max_depth: DEFAULT_MAX_DEPTH,
        }
    }

    fn err(&self, msg: impl Into<String>) -> XqError {
        XqError {
            offset: self.pos,
            message: msg.into(),
            code: ErrorCode::XPST0003,
        }
    }

    /// Bump the nesting depth on entry to a recursion point
    /// (`expr_single`, `unary_expr`, `direct_constructor`); paired with
    /// [`P::leave`]. Bounds the parser's stack use on hostile input.
    fn enter(&mut self) -> Result<(), XqError> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(XqError {
                offset: self.pos,
                message: format!("expression nesting exceeds depth limit {}", self.max_depth),
                code: ErrorCode::EXRQ0003,
            });
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn at_end(&self) -> bool {
        self.pos >= self.src.len()
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn starts(&self, s: &str) -> bool {
        self.src
            .get(self.pos..)
            .is_some_and(|rest| rest.starts_with(s.as_bytes()))
    }

    /// Skip whitespace and (nested) `(: … :)` comments.
    fn ws(&mut self) {
        loop {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                self.pos += 1;
            }
            if self.starts("(:") {
                let mut depth = 0usize;
                while self.pos < self.src.len() {
                    if self.starts("(:") {
                        depth += 1;
                        self.pos += 2;
                    } else if self.starts(":)") {
                        depth -= 1;
                        self.pos += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        self.pos += 1;
                    }
                }
            } else {
                return;
            }
        }
    }

    /// Consume `s` if present (no word-boundary check — for punctuation).
    fn eat(&mut self, s: &str) -> bool {
        if self.starts(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, s: &str) -> Result<(), XqError> {
        self.ws();
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn is_name_start(b: u8) -> bool {
        b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
    }

    fn is_name_char(b: u8) -> bool {
        Self::is_name_start(b) || b.is_ascii_digit() || b == b'-' || b == b'.'
    }

    /// Peek the identifier (NCName) at the cursor, if any.
    fn peek_ident(&self) -> Option<&'a str> {
        let start = self.pos;
        if !self.peek().is_some_and(Self::is_name_start) {
            return None;
        }
        let mut end = start;
        while self.src.get(end).copied().is_some_and(Self::is_name_char) {
            end += 1;
        }
        // Invariant: name bytes accept multi-byte sequences wholesale
        // (`b >= 0x80`), so the slice ends on a char boundary of the
        // original `&str` and is always valid UTF-8.
        Some(std::str::from_utf8(&self.src[start..end]).unwrap())
    }

    /// Consume keyword `kw` if the next word is exactly it.
    fn eat_kw(&mut self, kw: &str) -> bool {
        self.ws();
        if self.peek_ident() == Some(kw) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<(), XqError> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected keyword `{kw}`")))
        }
    }

    /// Peek keyword without consuming.
    fn at_kw(&mut self, kw: &str) -> bool {
        self.ws();
        self.peek_ident() == Some(kw)
    }

    /// Parse a QName; the `fn:` / `xs:` prefix is preserved as written.
    fn qname(&mut self) -> Result<String, XqError> {
        self.ws();
        let Some(first) = self.peek_ident() else {
            return Err(self.err("expected a name"));
        };
        self.pos += first.len();
        if self.peek() == Some(b':') && self.peek_at(1).is_some_and(Self::is_name_start) {
            self.pos += 1;
            // Invariant: the `is_name_start` guard one line up means
            // `peek_ident` cannot return `None` here.
            let second = self.peek_ident().unwrap();
            self.pos += second.len();
            Ok(format!("{first}:{second}"))
        } else {
            Ok(first.to_owned())
        }
    }

    fn var_name(&mut self) -> Result<String, XqError> {
        self.expect("$")?;
        self.qname()
    }

    // ---------------------------------------------------------- module

    fn module(&mut self) -> Result<Module, XqError> {
        let mut ordering = OrderingMode::Ordered;
        let mut variables = Vec::new();
        loop {
            self.ws();
            if !self.at_kw("declare") {
                break;
            }
            let save = self.pos;
            self.expect_kw("declare")?;
            if self.eat_kw("ordering") {
                ordering = if self.eat_kw("unordered") {
                    OrderingMode::Unordered
                } else {
                    self.expect_kw("ordered")?;
                    OrderingMode::Ordered
                };
                self.expect(";")?;
            } else if self.eat_kw("variable") {
                let name = self.var_name()?;
                self.expect(":=")?;
                let value = self.expr_single()?;
                self.expect(";")?;
                variables.push((name, value));
            } else {
                // Unknown declaration (e.g. `declare namespace`): skip to `;`.
                self.pos = save;
                while self.peek().is_some_and(|b| b != b';') {
                    self.pos += 1;
                }
                if !self.eat(";") {
                    return Err(self.err("unterminated prolog declaration"));
                }
            }
        }
        let body = self.expr()?;
        Ok(Module {
            ordering,
            variables,
            body,
        })
    }

    // ------------------------------------------------------ expressions

    /// Expr ::= ExprSingle ("," ExprSingle)*
    fn expr(&mut self) -> Result<Expr, XqError> {
        let first = self.expr_single()?;
        self.ws();
        if !self.starts(",") {
            return Ok(first);
        }
        let mut items = vec![first];
        while {
            self.ws();
            self.eat(",")
        } {
            items.push(self.expr_single()?);
        }
        Ok(Expr::Sequence(items))
    }

    fn expr_single(&mut self) -> Result<Expr, XqError> {
        self.enter()?;
        let r = self.expr_single_inner();
        self.leave();
        r
    }

    fn expr_single_inner(&mut self) -> Result<Expr, XqError> {
        self.ws();
        if self.at_kw("for") || self.at_kw("let") {
            // Guard: `for`/`let` must be followed by `$` to be FLWOR.
            if self.next_word_then(b'$') {
                return self.flwor();
            }
        }
        if (self.at_kw("some") || self.at_kw("every")) && self.next_word_then(b'$') {
            return self.quantified();
        }
        if self.at_kw("if") && self.next_word_then(b'(') {
            return self.if_expr();
        }
        self.or_expr()
    }

    /// After an identifier at the cursor, is the next token-start char `c`
    /// (skipping whitespace *and* comments)?
    fn next_word_then(&mut self, c: u8) -> bool {
        self.ws();
        let Some(w) = self.peek_ident() else {
            return false;
        };
        let save = self.pos;
        self.pos += w.len();
        self.ws();
        let ok = self.peek() == Some(c);
        self.pos = save;
        ok
    }

    fn flwor(&mut self) -> Result<Expr, XqError> {
        let mut clauses = Vec::new();
        loop {
            self.ws();
            if self.at_kw("for") && self.next_word_then(b'$') {
                self.expect_kw("for")?;
                loop {
                    let var = self.var_name()?;
                    let pos_var = if self.eat_kw("at") {
                        Some(self.var_name()?)
                    } else {
                        None
                    };
                    self.expect_kw("in")?;
                    let seq = self.expr_single()?;
                    clauses.push(Clause::For { var, pos_var, seq });
                    self.ws();
                    if !self.eat(",") {
                        break;
                    }
                }
            } else if self.at_kw("let") && self.next_word_then(b'$') {
                self.expect_kw("let")?;
                loop {
                    let var = self.var_name()?;
                    self.expect(":=")?;
                    let expr = self.expr_single()?;
                    clauses.push(Clause::Let { var, expr });
                    self.ws();
                    if !self.eat(",") {
                        break;
                    }
                }
            } else if self.at_kw("where") {
                self.expect_kw("where")?;
                clauses.push(Clause::Where(self.expr_single()?));
            } else {
                break;
            }
        }
        let mut order_by = Vec::new();
        self.ws();
        if self.at_kw("stable") {
            self.expect_kw("stable")?;
        }
        if self.at_kw("order") {
            self.expect_kw("order")?;
            self.expect_kw("by")?;
            loop {
                let key = self.expr_single()?;
                let descending = if self.eat_kw("descending") {
                    true
                } else {
                    let _ = self.eat_kw("ascending");
                    false
                };
                // `empty greatest|least` accepted and ignored.
                if self.eat_kw("empty") && !self.eat_kw("greatest") {
                    self.expect_kw("least")?;
                }
                order_by.push(OrderSpec { key, descending });
                self.ws();
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.expect_kw("return")?;
        let ret = self.expr_single()?;
        if clauses.is_empty() {
            return Err(self.err("FLWOR without for/let clause"));
        }
        Ok(Expr::Flwor {
            clauses,
            order_by,
            reordered: false,
            ret: Box::new(ret),
        })
    }

    fn quantified(&mut self) -> Result<Expr, XqError> {
        let quant = if self.eat_kw("some") {
            Quant::Some
        } else {
            self.expect_kw("every")?;
            Quant::Every
        };
        // Multiple binding clauses desugar to nested quantifiers.
        let mut binds = Vec::new();
        loop {
            let var = self.var_name()?;
            self.expect_kw("in")?;
            let domain = self.expr_single()?;
            binds.push((var, domain));
            self.ws();
            if !self.eat(",") {
                break;
            }
        }
        self.expect_kw("satisfies")?;
        let mut body = self.expr_single()?;
        for (var, domain) in binds.into_iter().rev() {
            body = Expr::Quantified {
                quant,
                var,
                domain: Box::new(domain),
                satisfies: Box::new(body),
            };
        }
        Ok(body)
    }

    fn if_expr(&mut self) -> Result<Expr, XqError> {
        self.expect_kw("if")?;
        self.expect("(")?;
        let cond = self.expr()?;
        self.expect(")")?;
        self.expect_kw("then")?;
        let then = self.expr_single()?;
        self.expect_kw("else")?;
        let els = self.expr_single()?;
        Ok(Expr::If {
            cond: Box::new(cond),
            then: Box::new(then),
            els: Box::new(els),
        })
    }

    fn or_expr(&mut self) -> Result<Expr, XqError> {
        let mut l = self.and_expr()?;
        while self.at_operator_kw("or") {
            self.expect_kw("or")?;
            let r = self.and_expr()?;
            l = Expr::binary(BinOp::Or, l, r);
        }
        Ok(l)
    }

    fn and_expr(&mut self) -> Result<Expr, XqError> {
        let mut l = self.comparison_expr()?;
        while self.at_operator_kw("and") {
            self.expect_kw("and")?;
            let r = self.comparison_expr()?;
            l = Expr::binary(BinOp::And, l, r);
        }
        Ok(l)
    }

    /// Keyword operators are only operators when something follows that can
    /// start an operand.
    fn at_operator_kw(&mut self, kw: &str) -> bool {
        self.at_kw(kw)
    }

    fn comparison_expr(&mut self) -> Result<Expr, XqError> {
        let l = self.range_expr()?;
        self.ws();
        let op = if self.starts("<<") {
            self.pos += 2;
            Some(BinOp::Before)
        } else if self.starts(">>") {
            self.pos += 2;
            Some(BinOp::After)
        } else if self.starts("<=") {
            self.pos += 2;
            Some(BinOp::GenLe)
        } else if self.starts(">=") {
            self.pos += 2;
            Some(BinOp::GenGe)
        } else if self.starts("!=") {
            self.pos += 2;
            Some(BinOp::GenNe)
        } else if self.starts("=") {
            self.pos += 1;
            Some(BinOp::GenEq)
        } else if self.starts("<") {
            self.pos += 1;
            Some(BinOp::GenLt)
        } else if self.starts(">") {
            self.pos += 1;
            Some(BinOp::GenGt)
        } else if self.at_kw("eq") {
            self.expect_kw("eq")?;
            Some(BinOp::ValEq)
        } else if self.at_kw("ne") {
            self.expect_kw("ne")?;
            Some(BinOp::ValNe)
        } else if self.at_kw("lt") {
            self.expect_kw("lt")?;
            Some(BinOp::ValLt)
        } else if self.at_kw("le") {
            self.expect_kw("le")?;
            Some(BinOp::ValLe)
        } else if self.at_kw("gt") {
            self.expect_kw("gt")?;
            Some(BinOp::ValGt)
        } else if self.at_kw("ge") {
            self.expect_kw("ge")?;
            Some(BinOp::ValGe)
        } else if self.at_kw("is") {
            self.expect_kw("is")?;
            Some(BinOp::Is)
        } else {
            None
        };
        match op {
            None => Ok(l),
            Some(op) => {
                let r = self.range_expr()?;
                Ok(Expr::binary(op, l, r))
            }
        }
    }

    fn range_expr(&mut self) -> Result<Expr, XqError> {
        let l = self.additive_expr()?;
        if self.at_kw("to") {
            self.expect_kw("to")?;
            let r = self.additive_expr()?;
            return Ok(Expr::binary(BinOp::To, l, r));
        }
        Ok(l)
    }

    fn additive_expr(&mut self) -> Result<Expr, XqError> {
        let mut l = self.multiplicative_expr()?;
        loop {
            self.ws();
            if self.eat("+") {
                let r = self.multiplicative_expr()?;
                l = Expr::binary(BinOp::Add, l, r);
            } else if self.peek() == Some(b'-') && !self.starts("->") {
                self.pos += 1;
                let r = self.multiplicative_expr()?;
                l = Expr::binary(BinOp::Sub, l, r);
            } else {
                return Ok(l);
            }
        }
    }

    fn multiplicative_expr(&mut self) -> Result<Expr, XqError> {
        let mut l = self.union_expr()?;
        loop {
            self.ws();
            if self.peek() == Some(b'*') {
                self.pos += 1;
                let r = self.union_expr()?;
                l = Expr::binary(BinOp::Mul, l, r);
            } else if self.at_kw("div") {
                self.expect_kw("div")?;
                let r = self.union_expr()?;
                l = Expr::binary(BinOp::Div, l, r);
            } else if self.at_kw("idiv") {
                self.expect_kw("idiv")?;
                let r = self.union_expr()?;
                l = Expr::binary(BinOp::IDiv, l, r);
            } else if self.at_kw("mod") {
                self.expect_kw("mod")?;
                let r = self.union_expr()?;
                l = Expr::binary(BinOp::Mod, l, r);
            } else {
                return Ok(l);
            }
        }
    }

    fn union_expr(&mut self) -> Result<Expr, XqError> {
        let mut l = self.intersect_except_expr()?;
        loop {
            self.ws();
            if self.peek() == Some(b'|') {
                self.pos += 1;
                let r = self.intersect_except_expr()?;
                l = Expr::binary(BinOp::Union, l, r);
            } else if self.at_kw("union") {
                self.expect_kw("union")?;
                let r = self.intersect_except_expr()?;
                l = Expr::binary(BinOp::Union, l, r);
            } else {
                return Ok(l);
            }
        }
    }

    fn intersect_except_expr(&mut self) -> Result<Expr, XqError> {
        let mut l = self.unary_expr()?;
        loop {
            if self.at_kw("intersect") {
                self.expect_kw("intersect")?;
                let r = self.unary_expr()?;
                l = Expr::binary(BinOp::Intersect, l, r);
            } else if self.at_kw("except") {
                self.expect_kw("except")?;
                let r = self.unary_expr()?;
                l = Expr::binary(BinOp::Except, l, r);
            } else {
                return Ok(l);
            }
        }
    }

    fn unary_expr(&mut self) -> Result<Expr, XqError> {
        self.enter()?;
        let r = self.unary_expr_inner();
        self.leave();
        r
    }

    fn unary_expr_inner(&mut self) -> Result<Expr, XqError> {
        self.ws();
        if self.eat("-") {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Minus,
                expr: Box::new(e),
            });
        }
        if self.eat("+") {
            let e = self.unary_expr()?;
            return Ok(Expr::Unary {
                op: UnOp::Plus,
                expr: Box::new(e),
            });
        }
        self.path_expr()
    }

    // ------------------------------------------------------------ paths

    fn path_expr(&mut self) -> Result<Expr, XqError> {
        self.ws();
        if self.starts("//") {
            self.pos += 2;
            let dos = Expr::PathStep {
                input: Box::new(Expr::Root),
                axis: Axis::DescendantOrSelf,
                test: NodeTestAst::AnyKind,
                predicates: vec![],
            };
            let first = self.step_expr(Some(dos))?;
            return self.relative_path(first);
        }
        if self.peek() == Some(b'/') {
            self.pos += 1;
            self.ws();
            // A lone `/` selects the root document node.
            if self.can_start_step() {
                let first = self.step_expr(Some(Expr::Root))?;
                return self.relative_path(first);
            }
            return Ok(Expr::Root);
        }
        let first = self.step_expr(None)?;
        self.relative_path(first)
    }

    fn can_start_step(&mut self) -> bool {
        self.ws();
        match self.peek() {
            Some(b'@') | Some(b'.') | Some(b'*') | Some(b'$') | Some(b'(') => true,
            Some(c) => Self::is_name_start(c),
            None => false,
        }
    }

    fn relative_path(&mut self, mut input: Expr) -> Result<Expr, XqError> {
        loop {
            self.ws();
            if self.starts("//") {
                self.pos += 2;
                let dos = Expr::PathStep {
                    input: Box::new(input),
                    axis: Axis::DescendantOrSelf,
                    test: NodeTestAst::AnyKind,
                    predicates: vec![],
                };
                input = self.step_expr(Some(dos))?;
            } else if self.peek() == Some(b'/') {
                self.pos += 1;
                input = self.step_expr(Some(input))?;
            } else {
                return Ok(input);
            }
        }
    }

    /// One step. With `input = None` this is the first step of a relative
    /// path: it may be a primary expression followed by predicates.
    fn step_expr(&mut self, input: Option<Expr>) -> Result<Expr, XqError> {
        self.ws();
        // `..` — parent::node()
        if self.starts("..") {
            self.pos += 2;
            let base = input.unwrap_or(Expr::ContextItem);
            return self.with_predicates_step(base, Axis::Parent, NodeTestAst::AnyKind);
        }
        // `@test`
        if self.eat("@") {
            let test = self.node_test()?;
            let base = input.unwrap_or(Expr::ContextItem);
            return self.with_predicates_step(base, Axis::Attribute, test);
        }
        // `axis::test`
        if let Some(word) = self.peek_ident() {
            if let Some(axis) = axis_from_name(word) {
                let mut look = self.pos + word.len();
                while matches!(self.src.get(look), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                    look += 1;
                }
                if self.src.get(look) == Some(&b':') && self.src.get(look + 1) == Some(&b':') {
                    self.pos = look + 2;
                    let test = self.node_test()?;
                    let base = input.unwrap_or(Expr::ContextItem);
                    return self.with_predicates_step(base, axis, test);
                }
            }
        }
        // Kind tests & name tests (default child axis) — but only when this
        // genuinely is a step: primary expressions win in first position.
        match input {
            Some(base) => {
                // Inside a path, a step is an axis step, a kind test, or a
                // general expression applied per context node (PathSeq) —
                // e.g. the paper's `$t//(c|d)`.
                if self.is_primary_position() {
                    let primary = self.primary_expr()?;
                    let step = self.with_predicates_filter(primary)?;
                    return Ok(Expr::PathSeq {
                        input: Box::new(base),
                        step: Box::new(step),
                    });
                }
                let test = self.node_test()?;
                self.with_predicates_step(base, Axis::Child, test)
            }
            None => {
                // First position: primary expressions, or a child-axis step
                // from the context item.
                if self.is_primary_position() {
                    let primary = self.primary_expr()?;
                    return self.with_predicates_filter(primary);
                }
                let test = self.node_test()?;
                self.with_predicates_step(Expr::ContextItem, Axis::Child, test)
            }
        }
    }

    /// In first-step position, decide between primary expression and name
    /// test: literals, `$var`, `(`, `.`, constructors, keyword expressions
    /// and function calls are primary; a bare name or `*` is a step.
    fn is_primary_position(&mut self) -> bool {
        self.ws();
        match self.peek() {
            Some(b'$') | Some(b'(') | Some(b'"') | Some(b'\'') | Some(b'<') => true,
            Some(b'.') => !self.starts(".."),
            Some(c) if c.is_ascii_digit() => true,
            Some(c) if Self::is_name_start(c) => {
                // Invariant: the `is_name_start` guard means `peek_ident`
                // cannot return `None` here.
                let word = self.peek_ident().unwrap().to_owned();
                // Kind-test names are steps when followed by `(`; `text {`
                // and `element name {` are computed constructors.
                if matches!(
                    word.as_str(),
                    "node" | "comment" | "processing-instruction" | "document-node"
                ) {
                    return false;
                }
                if word == "text" || word == "element" {
                    let mut i = self.pos + word.len();
                    while matches!(self.src.get(i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                        i += 1;
                    }
                    return match self.src.get(i) {
                        Some(b'{') => true,  // text { e }
                        Some(b'(') => false, // kind test
                        Some(&ch) if Self::is_name_start(ch) && word == "element" => true,
                        _ => false,
                    };
                }
                // Constructor & scope keywords.
                if matches!(word.as_str(), "unordered" | "ordered") {
                    // `unordered {` is a scope; `unordered(` is fn:unordered.
                    let mut i = self.pos + word.len();
                    while matches!(self.src.get(i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                        i += 1;
                    }
                    return matches!(self.src.get(i), Some(b'{') | Some(b'('));
                }
                if matches!(word.as_str(), "attribute") {
                    // `attribute name {` is a computed constructor; plain
                    // `attribute` as a name test is too exotic to support.
                    let mut i = self.pos + word.len();
                    while matches!(self.src.get(i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                        i += 1;
                    }
                    return self.src.get(i).copied().is_some_and(Self::is_name_start);
                }
                // A name directly followed by `(` is a function call; a
                // name followed by `:name(` likewise.
                let mut i = self.pos + word.len();
                if self.src.get(i) == Some(&b':')
                    && self
                        .src
                        .get(i + 1)
                        .copied()
                        .is_some_and(Self::is_name_start)
                {
                    i += 1;
                    while self.src.get(i).copied().is_some_and(Self::is_name_char) {
                        i += 1;
                    }
                }
                while matches!(self.src.get(i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                    i += 1;
                }
                self.src.get(i) == Some(&b'(')
            }
            _ => false,
        }
    }

    fn node_test(&mut self) -> Result<NodeTestAst, XqError> {
        self.ws();
        if self.eat("*") {
            return Ok(NodeTestAst::Wildcard);
        }
        let name = self.qname()?;
        self.ws();
        if self.peek() == Some(b'(') {
            self.pos += 1;
            match name.as_str() {
                "node" => {
                    self.expect(")")?;
                    return Ok(NodeTestAst::AnyKind);
                }
                "text" => {
                    self.expect(")")?;
                    return Ok(NodeTestAst::Text);
                }
                "comment" => {
                    self.expect(")")?;
                    return Ok(NodeTestAst::Comment);
                }
                "element" => {
                    self.ws();
                    if self.eat(")") {
                        return Ok(NodeTestAst::Element);
                    }
                    let n = self.qname()?;
                    self.expect(")")?;
                    return Ok(NodeTestAst::Name(n));
                }
                "document-node" => {
                    self.expect(")")?;
                    return Ok(NodeTestAst::DocumentNode);
                }
                "processing-instruction" => {
                    self.ws();
                    if self.eat(")") {
                        return Ok(NodeTestAst::Pi(None));
                    }
                    let target = if self.peek() == Some(b'"') || self.peek() == Some(b'\'') {
                        self.string_literal()?
                    } else {
                        self.qname()?
                    };
                    self.expect(")")?;
                    return Ok(NodeTestAst::Pi(Some(target)));
                }
                _ => {
                    return Err(self.err(format!("`{name}(` is not a node test")));
                }
            }
        }
        // Strip namespace prefix from name tests (no prefix resolution).
        // Invariant: `rsplit` always yields at least one element.
        let local = name.rsplit(':').next().unwrap().to_owned();
        Ok(NodeTestAst::Name(local))
    }

    fn with_predicates_step(
        &mut self,
        input: Expr,
        axis: Axis,
        test: NodeTestAst,
    ) -> Result<Expr, XqError> {
        let mut predicates = Vec::new();
        loop {
            self.ws();
            if self.eat("[") {
                predicates.push(self.expr()?);
                self.expect("]")?;
            } else {
                break;
            }
        }
        Ok(Expr::PathStep {
            input: Box::new(input),
            axis,
            test,
            predicates,
        })
    }

    fn with_predicates_filter(&mut self, mut e: Expr) -> Result<Expr, XqError> {
        loop {
            self.ws();
            if self.eat("[") {
                let p = self.expr()?;
                self.expect("]")?;
                e = Expr::Filter {
                    input: Box::new(e),
                    predicate: Box::new(p),
                };
            } else {
                return Ok(e);
            }
        }
    }

    // -------------------------------------------------------- primaries

    fn primary_expr(&mut self) -> Result<Expr, XqError> {
        self.ws();
        match self.peek() {
            Some(b'$') => Ok(Expr::Var(self.var_name()?)),
            Some(b'(') => {
                self.pos += 1;
                self.ws();
                if self.eat(")") {
                    return Ok(Expr::Empty);
                }
                let e = self.expr()?;
                self.expect(")")?;
                Ok(e)
            }
            Some(b'"') | Some(b'\'') => Ok(Expr::StrLit(self.string_literal()?)),
            Some(b'.') if !self.starts("..") => {
                // Disambiguate `.5` (number) from `.` (context item).
                if self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
                    self.number()
                } else {
                    self.pos += 1;
                    Ok(Expr::ContextItem)
                }
            }
            Some(c) if c.is_ascii_digit() => self.number(),
            Some(b'<') => self.direct_constructor(),
            Some(c) if Self::is_name_start(c) => {
                // Invariant: the `is_name_start` guard means `peek_ident`
                // cannot return `None` here.
                let word = self.peek_ident().unwrap().to_owned();
                match word.as_str() {
                    "unordered" | "ordered" => {
                        let mut i = self.pos + word.len();
                        while matches!(self.src.get(i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                            i += 1;
                        }
                        if self.src.get(i) == Some(&b'{') {
                            self.pos = i + 1;
                            let e = self.expr()?;
                            self.expect("}")?;
                            let mode = if word == "unordered" {
                                OrderingMode::Unordered
                            } else {
                                OrderingMode::Ordered
                            };
                            return Ok(Expr::OrderingScope {
                                mode,
                                expr: Box::new(e),
                            });
                        }
                        self.function_call()
                    }
                    "text" => {
                        // computed text constructor `text { e }`
                        let mut i = self.pos + word.len();
                        while matches!(self.src.get(i), Some(b' ' | b'\t' | b'\r' | b'\n')) {
                            i += 1;
                        }
                        if self.src.get(i) == Some(&b'{') {
                            self.pos = i + 1;
                            let e = self.expr()?;
                            self.expect("}")?;
                            return Ok(Expr::TextConstructor(Box::new(e)));
                        }
                        self.function_call()
                    }
                    "attribute" | "element" => {
                        let save = self.pos;
                        self.pos += word.len();
                        self.ws();
                        if self.peek().is_some_and(Self::is_name_start) {
                            let name = self.qname()?;
                            self.ws();
                            if self.eat("{") {
                                let e = self.ws_then_expr_or_empty()?;
                                self.expect("}")?;
                                return Ok(if word == "attribute" {
                                    Expr::AttrConstructor {
                                        name,
                                        value: Box::new(e),
                                    }
                                } else {
                                    Expr::ElemConstructor {
                                        name,
                                        content: Box::new(e),
                                    }
                                });
                            }
                        }
                        self.pos = save;
                        self.function_call()
                    }
                    _ => self.function_call(),
                }
            }
            _ => Err(self.err("expected an expression")),
        }
    }

    fn ws_then_expr_or_empty(&mut self) -> Result<Expr, XqError> {
        self.ws();
        if self.peek() == Some(b'}') {
            return Ok(Expr::Empty);
        }
        self.expr()
    }

    fn function_call(&mut self) -> Result<Expr, XqError> {
        let name = self.qname()?;
        self.expect("(")?;
        let mut args = Vec::new();
        self.ws();
        if !self.eat(")") {
            loop {
                args.push(self.expr_single()?);
                self.ws();
                if self.eat(",") {
                    continue;
                }
                self.expect(")")?;
                break;
            }
        }
        // Strip the fn: prefix; built-ins are matched on local name.
        let local = name.strip_prefix("fn:").unwrap_or(&name).to_owned();
        Ok(Expr::Call { name: local, args })
    }

    fn string_literal(&mut self) -> Result<String, XqError> {
        self.ws();
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected string literal")),
        };
        self.pos += 1;
        let mut raw = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string literal")),
                Some(c) if c == quote => {
                    if self.peek_at(1) == Some(quote) {
                        raw.push(quote as char);
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        break;
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while self.peek().is_some_and(|c| c != quote) {
                        self.pos += 1;
                    }
                    raw.push_str(
                        std::str::from_utf8(&self.src[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in string literal"))?,
                    );
                }
            }
        }
        decode_entities(&raw).map_err(|m| self.err(m))
    }

    fn number(&mut self) -> Result<Expr, XqError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_double = false;
        if self.peek() == Some(b'.') && !self.starts("..") {
            is_double = true;
            self.pos += 1;
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_double = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|c| c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        // Invariant: only ASCII digits / `.` / `e` were consumed, so the
        // slice is valid UTF-8.
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        if is_double {
            text.parse::<f64>()
                .map(Expr::DblLit)
                .map_err(|_| self.err(format!("bad numeric literal `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Expr::IntLit)
                .map_err(|_| self.err(format!("bad integer literal `{text}`")))
        }
    }

    // ------------------------------------------- direct constructors

    fn direct_constructor(&mut self) -> Result<Expr, XqError> {
        self.enter()?;
        let r = self.direct_constructor_inner();
        self.leave();
        r
    }

    fn direct_constructor_inner(&mut self) -> Result<Expr, XqError> {
        self.expect("<")?;
        let name = self.qname()?;
        let mut attrs = Vec::new();
        loop {
            self.ws();
            if self.eat("/>") {
                return Ok(Expr::DirElement {
                    name,
                    attrs,
                    content: vec![],
                });
            }
            if self.eat(">") {
                break;
            }
            let attr_name = self.qname()?;
            self.ws();
            self.expect("=")?;
            self.ws();
            let value = self.attr_value_template()?;
            attrs.push(DirAttr {
                name: attr_name,
                value,
            });
        }
        let content = self.element_content(&name)?;
        Ok(Expr::DirElement {
            name,
            attrs,
            content,
        })
    }

    fn attr_value_template(&mut self) -> Result<Vec<AttrPart>, XqError> {
        let quote = match self.peek() {
            Some(q @ (b'"' | b'\'')) => q,
            _ => return Err(self.err("expected quoted attribute value")),
        };
        self.pos += 1;
        let mut parts = Vec::new();
        let mut lit = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated attribute value")),
                Some(c) if c == quote => {
                    if self.peek_at(1) == Some(quote) {
                        lit.push(quote as char);
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        break;
                    }
                }
                Some(b'{') => {
                    if self.peek_at(1) == Some(b'{') {
                        lit.push('{');
                        self.pos += 2;
                    } else {
                        if !lit.is_empty() {
                            parts.push(AttrPart::Lit(std::mem::take(&mut lit)));
                        }
                        self.pos += 1;
                        let e = self.expr()?;
                        self.expect("}")?;
                        parts.push(AttrPart::Expr(e));
                    }
                }
                Some(b'}') => {
                    if self.peek_at(1) == Some(b'}') {
                        lit.push('}');
                        self.pos += 2;
                    } else {
                        return Err(self.err("bare `}` in attribute value"));
                    }
                }
                Some(b'&') => {
                    let semi = self.src[self.pos..]
                        .iter()
                        .position(|&b| b == b';')
                        .ok_or_else(|| self.err("unterminated entity reference"))?;
                    // Invariant: the slice is delimited by ASCII `&`/`;`
                    // inside a `&str`, so it sits on char boundaries.
                    let ent =
                        std::str::from_utf8(&self.src[self.pos..self.pos + semi + 1]).unwrap();
                    lit.push_str(&decode_entities(ent).map_err(|m| self.err(m))?);
                    self.pos += semi + 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while self
                        .peek()
                        .is_some_and(|c| c != quote && c != b'{' && c != b'}' && c != b'&')
                    {
                        self.pos += 1;
                    }
                    // Invariant: the scan stops only at ASCII delimiters,
                    // so the slice sits on char boundaries of the source.
                    lit.push_str(std::str::from_utf8(&self.src[start..self.pos]).unwrap());
                }
            }
        }
        if !lit.is_empty() || parts.is_empty() {
            parts.push(AttrPart::Lit(lit));
        }
        Ok(parts)
    }

    fn element_content(&mut self, name: &str) -> Result<Vec<ElemContent>, XqError> {
        let mut content = Vec::new();
        let mut text = String::new();
        let flush = |text: &mut String, content: &mut Vec<ElemContent>| {
            // Boundary whitespace (whitespace-only text) is stripped, per
            // the XQuery default boundary-space policy.
            if !text.is_empty() && !text.chars().all(char::is_whitespace) {
                content.push(ElemContent::Text(std::mem::take(text)));
            } else {
                text.clear();
            }
        };
        loop {
            match self.peek() {
                None => return Err(self.err(format!("unterminated element `<{name}>`"))),
                Some(b'<') => {
                    if self.starts("</") {
                        flush(&mut text, &mut content);
                        self.pos += 2;
                        let end = self.qname()?;
                        if end != name {
                            return Err(
                                self.err(format!("mismatched end tag `</{end}>` for `<{name}>`"))
                            );
                        }
                        self.ws();
                        self.expect(">")?;
                        return Ok(content);
                    }
                    if self.starts("<!--") {
                        // Comments in constructor content are dropped.
                        self.pos += 4;
                        while !self.starts("-->") {
                            if self.at_end() {
                                return Err(self.err("unterminated comment"));
                            }
                            self.pos += 1;
                        }
                        self.pos += 3;
                        continue;
                    }
                    if self.starts("<![CDATA[") {
                        self.pos += 9;
                        let start = self.pos;
                        while !self.starts("]]>") {
                            if self.at_end() {
                                return Err(self.err("unterminated CDATA"));
                            }
                            self.pos += 1;
                        }
                        // Invariant: `]]>` is ASCII, so the slice sits on
                        // char boundaries of the source.
                        text.push_str(std::str::from_utf8(&self.src[start..self.pos]).unwrap());
                        self.pos += 3;
                        continue;
                    }
                    flush(&mut text, &mut content);
                    let child = self.direct_constructor()?;
                    content.push(ElemContent::Expr(child));
                }
                Some(b'{') => {
                    if self.peek_at(1) == Some(b'{') {
                        text.push('{');
                        self.pos += 2;
                        continue;
                    }
                    flush(&mut text, &mut content);
                    self.pos += 1;
                    let e = self.expr()?;
                    self.expect("}")?;
                    content.push(ElemContent::Expr(e));
                }
                Some(b'}') => {
                    if self.peek_at(1) == Some(b'}') {
                        text.push('}');
                        self.pos += 2;
                    } else {
                        return Err(self.err("bare `}` in element content"));
                    }
                }
                Some(b'&') => {
                    let semi = self.src[self.pos..]
                        .iter()
                        .position(|&b| b == b';')
                        .ok_or_else(|| self.err("unterminated entity reference"))?;
                    // Invariant: the slice is delimited by ASCII `&`/`;`
                    // inside a `&str`, so it sits on char boundaries.
                    let ent =
                        std::str::from_utf8(&self.src[self.pos..self.pos + semi + 1]).unwrap();
                    text.push_str(&decode_entities(ent).map_err(|m| self.err(m))?);
                    self.pos += semi + 1;
                }
                Some(_) => {
                    let start = self.pos;
                    while self
                        .peek()
                        .is_some_and(|c| c != b'<' && c != b'{' && c != b'}' && c != b'&')
                    {
                        self.pos += 1;
                    }
                    text.push_str(
                        std::str::from_utf8(&self.src[start..self.pos])
                            .map_err(|_| self.err("invalid UTF-8 in element content"))?,
                    );
                }
            }
        }
    }
}

fn axis_from_name(name: &str) -> Option<Axis> {
    Some(match name {
        "child" => Axis::Child,
        "descendant" => Axis::Descendant,
        "descendant-or-self" => Axis::DescendantOrSelf,
        "self" => Axis::SelfAxis,
        "attribute" => Axis::Attribute,
        "parent" => Axis::Parent,
        "ancestor" => Axis::Ancestor,
        "ancestor-or-self" => Axis::AncestorOrSelf,
        "following-sibling" => Axis::FollowingSibling,
        "preceding-sibling" => Axis::PrecedingSibling,
        "following" => Axis::Following,
        "preceding" => Axis::Preceding,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Expr {
        parse_module(s)
            .unwrap_or_else(|e| panic!("parse failed for `{s}`: {e}"))
            .body
    }

    #[test]
    fn literals() {
        assert_eq!(parse("42"), Expr::IntLit(42));
        assert_eq!(parse("3.5"), Expr::DblLit(3.5));
        assert_eq!(parse("1e3"), Expr::DblLit(1000.0));
        assert_eq!(parse(r#""he""llo""#), Expr::StrLit("he\"llo".into()));
        assert_eq!(parse("'a&lt;b'"), Expr::StrLit("a<b".into()));
        assert_eq!(parse("()"), Expr::Empty);
    }

    #[test]
    fn sequences_and_arith() {
        let e = parse("1, 2 + 3 * 4");
        match e {
            Expr::Sequence(items) => {
                assert_eq!(items.len(), 2);
                // 2 + (3 * 4)
                match &items[1] {
                    Expr::Binary {
                        op: BinOp::Add, r, ..
                    } => {
                        assert!(matches!(**r, Expr::Binary { op: BinOp::Mul, .. }));
                    }
                    other => panic!("unexpected: {other:?}"),
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn paths_desugar() {
        // $t//(c|d) — the paper's Expression (1): the parenthesised union
        // is a filter source, reached via two explicit steps.
        let e = parse("$t//c");
        match e {
            Expr::PathStep {
                input,
                axis: Axis::Child,
                test: NodeTestAst::Name(n),
                ..
            } => {
                assert_eq!(n, "c");
                assert!(matches!(
                    *input,
                    Expr::PathStep {
                        axis: Axis::DescendantOrSelf,
                        test: NodeTestAst::AnyKind,
                        ..
                    }
                ));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn union_in_path() {
        // The paper's Expression (1): the parenthesised union is a general
        // expression applied per context node (PathSeq).
        let e = parse("$t//(c|d)");
        match e {
            Expr::PathSeq { input, step } => {
                assert!(matches!(
                    *input,
                    Expr::PathStep {
                        axis: Axis::DescendantOrSelf,
                        ..
                    }
                ));
                assert!(matches!(
                    *step,
                    Expr::Binary {
                        op: BinOp::Union,
                        ..
                    }
                ));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn attribute_and_abbrev_steps() {
        let e = parse("$p/profile/@income");
        match e {
            Expr::PathStep {
                axis: Axis::Attribute,
                test: NodeTestAst::Name(n),
                ..
            } => assert_eq!(n, "income"),
            other => panic!("unexpected: {other:?}"),
        }
        let e = parse("$x/..");
        assert!(matches!(
            e,
            Expr::PathStep {
                axis: Axis::Parent,
                ..
            }
        ));
    }

    #[test]
    fn predicates() {
        let e = parse("$a/b[2]/c[@id = 'x']");
        match e {
            Expr::PathStep { predicates, .. } => {
                assert_eq!(predicates.len(), 1);
                assert!(matches!(
                    predicates[0],
                    Expr::Binary {
                        op: BinOp::GenEq,
                        ..
                    }
                ));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn flwor_full() {
        let q = "for $x at $p in (1,2,3) let $y := $x * 2 where $y > 2 \
                 order by $y descending return ($x, $y)";
        match parse(q) {
            Expr::Flwor {
                clauses, order_by, ..
            } => {
                assert_eq!(clauses.len(), 3);
                assert!(matches!(
                    &clauses[0],
                    Clause::For {
                        pos_var: Some(p),
                        ..
                    } if p == "p"
                ));
                assert!(matches!(&clauses[1], Clause::Let { .. }));
                assert!(matches!(&clauses[2], Clause::Where(_)));
                assert_eq!(order_by.len(), 1);
                assert!(order_by[0].descending);
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn multi_var_for_desugars_to_clauses() {
        match parse("for $x in (1,2), $y in (3,4) return $x") {
            Expr::Flwor { clauses, .. } => assert_eq!(clauses.len(), 2),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn quantifiers() {
        match parse("some $x in (1,2) satisfies $x = 2") {
            Expr::Quantified {
                quant: Quant::Some, ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
        // multi-binding desugars to nesting
        match parse("every $x in (1), $y in (2) satisfies $x < $y") {
            Expr::Quantified {
                quant: Quant::Every,
                satisfies,
                ..
            } => assert!(matches!(*satisfies, Expr::Quantified { .. })),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn if_and_comparisons() {
        match parse("if ($a eq 1) then 2 else 3") {
            Expr::If { cond, .. } => {
                assert!(matches!(
                    *cond,
                    Expr::Binary {
                        op: BinOp::ValEq,
                        ..
                    }
                ))
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(matches!(
            parse("$a << $b"),
            Expr::Binary {
                op: BinOp::Before,
                ..
            }
        ));
        assert!(matches!(
            parse("$a is $b"),
            Expr::Binary { op: BinOp::Is, .. }
        ));
    }

    #[test]
    fn ordering_scopes_and_fn_unordered() {
        match parse("unordered { $t//c }") {
            Expr::OrderingScope {
                mode: OrderingMode::Unordered,
                ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
        match parse("fn:unordered($x)") {
            Expr::Call { name, args } => {
                assert_eq!(name, "unordered");
                assert_eq!(args.len(), 1);
            }
            other => panic!("unexpected: {other:?}"),
        }
        match parse("ordered { 1 }") {
            Expr::OrderingScope {
                mode: OrderingMode::Ordered,
                ..
            } => {}
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn prolog_declarations() {
        let m =
            parse_module("declare ordering unordered; declare variable $x := 1; $x + 1").unwrap();
        assert_eq!(m.ordering, OrderingMode::Unordered);
        assert_eq!(m.variables.len(), 1);
    }

    #[test]
    fn direct_constructor_with_templates() {
        // Expression (4) of the paper.
        let q = r#"for $x at $p in ("a","b","c") return <e pos="{ $p }">{ $x }</e>"#;
        match parse(q) {
            Expr::Flwor { ret, .. } => match *ret {
                Expr::DirElement {
                    name,
                    attrs,
                    content,
                } => {
                    assert_eq!(name, "e");
                    assert_eq!(attrs.len(), 1);
                    assert_eq!(attrs[0].name, "pos");
                    assert!(matches!(attrs[0].value[0], AttrPart::Expr(_)));
                    assert_eq!(content.len(), 1);
                }
                other => panic!("unexpected: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn nested_direct_constructors_and_boundary_space() {
        let q = "<a> <b>text</b> {1} </a>";
        match parse(q) {
            Expr::DirElement { content, .. } => {
                // whitespace-only runs dropped: <b> element and {1} remain
                assert_eq!(content.len(), 2);
                assert!(matches!(
                    content[0],
                    ElemContent::Expr(Expr::DirElement { .. })
                ));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn computed_constructors() {
        assert!(matches!(parse("text { 'x' }"), Expr::TextConstructor(_)));
        assert!(matches!(
            parse("attribute id { 1 }"),
            Expr::AttrConstructor { .. }
        ));
        assert!(matches!(
            parse("element foo { () }"),
            Expr::ElemConstructor { .. }
        ));
    }

    #[test]
    fn node_set_ops_and_range() {
        assert!(matches!(
            parse("$a | $b"),
            Expr::Binary {
                op: BinOp::Union,
                ..
            }
        ));
        assert!(matches!(
            parse("$a intersect $b"),
            Expr::Binary {
                op: BinOp::Intersect,
                ..
            }
        ));
        assert!(matches!(
            parse("$a except $b"),
            Expr::Binary {
                op: BinOp::Except,
                ..
            }
        ));
        assert!(matches!(
            parse("1 to 10"),
            Expr::Binary { op: BinOp::To, .. }
        ));
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(parse("(: hi (: nested :) :) 42"), Expr::IntLit(42));
    }

    #[test]
    fn kind_tests() {
        assert!(matches!(
            parse("$a/text()"),
            Expr::PathStep {
                test: NodeTestAst::Text,
                ..
            }
        ));
        assert!(matches!(
            parse("$a/node()"),
            Expr::PathStep {
                test: NodeTestAst::AnyKind,
                ..
            }
        ));
        assert!(matches!(
            parse("$a/*"),
            Expr::PathStep {
                test: NodeTestAst::Wildcard,
                ..
            }
        ));
    }

    #[test]
    fn leading_slash_paths() {
        assert!(matches!(parse("/"), Expr::Root));
        match parse("/site/regions") {
            Expr::PathStep { input, .. } => {
                assert!(matches!(*input, Expr::PathStep { .. }));
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(matches!(parse("//item"), Expr::PathStep { .. }));
    }

    #[test]
    fn error_positions() {
        let err = parse_module("1 +").unwrap_err();
        assert!(err.offset >= 3);
        assert!(parse_module("for $x in").is_err());
        assert!(parse_module("<a><b></a>").is_err());
    }

    #[test]
    fn xmark_q1_parses() {
        let q = r#"
            let $auction := doc("auction.xml")
            return for $b in $auction/site/people/person[@id = "person0"]
                   return $b/name/text()"#;
        parse(q);
    }

    #[test]
    fn xmark_q11_parses() {
        let q = r#"
            let $auction := doc("auction.xml")
            for $p in $auction/site/people/person
            let $l := for $i in $auction/site/open_auctions/open_auction/initial
                      where $p/profile/@income > 5000 * $i
                      return $i
            return <items name="{ $p/name }">{ fn:count($l) }</items>"#;
        parse(q);
    }
}
