//! Abstract syntax of the supported XQuery dialect.
//!
//! The AST doubles as the "XQuery Core" representation after
//! [`normalize`](crate::normalize::normalize): normalization only inserts
//! [`Expr::Unordered`] wrappers and sets flags, it does not change the
//! shape of the tree (see the module docs of this crate for why the
//! paper's Figure 4 push-down rules are *not* executed at this level).

use exrquy_xml::Axis;

/// Global ordering mode (query prolog `declare ordering`), also set
/// locally by `ordered { }` / `unordered { }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum OrderingMode {
    /// The "perceived default" (§2).
    #[default]
    Ordered,
    Unordered,
}

/// A parsed query: prolog declarations plus body expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Module {
    /// `declare ordering ordered|unordered;`
    pub ordering: OrderingMode,
    /// Top-level `declare variable $x := e;` bindings, in order.
    pub variables: Vec<(String, Expr)>,
    pub body: Expr,
}

/// Binary operators. Grouped by family; the compiler treats each family
/// differently (general comparisons are existential and order-indifferent,
/// node-set operations establish document order, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    // arithmetic
    Add,
    Sub,
    Mul,
    Div,
    IDiv,
    Mod,
    // general comparisons (existential; normalize wraps operands unordered)
    GenEq,
    GenNe,
    GenLt,
    GenLe,
    GenGt,
    GenGe,
    // value comparisons
    ValEq,
    ValNe,
    ValLt,
    ValLe,
    ValGt,
    ValGe,
    // node comparisons
    Is,
    Before, // <<
    After,  // >>
    // logic
    And,
    Or,
    // node-set operations (doc-order establishing, duplicate-eliminating)
    Union,
    Intersect,
    Except,
    // integer range
    To,
}

impl BinOp {
    /// Whether this is one of the six general comparisons.
    pub fn is_general_comparison(self) -> bool {
        matches!(
            self,
            BinOp::GenEq | BinOp::GenNe | BinOp::GenLt | BinOp::GenLe | BinOp::GenGt | BinOp::GenGe
        )
    }

    /// Whether this is a node-set operation (`|`, `intersect`, `except`).
    pub fn is_node_set_op(self) -> bool {
        matches!(self, BinOp::Union | BinOp::Intersect | BinOp::Except)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Minus,
    Plus,
}

/// Quantifier kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quant {
    Some,
    Every,
}

/// FLWOR clauses preceding `return`.
#[derive(Debug, Clone, PartialEq)]
pub enum Clause {
    For {
        var: String,
        /// Positional variable (`at $p`).
        pos_var: Option<String>,
        seq: Expr,
    },
    Let {
        var: String,
        expr: Expr,
    },
    Where(Expr),
}

/// One `order by` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderSpec {
    pub key: Expr,
    pub descending: bool,
}

/// Node tests in surface syntax (names are resolved against the document's
/// name pool at compile time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeTestAst {
    AnyKind,
    Wildcard,
    Name(String),
    Text,
    Comment,
    Pi(Option<String>),
    Element,
    DocumentNode,
}

/// Attribute value template part: literal text or enclosed expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrPart {
    Lit(String),
    Expr(Expr),
}

/// A direct attribute `name="…{e}…"`.
#[derive(Debug, Clone, PartialEq)]
pub struct DirAttr {
    pub name: String,
    pub value: Vec<AttrPart>,
}

/// Direct element content.
#[derive(Debug, Clone, PartialEq)]
pub enum ElemContent {
    /// Literal character data.
    Text(String),
    /// Enclosed expression `{ e }`.
    Expr(Expr),
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    IntLit(i64),
    DblLit(f64),
    StrLit(String),
    /// `()`
    Empty,
    /// `e1, e2, …` (n ≥ 2)
    Sequence(Vec<Expr>),
    Var(String),
    /// `.`
    ContextItem,
    /// Leading `/` — the root (document node) of the context item's tree.
    Root,
    /// One location step applied to `input`: `input/axis::test[preds…]`.
    PathStep {
        input: Box<Expr>,
        axis: Axis,
        test: NodeTestAst,
        predicates: Vec<Expr>,
    },
    /// Predicate on a non-step expression: `e[p]`.
    Filter {
        input: Box<Expr>,
        predicate: Box<Expr>,
    },
    /// General step expression: `input/step` where `step` is not a plain
    /// axis step (e.g. `$t//(c|d)` — the paper's Expression (1)). `step`
    /// is evaluated once per node of `input` with the context item bound;
    /// node results are combined in document order, duplicate-free.
    PathSeq {
        input: Box<Expr>,
        step: Box<Expr>,
    },
    Flwor {
        clauses: Vec<Clause>,
        order_by: Vec<OrderSpec>,
        /// Set by normalization when `order_by` is non-empty: the tuple
        /// stream feeding the sort may be generated in arbitrary order
        /// (order-indifference context (f) of §1).
        reordered: bool,
        ret: Box<Expr>,
    },
    Quantified {
        quant: Quant,
        var: String,
        domain: Box<Expr>,
        satisfies: Box<Expr>,
    },
    If {
        cond: Box<Expr>,
        then: Box<Expr>,
        els: Box<Expr>,
    },
    Binary {
        op: BinOp,
        l: Box<Expr>,
        r: Box<Expr>,
    },
    Unary {
        op: UnOp,
        expr: Box<Expr>,
    },
    /// Function call (built-ins only; the `fn:` prefix is stripped).
    Call {
        name: String,
        args: Vec<Expr>,
    },
    /// `fn:unordered(e)` after normalization, and `unordered { e }` scopes
    /// reduced to expression position. Sequence order of the value is
    /// arbitrary (the paper's Rule FN:UNORDERED applies).
    Unordered(Box<Expr>),
    /// `unordered { e }` / `ordered { e }` — sets the ordering mode for
    /// the subtree (compiler switches LOC/BIND ⇄ LOC#/BIND#).
    OrderingScope {
        mode: OrderingMode,
        expr: Box<Expr>,
    },
    /// Direct element constructor.
    DirElement {
        name: String,
        attrs: Vec<DirAttr>,
        content: Vec<ElemContent>,
    },
    /// Computed text constructor `text { e }`.
    TextConstructor(Box<Expr>),
    /// Computed attribute constructor `attribute name { e }`.
    AttrConstructor {
        name: String,
        value: Box<Expr>,
    },
    /// Computed element constructor `element name { e }`.
    ElemConstructor {
        name: String,
        content: Box<Expr>,
    },
}

impl Expr {
    /// Convenience constructor for boxed binaries.
    pub fn binary(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Binary {
            op,
            l: Box::new(l),
            r: Box::new(r),
        }
    }

    /// Call `fn:unordered` on `e` (used by normalization).
    pub fn unordered(e: Expr) -> Expr {
        Expr::Unordered(Box::new(e))
    }

    /// Free variables of the expression (used by the compiler's
    /// loop-lifting depth analysis and by join recognition).
    pub fn free_vars(&self) -> Vec<String> {
        let mut acc = Vec::new();
        self.collect_free(&mut Vec::new(), &mut acc);
        acc.sort();
        acc.dedup();
        acc
    }

    fn collect_free(&self, bound: &mut Vec<String>, acc: &mut Vec<String>) {
        match self {
            Expr::Var(v) => {
                if !bound.contains(v) {
                    acc.push(v.clone());
                }
            }
            // The context item is treated as the pseudo-variable "." bound
            // by steps, predicates and PathSeq.
            Expr::ContextItem | Expr::Root => {
                if !bound.contains(&".".to_string()) {
                    acc.push(".".into());
                }
            }
            // position()/last() reference the focus like pseudo-variables
            // (" position"/" last", unspellable as user variables); the
            // compiler's predicate scopes bind them.
            Expr::Call { name, args }
                if (name == "position" || name == "last") && args.is_empty() =>
            {
                let pseudo = format!(" {name}");
                if !bound.contains(&pseudo) {
                    acc.push(pseudo);
                }
            }
            Expr::PathStep {
                input, predicates, ..
            } => {
                input.collect_free(bound, acc);
                bound.push(".".into());
                bound.push(" position".into());
                bound.push(" last".into());
                for p in predicates {
                    p.collect_free(bound, acc);
                }
                bound.truncate(bound.len() - 3);
            }
            Expr::Filter { input, predicate } => {
                input.collect_free(bound, acc);
                bound.push(".".into());
                bound.push(" position".into());
                bound.push(" last".into());
                predicate.collect_free(bound, acc);
                bound.truncate(bound.len() - 3);
            }
            Expr::PathSeq { input, step } => {
                input.collect_free(bound, acc);
                bound.push(".".into());
                step.collect_free(bound, acc);
                bound.pop();
            }
            Expr::Flwor {
                clauses,
                order_by,
                ret,
                ..
            } => {
                let mark = bound.len();
                for c in clauses {
                    match c {
                        Clause::For { var, pos_var, seq } => {
                            seq.collect_free(bound, acc);
                            bound.push(var.clone());
                            if let Some(p) = pos_var {
                                bound.push(p.clone());
                            }
                        }
                        Clause::Let { var, expr } => {
                            expr.collect_free(bound, acc);
                            bound.push(var.clone());
                        }
                        Clause::Where(e) => e.collect_free(bound, acc),
                    }
                }
                for o in order_by {
                    o.key.collect_free(bound, acc);
                }
                ret.collect_free(bound, acc);
                bound.truncate(mark);
            }
            Expr::Quantified {
                var,
                domain,
                satisfies,
                ..
            } => {
                domain.collect_free(bound, acc);
                bound.push(var.clone());
                satisfies.collect_free(bound, acc);
                bound.pop();
            }
            other => {
                other.for_each_child(|c| c.collect_free(bound, acc));
            }
        }
    }

    /// Visit direct sub-expressions mutably, in the same order as
    /// [`Expr::for_each_child`]. The order agreement is load-bearing: the
    /// AST shrinker numbers nodes with the immutable walk and edits them
    /// with this one.
    pub fn for_each_child_mut(&mut self, mut f: impl FnMut(&mut Expr)) {
        match self {
            Expr::IntLit(_)
            | Expr::DblLit(_)
            | Expr::StrLit(_)
            | Expr::Empty
            | Expr::Var(_)
            | Expr::ContextItem
            | Expr::Root => {}
            Expr::Sequence(es) => es.iter_mut().for_each(&mut f),
            Expr::PathStep {
                input, predicates, ..
            } => {
                f(input);
                predicates.iter_mut().for_each(&mut f);
            }
            Expr::Filter { input, predicate } => {
                f(input);
                f(predicate);
            }
            Expr::PathSeq { input, step } => {
                f(input);
                f(step);
            }
            Expr::Flwor {
                clauses,
                order_by,
                ret,
                ..
            } => {
                for c in clauses {
                    match c {
                        Clause::For { seq, .. } => f(seq),
                        Clause::Let { expr, .. } => f(expr),
                        Clause::Where(e) => f(e),
                    }
                }
                for o in order_by {
                    f(&mut o.key);
                }
                f(ret);
            }
            Expr::Quantified {
                domain, satisfies, ..
            } => {
                f(domain);
                f(satisfies);
            }
            Expr::If { cond, then, els } => {
                f(cond);
                f(then);
                f(els);
            }
            Expr::Binary { l, r, .. } => {
                f(l);
                f(r);
            }
            Expr::Unary { expr, .. } => f(expr),
            Expr::Call { args, .. } => args.iter_mut().for_each(&mut f),
            Expr::Unordered(e) => f(e),
            Expr::OrderingScope { expr, .. } => f(expr),
            Expr::DirElement { attrs, content, .. } => {
                for a in attrs {
                    for p in &mut a.value {
                        if let AttrPart::Expr(e) = p {
                            f(e);
                        }
                    }
                }
                for c in content {
                    if let ElemContent::Expr(e) = c {
                        f(e);
                    }
                }
            }
            Expr::TextConstructor(e) => f(e),
            Expr::AttrConstructor { value, .. } => f(value),
            Expr::ElemConstructor { content, .. } => f(content),
        }
    }

    /// Visit direct sub-expressions (not descending into binding
    /// structure — callers that care about scoping handle Flwor/Quantified
    /// themselves, as `collect_free` does).
    pub fn for_each_child<'a>(&'a self, mut f: impl FnMut(&'a Expr)) {
        match self {
            Expr::IntLit(_)
            | Expr::DblLit(_)
            | Expr::StrLit(_)
            | Expr::Empty
            | Expr::Var(_)
            | Expr::ContextItem
            | Expr::Root => {}
            Expr::Sequence(es) => es.iter().for_each(&mut f),
            Expr::PathStep {
                input, predicates, ..
            } => {
                f(input);
                predicates.iter().for_each(&mut f);
            }
            Expr::Filter { input, predicate } => {
                f(input);
                f(predicate);
            }
            Expr::PathSeq { input, step } => {
                f(input);
                f(step);
            }
            Expr::Flwor {
                clauses,
                order_by,
                ret,
                ..
            } => {
                for c in clauses {
                    match c {
                        Clause::For { seq, .. } => f(seq),
                        Clause::Let { expr, .. } => f(expr),
                        Clause::Where(e) => f(e),
                    }
                }
                for o in order_by {
                    f(&o.key);
                }
                f(ret);
            }
            Expr::Quantified {
                domain, satisfies, ..
            } => {
                f(domain);
                f(satisfies);
            }
            Expr::If { cond, then, els } => {
                f(cond);
                f(then);
                f(els);
            }
            Expr::Binary { l, r, .. } => {
                f(l);
                f(r);
            }
            Expr::Unary { expr, .. } => f(expr),
            Expr::Call { args, .. } => args.iter().for_each(&mut f),
            Expr::Unordered(e) => f(e),
            Expr::OrderingScope { expr, .. } => f(expr),
            Expr::DirElement { attrs, content, .. } => {
                for a in attrs {
                    for p in &a.value {
                        if let AttrPart::Expr(e) = p {
                            f(e);
                        }
                    }
                }
                for c in content {
                    if let ElemContent::Expr(e) = c {
                        f(e);
                    }
                }
            }
            Expr::TextConstructor(e) => f(e),
            Expr::AttrConstructor { value, .. } => f(value),
            Expr::ElemConstructor { content, .. } => f(content),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_vars_respect_flwor_scoping() {
        // for $x in $src return ($x, $y)
        let e = Expr::Flwor {
            clauses: vec![Clause::For {
                var: "x".into(),
                pos_var: None,
                seq: Expr::Var("src".into()),
            }],
            order_by: vec![],
            reordered: false,
            ret: Box::new(Expr::Sequence(vec![
                Expr::Var("x".into()),
                Expr::Var("y".into()),
            ])),
        };
        assert_eq!(e.free_vars(), vec!["src".to_string(), "y".to_string()]);
    }

    #[test]
    fn free_vars_respect_quantifier_scoping() {
        let e = Expr::Quantified {
            quant: Quant::Some,
            var: "x".into(),
            domain: Box::new(Expr::Var("d".into())),
            satisfies: Box::new(Expr::binary(
                BinOp::GenEq,
                Expr::Var("x".into()),
                Expr::Var("z".into()),
            )),
        };
        assert_eq!(e.free_vars(), vec!["d".to_string(), "z".to_string()]);
    }

    #[test]
    fn positional_var_is_bound() {
        let e = Expr::Flwor {
            clauses: vec![Clause::For {
                var: "x".into(),
                pos_var: Some("p".into()),
                seq: Expr::Empty,
            }],
            order_by: vec![],
            reordered: false,
            ret: Box::new(Expr::Var("p".into())),
        };
        assert!(e.free_vars().is_empty());
    }
}
