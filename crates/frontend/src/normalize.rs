//! Normalization `J·K`: inserting order indifference at the language level.
//!
//! The paper (§2.2) shows that ordering mode `unordered` *cannot* be fully
//! expressed by XQuery Core rewriting (Rule FOR breaks positional
//! variables and hides permutation freedom), so only the rules that are
//! valid in **either** ordering mode are applied here:
//!
//! * `FN:COUNT` and friends — aggregate arguments are wrapped in
//!   `fn:unordered(·)`: `fn:count(e)` ⇒ `fn:count(fn:unordered(JeK))`.
//!   Applied to `count`, `sum`, `avg`, `max`, `min`, `empty`, `exists`,
//!   `boolean`, `not`, `distinct-values`.
//! * `QUANT` — quantifier domains are wrapped: `some $x in e1 satisfies
//!   e2` ⇒ `some $x in fn:unordered(Je1K) satisfies Je2K`.
//! * General comparisons have existential semantics; both operands are
//!   wrapped (the paper derives this from the `some`-based normalization
//!   of `e1 = e2`).
//! * FLWOR blocks with an `order by` clause are flagged `reordered`: the
//!   tuple stream feeding the sort may be produced in arbitrary order
//!   (context (f) of §1).
//!
//! In addition, `fn:unordered(e)` calls are reified into
//! [`Expr::Unordered`] nodes so the compiler's Rule `FN:UNORDERED` can
//! match them structurally. The mode-dependent rules (`FOR`, `STEP`,
//! `UNION` of Figure 4) are realized *algebraically* by the compiler
//! (Rules `LOC#`/`BIND#`), exactly as the paper prescribes.

use crate::ast::*;

/// Built-in functions that are indifferent to the sequence order of their
/// (first) argument.
pub const ORDER_INDIFFERENT_FNS: &[&str] = &[
    "count",
    "sum",
    "avg",
    "max",
    "min",
    "empty",
    "exists",
    "boolean",
    "not",
    "distinct-values",
];

/// Normalize a whole module with order-indifference exploitation on.
pub fn normalize(m: &Module) -> Module {
    normalize_opts(m, true)
}

/// Normalize a whole module. With `exploit = false` this produces the
/// *baseline* of the paper's §5/§6 comparison: no `fn:unordered(·)`
/// insertions, no `reordered` flags, and explicit `fn:unordered()` calls
/// degrade to the identity function ("fn:unordered() is commonly
/// implemented as the identity function", §6).
pub fn normalize_opts(m: &Module, exploit: bool) -> Module {
    Module {
        ordering: m.ordering,
        variables: m
            .variables
            .iter()
            .map(|(n, e)| (n.clone(), norm_with(e, exploit)))
            .collect(),
        body: norm_with(&m.body, exploit),
    }
}

/// Normalize one expression with exploitation on.
pub fn norm(e: &Expr) -> Expr {
    norm_with(e, true)
}

/// Wrap in `fn:unordered(·)` when exploitation is on (idempotent).
fn wrap_unordered(e: Expr, exploit: bool) -> Expr {
    if !exploit {
        return e;
    }
    match e {
        Expr::Unordered(i) => Expr::Unordered(i),
        other => Expr::unordered(other),
    }
}

/// Normalize one expression (recursive).
pub fn norm_with(e: &Expr, exploit: bool) -> Expr {
    let norm = |e: &Expr| norm_with(e, exploit);
    match e {
        Expr::IntLit(_)
        | Expr::DblLit(_)
        | Expr::StrLit(_)
        | Expr::Empty
        | Expr::Var(_)
        | Expr::ContextItem
        | Expr::Root => e.clone(),

        Expr::Sequence(items) => Expr::Sequence(items.iter().map(norm).collect()),

        Expr::PathStep {
            input,
            axis,
            test,
            predicates,
        } => Expr::PathStep {
            input: Box::new(norm(input)),
            axis: *axis,
            test: test.clone(),
            predicates: predicates.iter().map(norm).collect(),
        },

        Expr::Filter { input, predicate } => Expr::Filter {
            input: Box::new(norm(input)),
            predicate: Box::new(norm(predicate)),
        },

        Expr::PathSeq { input, step } => Expr::PathSeq {
            input: Box::new(norm(input)),
            step: Box::new(norm(step)),
        },

        Expr::Flwor {
            clauses,
            order_by,
            ret,
            ..
        } => {
            let clauses = clauses
                .iter()
                .map(|c| match c {
                    Clause::For { var, pos_var, seq } => Clause::For {
                        var: var.clone(),
                        pos_var: pos_var.clone(),
                        seq: norm(seq),
                    },
                    Clause::Let { var, expr } => Clause::Let {
                        var: var.clone(),
                        expr: norm(expr),
                    },
                    Clause::Where(e) => Clause::Where(norm(e)),
                })
                .collect();
            let order_by: Vec<OrderSpec> = order_by
                .iter()
                .map(|o| OrderSpec {
                    key: norm(&o.key),
                    descending: o.descending,
                })
                .collect();
            // Context (f): an order by re-sorts the tuple stream, so the
            // iteration order in which tuples are generated is unobservable.
            let reordered = exploit && !order_by.is_empty();
            Expr::Flwor {
                clauses,
                order_by,
                reordered,
                ret: Box::new(norm(ret)),
            }
        }

        Expr::Quantified {
            quant,
            var,
            domain,
            satisfies,
        } => Expr::Quantified {
            quant: *quant,
            var: var.clone(),
            // Rule QUANT: the quantifier is indifferent to the order of its
            // domain — in either ordering mode.
            domain: Box::new(wrap_unordered(norm(domain), exploit)),
            satisfies: Box::new(norm(satisfies)),
        },

        Expr::If { cond, then, els } => Expr::If {
            // The condition feeds fn:boolean (EBV): order-indifferent.
            cond: Box::new(wrap_unordered(norm(cond), exploit)),
            then: Box::new(norm(then)),
            els: Box::new(norm(els)),
        },

        Expr::Binary { op, l, r } => {
            let (l, r) = (norm(l), norm(r));
            if op.is_general_comparison() && exploit {
                // Existential semantics: both operand orders unobservable.
                Expr::binary(*op, Expr::unordered(l), Expr::unordered(r))
            } else {
                Expr::binary(*op, l, r)
            }
        }

        Expr::Unary { op, expr } => Expr::Unary {
            op: *op,
            expr: Box::new(norm(expr)),
        },

        Expr::Call { name, args } => {
            let mut args: Vec<Expr> = args.iter().map(norm).collect();
            if name == "unordered" && args.len() == 1 {
                // Reify fn:unordered as a structural node (idempotent); in
                // baseline mode it is the identity function (§6).
                let inner = args.pop().unwrap();
                if !exploit {
                    return inner;
                }
                return match inner {
                    Expr::Unordered(i) => Expr::Unordered(i),
                    other => Expr::Unordered(Box::new(other)),
                };
            }
            if exploit && ORDER_INDIFFERENT_FNS.contains(&name.as_str()) && !args.is_empty() {
                // Rule FN:COUNT and its analogues.
                let first = args.remove(0);
                let first = match first {
                    // Avoid double wrapping.
                    Expr::Unordered(_) => first,
                    other => Expr::unordered(other),
                };
                args.insert(0, first);
            }
            Expr::Call {
                name: name.clone(),
                args,
            }
        }

        Expr::Unordered(inner) => match norm(inner) {
            // fn:unordered is idempotent.
            Expr::Unordered(i) => Expr::Unordered(i),
            other => Expr::Unordered(Box::new(other)),
        },

        Expr::OrderingScope { mode, expr } => {
            if !exploit {
                // Baseline processors "proceed as if strict ordering is
                // required throughout" (§6): the scope is dropped.
                return norm(expr);
            }
            Expr::OrderingScope {
                mode: *mode,
                expr: Box::new(norm(expr)),
            }
        }

        Expr::DirElement {
            name,
            attrs,
            content,
        } => Expr::DirElement {
            name: name.clone(),
            attrs: attrs
                .iter()
                .map(|a| DirAttr {
                    name: a.name.clone(),
                    value: a
                        .value
                        .iter()
                        .map(|p| match p {
                            AttrPart::Lit(s) => AttrPart::Lit(s.clone()),
                            AttrPart::Expr(e) => AttrPart::Expr(norm(e)),
                        })
                        .collect(),
                })
                .collect(),
            content: content
                .iter()
                .map(|c| match c {
                    ElemContent::Text(t) => ElemContent::Text(t.clone()),
                    ElemContent::Expr(e) => ElemContent::Expr(norm(e)),
                })
                .collect(),
        },

        Expr::TextConstructor(e) => Expr::TextConstructor(Box::new(norm(e))),
        Expr::AttrConstructor { name, value } => Expr::AttrConstructor {
            name: name.clone(),
            value: Box::new(norm(value)),
        },
        Expr::ElemConstructor { name, content } => Expr::ElemConstructor {
            name: name.clone(),
            content: Box::new(norm(content)),
        },
    }
}

/// Direct sub-expressions of `e` (one structural level).
fn subexprs(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::IntLit(_)
        | Expr::DblLit(_)
        | Expr::StrLit(_)
        | Expr::Empty
        | Expr::Var(_)
        | Expr::ContextItem
        | Expr::Root => vec![],
        Expr::Sequence(items) => items.iter().collect(),
        Expr::PathStep {
            input, predicates, ..
        } => std::iter::once(&**input).chain(predicates).collect(),
        Expr::Filter { input, predicate } => vec![input, predicate],
        Expr::PathSeq { input, step } => vec![input, step],
        Expr::Flwor {
            clauses,
            order_by,
            ret,
            ..
        } => clauses
            .iter()
            .map(|c| match c {
                Clause::For { seq, .. } => seq,
                Clause::Let { expr, .. } => expr,
                Clause::Where(e) => e,
            })
            .chain(order_by.iter().map(|o| &o.key))
            .chain(std::iter::once(&**ret))
            .collect(),
        Expr::Quantified {
            domain, satisfies, ..
        } => vec![domain, satisfies],
        Expr::If { cond, then, els } => vec![cond, then, els],
        Expr::Binary { l, r, .. } => vec![l, r],
        Expr::Unary { expr, .. } => vec![expr],
        Expr::Call { args, .. } => args.iter().collect(),
        Expr::Unordered(inner) => vec![inner],
        Expr::OrderingScope { expr, .. } => vec![expr],
        Expr::DirElement { attrs, content, .. } => attrs
            .iter()
            .flat_map(|a| &a.value)
            .filter_map(|p| match p {
                AttrPart::Expr(e) => Some(e),
                AttrPart::Lit(_) => None,
            })
            .chain(content.iter().filter_map(|c| match c {
                ElemContent::Expr(e) => Some(e),
                ElemContent::Text(_) => None,
            }))
            .collect(),
        Expr::TextConstructor(e) => vec![e],
        Expr::AttrConstructor { value, .. } => vec![value],
        Expr::ElemConstructor { content, .. } => vec![content],
    }
}

/// Verify that no expression in the module nests deeper than
/// `max_depth`. Implemented with an explicit work-list (not recursion)
/// so the check itself is stack-safe on arbitrarily deep ASTs — this
/// guards the *recursive* normalizer and compiler, which walk the tree
/// with the call stack, against programmatically built or
/// over-budget ASTs.
pub fn check_depth(m: &Module, max_depth: usize) -> Result<(), crate::parse::XqError> {
    let mut work: Vec<(&Expr, usize)> = m
        .variables
        .iter()
        .map(|(_, e)| (e, 1))
        .chain(std::iter::once((&m.body, 1)))
        .collect();
    while let Some((e, depth)) = work.pop() {
        if depth > max_depth {
            return Err(crate::parse::XqError {
                offset: 0,
                message: format!("expression nesting exceeds depth limit {max_depth}"),
                code: exrquy_diag::ErrorCode::EXRQ0003,
            });
        }
        for child in subexprs(e) {
            work.push((child, depth + 1));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_module;

    fn norm_body(q: &str) -> Expr {
        norm(&parse_module(q).unwrap().body)
    }

    #[test]
    fn fn_count_rule() {
        // Rule FN:COUNT: fn:count(e) ⇒ fn:count(fn:unordered(e)).
        match norm_body("fn:count($l)") {
            Expr::Call { name, args } => {
                assert_eq!(name, "count");
                assert!(matches!(args[0], Expr::Unordered(_)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn quant_rule() {
        match norm_body("some $x in $d satisfies $x = 1") {
            Expr::Quantified { domain, .. } => assert!(matches!(*domain, Expr::Unordered(_))),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn general_comparison_operands_unordered() {
        match norm_body("$a = $b") {
            Expr::Binary { op, l, r } => {
                assert_eq!(op, BinOp::GenEq);
                assert!(matches!(*l, Expr::Unordered(_)));
                assert!(matches!(*r, Expr::Unordered(_)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn value_comparison_untouched() {
        match norm_body("$a eq $b") {
            Expr::Binary { op, l, r } => {
                assert_eq!(op, BinOp::ValEq);
                assert!(!matches!(*l, Expr::Unordered(_)));
                assert!(!matches!(*r, Expr::Unordered(_)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn fn_unordered_reified_and_idempotent() {
        assert!(matches!(norm_body("fn:unordered($x)"), Expr::Unordered(_)));
        match norm_body("fn:unordered(fn:unordered($x))") {
            Expr::Unordered(inner) => assert!(matches!(*inner, Expr::Var(_))),
            other => panic!("unexpected: {other:?}"),
        }
        // count(unordered(e)) does not double-wrap
        match norm_body("fn:count(fn:unordered($x))") {
            Expr::Call { args, .. } => match &args[0] {
                Expr::Unordered(inner) => assert!(matches!(**inner, Expr::Var(_))),
                other => panic!("unexpected: {other:?}"),
            },
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn order_by_marks_reordered() {
        match norm_body("for $x in (3,1,2) order by $x return $x") {
            Expr::Flwor { reordered, .. } => assert!(reordered),
            other => panic!("unexpected: {other:?}"),
        }
        match norm_body("for $x in (3,1,2) return $x") {
            Expr::Flwor { reordered, .. } => assert!(!reordered),
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn if_condition_unordered() {
        match norm_body("if ($a) then 1 else 2") {
            Expr::If { cond, .. } => assert!(matches!(*cond, Expr::Unordered(_))),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
