//! XQuery frontend: parser, AST, and the normalization `J·K` of the
//! paper's §2.2.
//!
//! The supported dialect is the fragment the paper and the XMark benchmark
//! exercise: FLWOR expressions (`for`/`at`/`let`/`where`/`order by`/
//! `return`), full axis steps with predicates, direct element/attribute
//! constructors with enclosed expressions, quantifiers, conditionals,
//! arithmetic, the three comparison families, node-set operations
//! (`|`/`union`, `intersect`, `except`), `unordered { }` / `ordered { }`,
//! the `declare ordering` prolog declaration, and ~30 built-in functions
//! including `fn:unordered()`.
//!
//! [`normalize()`](normalize::normalize) implements the *order-indifference-aware* normalization
//! rules of the paper's Figure 4 discussion: aggregate arguments,
//! quantifier domains and general-comparison operands are wrapped in
//! `fn:unordered(·)` (rules FN:COUNT and QUANT apply in *either* ordering
//! mode), and FLWOR blocks that are re-sorted by an `order by` clause are
//! flagged as iteration-order-indifferent. The mode-dependent rules
//! (FOR/STEP/UNION of Figure 4) are *not* expanded at the language level —
//! §2.2 shows that this cannot fully capture their semantics — but are
//! instead realized algebraically by the compiler's LOC#/BIND# rules.

pub mod ast;
pub mod normalize;
pub mod parse;
pub mod pretty;

pub use ast::{
    AttrPart, BinOp, Clause, DirAttr, ElemContent, Expr, Module, NodeTestAst, OrderSpec,
    OrderingMode, Quant, UnOp,
};
pub use normalize::{check_depth, normalize, normalize_opts};
pub use parse::{parse_module, parse_module_with, parse_query, XqError, DEFAULT_MAX_DEPTH};
pub use pretty::pretty;
