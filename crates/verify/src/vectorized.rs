//! Scalar/vectorized equivalence differential: the acceptance harness
//! for the batch-at-a-time engine core.
//!
//! The vectorized path — flattened physical programs, selection vectors,
//! fused select→fun→project kernels — promises *byte-identical*
//! serializations to the scalar operator-at-a-time engine: same items,
//! same order, same rendered text, and the same error (by code) when a
//! query fails. This module checks that contract over two corpora:
//!
//! * the XMark benchmark queries over a seeded generated document, and
//! * a stream of fuzz-generated (document, query) cells from the
//!   grammar-driven generator, under both the ordered and unordered
//!   profiles.
//!
//! Comparison is exact sequence equality of rendered items — *not* the
//! bag equivalence the unordered mode would grant — so a fused kernel
//! that reorders rows is a failure even where the language semantics
//! would forgive it. Error cells are compared by error code: fusion must
//! not mask, reorder, or invent dynamic errors.

use crate::fuzz::{cell_rng, gen_doc, gen_query, FuzzProfile, FUZZ_DOC_URL};
use exrquy::frontend::pretty;
use exrquy::{QueryOptions, ResultItem, Session};
use exrquy_xmark::{generate, query, XmarkConfig, ALL_QUERIES};
use std::fmt;

/// Parameters for a scalar/vectorized equivalence run.
#[derive(Debug, Clone)]
pub struct VectorizedConfig {
    /// XMark scale factor for the generated document.
    pub scale: f64,
    /// Generator seed (XMark document and fuzz stream).
    pub seed: u64,
    /// 1-based XMark query numbers to run (defaults to all 20).
    pub queries: Vec<usize>,
    /// Fuzz-generated (document, query) cells per profile on top of the
    /// XMark set.
    pub fuzz_iters: usize,
    /// Worker-thread counts the vectorized arm additionally runs at
    /// (beyond serial), so fused morsel kernels are exercised under the
    /// work-stealing scheduler too.
    pub threads: Vec<usize>,
}

impl Default for VectorizedConfig {
    fn default() -> Self {
        VectorizedConfig {
            scale: 0.0025,
            seed: 42,
            queries: (1..=ALL_QUERIES.len()).collect(),
            fuzz_iters: 25,
            threads: vec![4],
        }
    }
}

/// Outcome of an equivalence run.
#[derive(Debug)]
pub struct VectorizedReport {
    /// (query, arm) cells compared.
    pub cells: usize,
    /// Cells where both arms errored with the same code (counted as
    /// compared-and-equal, tracked separately for visibility).
    pub error_cells: usize,
    /// Divergence descriptions; empty on success.
    pub mismatches: Vec<String>,
}

impl VectorizedReport {
    /// Every compared cell byte-identical (or identically erroring)?
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl fmt::Display for VectorizedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scalar/vectorized equivalence: {} cells, {} error cells, {} mismatch(es)",
            self.cells,
            self.error_cells,
            self.mismatches.len()
        )?;
        for m in &self.mismatches {
            write!(f, "\n  {m}")?;
        }
        Ok(())
    }
}

/// The full rendered output, order preserved — the byte-identity witness.
fn rendered(items: &[ResultItem]) -> Vec<String> {
    items.iter().map(ResultItem::render).collect()
}

/// Compare one (session, query) cell: the scalar serial run is the
/// reference; the vectorized run (at `threads` workers) must match it.
/// Returns `Ok(false)` for same-code error cells, `Err` on divergence.
fn compare_cell(
    session: &Session,
    label: &str,
    q: &str,
    base: &QueryOptions,
    threads: usize,
) -> Result<bool, String> {
    let scalar = session.query_with(q, &base.clone().with_vectorized(false).with_threads(1));
    let vectorized =
        session.query_with(q, &base.clone().with_vectorized(true).with_threads(threads));
    match (scalar, vectorized) {
        (Ok(s), Ok(v)) => {
            let (s, v) = (rendered(&s.items), rendered(&v.items));
            if s == v {
                Ok(true)
            } else {
                Err(format!(
                    "{label} x{threads}: serialization diverged ({} vs {} items{})",
                    s.len(),
                    v.len(),
                    s.iter()
                        .zip(&v)
                        .position(|(a, b)| a != b)
                        .map(|i| format!(", first at index {i}"))
                        .unwrap_or_default()
                ))
            }
        }
        (Err(se), Err(ve)) => {
            if se.code() == ve.code() {
                Ok(false)
            } else {
                Err(format!(
                    "{label} x{threads}: error codes diverged (scalar {} vs vectorized {})",
                    se.render_line(),
                    ve.render_line()
                ))
            }
        }
        (Ok(_), Err(e)) => Err(format!(
            "{label} x{threads}: vectorized errored where scalar succeeded: {}",
            e.render_line()
        )),
        (Err(e), Ok(_)) => Err(format!(
            "{label} x{threads}: vectorized succeeded where scalar errored: {}",
            e.render_line()
        )),
    }
}

/// Run the equivalence differential over the XMark and fuzz corpora.
pub fn run_vectorized_differential(cfg: &VectorizedConfig) -> VectorizedReport {
    let mut report = VectorizedReport {
        cells: 0,
        error_cells: 0,
        mismatches: Vec::new(),
    };
    // Serial vectorized always; each configured thread count on top.
    let mut arms = vec![1usize];
    arms.extend(cfg.threads.iter().copied().filter(|&t| t > 1));
    fn check(
        report: &mut VectorizedReport,
        arms: &[usize],
        session: &Session,
        label: &str,
        q: &str,
        base: &QueryOptions,
    ) {
        for &threads in arms {
            report.cells += 1;
            match compare_cell(session, label, q, base, threads) {
                Ok(true) => {}
                Ok(false) => report.error_cells += 1,
                Err(m) => report.mismatches.push(m),
            }
        }
    }

    // XMark corpus: one document, every configured benchmark query,
    // under both compiler profiles.
    let xml = generate(&XmarkConfig {
        scale: cfg.scale,
        seed: cfg.seed,
    });
    let mut session = Session::new();
    session
        .load_document("auction.xml", &xml)
        .expect("XMark generator emitted malformed XML");
    for &q in &cfg.queries {
        for (profile, base) in [
            ("unordered", QueryOptions::order_indifferent()),
            ("baseline", QueryOptions::baseline()),
        ] {
            let label = format!("xmark Q{q} [{profile}]");
            check(&mut report, &arms, &session, &label, query(q), &base);
        }
    }

    // Fuzz corpus: fresh (document, query) per cell, both profiles. The
    // stream is positioned identically to the parallel differential's so
    // a divergence here reproduces under `fuzz-verify` seeds.
    for i in 0..cfg.fuzz_iters {
        for profile in [FuzzProfile::Ordered, FuzzProfile::Unordered] {
            let mut rng = cell_rng(cfg.seed, i, profile);
            let doc = gen_doc(&mut rng);
            let q = pretty(&gen_query(&mut rng, profile));
            let mut s = Session::new();
            s.load_document(FUZZ_DOC_URL, &doc)
                .expect("generated doc malformed");
            check(
                &mut report,
                &arms,
                &s,
                &format!("fuzz iter {i} [{profile}]"),
                &q,
                &profile.options(),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_equivalence_subset_is_byte_identical() {
        // Full coverage lives in the tier-1 integration test
        // (`tests/vectorized_equivalence.rs`); a small subset keeps the
        // unit tier fast.
        let cfg = VectorizedConfig {
            queries: vec![1, 6, 20],
            fuzz_iters: 5,
            threads: vec![],
            ..VectorizedConfig::default()
        };
        let report = run_vectorized_differential(&cfg);
        assert!(report.passed(), "{report}");
        // 3 queries x 2 profiles x 1 arm + 5 fuzz iters x 2 profiles x 1 arm.
        assert_eq!(report.cells, 16);
    }
}
