//! Sharded-vs-unsharded equivalence differential: the acceptance
//! harness for shard-parallel catalogs.
//!
//! A sharded catalog promises that partitioning is *invisible*: the same
//! corpus under 1, 2, or 8 shards must serialize byte-identically —
//! same items, same order, same rendered text, and the same error code
//! when a query fails. Shard count may not leak into output in any form.
//! The promise is checked over two corpora:
//!
//! * the XMark document split by subtree (each top-level `site` section
//!   becomes its own document), queried through `fn:collection()`, and
//! * a stream of fuzz-generated multi-document corpora and queries from
//!   the grammar-driven generator, under both the ordered and unordered
//!   profiles.
//!
//! Every cell runs on both engine paths — vectorized and scalar
//! (`--scalar`) — and each path is compared against its own single-shard
//! reference, so a shard-layout-dependent reorder is caught even if both
//! paths drift identically. Comparison is exact sequence equality of
//! rendered items: the paper's order indifference justifies shard-local
//! `%`/`#` numbering precisely because shards are contiguous ascending
//! fragment ranges, so shard-major concatenation *is* collection order —
//! bag equivalence would under-test that invariant.

use crate::fuzz::{cell_rng, gen_corpus, gen_query_corpus, FuzzProfile};
use exrquy::frontend::pretty;
use exrquy::{QueryOptions, ResultItem, Session};
use exrquy_xmark::{generate, XmarkConfig};
use std::fmt;

/// Parameters for a sharded equivalence run.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// XMark scale factor for the split-by-subtree corpus.
    pub scale: f64,
    /// Generator seed (XMark document and fuzz stream).
    pub seed: u64,
    /// Shard layouts to compare against the 1-shard reference.
    pub shards: Vec<usize>,
    /// Fuzz-generated (corpus, query) cells per profile on top of the
    /// XMark matrix.
    pub fuzz_iters: usize,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            scale: 0.0025,
            seed: 42,
            shards: vec![2, 8],
            fuzz_iters: 50,
        }
    }
}

/// Outcome of a sharded equivalence run.
#[derive(Debug)]
pub struct ShardedReport {
    /// (query, layout, path) cells compared against their reference.
    pub cells: usize,
    /// Cells where reference and sharded run errored with the same code
    /// (compared-and-equal; tracked separately for visibility).
    pub error_cells: usize,
    /// Distinct queries that went through the comparison.
    pub queries: usize,
    /// Divergence descriptions; empty on success.
    pub mismatches: Vec<String>,
}

impl ShardedReport {
    /// Every compared cell byte-identical (or identically erroring)?
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl fmt::Display for ShardedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sharded equivalence: {} queries, {} cells, {} error cells, {} mismatch(es)",
            self.queries,
            self.cells,
            self.error_cells,
            self.mismatches.len()
        )?;
        for m in &self.mismatches {
            write!(f, "\n  {m}")?;
        }
        Ok(())
    }
}

/// The top-level sections of an XMark `site` document, in document order.
const XMARK_SECTIONS: &[&str] = &[
    "regions",
    "categories",
    "catgraph",
    "people",
    "open_auctions",
    "closed_auctions",
];

/// Split one XMark document by subtree: each top-level section of
/// `<site>` becomes its own `<site>`-rooted document, in section order —
/// so `fn:collection()//x` over the split corpus visits the same
/// elements in the same order as `doc(...)//x` over the original.
pub fn split_xmark(xml: &str) -> Vec<(String, String)> {
    let mut docs = Vec::with_capacity(XMARK_SECTIONS.len());
    for section in XMARK_SECTIONS {
        let open = format!("<{section}>");
        let close = format!("</{section}>");
        let Some(start) = xml.find(&open) else {
            continue;
        };
        let end = xml[start..]
            .find(&close)
            .map(|i| start + i + close.len())
            .unwrap_or_else(|| panic!("unterminated <{section}> in generated XMark"));
        docs.push((
            format!("{section}.xml"),
            format!("<site>{}</site>", &xml[start..end]),
        ));
    }
    assert_eq!(
        docs.len(),
        XMARK_SECTIONS.len(),
        "XMark generator changed its section layout"
    );
    docs
}

/// The XMark shard matrix: the benchmark's access patterns — attribute
/// lookups, descendant counting, value joins, aggregates, constructors,
/// sorting — rewritten against `fn:collection()` so every query scans
/// the whole split corpus through the shard fanout.
pub const XMARK_SHARD_QUERIES: &[&str] = &[
    // Exact-match lookup by attribute value (Q1-shaped).
    r#"for $b in fn:collection()//person[@id = "person0"] return $b/name/text()"#,
    // Descendant counting through the fanout (Q6-shaped).
    r#"for $s in fn:collection()/site return fn:count($s//item)"#,
    // Multiple descendant counts summed across the corpus (Q7-shaped).
    r#"fn:count(fn:collection()//description) + fn:count(fn:collection()//annotation)
       + fn:count(fn:collection()//emailaddress)"#,
    // Cross-document value join: people and closed auctions live in
    // *different* documents of the split corpus (Q8-shaped).
    r#"for $p in fn:collection()//people/person
       let $a := for $t in fn:collection()//closed_auctions/closed_auction
                 where $t/buyer/@person = $p/@id
                 return $t
       return <item person="{ $p/name/text() }">{ fn:count($a) }</item>"#,
    // Aggregate over a filtered stream (Q5-shaped).
    r#"fn:count(for $i in fn:collection()//closed_auction
                where $i/price/text() >= 40
                return $i/price)"#,
    // Existence scan with constructor output.
    r#"for $p in fn:collection()//person
       where fn:exists($p/homepage)
       return <has-page>{ $p/name/text() }</has-page>"#,
    // Ordered whole-corpus scan: item names in collection order — the
    // rawest form of the byte-identity promise.
    r#"for $i in fn:collection()//item return $i/name/text()"#,
    // Sorting across shard boundaries (Q20-flavoured ordering).
    r#"for $p in fn:collection()//person
       order by $p/name/text() descending
       return $p/name/text()"#,
    // Positional access within a shard-crossing stream.
    r#"for $a in fn:collection()//open_auction
       return <first>{ $a/bidder[1]/increase/text() }</first>"#,
    // Quantifier over the fanout.
    r#"fn:count(fn:collection()//open_auction[some $b in bidder
                satisfies $b/increase/text() >= 20])"#,
];

/// The full rendered output, order preserved — the byte-identity witness.
fn rendered(items: &[ResultItem]) -> Vec<String> {
    items.iter().map(ResultItem::render).collect()
}

/// Build a session over `docs` partitioned into `shards`.
fn corpus_session(docs: &[(String, String)], shards: usize) -> Session {
    let mut session = Session::new();
    session.load_corpus_sharded(docs.iter().map(|(u, x)| (u.as_str(), x.as_str())), shards);
    session
}

/// Compare one (query, layout, path) cell against the 1-shard reference
/// result for the same path. `Ok(false)` marks a same-code error cell.
#[allow(clippy::too_many_arguments)]
fn compare_cell(
    reference: &Session,
    sharded: &Session,
    label: &str,
    q: &str,
    base: &QueryOptions,
    shards: usize,
    vectorized: bool,
) -> Result<bool, String> {
    let path = if vectorized { "vectorized" } else { "scalar" };
    let opts = base.clone().with_vectorized(vectorized).with_threads(1);
    let want = reference.query_with(q, &opts);
    let got = sharded.query_with(q, &opts);
    match (want, got) {
        (Ok(w), Ok(g)) => {
            let (w, g) = (rendered(&w.items), rendered(&g.items));
            if w == g {
                Ok(true)
            } else {
                Err(format!(
                    "{label} [{path}] x{shards} shards: serialization diverged \
                     ({} vs {} items{})",
                    w.len(),
                    g.len(),
                    w.iter()
                        .zip(&g)
                        .position(|(a, b)| a != b)
                        .map(|i| format!(", first at index {i}"))
                        .unwrap_or_default()
                ))
            }
        }
        (Err(we), Err(ge)) => {
            if we.code() == ge.code() {
                Ok(false)
            } else {
                Err(format!(
                    "{label} [{path}] x{shards} shards: error codes diverged \
                     (unsharded {} vs sharded {})",
                    we.render_line(),
                    ge.render_line()
                ))
            }
        }
        (Ok(_), Err(e)) => Err(format!(
            "{label} [{path}] x{shards} shards: sharded errored where unsharded \
             succeeded: {}",
            e.render_line()
        )),
        (Err(e), Ok(_)) => Err(format!(
            "{label} [{path}] x{shards} shards: sharded succeeded where unsharded \
             errored: {}",
            e.render_line()
        )),
    }
}

/// Run the sharded equivalence differential over the XMark split corpus
/// and the multi-document fuzz stream.
pub fn run_sharded_differential(cfg: &ShardedConfig) -> ShardedReport {
    let mut report = ShardedReport {
        cells: 0,
        error_cells: 0,
        queries: 0,
        mismatches: Vec::new(),
    };

    // One corpus, one reference session per engine path semantics (the
    // reference is always the 1-shard layout of the *same* corpus).
    let run_corpus = |report: &mut ShardedReport,
                      docs: &[(String, String)],
                      queries: &[(String, String, QueryOptions)]| {
        let reference = corpus_session(docs, 1);
        for &shards in &cfg.shards {
            let sharded = corpus_session(docs, shards);
            for (label, q, base) in queries {
                for vectorized in [true, false] {
                    report.cells += 1;
                    match compare_cell(&reference, &sharded, label, q, base, shards, vectorized) {
                        Ok(true) => {}
                        Ok(false) => report.error_cells += 1,
                        Err(m) => report.mismatches.push(m),
                    }
                }
            }
        }
    };

    // XMark matrix over the split-by-subtree corpus, both compiler
    // profiles.
    let xml = generate(&XmarkConfig {
        scale: cfg.scale,
        seed: cfg.seed,
    });
    let xmark_docs = split_xmark(&xml);
    let mut xmark_queries = Vec::new();
    for (n, q) in XMARK_SHARD_QUERIES.iter().enumerate() {
        for (profile, base) in [
            ("unordered", QueryOptions::order_indifferent()),
            ("baseline", QueryOptions::baseline()),
        ] {
            xmark_queries.push((
                format!("xmark-shard S{} [{profile}]", n + 1),
                q.to_string(),
                base,
            ));
        }
    }
    report.queries += XMARK_SHARD_QUERIES.len();
    run_corpus(&mut report, &xmark_docs, &xmark_queries);

    // Fuzz stream: a fresh multi-document corpus and query per cell,
    // both profiles. Seeded off the same cell_rng stream as the fuzzer's
    // multi-document arm, so a divergence here reproduces there.
    for i in 0..cfg.fuzz_iters {
        for profile in [FuzzProfile::Ordered, FuzzProfile::Unordered] {
            let mut rng = cell_rng(cfg.seed, i, profile);
            let corpus = gen_corpus(&mut rng);
            let urls: Vec<String> = corpus.docs.iter().map(|(u, _)| u.clone()).collect();
            let q = pretty(&gen_query_corpus(&mut rng, profile, &urls));
            report.queries += 1;
            run_corpus(
                &mut report,
                &corpus.docs,
                &[(format!("fuzz iter {i} [{profile}]"), q, profile.options())],
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xmark_splits_into_all_sections_in_order() {
        let xml = generate(&XmarkConfig {
            scale: 0.001,
            seed: 42,
        });
        let docs = split_xmark(&xml);
        let urls: Vec<&str> = docs.iter().map(|(u, _)| u.as_str()).collect();
        assert_eq!(
            urls,
            vec![
                "regions.xml",
                "categories.xml",
                "catgraph.xml",
                "people.xml",
                "open_auctions.xml",
                "closed_auctions.xml"
            ]
        );
        for (url, doc) in &docs {
            assert!(doc.starts_with("<site>"), "{url} not site-rooted");
            assert!(doc.ends_with("</site>"), "{url} not site-terminated");
        }
        // Nothing element-like lost: the split covers every item/person.
        let count = |hay: &str, needle: &str| hay.matches(needle).count();
        let items: usize = docs.iter().map(|(_, d)| count(d, "<item ")).sum();
        assert_eq!(items, count(&xml, "<item "));
        let persons: usize = docs.iter().map(|(_, d)| count(d, "<person ")).sum();
        assert_eq!(persons, count(&xml, "<person "));
    }

    #[test]
    fn xmark_matrix_queries_succeed_on_the_reference() {
        // Guards against dialect drift silently degrading the matrix to
        // error-vs-error cells: every matrix query must actually run.
        let xml = generate(&XmarkConfig {
            scale: 0.001,
            seed: 42,
        });
        let session = corpus_session(&split_xmark(&xml), 1);
        for q in XMARK_SHARD_QUERIES {
            session
                .query_with(q, &QueryOptions::order_indifferent())
                .unwrap_or_else(|e| panic!("matrix query failed: {q}: {}", e.render_line()));
        }
    }

    #[test]
    fn small_sharded_subset_is_byte_identical() {
        // Full coverage lives in the tier-1 integration test
        // (`tests/sharded_equivalence.rs`); a small subset keeps the
        // unit tier fast.
        let cfg = ShardedConfig {
            scale: 0.001,
            fuzz_iters: 6,
            ..ShardedConfig::default()
        };
        let report = run_sharded_differential(&cfg);
        assert!(report.passed(), "{report}");
        assert!(report.cells > 0 && report.error_cells < report.cells);
    }
}
