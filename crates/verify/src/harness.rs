//! The fault-injection matrix: failpoint specs against real queries,
//! asserting graceful degradation.
//!
//! "Graceful" means four things, all checked per case: (1) the query
//! fails with one of the *expected* typed error codes — injected faults
//! must ride the same error paths real faults take; (2) no panic escapes
//! the pipeline; (3) the store holds no partially-built fragments
//! afterwards; (4) the session stays usable — the same query succeeds
//! once the failpoints are disarmed.

use exrquy::diag::{ErrorCode, Failpoints};
use exrquy::{QueryOptions, Session};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One cell of the fault matrix.
#[derive(Debug, Clone)]
pub struct FaultCase {
    /// Short label for reports.
    pub name: String,
    /// Failpoint spec (the `--inject` grammar).
    pub spec: String,
    /// Query to run with the failpoints armed.
    pub query: String,
    /// Error codes that count as graceful degradation.
    pub expected: Vec<ErrorCode>,
    /// Run under the order-aware baseline configuration instead of the
    /// order-indifferent one (needed when the targeted operator — e.g.
    /// `%` — only survives in unoptimized plans).
    pub baseline: bool,
}

impl FaultCase {
    pub fn new(
        name: &str,
        spec: &str,
        query: &str,
        expected: Vec<ErrorCode>,
        baseline: bool,
    ) -> Self {
        FaultCase {
            name: name.to_string(),
            spec: spec.to_string(),
            query: query.to_string(),
            expected,
            baseline,
        }
    }
}

/// Outcome of one case.
#[derive(Debug, Clone)]
pub struct FaultOutcome {
    pub name: String,
    /// Observed error code, when the query failed with a typed error.
    pub code: Option<ErrorCode>,
    /// `None` when the case degraded gracefully; otherwise what went
    /// wrong (wrong code, unexpected success, state leak, panic, …).
    pub problem: Option<String>,
}

/// Outcome of a matrix run.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    pub outcomes: Vec<FaultOutcome>,
}

impl FaultReport {
    pub fn failures(&self) -> Vec<&FaultOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.problem.is_some())
            .collect()
    }

    pub fn all_graceful(&self) -> bool {
        self.outcomes.iter().all(|o| o.problem.is_none())
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fails = self.failures();
        write!(
            f,
            "fault matrix: {}/{} cases degraded gracefully",
            self.outcomes.len() - fails.len(),
            self.outcomes.len()
        )?;
        for o in fails {
            write!(f, "\n  {}: {}", o.name, o.problem.as_deref().unwrap_or(""))?;
        }
        Ok(())
    }
}

/// Two small documents every case can rely on: `d.xml` and `e.xml`, each
/// with two `x` descendants.
const DOC_D: &str = "<site><a><x/></a><b><x/></b></site>";
const DOC_E: &str = "<other><x/><c><x/></c></other>";

/// The standard grid: every failpoint kind, over queries guaranteed to
/// reach the targeted operator.
pub fn default_cases() -> Vec<FaultCase> {
    vec![
        FaultCase::new(
            "doc-io-first-access",
            "doc-io:1",
            r#"doc("d.xml")//x"#,
            vec![ErrorCode::FODC0002],
            false,
        ),
        FaultCase::new(
            "doc-io-second-access",
            "doc-io:2",
            r#"(doc("d.xml")//x, doc("e.xml")//x)"#,
            vec![ErrorCode::FODC0002],
            false,
        ),
        FaultCase::new(
            "doc-parse-on-load",
            "doc-parse:1",
            r#"fn:count(doc("d.xml")//x)"#,
            vec![ErrorCode::FODC0006],
            false,
        ),
        FaultCase::new(
            "budget-trip-step",
            "budget-trip:step",
            r#"doc("d.xml")//x"#,
            vec![ErrorCode::EXRQ0001],
            false,
        ),
        FaultCase::new(
            "budget-trip-rownum",
            "budget-trip:rownum",
            // The baseline plan numbers the step result with a sorting %.
            r#"doc("d.xml")//x"#,
            vec![ErrorCode::EXRQ0001],
            true,
        ),
        FaultCase::new(
            "budget-trip-serialize",
            "budget-trip:serialize",
            r#"doc("d.xml")//x"#,
            vec![ErrorCode::EXRQ0001],
            false,
        ),
        FaultCase::new(
            "cancel-at-first-boundary",
            "cancel-after:0",
            r#"doc("d.xml")//x"#,
            vec![ErrorCode::EXRQ0002],
            false,
        ),
        FaultCase::new(
            "cancel-mid-plan",
            "cancel-after:3",
            r#"for $x in doc("d.xml")//x return <hit>{ $x }</hit>"#,
            vec![ErrorCode::EXRQ0002],
            false,
        ),
    ]
}

/// Run one case; any panic inside counts as a failed case, not a failed
/// harness.
fn run_case(case: &FaultCase) -> FaultOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| check_case(case)));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            FaultOutcome {
                name: case.name.clone(),
                code: None,
                problem: Some(format!("PANIC: {msg}")),
            }
        }
    }
}

fn check_case(case: &FaultCase) -> FaultOutcome {
    let fail = |code: Option<ErrorCode>, problem: String| FaultOutcome {
        name: case.name.clone(),
        code,
        problem: Some(problem),
    };
    let fp = match Failpoints::parse(&case.spec) {
        Ok(fp) => fp,
        Err(e) => return fail(None, format!("spec rejected: {e}")),
    };
    let base_opts = if case.baseline {
        QueryOptions::baseline()
    } else {
        QueryOptions::order_indifferent()
    };

    let mut session = Session::new();
    session.set_failpoints(fp.clone());
    let load = session
        .load_document("d.xml", DOC_D)
        .and_then(|()| session.load_document("e.xml", DOC_E));
    let observed = match load {
        Err(e) => {
            // Load-time fault (doc-parse). Nothing may have been
            // registered for the failed document.
            if session.catalog().frag_count() >= 2 {
                return fail(
                    Some(e.code()),
                    format!(
                        "malformed load left {} fragments behind",
                        session.catalog().frag_count()
                    ),
                );
            }
            e.code()
        }
        Ok(()) => {
            let frags_before = session.catalog().frag_count();
            let opts = base_opts.clone().with_failpoints(fp);
            match session.query_with(&case.query, &opts) {
                Ok(_) => {
                    return fail(
                        None,
                        "expected an injected failure, query succeeded".to_string(),
                    )
                }
                Err(e) => {
                    if session.catalog().frag_count() != frags_before {
                        return fail(
                            Some(e.code()),
                            format!(
                                "catalog leaked fragments: {} before, {} after",
                                frags_before,
                                session.catalog().frag_count()
                            ),
                        );
                    }
                    e.code()
                }
            }
        }
    };
    if !case.expected.contains(&observed) {
        return fail(
            Some(observed),
            format!("unexpected code {observed} (expected {:?})", case.expected),
        );
    }
    // The session must remain usable once the failpoints are disarmed.
    session.set_failpoints(Failpoints::none());
    if let Err(e) = session
        .load_document("d.xml", DOC_D)
        .and_then(|()| session.load_document("e.xml", DOC_E))
    {
        return fail(
            Some(observed),
            format!("session not reusable after fault: reload failed: {e}"),
        );
    }
    if let Err(e) = session.query_with(&case.query, &base_opts) {
        return fail(
            Some(observed),
            format!("session not reusable after fault: rerun failed: {e}"),
        );
    }
    FaultOutcome {
        name: case.name.clone(),
        code: Some(observed),
        problem: None,
    }
}

/// Run a fault matrix (use [`default_cases`] for the standard grid).
pub fn run_fault_matrix(cases: &[FaultCase]) -> FaultReport {
    FaultReport {
        outcomes: cases.iter().map(run_case).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matrix_degrades_gracefully() {
        let report = run_fault_matrix(&default_cases());
        assert!(report.all_graceful(), "{report}");
        assert_eq!(report.outcomes.len(), default_cases().len());
    }

    #[test]
    fn wrong_expectation_is_reported_not_panicked() {
        // A case that expects the wrong code must come back as a problem.
        let case = FaultCase::new(
            "mislabeled",
            "cancel-after:0",
            r#"doc("d.xml")//x"#,
            vec![ErrorCode::FODC0002],
            false,
        );
        let report = run_fault_matrix(&[case]);
        assert!(!report.all_graceful());
        assert_eq!(report.outcomes[0].code, Some(ErrorCode::EXRQ0002));
        assert!(report.to_string().contains("mislabeled"));
    }
}
