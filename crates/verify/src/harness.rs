//! The fault-injection matrix: failpoint specs against real queries,
//! asserting graceful degradation.
//!
//! "Graceful" means four things, all checked per case: (1) the query
//! fails with one of the *expected* typed error codes — injected faults
//! must ride the same error paths real faults take; (2) no panic escapes
//! the pipeline; (3) the store holds no partially-built fragments
//! afterwards; (4) the session stays usable — the same query succeeds
//! once the failpoints are disarmed.

use exrquy::algebra::Op;
use exrquy::diag::{ErrorCode, Failpoints};
use exrquy::{QueryOptions, Session};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One cell of the fault matrix.
#[derive(Debug, Clone)]
pub struct FaultCase {
    /// Short label for reports.
    pub name: String,
    /// Failpoint spec (the `--inject` grammar).
    pub spec: String,
    /// Query to run with the failpoints armed.
    pub query: String,
    /// Error codes that count as graceful degradation.
    pub expected: Vec<ErrorCode>,
    /// Run under the order-aware baseline configuration instead of the
    /// order-indifferent one (needed when the targeted operator — e.g.
    /// `%` — only survives in unoptimized plans).
    pub baseline: bool,
}

impl FaultCase {
    pub fn new(
        name: &str,
        spec: &str,
        query: &str,
        expected: Vec<ErrorCode>,
        baseline: bool,
    ) -> Self {
        FaultCase {
            name: name.to_string(),
            spec: spec.to_string(),
            query: query.to_string(),
            expected,
            baseline,
        }
    }
}

/// Outcome of one case.
#[derive(Debug, Clone)]
pub struct FaultOutcome {
    pub name: String,
    /// Observed error code, when the query failed with a typed error.
    pub code: Option<ErrorCode>,
    /// `None` when the case degraded gracefully; otherwise what went
    /// wrong (wrong code, unexpected success, state leak, panic, …).
    pub problem: Option<String>,
}

/// Outcome of a matrix run.
#[derive(Debug, Clone, Default)]
pub struct FaultReport {
    pub outcomes: Vec<FaultOutcome>,
}

impl FaultReport {
    pub fn failures(&self) -> Vec<&FaultOutcome> {
        self.outcomes
            .iter()
            .filter(|o| o.problem.is_some())
            .collect()
    }

    pub fn all_graceful(&self) -> bool {
        self.outcomes.iter().all(|o| o.problem.is_none())
    }
}

impl fmt::Display for FaultReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fails = self.failures();
        write!(
            f,
            "fault matrix: {}/{} cases degraded gracefully",
            self.outcomes.len() - fails.len(),
            self.outcomes.len()
        )?;
        for o in fails {
            write!(f, "\n  {}: {}", o.name, o.problem.as_deref().unwrap_or(""))?;
        }
        Ok(())
    }
}

/// Two small documents every case can rely on: `d.xml` and `e.xml`, each
/// with two `x` descendants.
const DOC_D: &str = "<site><a><x/></a><b><x/></b></site>";
const DOC_E: &str = "<other><x/><c><x/></c></other>";

/// The standard grid: every failpoint kind, over queries guaranteed to
/// reach the targeted operator.
pub fn default_cases() -> Vec<FaultCase> {
    vec![
        FaultCase::new(
            "doc-io-first-access",
            "doc-io:1",
            r#"doc("d.xml")//x"#,
            vec![ErrorCode::FODC0002],
            false,
        ),
        FaultCase::new(
            "doc-io-second-access",
            "doc-io:2",
            r#"(doc("d.xml")//x, doc("e.xml")//x)"#,
            vec![ErrorCode::FODC0002],
            false,
        ),
        FaultCase::new(
            "doc-parse-on-load",
            "doc-parse:1",
            r#"fn:count(doc("d.xml")//x)"#,
            vec![ErrorCode::FODC0006],
            false,
        ),
        FaultCase::new(
            "budget-trip-step",
            "budget-trip:step",
            r#"doc("d.xml")//x"#,
            vec![ErrorCode::EXRQ0001],
            false,
        ),
        FaultCase::new(
            "budget-trip-rownum",
            "budget-trip:rownum",
            // The baseline plan numbers the step result with a sorting %.
            r#"doc("d.xml")//x"#,
            vec![ErrorCode::EXRQ0001],
            true,
        ),
        FaultCase::new(
            "budget-trip-serialize",
            "budget-trip:serialize",
            r#"doc("d.xml")//x"#,
            vec![ErrorCode::EXRQ0001],
            false,
        ),
        FaultCase::new(
            "cancel-at-first-boundary",
            "cancel-after:0",
            r#"doc("d.xml")//x"#,
            vec![ErrorCode::EXRQ0002],
            false,
        ),
        FaultCase::new(
            "cancel-mid-plan",
            "cancel-after:3",
            r#"for $x in doc("d.xml")//x return <hit>{ $x }</hit>"#,
            vec![ErrorCode::EXRQ0002],
            false,
        ),
    ]
}

/// Run one case; any panic inside counts as a failed case, not a failed
/// harness.
fn run_case(case: &FaultCase) -> FaultOutcome {
    let result = catch_unwind(AssertUnwindSafe(|| check_case(case)));
    match result {
        Ok(outcome) => outcome,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "<non-string panic payload>".to_string());
            FaultOutcome {
                name: case.name.clone(),
                code: None,
                problem: Some(format!("PANIC: {msg}")),
            }
        }
    }
}

fn check_case(case: &FaultCase) -> FaultOutcome {
    let fail = |code: Option<ErrorCode>, problem: String| FaultOutcome {
        name: case.name.clone(),
        code,
        problem: Some(problem),
    };
    let fp = match Failpoints::parse(&case.spec) {
        Ok(fp) => fp,
        Err(e) => return fail(None, format!("spec rejected: {e}")),
    };
    let base_opts = if case.baseline {
        QueryOptions::baseline()
    } else {
        QueryOptions::order_indifferent()
    };

    let mut session = Session::new();
    session.set_failpoints(fp.clone());
    let load = session
        .load_document("d.xml", DOC_D)
        .and_then(|()| session.load_document("e.xml", DOC_E));
    let observed = match load {
        Err(e) => {
            // Load-time fault (doc-parse). Nothing may have been
            // registered for the failed document.
            if session.catalog().frag_count() >= 2 {
                return fail(
                    Some(e.code()),
                    format!(
                        "malformed load left {} fragments behind",
                        session.catalog().frag_count()
                    ),
                );
            }
            e.code()
        }
        Ok(()) => {
            // Two documents, two shards: collection() plans keep their
            // shard union, so `budget-trip:∪̂` cells have an operator to
            // land on.
            session.set_shards(2);
            let frags_before = session.catalog().frag_count();
            let opts = base_opts.clone().with_failpoints(fp);
            match session.query_with(&case.query, &opts) {
                Ok(_) => {
                    return fail(
                        None,
                        "expected an injected failure, query succeeded".to_string(),
                    )
                }
                Err(e) => {
                    if session.catalog().frag_count() != frags_before {
                        return fail(
                            Some(e.code()),
                            format!(
                                "catalog leaked fragments: {} before, {} after",
                                frags_before,
                                session.catalog().frag_count()
                            ),
                        );
                    }
                    e.code()
                }
            }
        }
    };
    if !case.expected.contains(&observed) {
        return fail(
            Some(observed),
            format!("unexpected code {observed} (expected {:?})", case.expected),
        );
    }
    // The session must remain usable once the failpoints are disarmed.
    session.set_failpoints(Failpoints::none());
    if let Err(e) = session
        .load_document("d.xml", DOC_D)
        .and_then(|()| session.load_document("e.xml", DOC_E))
    {
        return fail(
            Some(observed),
            format!("session not reusable after fault: reload failed: {e}"),
        );
    }
    if let Err(e) = session.query_with(&case.query, &base_opts) {
        return fail(
            Some(observed),
            format!("session not reusable after fault: rerun failed: {e}"),
        );
    }
    FaultOutcome {
        name: case.name.clone(),
        code: Some(observed),
        problem: None,
    }
}

/// Run a fault matrix (use [`default_cases`] for the standard grid).
pub fn run_fault_matrix(cases: &[FaultCase]) -> FaultReport {
    FaultReport {
        outcomes: cases.iter().map(run_case).collect(),
    }
}

/// Where an operator kind was observed: a coverage-corpus query whose
/// final plan contains at least one operator of that kind.
#[derive(Debug, Clone)]
pub struct KindExemplar {
    /// Corpus entry name.
    pub corpus: String,
    /// The query whose plan exhibits the kind.
    pub query: String,
    /// Configuration the plan was prepared under (`true` = order-aware
    /// baseline; some kinds, notably `%`, only survive there).
    pub baseline: bool,
}

/// The failpoint coverage map: which operator kinds real plans contain,
/// which of them the default fault grid's `budget-trip` cells exercise,
/// and an auto-generated trip matrix for all of them.
#[derive(Debug, Clone, Default)]
pub struct CoverageReport {
    /// Kind → exemplar plan, for every kind the corpus reaches.
    pub present: BTreeMap<&'static str, KindExemplar>,
    /// Kinds the default grid's `budget-trip` specs would trip.
    pub default_exercised: BTreeSet<&'static str>,
    /// Kinds present in corpus plans that the default grid never trips —
    /// the blind spots the generated matrix exists to close.
    pub unexercised: Vec<&'static str>,
    /// One generated `budget-trip` case per present kind, each targeting
    /// the exemplar query under the exemplar configuration.
    pub generated: Vec<FaultCase>,
}

impl fmt::Display for CoverageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "failpoint coverage: {}/{} operator kinds reached, {} exercised by the default grid",
            self.present.len(),
            Op::KIND_NAMES.len(),
            self.default_exercised.len(),
        )?;
        if !self.unexercised.is_empty() {
            write!(
                f,
                "\n  default-grid blind spots: {}",
                self.unexercised.join(" ")
            )?;
        }
        let missing: Vec<&str> = Op::KIND_NAMES
            .iter()
            .copied()
            .filter(|k| !self.present.contains_key(k))
            .collect();
        if !missing.is_empty() {
            write!(
                f,
                "\n  kinds no corpus plan contains: {}",
                missing.join(" ")
            )?;
        }
        Ok(())
    }
}

/// The coverage corpus: a handful of queries whose plans jointly contain
/// every operator kind the compiler can emit (checked by test against
/// [`Op::KIND_NAMES`]). Censused under both configurations — the
/// order-indifferent plan first, so generated cases target optimized
/// plans wherever the kind survives optimization.
pub fn coverage_corpus() -> Vec<(&'static str, &'static str)> {
    vec![
        ("paths", r#"doc("d.xml")//x"#),
        (
            "construct",
            r#"for $x in doc("d.xml")//x return <hit n="1">t{ $x }</hit>"#,
        ),
        (
            "theta-join",
            r#"for $a in doc("d.xml")//x for $b in doc("e.xml")//x where fn:count($a/child::*) < fn:count($b/child::*) return $a"#,
        ),
        // An equality theta-join whose costed order beats the canonical
        // one: the cost pass rebuilds the join and grafts its rank-sort
        // compensation, so this plan is where `sort` lives.
        (
            "cost-reorder",
            r#"for $a in doc("d.xml")//x for $b in doc("e.xml")//x where fn:count($a/child::*) = fn:count($b/child::*) return $b"#,
        ),
        ("intersect", r#"doc("d.xml")//x intersect doc("d.xml")//x"#),
        // The whole-catalog scan: compiles to per-shard fanouts under a
        // shard union (the union survives optimization only in plans
        // with more than one shard — or unoptimized ones, which is what
        // the baseline census pass is for).
        ("collection", r#"fn:collection()//x"#),
        ("range", r#"1 to 3"#),
        (
            "text",
            r#"for $x in doc("d.xml")//x return text { fn:count($x/child::*) }"#,
        ),
    ]
}

/// Build the failpoint coverage map: census the corpus plans, compare
/// against the default grid, and generate a `budget-trip` case for every
/// operator kind any plan contains.
pub fn failpoint_coverage() -> CoverageReport {
    let mut present: BTreeMap<&'static str, KindExemplar> = BTreeMap::new();
    for (name, query) in coverage_corpus() {
        for baseline in [false, true] {
            let opts = if baseline {
                QueryOptions::baseline()
            } else {
                QueryOptions::order_indifferent()
            };
            let mut session = Session::new();
            if session
                .load_document("d.xml", DOC_D)
                .and_then(|()| session.load_document("e.xml", DOC_E))
                .is_err()
            {
                continue;
            }
            // Same 2-shard layout the matrix runner uses, so the census
            // sees the shard union a multi-shard collection() plan keeps.
            session.set_shards(2);
            let Ok(plan) = session.prepare(query, &opts) else {
                continue;
            };
            for &kind in plan.stats_final.by_kind.keys() {
                present.entry(kind).or_insert_with(|| KindExemplar {
                    corpus: name.to_string(),
                    query: query.to_string(),
                    baseline,
                });
            }
        }
    }
    // Which of these kinds would the default grid's specs trip? Asking
    // the parsed failpoints themselves keeps this in sync with the alias
    // table instead of duplicating it.
    let mut default_exercised: BTreeSet<&'static str> = BTreeSet::new();
    for case in default_cases() {
        let Ok(fp) = Failpoints::parse(&case.spec) else {
            continue;
        };
        for &kind in present.keys() {
            if fp.trips_budget(kind) {
                default_exercised.insert(kind);
            }
        }
    }
    let unexercised: Vec<&'static str> = present
        .keys()
        .copied()
        .filter(|k| !default_exercised.contains(k))
        .collect();
    let generated = present
        .iter()
        .map(|(kind, ex)| {
            FaultCase::new(
                &format!("auto-budget-trip-{kind}"),
                &format!("budget-trip:{kind}"),
                &ex.query,
                vec![ErrorCode::EXRQ0001],
                ex.baseline,
            )
        })
        .collect();
    CoverageReport {
        present,
        default_exercised,
        unexercised,
        generated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matrix_degrades_gracefully() {
        let report = run_fault_matrix(&default_cases());
        assert!(report.all_graceful(), "{report}");
        assert_eq!(report.outcomes.len(), default_cases().len());
    }

    #[test]
    fn coverage_corpus_reaches_every_operator_kind() {
        let report = failpoint_coverage();
        for &kind in Op::KIND_NAMES {
            assert!(
                report.present.contains_key(kind),
                "no corpus plan contains `{kind}`: {report}"
            );
        }
    }

    #[test]
    fn default_grid_has_known_blind_spots() {
        // The default grid trips steps, rownums, and serialization only.
        // These kinds exist in real plans but are never budget-tripped by
        // it — exactly the gap the generated matrix closes.
        let report = failpoint_coverage();
        for kind in ["aggr", "attach", "elem", "⋈θ"] {
            assert!(
                report.unexercised.contains(&kind),
                "expected `{kind}` to be a default-grid blind spot: {report}"
            );
        }
        for kind in ["⬡", "%", "serialize"] {
            assert!(
                report.default_exercised.contains(kind),
                "default grid should exercise `{kind}`: {report}"
            );
        }
    }

    #[test]
    fn generated_trip_matrix_degrades_gracefully() {
        // Every auto-generated budget-trip case — one per operator kind
        // any corpus plan contains — must fail with EXRQ0001, leak no
        // state, and leave the session reusable.
        let coverage = failpoint_coverage();
        assert_eq!(coverage.generated.len(), coverage.present.len());
        let report = run_fault_matrix(&coverage.generated);
        assert!(report.all_graceful(), "{report}");
    }

    #[test]
    fn wrong_expectation_is_reported_not_panicked() {
        // A case that expects the wrong code must come back as a problem.
        let case = FaultCase::new(
            "mislabeled",
            "cancel-after:0",
            r#"doc("d.xml")//x"#,
            vec![ErrorCode::FODC0002],
            false,
        );
        let report = run_fault_matrix(&[case]);
        assert!(!report.all_graceful());
        assert_eq!(report.outcomes[0].code, Some(ErrorCode::EXRQ0002));
        assert!(report.to_string().contains("mislabeled"));
    }
}
