//! Serial/parallel determinism differential: the acceptance harness for
//! intra-query parallel execution.
//!
//! The scheduler's contract is stronger than bag equality: a query run
//! with `threads = N` must produce a *byte-identical* serialization to
//! the serial run — same items, same order, same rendered text — because
//! morsel kernels concatenate partial results in morsel order and
//! node-constructing operators execute in the exact serial topological
//! sequence on the owning thread. This module checks that contract over
//! two corpora:
//!
//! * the XMark benchmark queries over a seeded generated document, and
//! * a stream of fuzz-generated (document, query) cells from the
//!   grammar-driven generator, under both the ordered and unordered
//!   profiles.
//!
//! Comparison is exact sequence equality of rendered items — *not* the
//! bag equivalence the unordered mode would grant — so any
//! scheduler-introduced reordering is a failure even where the language
//! semantics would forgive it.

use crate::fuzz::{cell_rng, gen_doc, gen_query, FuzzProfile, FUZZ_DOC_URL};
use exrquy::engine::StepAlgo;
use exrquy::frontend::pretty;
use exrquy::{QueryOptions, ResultItem, Session};
use exrquy_xmark::{generate, query, XmarkConfig, ALL_QUERIES};
use std::fmt;

/// Parameters for a serial/parallel determinism run.
#[derive(Debug, Clone)]
pub struct ParallelConfig {
    /// XMark scale factor for the generated document.
    pub scale: f64,
    /// Generator seed (XMark document and fuzz stream).
    pub seed: u64,
    /// Worker-thread counts to compare against the serial reference.
    pub threads: Vec<usize>,
    /// 1-based XMark query numbers to run (defaults to all 20).
    pub queries: Vec<usize>,
    /// Step algorithms the XMark corpus runs under. The first entry's
    /// serial run is the cross-algorithm reference: every algorithm must
    /// render identically before parallelism even enters the picture
    /// (staircase join and the name-stream scan produce the same
    /// document-order node sets).
    pub step_algos: Vec<StepAlgo>,
    /// Fuzz-generated (document, query) cells per profile on top of the
    /// XMark set.
    pub fuzz_iters: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig {
            scale: 0.0025,
            seed: 42,
            threads: vec![2, 4],
            queries: (1..=ALL_QUERIES.len()).collect(),
            step_algos: vec![StepAlgo::Staircase],
            fuzz_iters: 25,
        }
    }
}

/// Outcome of a determinism run.
#[derive(Debug)]
pub struct ParallelReport {
    /// (query, thread-count) cells compared.
    pub cells: usize,
    /// Cells where the serial arm errored (engine limitation, not a
    /// determinism verdict) and the parallel arm errored likewise.
    pub skipped: usize,
    /// Divergence descriptions; empty on success.
    pub mismatches: Vec<String>,
}

impl ParallelReport {
    /// Every compared cell byte-identical?
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl fmt::Display for ParallelReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "serial/parallel determinism: {} cells, {} skipped, {} mismatch(es)",
            self.cells,
            self.skipped,
            self.mismatches.len()
        )?;
        for m in &self.mismatches {
            write!(f, "\n  {m}")?;
        }
        Ok(())
    }
}

/// The full rendered output, order preserved — the byte-identity witness.
fn rendered(items: &[ResultItem]) -> Vec<String> {
    items.iter().map(ResultItem::render).collect()
}

/// Compare one (session, query) cell at `threads` workers against the
/// serial reference. Returns `Ok(true)` when compared, `Ok(false)` when
/// both arms errored (skip), `Err` with a description on divergence.
fn compare_cell(
    session: &Session,
    label: &str,
    q: &str,
    base: &QueryOptions,
    threads: usize,
) -> Result<bool, String> {
    let serial = session.query_with(q, &base.clone().with_threads(1));
    let parallel = session.query_with(q, &base.clone().with_threads(threads));
    match (serial, parallel) {
        (Ok(s), Ok(p)) => {
            let (s, p) = (rendered(&s.items), rendered(&p.items));
            if s == p {
                Ok(true)
            } else {
                Err(format!(
                    "{label} x{threads}: serialization diverged ({} vs {} items{})",
                    s.len(),
                    p.len(),
                    s.iter()
                        .zip(&p)
                        .position(|(a, b)| a != b)
                        .map(|i| format!(", first at index {i}"))
                        .unwrap_or_default()
                ))
            }
        }
        (Err(_), Err(_)) => Ok(false),
        (Ok(_), Err(e)) => Err(format!(
            "{label} x{threads}: parallel errored where serial succeeded: {}",
            e.render_line()
        )),
        (Err(e), Ok(_)) => Err(format!(
            "{label} x{threads}: parallel succeeded where serial errored: {}",
            e.render_line()
        )),
    }
}

/// Run the determinism differential over the XMark and fuzz corpora.
pub fn run_parallel_differential(cfg: &ParallelConfig) -> ParallelReport {
    let mut report = ParallelReport {
        cells: 0,
        skipped: 0,
        mismatches: Vec::new(),
    };
    fn check(
        report: &mut ParallelReport,
        thread_counts: &[usize],
        session: &Session,
        label: &str,
        q: &str,
        base: &QueryOptions,
    ) {
        for &threads in thread_counts {
            report.cells += 1;
            match compare_cell(session, label, q, base, threads) {
                Ok(true) => {}
                Ok(false) => report.skipped += 1,
                Err(m) => report.mismatches.push(m),
            }
        }
    }

    // XMark corpus: one document, every configured benchmark query,
    // under every configured step algorithm.
    let xml = generate(&XmarkConfig {
        scale: cfg.scale,
        seed: cfg.seed,
    });
    let mut session = Session::new();
    session
        .load_document("auction.xml", &xml)
        .expect("XMark generator emitted malformed XML");
    for &q in &cfg.queries {
        let mut reference: Option<(StepAlgo, Vec<String>)> = None;
        for &algo in &cfg.step_algos {
            let mut base = QueryOptions::order_indifferent();
            base.step_algo = algo;
            let label = format!("xmark Q{q} [{algo:?}]");
            // Cross-algorithm check on the serial runs first.
            if let Ok(out) = session.query_with(query(q), &base.clone().with_threads(1)) {
                let r = rendered(&out.items);
                match &reference {
                    Some((ref_algo, ref_r)) if ref_r != &r => {
                        report.cells += 1;
                        report.mismatches.push(format!(
                            "{label}: step algorithms disagree serially \
                             ({ref_algo:?} {} items vs {algo:?} {} items)",
                            ref_r.len(),
                            r.len()
                        ));
                    }
                    Some(_) => {}
                    None => reference = Some((algo, r)),
                }
            }
            check(&mut report, &cfg.threads, &session, &label, query(q), &base);
        }
    }

    // Fuzz corpus: fresh (document, query) per cell, both profiles.
    for i in 0..cfg.fuzz_iters {
        for profile in [FuzzProfile::Ordered, FuzzProfile::Unordered] {
            let mut rng = cell_rng(cfg.seed, i, profile);
            let doc = gen_doc(&mut rng);
            let q = pretty(&gen_query(&mut rng, profile));
            let mut s = Session::new();
            s.load_document(FUZZ_DOC_URL, &doc)
                .expect("generated doc malformed");
            check(
                &mut report,
                &cfg.threads,
                &s,
                &format!("fuzz iter {i} [{profile}]"),
                &q,
                &profile.options(),
            );
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_determinism_subset_is_byte_identical() {
        // Full coverage lives in the tier-1 integration test
        // (`tests/parallel_determinism.rs`); a small subset keeps the
        // unit tier fast.
        let cfg = ParallelConfig {
            threads: vec![4],
            queries: vec![1, 6, 20],
            step_algos: vec![StepAlgo::Staircase, StepAlgo::NameStream],
            fuzz_iters: 5,
            ..ParallelConfig::default()
        };
        let report = run_parallel_differential(&cfg);
        assert!(report.passed(), "{report}");
        // 3 queries x 2 algos x 1 thread count + 5 fuzz iters x 2 profiles.
        assert_eq!(report.cells, 16);
    }
}
