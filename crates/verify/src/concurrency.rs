//! Multi-threaded differential run: the thread-safety proof for the
//! Catalog/Executor split.
//!
//! One XMark document is loaded into a single catalog snapshot; a serial
//! pass establishes the reference answer for every configured query;
//! then N threads re-execute the full query set concurrently through a
//! *shared* executor (same `Arc<Catalog>`, same plan cache). Every
//! thread's every result must be bag-equal to the serial reference —
//! order indifference grants exactly that freedom — the catalog must be
//! byte-identical afterwards (concurrent executions write only their
//! private overlay arenas), and the plan cache must show hits (threads
//! reuse the plans the serial pass compiled).

use exrquy::{CacheStats, QueryOptions, ResultItem, Session};
use exrquy_xmark::{generate, query, XmarkConfig, ALL_QUERIES};
use std::fmt;
use std::sync::Mutex;

/// Parameters for the concurrent differential run.
#[derive(Debug, Clone)]
pub struct ConcurrencyConfig {
    /// XMark scale factor for the generated document.
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Worker thread count.
    pub threads: usize,
    /// 1-based query numbers each thread runs (defaults to all 20).
    pub queries: Vec<usize>,
}

impl Default for ConcurrencyConfig {
    fn default() -> Self {
        ConcurrencyConfig {
            scale: 0.0025,
            seed: 42,
            threads: 8,
            queries: (1..=ALL_QUERIES.len()).collect(),
        }
    }
}

/// Outcome of a concurrent differential run.
#[derive(Debug)]
pub struct ConcurrencyReport {
    pub threads: usize,
    /// (thread, query) cells executed.
    pub cells: usize,
    /// Divergence descriptions; empty on success.
    pub mismatches: Vec<String>,
    /// Plan-cache counters after the run (serial pass + all threads).
    pub cache: CacheStats,
    /// Catalog node counts before and after the concurrent phase — any
    /// difference means an execution leaked constructed nodes into the
    /// shared snapshot.
    pub catalog_nodes: (usize, usize),
}

impl ConcurrencyReport {
    /// Every cell bag-equal, catalog untouched, and the plan cache was
    /// actually exercised across threads.
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
            && self.catalog_nodes.0 == self.catalog_nodes.1
            && self.cache.hits > 0
    }
}

impl fmt::Display for ConcurrencyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "concurrent differential: {} threads x {} cells, {} mismatch(es), \
             catalog nodes {} -> {}, plan cache {} hit(s) / {} miss(es) \
             ({:.0}% hit rate)",
            self.threads,
            self.cells,
            self.mismatches.len(),
            self.catalog_nodes.0,
            self.catalog_nodes.1,
            self.cache.hits,
            self.cache.misses,
            self.cache.hit_rate() * 100.0
        )?;
        for m in &self.mismatches {
            write!(f, "\n  {m}")?;
        }
        Ok(())
    }
}

/// Render a result as a sorted bag (the equivalence `unordered` mode
/// grants: any permutation of the reference multiset is admissible).
fn bag(items: &[ResultItem]) -> Vec<String> {
    let mut v: Vec<String> = items.iter().map(ResultItem::render).collect();
    v.sort();
    v
}

/// Run the concurrent differential: serial reference pass, then
/// `cfg.threads` threads re-running every query against the shared
/// executor, comparing bags.
pub fn run_concurrent_differential(cfg: &ConcurrencyConfig) -> ConcurrencyReport {
    let xml = generate(&XmarkConfig {
        scale: cfg.scale,
        seed: cfg.seed,
    });
    let mut session = Session::new();
    session
        .load_document("auction.xml", &xml)
        .expect("XMark generator emitted malformed XML");
    let opts = QueryOptions::order_indifferent();

    // Serial reference pass (also primes the plan cache).
    let mut reference: Vec<(usize, Vec<String>)> = Vec::new();
    let mut mismatches: Vec<String> = Vec::new();
    for &q in &cfg.queries {
        match session.query_with(query(q), &opts) {
            Ok(out) => reference.push((q, bag(&out.items))),
            Err(e) => mismatches.push(format!("serial Q{q}: {}", e.render_line())),
        }
    }

    let executor = session.executor().clone();
    let nodes_before = session.catalog().total_nodes();
    let shared_mismatches = Mutex::new(mismatches);
    std::thread::scope(|scope| {
        for t in 0..cfg.threads {
            let executor = &executor;
            let reference = &reference;
            let opts = &opts;
            let shared_mismatches = &shared_mismatches;
            scope.spawn(move || {
                for (q, expect) in reference {
                    let outcome = executor
                        .prepare(query(*q), opts)
                        .and_then(|plan| executor.execute(&plan));
                    let problem = match outcome {
                        Ok(out) if &bag(&out.items) == expect => continue,
                        Ok(out) => format!(
                            "thread {t} Q{q}: bag mismatch ({} items vs {} expected)",
                            out.items.len(),
                            expect.len()
                        ),
                        Err(e) => format!("thread {t} Q{q}: {}", e.render_line()),
                    };
                    shared_mismatches.lock().unwrap().push(problem);
                }
            });
        }
    });
    let nodes_after = session.catalog().total_nodes();

    ConcurrencyReport {
        threads: cfg.threads,
        cells: cfg.threads * reference.len(),
        mismatches: shared_mismatches.into_inner().unwrap(),
        cache: executor.cache_stats(),
        catalog_nodes: (nodes_before, nodes_after),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_concurrent_subset_passes_with_cache_hits() {
        // Full coverage lives in the tier-1 integration test
        // (`tests/concurrency.rs`); a 3-query x 4-thread smoke keeps the
        // unit tier fast.
        let cfg = ConcurrencyConfig {
            threads: 4,
            queries: vec![1, 6, 20],
            ..ConcurrencyConfig::default()
        };
        let report = run_concurrent_differential(&cfg);
        assert!(report.passed(), "{report}");
        assert_eq!(report.cells, 12);
        assert!(report.cache.hit_rate() > 0.0);
    }
}
