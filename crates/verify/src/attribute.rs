//! Per-rule divergence attribution: name the rewrite that breaks a query.
//!
//! When the oracle rejects a query, the interesting question is *which*
//! optimizer rewrite is responsible. Every rewrite carries a name (see
//! [`exrquy::opt::RULE_NAMES`]) and [`OptOptions`] can disable rules
//! individually, so attribution is a search over the rules the optimized
//! arm's trace actually fired:
//!
//! 1. Re-prepare the query to read [`OptReport::trace`]
//!    (exrquy::opt::OptReport::trace); collect the distinct fired rules.
//! 2. Disable *all* of them. Still diverging? Then no rewrite is to blame
//!    — the fault is engine- or oracle-side ([`Attribution::EngineSide`];
//!    this is what a planted `oracle-perturb` failpoint reports).
//! 3. Otherwise bisect: halve the disabled set while the divergence keeps
//!    vanishing, then confirm the last rule standing alone suffices —
//!    [`Attribution::Rule`]. When no single rule suffices (rules conspire),
//!    the minimal set found is reported as [`Attribution::Rules`].
//!
//! A probe "vanishes" only when the oracle fully *passes*; probes that
//! fail with non-verification errors count as not-vanished, so attribution
//! can never mistake a crash for a cure. Attribution probes vary
//! `OptOptions::disabled_rules`, which feeds the plan-cache fingerprint —
//! no probe can poison or reuse another configuration's cached plan.

use crate::fuzz::{load_corpus, oracle_outcome, OracleOutcome};
use exrquy::opt::RuleSet;
use exrquy::{QueryOptions, Session};
use std::fmt;

/// Who is responsible for an oracle divergence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Attribution {
    /// Disabling exactly this rewrite makes the divergence vanish.
    Rule(String),
    /// No single rule suffices; disabling this (minimal found) set does.
    Rules(Vec<String>),
    /// The divergence survives with every fired rewrite disabled: the
    /// fault is in the engine, the oracle, or injected at result level.
    EngineSide,
    /// The query did not diverge when attribution re-ran it.
    NotReproduced,
}

impl fmt::Display for Attribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attribution::Rule(r) => write!(f, "rule `{r}`"),
            Attribution::Rules(rs) => write!(f, "rule interaction {{{}}}", rs.join(", ")),
            Attribution::EngineSide => f.write_str("engine-side (no rewrite responsible)"),
            Attribution::NotReproduced => f.write_str("divergence did not reproduce"),
        }
    }
}

/// Does the oracle *pass* on `query` once `disabled` is added to the
/// disabled-rule set? Non-verification errors are not a pass.
fn vanishes(doc: &str, query: &str, opts: &QueryOptions, disabled: RuleSet) -> bool {
    let mut probe = opts.clone();
    probe.opt.disabled_rules = probe.opt.disabled_rules.union(disabled);
    matches!(oracle_outcome(doc, query, &probe), OracleOutcome::Agreed)
}

/// Attribute a divergence of `query` over `doc` under `opts` to a named
/// rewrite rule (or to the engine side).
pub fn attribute_divergence(doc: &str, query: &str, opts: &QueryOptions) -> Attribution {
    match oracle_outcome(doc, query, opts) {
        OracleOutcome::Diverged(_) => {}
        _ => return Attribution::NotReproduced,
    }
    // The candidate set: rules the *optimized* arm actually fired, in
    // trace order (deduplicated). `opts` is exactly that arm's options.
    let fired = fired_rules(doc, query, opts);
    if fired.is_empty() {
        return Attribution::EngineSide;
    }
    let all = RuleSet::from_names(fired.iter().copied()).unwrap_or_else(|e| panic!("{e}"));
    if !vanishes(doc, query, opts, all) {
        return Attribution::EngineSide;
    }
    // Bisect: keep the half whose disabling alone still cures it.
    let mut set: Vec<&'static str> = fired;
    while set.len() > 1 {
        let (a, b) = set.split_at(set.len() / 2);
        let (a, b) = (a.to_vec(), b.to_vec());
        let ruleset = |names: &[&'static str]| {
            RuleSet::from_names(names.iter().copied()).expect("trace rules are known")
        };
        if vanishes(doc, query, opts, ruleset(&a)) {
            set = a;
        } else if vanishes(doc, query, opts, ruleset(&b)) {
            set = b;
        } else {
            // The halves conspire. Fall back to a linear single-rule scan
            // before reporting an interaction.
            for &r in &set {
                if vanishes(doc, query, opts, ruleset(&[r])) {
                    return Attribution::Rule(r.to_string());
                }
            }
            return Attribution::Rules(set.iter().map(|r| r.to_string()).collect());
        }
    }
    Attribution::Rule(set[0].to_string())
}

/// Distinct rules the optimized arm's trace fired, in first-fired order.
fn fired_rules(doc: &str, query: &str, opts: &QueryOptions) -> Vec<&'static str> {
    let mut session = Session::new();
    if load_corpus(&mut session, doc).is_err() {
        return Vec::new();
    }
    let Ok(plan) = session.prepare(query, opts) else {
        return Vec::new();
    };
    let mut seen = Vec::new();
    for app in &plan.opt_report.trace {
        if !seen.contains(&app.rule) {
            seen.push(app.rule);
        }
    }
    seen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::FuzzProfile;
    use exrquy::diag::Failpoints;

    const DOC: &str = r#"<r><a id="3"/><a id="1"/><a id="2"/></r>"#;
    const ORDERED_QUERY: &str = r#"for $x in doc("f.xml")//a order by $x/attribute::id descending return fn:string($x/attribute::id)"#;

    #[test]
    fn planted_rule_perturbation_is_attributed_to_its_rule() {
        // `rule-perturb:weaken-criteria` makes the weakening pass drop
        // *real* order criteria; under sequence equivalence the descending
        // sort comes back in document order and the oracle trips. The
        // culprit must be named — and disabling it must be the cure.
        let opts = FuzzProfile::Ordered
            .options()
            .with_failpoints(Failpoints::parse("rule-perturb:weaken-criteria").unwrap());
        assert!(
            crate::fuzz::oracle_diverges(DOC, ORDERED_QUERY, &opts),
            "planted perturbation must diverge"
        );
        assert_eq!(
            attribute_divergence(DOC, ORDERED_QUERY, &opts),
            Attribution::Rule("weaken-criteria".to_string())
        );
    }

    #[test]
    fn oracle_perturbation_is_engine_side() {
        let opts = FuzzProfile::Unordered
            .options()
            .with_failpoints(Failpoints::parse("oracle-perturb:optimized").unwrap());
        assert_eq!(
            attribute_divergence(DOC, r#"doc("f.xml")//a"#, &opts),
            Attribution::EngineSide
        );
    }

    #[test]
    fn every_single_rule_disable_yields_a_valid_plan() {
        // Attribution probes by disabling one rule at a time, so every
        // rule must be individually severable: the remaining rewrites may
        // not assume it ran. (Regression: disabling `project-prune` alone
        // used to break plan validation, because the required-columns
        // analysis assumed projections get pruned while `cda-bypass-*`
        // deleted the producers the unpruned projections still read.)
        let query = r#"for $x in doc("f.xml")//a order by $x/attribute::id return <out>{ fn:string($x/attribute::id) }</out>"#;
        for &rule in exrquy::opt::RULE_NAMES {
            let mut opts = FuzzProfile::Ordered.options();
            opts.opt.disabled_rules = RuleSet::from_names([rule]).unwrap();
            assert!(
                matches!(oracle_outcome(DOC, query, &opts), OracleOutcome::Agreed),
                "oracle not clean with `{rule}` disabled"
            );
        }
    }

    #[test]
    fn healthy_query_does_not_reproduce() {
        let opts = FuzzProfile::Unordered.options();
        assert_eq!(
            attribute_divergence(DOC, r#"doc("f.xml")//a"#, &opts),
            Attribution::NotReproduced
        );
    }
}
