//! The XMark differential suite: every benchmark query through the
//! three-way oracle, over a matrix of generator seeds.
//!
//! Documents come from the seeded XMark generator, so the whole suite is
//! reproducible from `(scale, seed)` alone; CI pins a fixed seed matrix
//! and fails on any divergence.

use exrquy::{QueryOptions, Session};
use exrquy_xmark::{generate, query, XmarkConfig, ALL_QUERIES};
use std::fmt;

/// Suite parameters: a document scale and a seed matrix.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// XMark scale factor for the generated document.
    pub scale: f64,
    /// Generator seeds; the full query set runs once per seed.
    pub seeds: Vec<u64>,
    /// 1-based query numbers to run (defaults to all 20).
    pub queries: Vec<usize>,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            // ≈64 persons / 54 items — big enough for every query to
            // return rows, small enough for CI.
            scale: 0.0025,
            seeds: vec![42],
            queries: (1..=ALL_QUERIES.len()).collect(),
        }
    }
}

impl SuiteConfig {
    /// Replace the seed matrix.
    pub fn with_seeds(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }
}

/// One (seed, query) cell of the matrix.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    pub seed: u64,
    /// 1-based XMark query number.
    pub query: usize,
    /// Result cardinality of the optimized arm (when the oracle passed).
    pub items: usize,
    /// `None` on success; the rendered error line on failure (oracle
    /// divergence or any pipeline error in an arm).
    pub error: Option<String>,
}

/// Outcome of a full suite run.
#[derive(Debug, Clone, Default)]
pub struct SuiteReport {
    pub outcomes: Vec<QueryOutcome>,
}

impl SuiteReport {
    /// The failing cells.
    pub fn failures(&self) -> Vec<&QueryOutcome> {
        self.outcomes.iter().filter(|o| o.error.is_some()).collect()
    }

    /// Did every cell pass the oracle?
    pub fn all_passed(&self) -> bool {
        self.outcomes.iter().all(|o| o.error.is_none())
    }
}

impl fmt::Display for SuiteReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fails = self.failures();
        write!(
            f,
            "xmark differential suite: {}/{} cells passed",
            self.outcomes.len() - fails.len(),
            self.outcomes.len()
        )?;
        for o in fails {
            write!(
                f,
                "\n  seed {} Q{}: {}",
                o.seed,
                o.query,
                o.error.as_deref().unwrap_or("")
            )?;
        }
        Ok(())
    }
}

/// Run the suite: for every seed, generate the document once and push
/// every configured query through [`Session::verify`] under the
/// order-indifferent configuration (the paper's modified compiler, i.e.
/// the configuration with the most rewriting to get wrong).
pub fn run_xmark_suite(cfg: &SuiteConfig) -> SuiteReport {
    let mut report = SuiteReport::default();
    for &seed in &cfg.seeds {
        let xml = generate(&XmarkConfig {
            scale: cfg.scale,
            seed,
        });
        let mut session = Session::new();
        if let Err(e) = session.load_document("auction.xml", &xml) {
            // A generator that emits malformed XML fails every query of
            // this seed; record it once per query for visibility.
            for &q in &cfg.queries {
                report.outcomes.push(QueryOutcome {
                    seed,
                    query: q,
                    items: 0,
                    error: Some(format!("document load failed: {}", e.render_line())),
                });
            }
            continue;
        }
        for &q in &cfg.queries {
            let outcome = match session.verify(query(q), &QueryOptions::order_indifferent()) {
                Ok(r) => QueryOutcome {
                    seed,
                    query: q,
                    items: r.items.len(),
                    error: None,
                },
                Err(e) => QueryOutcome {
                    seed,
                    query: q,
                    items: 0,
                    error: Some(e.render_line()),
                },
            };
            report.outcomes.push(outcome);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_suite_subset_passes() {
        // Full coverage lives in the tier-1 integration test
        // (`tests/verify_oracle.rs`); here a 3-query smoke keeps the unit
        // tier fast.
        let cfg = SuiteConfig {
            queries: vec![1, 6, 20],
            ..SuiteConfig::default()
        };
        let report = run_xmark_suite(&cfg);
        assert!(report.all_passed(), "{report}");
        assert_eq!(report.outcomes.len(), 3);
        assert!(report.to_string().contains("3/3"));
    }
}
