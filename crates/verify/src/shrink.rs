//! Structural AST minimization of diverging queries.
//!
//! Given a query the differential oracle rejects (EXRQ0004), the shrinker
//! searches for the smallest still-diverging query by proposing local
//! simplifications — hoist a child over its parent, drop a FLWOR clause,
//! prune a sequence arm, delete a predicate or `order by` key, replace a
//! whole subtree with `()` — and keeping the first candidate whose
//! pretty-printed text *re-parses* and still diverges under the same
//! options. Candidates that break scoping (e.g. dropping the `for` that
//! binds `$v`) are filtered out for free: every oracle arm fails with the
//! same compile error, which is not a divergence, so the candidate is
//! rejected.
//!
//! Progress is measured by a syntactic [`weight`] that strictly decreases
//! on every accepted step, so the greedy fixpoint terminates; the probe
//! budget bounds the worst case besides. A fully corrupted oracle (the
//! `oracle-perturb` failpoint, where *every* query diverges) shrinks all
//! the way down to `()` — weight 1 — which is the documented bound the
//! acceptance tests pin.

use crate::fuzz::oracle_diverges;
use exrquy::frontend::{parse_module, pretty, Clause, Expr};
use exrquy::QueryOptions;

/// Outcome of a shrink run.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized expression (re-parsed from its own pretty-printing,
    /// so `text` and `expr` are guaranteed consistent).
    pub expr: Expr,
    /// `pretty(expr)` — what reports should display.
    pub text: String,
    /// Syntactic weight of the minimized expression.
    pub weight: usize,
    /// Oracle probes spent.
    pub probes: usize,
}

/// Syntactic weight of an expression: one per AST node, plus one per
/// `at $p` positional variable, element-constructor attribute, and
/// literal text part — the droppable non-`Expr` syntax the shrinker also
/// minimizes. Every accepted shrink step strictly decreases this.
pub fn weight(e: &Expr) -> usize {
    let mut w = 1;
    match e {
        Expr::Flwor { clauses, .. } => {
            for c in clauses {
                // A clause is syntax of its own (its sub-expression is
                // counted by the child walk below).
                w += 1;
                if let Clause::For {
                    pos_var: Some(_), ..
                } = c
                {
                    w += 1;
                }
            }
        }
        Expr::DirElement { attrs, content, .. } => {
            w += attrs.len();
            w += content
                .iter()
                .filter(|c| matches!(c, exrquy::frontend::ElemContent::Text(_)))
                .count();
        }
        _ => {}
    }
    e.for_each_child(|c| w += weight(c));
    w
}

/// Minimize `expr` (which diverges over `doc` under `opts`) to a smaller
/// still-diverging query. Greedy first-improvement loop to a fixpoint,
/// spending at most `max_probes` oracle runs.
pub fn shrink(doc: &str, expr: &Expr, opts: &QueryOptions, max_probes: usize) -> ShrinkOutcome {
    let mut current = expr.clone();
    let mut current_weight = weight(&current);
    let mut probes = 0;
    'outer: loop {
        let mut cands = candidates(&current);
        // Smallest first: when the divergence is insensitive to the query
        // (a corrupted oracle arm), the first probe already lands on `()`.
        cands.sort_by_key(weight);
        for cand in cands {
            if weight(&cand) >= current_weight {
                continue;
            }
            if probes >= max_probes {
                break 'outer;
            }
            let text = pretty(&cand);
            // The candidate must survive the print→parse round trip: the
            // minimized artifact is *text* (for reports and regression
            // cases), so only candidates reproducible from text count.
            let Ok(module) = parse_module(&text) else {
                continue;
            };
            probes += 1;
            if oracle_diverges(doc, &text, opts) {
                current = module.body;
                current_weight = weight(&current);
                continue 'outer;
            }
        }
        break;
    }
    let text = pretty(&current);
    ShrinkOutcome {
        weight: current_weight,
        expr: current,
        text,
        probes,
    }
}

/// All one-step simplifications of `expr`: for every node in the tree,
/// its local variants spliced back into a copy of the whole expression.
fn candidates(expr: &Expr) -> Vec<Expr> {
    let mut per_node = Vec::new();
    let mut counter = 0;
    collect(expr, &mut counter, &mut per_node);
    let mut out = Vec::new();
    for (idx, variants) in per_node {
        for v in variants {
            out.push(replace_at(expr, idx, v));
        }
    }
    out
}

/// Pre-order numbering paired with each node's local variants.
fn collect(e: &Expr, counter: &mut usize, out: &mut Vec<(usize, Vec<Expr>)>) {
    let idx = *counter;
    *counter += 1;
    let vars = local_variants(e);
    if !vars.is_empty() {
        out.push((idx, vars));
    }
    e.for_each_child(|c| collect(c, counter, out));
}

/// Clone of `root` with pre-order node `target` replaced by `v`. The
/// numbering matches [`collect`] because `for_each_child_mut` visits
/// children in the same order as `for_each_child`.
fn replace_at(root: &Expr, target: usize, v: Expr) -> Expr {
    let mut out = root.clone();
    let mut counter = 0;
    let mut replacement = Some(v);
    splice(&mut out, &mut counter, target, &mut replacement);
    out
}

fn splice(e: &mut Expr, counter: &mut usize, target: usize, replacement: &mut Option<Expr>) {
    if replacement.is_none() {
        return;
    }
    if *counter == target {
        *e = replacement.take().unwrap();
        return;
    }
    *counter += 1;
    e.for_each_child_mut(|c| splice(c, counter, target, replacement));
}

/// Local simplifications of one node: each direct child hoisted over the
/// node, structure-specific deletions, and `()` for any composite node.
/// Scope-breaking proposals are fine — the oracle probe rejects them.
fn local_variants(e: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    let leaf = matches!(
        e,
        Expr::IntLit(_)
            | Expr::DblLit(_)
            | Expr::StrLit(_)
            | Expr::Empty
            | Expr::Var(_)
            | Expr::ContextItem
            | Expr::Root
    );
    if leaf {
        return out;
    }
    out.push(Expr::Empty);
    // Hoist every direct child over the node.
    e.for_each_child(|c| out.push(c.clone()));
    match e {
        Expr::Sequence(items) => {
            for i in 0..items.len() {
                let mut rest = items.clone();
                rest.remove(i);
                out.push(if rest.len() == 1 {
                    rest.pop().unwrap()
                } else {
                    Expr::Sequence(rest)
                });
            }
        }
        Expr::PathStep {
            input, predicates, ..
        } => {
            for i in 0..predicates.len() {
                let mut e2 = e.clone();
                if let Expr::PathStep { predicates: p, .. } = &mut e2 {
                    p.remove(i);
                }
                out.push(e2);
            }
            // Drop the final step, keeping its input chain.
            out.push((**input).clone());
        }
        Expr::Flwor {
            clauses, order_by, ..
        } => {
            for i in 0..clauses.len() {
                let mut e2 = e.clone();
                if let Expr::Flwor { clauses: c, .. } = &mut e2 {
                    c.remove(i);
                }
                out.push(e2);
            }
            for (i, c) in clauses.iter().enumerate() {
                if matches!(
                    c,
                    Clause::For {
                        pos_var: Some(_),
                        ..
                    }
                ) {
                    let mut e2 = e.clone();
                    if let Expr::Flwor { clauses: cs, .. } = &mut e2 {
                        if let Clause::For { pos_var, .. } = &mut cs[i] {
                            *pos_var = None;
                        }
                    }
                    out.push(e2);
                }
            }
            for i in 0..order_by.len() {
                let mut e2 = e.clone();
                if let Expr::Flwor { order_by: o, .. } = &mut e2 {
                    o.remove(i);
                }
                out.push(e2);
            }
        }
        Expr::DirElement { attrs, content, .. } => {
            for i in 0..attrs.len() {
                let mut e2 = e.clone();
                if let Expr::DirElement { attrs: a, .. } = &mut e2 {
                    a.remove(i);
                }
                out.push(e2);
            }
            for i in 0..content.len() {
                let mut e2 = e.clone();
                if let Expr::DirElement { content: c, .. } = &mut e2 {
                    c.remove(i);
                }
                out.push(e2);
            }
        }
        Expr::Call { name, args } if args.len() > 1 => {
            for i in 0..args.len() {
                let mut rest = args.clone();
                rest.remove(i);
                out.push(Expr::Call {
                    name: name.clone(),
                    args: rest,
                });
            }
        }
        _ => {}
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fuzz::{FuzzProfile, FUZZ_DOC_URL};
    use exrquy::diag::Failpoints;

    const DOC: &str = r#"<r><a id="3"/><a id="1"/><a id="2"/></r>"#;

    fn parse(q: &str) -> Expr {
        parse_module(q).unwrap().body
    }

    #[test]
    fn weight_counts_droppable_syntax() {
        // for $x at $p in //a return $x — at-var adds 1, clause adds 1.
        let with_at = parse(r#"for $x at $p in doc("f.xml")//a return $x"#);
        let without = parse(r#"for $x in doc("f.xml")//a return $x"#);
        assert_eq!(weight(&with_at), weight(&without) + 1);
        assert!(weight(&parse("()")) == 1);
    }

    #[test]
    fn candidates_strictly_include_hoists_and_unit() {
        let e = parse(r#"fn:count(doc("f.xml")//a) + 1"#);
        let cands = candidates(&e);
        assert!(cands.contains(&Expr::Empty));
        assert!(cands.iter().any(|c| weight(c) < weight(&e)));
        // Hoisting the left operand over the binary is proposed.
        assert!(cands.contains(&parse(r#"fn:count(doc("f.xml")//a)"#)));
    }

    #[test]
    fn corrupted_oracle_shrinks_to_unit() {
        // oracle-perturb corrupts the optimized arm's rendered result, so
        // *every* query diverges — the minimum is `()`, weight 1.
        let opts = FuzzProfile::Unordered
            .options()
            .with_failpoints(Failpoints::parse("oracle-perturb:optimized").unwrap());
        let e = parse(
            r#"for $x in doc("f.xml")//a order by $x/attribute::id return fn:string($x/attribute::id)"#,
        );
        assert!(oracle_diverges(DOC, &pretty(&e), &opts));
        let out = shrink(DOC, &e, &opts, 300);
        assert_eq!(out.text, "()", "minimized to `{}`", out.text);
        assert_eq!(out.weight, 1);
        assert!(out.probes > 0);
        let _ = FUZZ_DOC_URL;
    }
}
