//! Serve-path differential fuzzing: the daemon must be a transparent
//! transport.
//!
//! The grammar fuzzer ([`crate::fuzz`]) checks the *optimizer* against
//! oracles inside one process. This module checks the *serving stack*:
//! the same deterministic (document, query) stream is executed twice —
//! once directly through [`Session`], once over a socket against a live
//! in-process `xqd` daemon (JSON framing, admission queue, worker pool,
//! hot catalog reload per cell) — and the answers are compared
//! byte-for-byte. Error cells must agree on the error *code*.
//!
//! Profile mapping: the [`FuzzProfile::Unordered`] stream runs under the
//! daemon's default `ordering: indifferent` against an in-process
//! [`QueryOptions::order_indifferent`] arm; the [`FuzzProfile::Ordered`]
//! stream is sent with `ordering: baseline` against
//! [`QueryOptions::baseline`]. Both arms of a cell always use identical
//! options, so any divergence is a serving-layer bug (framing, escaping,
//! snapshot swap, scheduling), never an optimizer disagreement.
//!
//! The **chaos arm** ([`ServeDiffConfig::chaos`]) additionally arms the
//! daemon's deterministic network failpoints (torn writes, trickled
//! frames, mid-frame disconnects, delayed reads) and swaps the raw
//! socket for the retrying [`exrquy_xqc::Client`]: the answers must
//! *still* be byte-for-byte identical, proving the client's retry loop
//! composes with the fault-injected transport without corrupting or
//! dropping a single cell. Panic failpoints are deliberately excluded
//! here — a contained panic answers `EXRQ0009`, which is a legitimate
//! server answer, not a transport fault, so it belongs to the panic
//! containment tests, not the transparency check.

use crate::fuzz::{cell_rng, gen_doc, gen_query, FuzzProfile, FUZZ_DOC_URL};
use exrquy::frontend::pretty;
use exrquy::{QueryOptions, Session};
use exrquy_diag::Failpoints;
use exrquy_xqc::{Client, ClientError, Config as XqcConfig, QueryOpts};
use exrquy_xqd::json::{obj, parse, Value};
use exrquy_xqd::{spawn, ServerConfig};
use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

/// The failpoint spec the chaos arm arms on the daemon: every `net-*`
/// fault class, on mutually prime cadences so they interleave.
pub const CHAOS_NET_SPEC: &str =
    "net-torn-write:5,net-trickle:9,net-disconnect:17,net-slow-read:13";

/// Configuration of one serve-path differential run.
#[derive(Debug, Clone)]
pub struct ServeDiffConfig {
    /// Base seed; cells reuse [`cell_rng`], so iteration `i` under
    /// profile `p` generates *exactly* the query the in-process fuzzer
    /// would generate for the same (seed, i, p).
    pub seed: u64,
    pub iters: usize,
    pub profiles: Vec<FuzzProfile>,
    /// Intra-query worker threads for the daemon (0 = serial). The
    /// in-process arm always runs serial: parallel execution is
    /// byte-identical by contract, so this also cross-checks that.
    pub threads: usize,
    /// Arm [`CHAOS_NET_SPEC`] on the daemon and drive the socket arm
    /// through the retrying `xqc` client instead of a raw socket.
    pub chaos: bool,
}

impl Default for ServeDiffConfig {
    fn default() -> Self {
        ServeDiffConfig {
            seed: 42,
            iters: 100,
            profiles: vec![FuzzProfile::Ordered, FuzzProfile::Unordered],
            threads: 0,
            chaos: false,
        }
    }
}

/// One cell where the socket answer disagreed with direct execution.
#[derive(Debug, Clone)]
pub struct ServeDivergence {
    pub iteration: usize,
    pub profile: FuzzProfile,
    pub query: String,
    /// What direct [`Session`] execution produced (result or `code`).
    pub direct: String,
    /// What came back over the socket (result or `code: message`).
    pub served: String,
}

/// Outcome of a serve-path differential run.
#[derive(Debug, Clone)]
pub struct ServeReport {
    pub seed: u64,
    pub cells: usize,
    /// Cells where both arms agreed (same bytes, or same error code).
    pub matched: usize,
    /// Cells the daemon shed (`EXRQ0006/7/8`) — legal under load, so
    /// not a divergence, but they carry no signal either.
    pub skipped: usize,
    /// Client-side retries spent recovering injected transport faults
    /// (always 0 without [`ServeDiffConfig::chaos`]).
    pub retries: u64,
    pub divergences: Vec<ServeDivergence>,
}

impl ServeReport {
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "serve-fuzz seed {}: {} cells, {} matched, {} skipped, {} divergences, {} retries",
            self.seed,
            self.cells,
            self.matched,
            self.skipped,
            self.divergences.len(),
            self.retries,
        )?;
        for d in &self.divergences {
            write!(
                f,
                "\n  iter {} [{}]\n    query:  {}\n    direct: {}\n    served: {}",
                d.iteration, d.profile, d.query, d.direct, d.served
            )?;
        }
        Ok(())
    }
}

/// How one arm of a cell ended: a rendered result, or an error code.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Arm {
    Result(String),
    Error(String),
    /// Daemon-side shed (overload/deadline/drain) — never a divergence.
    Shed,
}

/// The socket arm's transport: a raw blocking socket in the default
/// mode (any transport hiccup is a harness bug and panics), or the
/// retrying `xqc` client when chaos is armed (transport faults are the
/// point; only an *unrecovered* one panics).
enum Wire {
    Raw {
        writer: TcpStream,
        reader: BufReader<TcpStream>,
    },
    Retrying(Box<Client>),
}

impl Wire {
    fn load(&mut self, id: i64, url: &str, xml: &str) -> Result<(), String> {
        match self {
            Wire::Raw { writer, reader } => {
                let resp = roundtrip(
                    writer,
                    reader,
                    obj(vec![
                        ("id", Value::Int(id)),
                        ("op", Value::Str("load".into())),
                        ("url", Value::Str(url.into())),
                        ("xml", Value::Str(xml.into())),
                    ]),
                );
                if resp.get("ok") == Some(&Value::Bool(true)) {
                    Ok(())
                } else {
                    Err(resp.render())
                }
            }
            Wire::Retrying(client) => client.load(url, xml).map_err(|e| e.to_string()),
        }
    }

    fn query(&mut self, id: i64, query: &str, baseline: bool) -> Arm {
        match self {
            Wire::Raw { writer, reader } => {
                let mut req = vec![
                    ("id", Value::Int(id)),
                    ("op", Value::Str("query".into())),
                    ("query", Value::Str(query.into())),
                ];
                if baseline {
                    req.push(("ordering", Value::Str("baseline".into())));
                }
                let resp = roundtrip(writer, reader, obj(req));
                if resp.get("ok") == Some(&Value::Bool(true)) {
                    Arm::Result(
                        resp.get("result")
                            .and_then(Value::as_str)
                            .unwrap_or_default()
                            .to_string(),
                    )
                } else {
                    match resp.get("code").and_then(Value::as_str) {
                        Some(code) if code.starts_with("EXRQ000") => Arm::Shed,
                        Some(code) => Arm::Error(code.to_string()),
                        None => Arm::Error(format!("untyped failure: {}", resp.render())),
                    }
                }
            }
            Wire::Retrying(client) => {
                let opts = QueryOpts {
                    baseline,
                    ..QueryOpts::default()
                };
                match client.query_with(query, &opts) {
                    Ok(result) => Arm::Result(result),
                    Err(ClientError::Server { code, .. })
                        if code.as_str().starts_with("EXRQ000") =>
                    {
                        Arm::Shed
                    }
                    Err(ClientError::Server { code, .. }) => Arm::Error(code.as_str().to_string()),
                    // An unrecovered transport/protocol failure under
                    // bounded, deterministic chaos is a client bug.
                    Err(e) => panic!("chaos serve-diff: unrecovered failure: {e}"),
                }
            }
        }
    }

    fn retries(&self) -> u64 {
        match self {
            Wire::Raw { .. } => 0,
            Wire::Retrying(client) => client.stats().retries,
        }
    }
}

/// Run the serve-path differential fuzzer against a freshly spawned
/// in-process daemon. Panics on transport failures (connect, framing):
/// those are harness bugs, not divergences.
pub fn run_serve_diff(cfg: &ServeDiffConfig) -> ServeReport {
    let server = spawn(
        ServerConfig {
            workers: 2,
            queue_capacity: 16,
            threads: cfg.threads,
            failpoints: if cfg.chaos {
                Failpoints::parse(CHAOS_NET_SPEC).expect("chaos spec parses")
            } else {
                Failpoints::default()
            },
            ..ServerConfig::default()
        },
        Session::new(),
    )
    .expect("spawn in-process daemon for serve-diff");
    let mut wire = if cfg.chaos {
        Wire::Retrying(Box::new(Client::connect(XqcConfig {
            max_retries: 8,
            backoff_base: Duration::from_millis(1),
            backoff_max: Duration::from_millis(20),
            read_timeout: Duration::from_secs(120),
            jitter_seed: cfg.seed,
            ..XqcConfig::new(server.addr().to_string())
        })))
    } else {
        let stream = TcpStream::connect(server.addr()).expect("connect to serve-diff daemon");
        stream
            .set_read_timeout(Some(Duration::from_secs(120)))
            .unwrap();
        Wire::Raw {
            writer: stream.try_clone().unwrap(),
            reader: BufReader::new(stream),
        }
    };

    let mut report = ServeReport {
        seed: cfg.seed,
        cells: 0,
        matched: 0,
        skipped: 0,
        retries: 0,
        divergences: Vec::new(),
    };

    for i in 0..cfg.iters {
        for &profile in &cfg.profiles {
            report.cells += 1;
            let mut rng = cell_rng(cfg.seed, i, profile);
            let doc = gen_doc(&mut rng);
            let query = pretty(&gen_query(&mut rng, profile));
            let opts = match profile {
                // The daemon's two ordering modes, not the fuzz
                // profiles' oracle options: both arms must run the
                // exact same configuration.
                FuzzProfile::Unordered => QueryOptions::order_indifferent(),
                FuzzProfile::Ordered => QueryOptions::baseline(),
            };

            // Direct arm: a fresh session per cell, like the fuzzer.
            let mut session = Session::new();
            if session.load_document(FUZZ_DOC_URL, &doc).is_err() {
                report.skipped += 1;
                continue;
            }
            let direct = match session.query_with(&query, &opts) {
                Ok(out) => Arm::Result(out.to_xml()),
                Err(e) => Arm::Error(e.code().as_str().to_string()),
            };

            // Served arm: hot-reload the document (exercising the
            // snapshot swap every cell), then query over the wire.
            if let Err(failure) = wire.load((i as i64) * 2, FUZZ_DOC_URL, &doc) {
                // The direct arm loaded this exact document above.
                report.divergences.push(ServeDivergence {
                    iteration: i,
                    profile,
                    query,
                    direct: "document loads".to_string(),
                    served: format!("load failed: {failure}"),
                });
                continue;
            }
            let served = wire.query(
                (i as i64) * 2 + 1,
                &query,
                matches!(profile, FuzzProfile::Ordered),
            );

            match (&direct, &served) {
                (_, Arm::Shed) => report.skipped += 1,
                (a, b) if a == b => report.matched += 1,
                _ => report.divergences.push(ServeDivergence {
                    iteration: i,
                    profile,
                    query,
                    direct: arm_text(&direct),
                    served: arm_text(&served),
                }),
            }
        }
    }

    report.retries = wire.retries();
    drop(wire);
    let stats = server.shutdown();
    assert_eq!(stats.queue_depth, 0, "serve-diff drain left work queued");
    report
}

fn arm_text(arm: &Arm) -> String {
    match arm {
        Arm::Result(s) => format!("result `{s}`"),
        Arm::Error(c) => format!("error {c}"),
        Arm::Shed => "shed".to_string(),
    }
}

fn roundtrip(writer: &mut TcpStream, reader: &mut BufReader<TcpStream>, req: Value) -> Value {
    let line = req.render();
    writer.write_all(line.as_bytes()).expect("write request");
    writer.write_all(b"\n").expect("write newline");
    writer.flush().expect("flush request");
    let mut resp = String::new();
    let n = reader.read_line(&mut resp).expect("read response");
    assert!(n > 0, "daemon closed the connection mid-run");
    parse(resp.trim_end()).expect("daemon emitted invalid json")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short run is deterministic and clean: the daemon transports the
    /// exact bytes direct execution produces, for every generated cell.
    #[test]
    fn serve_path_agrees_with_direct_execution() {
        let cfg = ServeDiffConfig {
            seed: 7,
            iters: 12,
            ..ServeDiffConfig::default()
        };
        let a = run_serve_diff(&cfg);
        assert!(a.clean(), "{a}");
        assert_eq!(a.cells, 24);
        assert!(a.matched > 0, "{a}");
        let b = run_serve_diff(&cfg);
        assert_eq!(a.to_string(), b.to_string());
    }

    /// The parallel daemon (threads > 0) stays byte-identical to serial
    /// direct execution — the serving layer composes with the
    /// work-stealing contract.
    #[test]
    fn parallel_serve_path_is_byte_identical_to_serial() {
        let report = run_serve_diff(&ServeDiffConfig {
            seed: 11,
            iters: 8,
            threads: 2,
            ..ServeDiffConfig::default()
        });
        assert!(report.clean(), "{report}");
    }

    /// With every network fault armed and the retrying client in the
    /// loop, the serve path is *still* byte-for-byte transparent — and
    /// deterministically so, because the faults are count-based and the
    /// retry jitter is seeded.
    #[test]
    fn chaos_serve_path_stays_byte_identical_through_injected_faults() {
        let cfg = ServeDiffConfig {
            seed: 7,
            iters: 10,
            chaos: true,
            ..ServeDiffConfig::default()
        };
        let a = run_serve_diff(&cfg);
        assert!(a.clean(), "{a}");
        assert!(
            a.retries >= 1,
            "40+ frames through a disconnect-every-17th transport \
             must have needed retries: {a}"
        );
        let b = run_serve_diff(&cfg);
        assert_eq!(a.to_string(), b.to_string(), "chaos run is deterministic");
    }
}
