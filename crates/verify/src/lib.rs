//! Self-verification harnesses for the eXrQuy pipeline.
//!
//! The primitive — the three-way differential oracle — lives in the core
//! crate as [`Session::verify`](exrquy::Session::verify): it executes one
//! query unoptimized, optimized, and optimized with `%`-weakening
//! disabled, and compares the results under the equivalence the effective
//! ordering mode grants (exact sequences when `ordered`, bags when
//! `unordered`). This crate builds the batch layers on top:
//!
//! * [`suite`] — the XMark differential suite: all 20 benchmark queries,
//!   over a matrix of generator seeds and scale factors, through the
//!   oracle. Any divergence is a bug in the optimizer (or the oracle).
//! * [`harness`] — the fault-injection matrix: a grid of failpoint specs
//!   (`doc-io`, `doc-parse`, `budget-trip`, `cancel-after`) run against
//!   real queries, asserting *graceful degradation*: the expected typed
//!   error code, no panic, no partially-built store state, and a session
//!   that remains usable afterwards.
//! * [`concurrency`] — the multi-threaded differential: N threads
//!   re-execute the XMark query set through one shared executor (same
//!   `Arc<Catalog>`, same plan cache) and every result must be bag-equal
//!   to a serial reference pass, with the catalog untouched and the plan
//!   cache showing cross-thread hits.
//! * [`parallel`] — the serial/parallel determinism differential: every
//!   query run with `threads = N` must serialize *byte-identically* to
//!   the serial run (exact sequence equality, deliberately stricter than
//!   the bag equivalence the unordered mode would grant), over both the
//!   XMark queries and a fuzz-generated corpus.
//! * [`sharded`] — the sharded-vs-unsharded differential: the same
//!   corpus (XMark split by subtree, plus fuzz-generated multi-document
//!   corpora) partitioned into 1, 2, and 8 shards must serialize
//!   *byte-identically* per engine path (vectorized and scalar), so
//!   shard count never leaks into output in any form.
//! * [`costed`] — the costed-vs-uncosted differential: every plan the
//!   cost-based join enumerator picks must serialize *byte-identically*
//!   to the rule-only (`--no-cost`) plan, over XMark Q1–Q20, the shard
//!   matrix, and a fuzz stream of multi-document join queries — with
//!   `stats-perturb` arms proving corrupted estimates may change the
//!   plan but never the output.
//! * [`fuzz`] — the self-minimizing differential fuzzer (CLI:
//!   `fuzz-verify`): a grammar-driven generator draws random documents
//!   and queries per seeded cell and pushes each through the oracle,
//!   under both the ordered (sequence-equivalence) and unordered
//!   (bag-equivalence) profiles.
//! * [`shrink`] — on a divergence, a structural AST minimizer reduces
//!   the query to a local minimum that still diverges, probing each
//!   candidate through a pretty-print→re-parse round so the reported
//!   text is exactly the query that fails.
//! * [`attribute`] — per-rule attribution: re-run the minimized query
//!   with rewrite rules from the optimized arm's trace disabled
//!   (bisection with single-rule fallback) to name the culprit rewrite,
//!   or report the fault engine-side.
//!
//! All layers are deterministic end to end — documents come from seeded
//! generators, failpoints are counter-based — so a red run reproduces on
//! every machine.

pub mod attribute;
pub mod concurrency;
pub mod costed;
pub mod fuzz;
pub mod harness;
pub mod parallel;
pub mod serve;
pub mod sharded;
pub mod shrink;
pub mod suite;
pub mod vectorized;

pub use attribute::{attribute_divergence, Attribution};
pub use concurrency::{run_concurrent_differential, ConcurrencyConfig, ConcurrencyReport};
pub use costed::{join_queries, run_costed_differential, CostedConfig, CostedReport};
pub use fuzz::{
    decode_corpus, encode_corpus, gen_corpus, gen_doc, gen_query, gen_query_corpus, run_fuzz,
    Corpus, Divergence, FuzzConfig, FuzzProfile, FuzzReport,
};
pub use harness::{
    coverage_corpus, default_cases, failpoint_coverage, run_fault_matrix, CoverageReport,
    FaultCase, FaultOutcome, FaultReport, KindExemplar,
};
pub use parallel::{run_parallel_differential, ParallelConfig, ParallelReport};
pub use serve::{run_serve_diff, ServeDiffConfig, ServeReport};
pub use sharded::{
    run_sharded_differential, split_xmark, ShardedConfig, ShardedReport, XMARK_SHARD_QUERIES,
};
pub use shrink::{shrink, weight, ShrinkOutcome};
pub use suite::{run_xmark_suite, QueryOutcome, SuiteConfig, SuiteReport};
pub use vectorized::{run_vectorized_differential, VectorizedConfig, VectorizedReport};
