//! Self-verification harnesses for the eXrQuy pipeline.
//!
//! The primitive — the three-way differential oracle — lives in the core
//! crate as [`Session::verify`](exrquy::Session::verify): it executes one
//! query unoptimized, optimized, and optimized with `%`-weakening
//! disabled, and compares the results under the equivalence the effective
//! ordering mode grants (exact sequences when `ordered`, bags when
//! `unordered`). This crate builds the batch layers on top:
//!
//! * [`suite`] — the XMark differential suite: all 20 benchmark queries,
//!   over a matrix of generator seeds and scale factors, through the
//!   oracle. Any divergence is a bug in the optimizer (or the oracle).
//! * [`harness`] — the fault-injection matrix: a grid of failpoint specs
//!   (`doc-io`, `doc-parse`, `budget-trip`, `cancel-after`) run against
//!   real queries, asserting *graceful degradation*: the expected typed
//!   error code, no panic, no partially-built store state, and a session
//!   that remains usable afterwards.
//! * [`concurrency`] — the multi-threaded differential: N threads
//!   re-execute the XMark query set through one shared executor (same
//!   `Arc<Catalog>`, same plan cache) and every result must be bag-equal
//!   to a serial reference pass, with the catalog untouched and the plan
//!   cache showing cross-thread hits.
//!
//! Both layers are deterministic end to end — documents come from the
//! seeded XMark generator, failpoints are counter-based — so a red run
//! reproduces on every machine.

pub mod concurrency;
pub mod harness;
pub mod suite;

pub use concurrency::{run_concurrent_differential, ConcurrencyConfig, ConcurrencyReport};
pub use harness::{default_cases, run_fault_matrix, FaultCase, FaultOutcome, FaultReport};
pub use suite::{run_xmark_suite, QueryOutcome, SuiteConfig, SuiteReport};
