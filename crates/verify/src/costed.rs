//! Costed-vs-uncosted equivalence differential: the acceptance harness
//! for statistics-driven cost-based planning.
//!
//! The cost pass promises that planning is *invisible*: whatever join
//! order the enumerator picks and however it re-applies a selection
//! chain, the serialized result must be byte-identical to the rule-only
//! (`--no-cost`) plan — same items, same order, same rendered text, and
//! the same error code when a query fails. Unlike the order-indifference
//! rewrites, the cost pass gets *no* admissible-set freedom: its rank
//! compensation (`#` per leaf + a trailing `sort`) must restore the
//! canonical row order exactly. The promise is checked over three
//! corpora:
//!
//! * the full XMark suite (Q1–Q20) over the generated auction document,
//! * the XMark shard matrix over the split-by-subtree corpus under 1, 2,
//!   and 8 shards, and
//! * a stream of fuzz-generated multi-document corpora, each probed with
//!   a grammar-drawn query *and* authored multi-document join queries
//!   (three-relation equality/inequality bundles — the shapes the join
//!   enumerator actually reorders), across shard layouts.
//!
//! Every cell runs on both engine paths (vectorized and scalar), each
//! compared against its own uncosted reference. On top, the
//! `stats-perturb:<factor>` failpoint arms corrupt every cardinality
//! estimate by orders of magnitude in both directions: a wrong estimate
//! may change the chosen plan, but may never change a byte of output —
//! the differential that separates a cost *model* bug (benign) from a
//! cost *rewrite* bug (unsound).

use crate::fuzz::{cell_rng, gen_corpus, gen_query_corpus, FuzzProfile};
use crate::sharded::{split_xmark, XMARK_SHARD_QUERIES};
use exrquy::diag::Failpoints;
use exrquy::frontend::pretty;
use exrquy::{QueryOptions, ResultItem, Session};
use exrquy_xmark::{generate, query, XmarkConfig, ALL_QUERIES};
use std::fmt;

/// Parameters for a costed equivalence run.
#[derive(Debug, Clone)]
pub struct CostedConfig {
    /// XMark scale factor (whole document and split corpus).
    pub scale: f64,
    /// Generator seed (XMark document and fuzz stream).
    pub seed: u64,
    /// Shard layouts the multi-document corpora run under.
    pub shards: Vec<usize>,
    /// Fuzz iterations per profile; each draws a fresh corpus, one
    /// grammar query and [`JOIN_SHAPES`] authored join queries.
    pub fuzz_iters: usize,
}

impl Default for CostedConfig {
    fn default() -> Self {
        CostedConfig {
            scale: 0.0025,
            seed: 42,
            shards: vec![1, 2, 8],
            fuzz_iters: 60,
        }
    }
}

/// Outcome of a costed equivalence run.
#[derive(Debug, Default)]
pub struct CostedReport {
    /// (query, layout, path, arm) cells compared against their uncosted
    /// reference.
    pub cells: usize,
    /// Cells where both arms errored with the same code.
    pub error_cells: usize,
    /// Distinct queries that went through the comparison.
    pub queries: usize,
    /// Authored join queries in the stream (the ISSUE's ≥200 floor).
    pub join_queries: usize,
    /// Prepared costed plans whose join enumerator actually rebuilt a
    /// cluster — the witness that the differential exercises the rewrite
    /// rather than vacuously comparing identical plans.
    pub reordered_plans: usize,
    /// Cells run under a `stats-perturb` arm.
    pub perturbed_cells: usize,
    /// Divergence descriptions; empty on success.
    pub mismatches: Vec<String>,
}

impl CostedReport {
    /// Every compared cell byte-identical (or identically erroring)?
    pub fn passed(&self) -> bool {
        self.mismatches.is_empty()
    }
}

impl fmt::Display for CostedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "costed equivalence: {} queries ({} joins), {} cells ({} perturbed, \
             {} error), {} plans reordered, {} mismatch(es)",
            self.queries,
            self.join_queries,
            self.cells,
            self.perturbed_cells,
            self.error_cells,
            self.reordered_plans,
            self.mismatches.len()
        )?;
        for m in &self.mismatches {
            write!(f, "\n  {m}")?;
        }
        Ok(())
    }
}

/// Perturbation factors for the corrupted-estimate arms: inflate and
/// deflate by three orders of magnitude (alternating per operator id —
/// see the failpoint — so relative costs scramble, not just scale).
const PERTURB_FACTORS: &[f64] = &[1000.0, 0.001];

/// Authored join shapes per fuzz corpus (see [`join_queries`]).
pub const JOIN_SHAPES: usize = 2;

/// The full rendered output, order preserved — the byte-identity witness.
fn rendered(items: &[ResultItem]) -> Vec<String> {
    items.iter().map(ResultItem::render).collect()
}

/// `base` with the cost pass switched off — the rule-only reference arm.
fn uncosted(base: &QueryOptions) -> QueryOptions {
    let mut o = base.clone();
    o.opt.cost = false;
    o
}

/// `base` with a `stats-perturb` failpoint armed (cost pass on).
fn perturbed(base: &QueryOptions, factor: f64) -> QueryOptions {
    base.clone()
        .with_failpoints(Failpoints::parse(&format!("stats-perturb:{factor}")).unwrap())
}

/// Authored multi-document join queries over `urls`: three-relation
/// bundles with equality/inequality predicates — exactly the dissolvable
/// shapes the enumerator reorders (band joins stay opaque by design, so
/// the grammar stream covers those). Element names rotate with `i` so
/// the stream hits populated and empty relations alike.
pub fn join_queries(urls: &[String], i: usize) -> Vec<String> {
    const NAMES: &[&str] = &["a", "b", "c", "d"];
    let n = |k: usize| NAMES[(i + k) % NAMES.len()];
    let u = |k: usize| &urls[k % urls.len()];
    vec![
        // Three documents, two inequality bundles: every pair of rows
        // with distinct ids matches, so the result is large, the
        // intermediate orders differ per join order, and the rank
        // compensation has real work to do.
        format!(
            r#"for $x in doc("{}")//{}, $y in doc("{}")//{}, $z in doc("{}")//{}
               where $x/@id != $y/@id and $y/@id != $z/@id
               return <j>{{string($x/@id)}}.{{string($y/@id)}}.{{string($z/@id)}}</j>"#,
            u(0),
            n(0),
            u(1),
            n(1),
            u(2),
            n(2)
        ),
        // Whole-corpus self equi-join (every node matches itself) plus an
        // inequality leg — an Eq bundle and a Ne bundle in one cluster,
        // scanned through the shard fanout.
        format!(
            r#"for $x in fn:collection()//{}, $y in fn:collection()//{}, $z in fn:collection()//{}
               where $x/@id = $y/@id and $y/@id != $z/@id
               return <j>{{string($x/@id)}}:{{string($z/@id)}}</j>"#,
            n(0),
            n(0),
            n(1)
        ),
    ]
}

/// Build a session over `docs` partitioned into `shards`.
fn corpus_session(docs: &[(String, String)], shards: usize) -> Session {
    let mut session = Session::new();
    session.load_corpus_sharded(docs.iter().map(|(u, x)| (u.as_str(), x.as_str())), shards);
    session
}

/// Compare one (query, arm, path) cell: the costed (or perturbed) run
/// against the uncosted reference on the same session. `Ok(false)`
/// marks a same-code error cell.
fn compare_cell(
    session: &Session,
    label: &str,
    q: &str,
    reference: &QueryOptions,
    arm: &QueryOptions,
    arm_name: &str,
) -> Result<bool, String> {
    let want = session.query_with(q, reference);
    let got = session.query_with(q, arm);
    match (want, got) {
        (Ok(w), Ok(g)) => {
            let (w, g) = (rendered(&w.items), rendered(&g.items));
            if w == g {
                Ok(true)
            } else {
                Err(format!(
                    "{label} [{arm_name}]: serialization diverged ({} vs {} items{})",
                    w.len(),
                    g.len(),
                    w.iter()
                        .zip(&g)
                        .position(|(a, b)| a != b)
                        .map(|i| format!(", first at index {i}"))
                        .unwrap_or_default()
                ))
            }
        }
        (Err(we), Err(ge)) => {
            if we.code() == ge.code() {
                Ok(false)
            } else {
                Err(format!(
                    "{label} [{arm_name}]: error codes diverged (uncosted {} vs {})",
                    we.render_line(),
                    ge.render_line()
                ))
            }
        }
        (Ok(_), Err(e)) => Err(format!(
            "{label} [{arm_name}]: arm errored where uncosted succeeded: {}",
            e.render_line()
        )),
        (Err(e), Ok(_)) => Err(format!(
            "{label} [{arm_name}]: arm succeeded where uncosted errored: {}",
            e.render_line()
        )),
    }
}

/// Run one query through every arm on one session: costed vs uncosted on
/// both engine paths, plus (when `perturb` is set) the corrupted-estimate
/// arms on the vectorized path.
fn run_query(
    report: &mut CostedReport,
    session: &Session,
    label: &str,
    q: &str,
    base: &QueryOptions,
    perturb: bool,
) {
    for vectorized in [true, false] {
        let costed = base.clone().with_vectorized(vectorized);
        let reference = uncosted(&costed);
        report.cells += 1;
        match compare_cell(session, label, q, &reference, &costed, "costed") {
            Ok(true) => {}
            Ok(false) => report.error_cells += 1,
            Err(m) => report.mismatches.push(m),
        }
        if vectorized {
            if let Ok(plan) = session.prepare(q, &costed) {
                if plan.cost_report.reordered > 0 {
                    report.reordered_plans += 1;
                }
            }
            if perturb {
                for &factor in PERTURB_FACTORS {
                    report.cells += 1;
                    report.perturbed_cells += 1;
                    let arm = perturbed(&costed, factor);
                    let name = format!("stats-perturb:{factor}");
                    match compare_cell(session, label, q, &reference, &arm, &name) {
                        Ok(true) => {}
                        Ok(false) => report.error_cells += 1,
                        Err(m) => report.mismatches.push(m),
                    }
                }
            }
        }
    }
}

/// Run the costed equivalence differential over the XMark suite, the
/// split-corpus shard matrix, and the multi-document fuzz/join stream.
pub fn run_costed_differential(cfg: &CostedConfig) -> CostedReport {
    let mut report = CostedReport::default();
    let base = QueryOptions::order_indifferent();

    // XMark Q1–Q20 over the whole auction document.
    let xml = generate(&XmarkConfig {
        scale: cfg.scale,
        seed: cfg.seed,
    });
    let mut session = Session::new();
    session
        .load_document("auction.xml", &xml)
        .expect("XMark generator emitted malformed XML");
    for qn in 1..=ALL_QUERIES.len() {
        report.queries += 1;
        run_query(
            &mut report,
            &session,
            &format!("xmark Q{qn}"),
            query(qn),
            &base,
            // Perturb the join-bearing queries; the rest would only
            // re-check estimate computation.
            (8..=12).contains(&qn),
        );
    }

    // The shard matrix over the split corpus, every layout.
    let split = split_xmark(&xml);
    for &shards in &cfg.shards {
        let session = corpus_session(&split, shards);
        for (n, q) in XMARK_SHARD_QUERIES.iter().enumerate() {
            if shards == cfg.shards[0] {
                report.queries += 1;
            }
            run_query(
                &mut report,
                &session,
                &format!("xmark-shard S{} x{shards}", n + 1),
                q,
                &base,
                false,
            );
        }
    }

    // Fuzz stream: per cell a fresh corpus, one grammar query at the
    // corpus's own layout, and the authored join queries across every
    // configured layout (with the corrupted-estimate arms).
    for i in 0..cfg.fuzz_iters {
        for profile in [FuzzProfile::Ordered, FuzzProfile::Unordered] {
            let mut rng = cell_rng(cfg.seed, i, profile);
            let corpus = gen_corpus(&mut rng);
            let urls: Vec<String> = corpus.docs.iter().map(|(u, _)| u.clone()).collect();
            let q = pretty(&gen_query_corpus(&mut rng, profile, &urls));
            report.queries += 1;
            run_query(
                &mut report,
                &corpus_session(&corpus.docs, corpus.shards),
                &format!("fuzz iter {i} [{profile}]"),
                &q,
                &profile.options(),
                false,
            );
            for (j, jq) in join_queries(&urls, i).iter().enumerate() {
                report.queries += 1;
                report.join_queries += 1;
                for &shards in &cfg.shards {
                    run_query(
                        &mut report,
                        &corpus_session(&corpus.docs, shards),
                        &format!("join {i}.{j} [{profile}] x{shards}"),
                        jq,
                        &profile.options(),
                        shards == cfg.shards[0],
                    );
                }
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_costed_subset_is_byte_identical() {
        // Full coverage lives in the tier-1 integration test
        // (`tests/costed_equivalence.rs`); a small subset keeps the unit
        // tier fast.
        let cfg = CostedConfig {
            scale: 0.001,
            fuzz_iters: 4,
            ..CostedConfig::default()
        };
        let report = run_costed_differential(&cfg);
        assert!(report.passed(), "{report}");
        assert!(report.cells > 0 && report.perturbed_cells > 0);
        assert!(
            report.reordered_plans > 0,
            "differential never exercised a join reorder: {report}"
        );
    }

    #[test]
    fn join_stream_shapes_are_well_formed() {
        let urls = vec!["f0.xml".to_string(), "f1.xml".to_string()];
        for i in 0..4 {
            let qs = join_queries(&urls, i);
            assert_eq!(qs.len(), JOIN_SHAPES);
            for q in qs {
                exrquy::frontend::parse_query(&q).unwrap_or_else(|e| panic!("{q}: {e}"));
            }
        }
    }
}
