//! Run the grammar-driven differential fuzzer from the command line.
//!
//! ```text
//! fuzz-verify [--seed N]... [--iters N] [--profile ordered|unordered|both]
//!             [--inject SPEC] [--expect-divergence] [--max-shrink-probes N]
//!             [--serve] [--threads N] [--chaos]
//! ```
//!
//! Deterministic: the same seed produces the same document and query
//! stream, so a red run reproduces everywhere. Exits 0 when every seed's
//! run is clean (or, under `--expect-divergence`, when every seed found
//! at least one divergence — the planted-fault self-check CI runs), and 1
//! otherwise, printing each divergence's minimized query and culprit
//! rule.
//!
//! `--serve` switches to serve-path differential mode: the same query
//! stream is submitted over a socket to an in-process `xqd` daemon and
//! the responses are compared byte-for-byte against direct execution
//! (see [`exrquy_verify::serve`]). `--threads` sets the daemon's
//! intra-query parallelism in that mode; `--chaos` additionally arms
//! the daemon's deterministic network failpoints and drives the socket
//! arm through the retrying `xqc` client — the comparison must stay
//! byte-for-byte through torn writes, trickled frames, and mid-frame
//! disconnects.

use exrquy_verify::fuzz::{run_fuzz, FuzzConfig, FuzzProfile};
use exrquy_verify::serve::{run_serve_diff, ServeDiffConfig};
use exrquy_verify::Attribution;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut seeds: Vec<u64> = Vec::new();
    let mut cfg = FuzzConfig::default();
    let mut expect_divergence = false;
    let mut serve = false;
    let mut chaos = false;
    let mut threads = 0_usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let parse_next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--seed" => match parse_next(&mut args, "--seed").parse() {
                Ok(s) => seeds.push(s),
                Err(_) => die("--seed: not a number"),
            },
            "--iters" => match parse_next(&mut args, "--iters").parse() {
                Ok(n) if n > 0 => cfg.iters = n,
                _ => die("--iters: expected a positive number"),
            },
            "--profile" => match parse_next(&mut args, "--profile").as_str() {
                "ordered" => cfg.profiles = vec![FuzzProfile::Ordered],
                "unordered" => cfg.profiles = vec![FuzzProfile::Unordered],
                "both" => cfg.profiles = vec![FuzzProfile::Ordered, FuzzProfile::Unordered],
                other => die(&format!(
                    "--profile: `{other}` (expected ordered|unordered|both)"
                )),
            },
            "--inject" => {
                match exrquy::diag::Failpoints::parse(&parse_next(&mut args, "--inject")) {
                    Ok(fp) => cfg.failpoints = fp,
                    Err(e) => die(&format!("--inject: {e}")),
                }
            }
            "--max-shrink-probes" => match parse_next(&mut args, "--max-shrink-probes").parse() {
                Ok(n) => cfg.max_shrink_probes = n,
                Err(_) => die("--max-shrink-probes: not a number"),
            },
            "--expect-divergence" => expect_divergence = true,
            "--serve" => serve = true,
            "--chaos" => chaos = true,
            "--threads" => match parse_next(&mut args, "--threads").parse() {
                Ok(n) => threads = n,
                Err(_) => die("--threads: not a number"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: fuzz-verify [--seed N]... [--iters N] \
                     [--profile ordered|unordered|both] [--inject SPEC] \
                     [--expect-divergence] [--max-shrink-probes N] \
                     [--serve] [--threads N] [--chaos]"
                );
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    if seeds.is_empty() {
        seeds.push(cfg.seed);
    }
    if chaos && !serve {
        die("--chaos requires --serve");
    }

    if serve {
        if expect_divergence || !cfg.failpoints.is_empty() {
            die("--serve does not combine with --inject/--expect-divergence");
        }
        let mut ok = true;
        for seed in seeds {
            let report = run_serve_diff(&ServeDiffConfig {
                seed,
                iters: cfg.iters,
                profiles: cfg.profiles.clone(),
                threads,
                chaos,
            });
            eprintln!("{report}");
            ok &= report.clean();
        }
        return if ok {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let mut ok = true;
    for seed in seeds {
        cfg.seed = seed;
        let report = run_fuzz(&cfg);
        eprintln!("{report}");
        if expect_divergence {
            // Planted-fault self-check: the hunter must find, shrink, and
            // attribute the injected bug.
            if report.clean() {
                eprintln!("fuzz-verify: seed {seed}: expected a divergence, found none");
                ok = false;
            }
            for d in &report.divergences {
                if matches!(d.attribution, Attribution::NotReproduced) {
                    eprintln!(
                        "fuzz-verify: seed {seed}: unstable divergence at iter {}",
                        { d.iteration }
                    );
                    ok = false;
                }
            }
        } else if !report.clean() {
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn die(msg: &str) -> ! {
    eprintln!("fuzz-verify: {msg}");
    std::process::exit(64);
}
