//! Run the XMark differential suite from the command line.
//!
//! ```text
//! xmark-verify [--seed N]... [--scale F] [--query N]... [--threads N]
//!              [--exec-threads N]
//! ```
//!
//! Exits 0 when every (seed, query) cell passes the three-way oracle and
//! 1 on any divergence, printing the failing cells. CI runs this over a
//! fixed seed matrix. With `--threads N`, additionally runs the
//! multi-threaded differential: N threads re-execute the query set
//! through one shared executor and must be bag-equal to a serial pass.
//! With `--exec-threads N`, additionally runs the *intra-query*
//! determinism differential: every query executed with N worker threads
//! must serialize byte-identically to the serial run, cross-checked
//! under both the staircase-join and name-stream step algorithms.

use exrquy::engine::StepAlgo;
use exrquy_verify::{
    run_concurrent_differential, run_parallel_differential, run_xmark_suite, ConcurrencyConfig,
    ParallelConfig, SuiteConfig,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut cfg = SuiteConfig::default();
    let mut seeds: Vec<u64> = Vec::new();
    let mut queries: Vec<usize> = Vec::new();
    let mut threads: Option<usize> = None;
    let mut exec_threads: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let parse_next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
            args.next()
                .unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match arg.as_str() {
            "--seed" => match parse_next(&mut args, "--seed").parse() {
                Ok(s) => seeds.push(s),
                Err(_) => die("--seed: not a number"),
            },
            "--scale" => match parse_next(&mut args, "--scale").parse() {
                Ok(f) => cfg.scale = f,
                Err(_) => die("--scale: not a number"),
            },
            "--query" => match parse_next(&mut args, "--query").parse() {
                Ok(q) if (1..=20).contains(&q) => queries.push(q),
                _ => die("--query: expected 1..=20"),
            },
            "--threads" => match parse_next(&mut args, "--threads").parse() {
                Ok(t) if t >= 1 => threads = Some(t),
                _ => die("--threads: expected a positive number"),
            },
            "--exec-threads" => match parse_next(&mut args, "--exec-threads").parse() {
                Ok(t) if t >= 2 => exec_threads = Some(t),
                _ => die("--exec-threads: expected a thread count of at least 2"),
            },
            "--help" | "-h" => {
                eprintln!(
                    "usage: xmark-verify [--seed N]... [--scale F] [--query N]... \
                     [--threads N] [--exec-threads N]"
                );
                return ExitCode::SUCCESS;
            }
            other => die(&format!("unknown argument `{other}`")),
        }
    }
    if !seeds.is_empty() {
        cfg.seeds = seeds;
    }
    if !queries.is_empty() {
        cfg.queries = queries;
    }
    let report = run_xmark_suite(&cfg);
    eprintln!("{report}");
    let mut ok = report.all_passed();

    if let Some(threads) = threads {
        let ccfg = ConcurrencyConfig {
            scale: cfg.scale,
            seed: cfg.seeds.first().copied().unwrap_or(42),
            threads,
            queries: cfg.queries.clone(),
        };
        let creport = run_concurrent_differential(&ccfg);
        eprintln!("{creport}");
        ok &= creport.passed();
    }

    if let Some(exec_threads) = exec_threads {
        let pcfg = ParallelConfig {
            scale: cfg.scale,
            seed: cfg.seeds.first().copied().unwrap_or(42),
            threads: vec![exec_threads],
            queries: cfg.queries.clone(),
            step_algos: vec![StepAlgo::Staircase, StepAlgo::NameStream],
            ..ParallelConfig::default()
        };
        let preport = run_parallel_differential(&pcfg);
        eprintln!("{preport}");
        ok &= preport.passed();
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn die(msg: &str) -> ! {
    eprintln!("xmark-verify: {msg}");
    std::process::exit(64);
}
