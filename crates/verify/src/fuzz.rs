//! Grammar-driven XQuery fuzzing: random well-formed queries over random
//! documents, every one driven through the three-way differential oracle
//! ([`Session::verify`](exrquy::Session::verify)).
//!
//! The generator is seeded and self-contained (the in-repo
//! [`SmallRng`]), so a fuzz run is a pure function of its
//! [`FuzzConfig`]: same seed → same document stream → same query stream
//! → same verdicts, on every machine. Each iteration draws one document
//! and one query per [`FuzzProfile`]:
//!
//! * **ordered** — ordering mode `ordered` with exploitation and the full
//!   optimizer on; the oracle compares under *sequence* equivalence, so
//!   every rewrite must preserve exact output order. Positional
//!   predicates and `at $p` variables are fair game here.
//! * **unordered** — the paper's §5 order-indifferent configuration; the
//!   oracle compares under *bag* equivalence. Order-observing constructs
//!   (positional predicates, `at` variables) are excluded from generated
//!   queries because the mode legitimately permutes results — they would
//!   be false positives, not bugs.
//!
//! Queries are generated to be *well-defined by construction* (no
//! division by zero, aggregates only over numeric attributes, `order by`
//! keys made total by unique `id` attributes), so an arm error means an
//! engine limitation and the iteration is counted as skipped rather than
//! as a divergence.
//!
//! On an `EXRQ0004` divergence the driver minimizes the query with
//! [`crate::shrink`] and names the culprit rewrite with
//! [`crate::attribute`]; both land in the [`Divergence`] record.

use crate::attribute::{attribute_divergence, Attribution};
use crate::shrink::{shrink, weight};
use exrquy::diag::Failpoints;
use exrquy::frontend::{pretty, BinOp, Clause, Expr, NodeTestAst, OrderSpec, OrderingMode, Quant};
use exrquy::xml::rng::SmallRng;
use exrquy::xml::Axis;
use exrquy::{Error, QueryOptions, Session};
use std::fmt;

/// The URL every generated query reads its document from.
pub const FUZZ_DOC_URL: &str = "f.xml";

/// Record separator between documents of a multi-document corpus blob.
const DOC_SEP: char = '\u{1E}';
/// Separator between a record's name and its body within a corpus blob.
const URL_SEP: char = '\u{1F}';
/// Reserved record name carrying the corpus shard count.
const SHARDS_KEY: &str = "#shards";

/// A fuzz corpus: the documents a generated query may read, plus the
/// shard count its catalog is partitioned into. Encoded into a single
/// `String` (see [`encode_corpus`]) so [`Divergence::doc`] and every
/// shrink/attribution signature stay one-string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Corpus {
    /// `(url, xml)` in load (= collection) order.
    pub docs: Vec<(String, String)>,
    pub shards: usize,
}

/// Encode a corpus into one blob: `\x1E`-separated records of
/// `name\x1F body`, led by a `#shards` record. The separators are
/// control characters no generated document contains.
pub fn encode_corpus(corpus: &Corpus) -> String {
    let mut out = format!("{SHARDS_KEY}{URL_SEP}{}", corpus.shards);
    for (url, xml) in &corpus.docs {
        out.push(DOC_SEP);
        out.push_str(url);
        out.push(URL_SEP);
        out.push_str(xml);
    }
    out
}

/// Decode a corpus blob. A blob without separators is the legacy
/// single-document form: that exact string under [`FUZZ_DOC_URL`],
/// 1 shard — so every pre-multi-document seed and regression case
/// reproduces byte-for-byte.
pub fn decode_corpus(blob: &str) -> Corpus {
    if !blob.contains(URL_SEP) {
        return Corpus {
            docs: vec![(FUZZ_DOC_URL.to_string(), blob.to_string())],
            shards: 1,
        };
    }
    let mut docs = Vec::new();
    let mut shards = 1;
    for record in blob.split(DOC_SEP) {
        let (name, body) = record.split_once(URL_SEP).unwrap_or((record, ""));
        if name == SHARDS_KEY {
            shards = body.parse().unwrap_or(1);
        } else {
            docs.push((name.to_string(), body.to_string()));
        }
    }
    Corpus { docs, shards }
}

/// Load a corpus blob into `session` (all documents, then the shard
/// layout). Shared by the oracle and the attribution replayer so every
/// probe sees the same catalog the fuzzer generated.
pub(crate) fn load_corpus(session: &mut Session, blob: &str) -> Result<(), Error> {
    let corpus = decode_corpus(blob);
    for (url, xml) in &corpus.docs {
        session.load_document(url, xml)?;
    }
    if corpus.shards > 1 {
        session.set_shards(corpus.shards);
    }
    Ok(())
}

/// Element-name pool for generated documents and node tests.
const NAMES: &[&str] = &["a", "b", "c", "d"];

/// Which compiler configuration (and hence which result equivalence) a
/// generated query is verified under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzProfile {
    /// `ordered` mode, exploitation + full optimizer, sequence equivalence.
    Ordered,
    /// `unordered` mode (the paper's §5 configuration), bag equivalence.
    Unordered,
}

impl FuzzProfile {
    pub fn as_str(self) -> &'static str {
        match self {
            FuzzProfile::Ordered => "ordered",
            FuzzProfile::Unordered => "unordered",
        }
    }

    /// The [`QueryOptions`] this profile verifies under.
    pub fn options(self) -> QueryOptions {
        match self {
            FuzzProfile::Ordered => {
                let mut o = QueryOptions::order_indifferent();
                o.ordering = Some(OrderingMode::Ordered);
                o
            }
            FuzzProfile::Unordered => QueryOptions::order_indifferent(),
        }
    }

    /// Seed-stream discriminator so the two profiles draw independent
    /// queries from one base seed.
    fn salt(self) -> u64 {
        match self {
            FuzzProfile::Ordered => 1,
            FuzzProfile::Unordered => 2,
        }
    }
}

impl fmt::Display for FuzzProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Configuration of one fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Base seed; iteration `i` under profile `p` derives its own
    /// deterministic sub-seed, so runs are reproducible per cell.
    pub seed: u64,
    /// Iterations (each runs every profile in `profiles`).
    pub iters: usize,
    pub profiles: Vec<FuzzProfile>,
    /// Failpoints planted into every oracle run (`oracle-perturb:…`,
    /// `rule-perturb:…`); empty for a real hunt.
    pub failpoints: Failpoints,
    /// Upper bound on oracle probes the shrinker may spend per divergence.
    pub max_shrink_probes: usize,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 42,
            iters: 100,
            profiles: vec![FuzzProfile::Ordered, FuzzProfile::Unordered],
            failpoints: Failpoints::none(),
            max_shrink_probes: 400,
        }
    }
}

/// One confirmed oracle divergence, minimized and attributed.
#[derive(Debug, Clone)]
pub struct Divergence {
    pub iteration: usize,
    pub profile: FuzzProfile,
    /// The generated document — or [`encode_corpus`] blob — the query
    /// ran over ([`decode_corpus`] tells the two apart).
    pub doc: String,
    /// The query as generated.
    pub query: String,
    /// The minimized still-diverging query.
    pub minimized: String,
    /// Syntactic weight (see [`crate::shrink::weight`]) before/after.
    pub original_weight: usize,
    pub minimized_weight: usize,
    /// Which rewrite rule (or engine-side fault) causes the divergence.
    pub attribution: Attribution,
    /// The oracle's message for the minimized query.
    pub message: String,
}

/// Outcome of a fuzz run.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    pub seed: u64,
    /// Total (iteration × profile) cells executed.
    pub cells: usize,
    /// Cells where all three arms agreed.
    pub passed: usize,
    /// Cells where some arm raised a non-verification error (the query
    /// exercised an engine limit; not a divergence).
    pub skipped: usize,
    pub divergences: Vec<Divergence>,
}

impl FuzzReport {
    pub fn clean(&self) -> bool {
        self.divergences.is_empty()
    }
}

impl fmt::Display for FuzzReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fuzz seed {}: {} cells, {} passed, {} skipped, {} divergences",
            self.seed,
            self.cells,
            self.passed,
            self.skipped,
            self.divergences.len()
        )?;
        for d in &self.divergences {
            write!(
                f,
                "\n  iter {} [{}] weight {} -> {}\n    query:     {}\n    minimized: {}\n    culprit:   {}",
                d.iteration,
                d.profile,
                d.original_weight,
                d.minimized_weight,
                d.query,
                d.minimized,
                d.attribution
            )?;
        }
        Ok(())
    }
}

/// Does the oracle diverge (EXRQ0004) on `query` over `doc`? Non-verify
/// errors (parse, compile, budget, …) are *not* divergences.
pub(crate) fn oracle_diverges(doc: &str, query: &str, opts: &QueryOptions) -> bool {
    matches!(oracle_outcome(doc, query, opts), OracleOutcome::Diverged(_))
}

pub(crate) enum OracleOutcome {
    Agreed,
    Diverged(String),
    Errored,
}

/// Run the three-way oracle on one (corpus, query) cell. `doc` is
/// either a bare document or an [`encode_corpus`] blob.
pub(crate) fn oracle_outcome(doc: &str, query: &str, opts: &QueryOptions) -> OracleOutcome {
    let mut session = Session::new();
    if load_corpus(&mut session, doc).is_err() {
        return OracleOutcome::Errored;
    }
    match session.verify(query, opts) {
        Ok(_) => OracleOutcome::Agreed,
        Err(Error::Verify(e)) => OracleOutcome::Diverged(e.message),
        Err(_) => OracleOutcome::Errored,
    }
}

/// Run the fuzzer.
pub fn run_fuzz(cfg: &FuzzConfig) -> FuzzReport {
    let mut report = FuzzReport {
        seed: cfg.seed,
        cells: 0,
        passed: 0,
        skipped: 0,
        divergences: Vec::new(),
    };
    for i in 0..cfg.iters {
        for &profile in &cfg.profiles {
            report.cells += 1;
            let mut rng = cell_rng(cfg.seed, i, profile);
            // Every third iteration fuzzes a multi-document corpus under
            // a random shard layout (the shard-parallel differential
            // arm); the gate is positional, not an RNG draw, so the
            // other two thirds reproduce historical seeds exactly.
            let (doc, expr) = if i % 3 == 2 {
                let corpus = gen_corpus(&mut rng);
                let urls: Vec<String> = corpus.docs.iter().map(|(u, _)| u.clone()).collect();
                let expr = gen_query_corpus(&mut rng, profile, &urls);
                (encode_corpus(&corpus), expr)
            } else {
                let doc = gen_doc(&mut rng);
                let expr = gen_query(&mut rng, profile);
                (doc, expr)
            };
            let query = pretty(&expr);
            let opts = profile.options().with_failpoints(cfg.failpoints.clone());
            match oracle_outcome(&doc, &query, &opts) {
                OracleOutcome::Agreed => report.passed += 1,
                OracleOutcome::Errored => report.skipped += 1,
                OracleOutcome::Diverged(_) => {
                    let out = shrink(&doc, &expr, &opts, cfg.max_shrink_probes);
                    let message = match oracle_outcome(&doc, &out.text, &opts) {
                        OracleOutcome::Diverged(m) => m,
                        // Unreachable: the shrinker only accepts diverging
                        // candidates; keep a plain marker if it ever isn't.
                        _ => "divergence no longer reproduces".to_string(),
                    };
                    let attribution = attribute_divergence(&doc, &out.text, &opts);
                    report.divergences.push(Divergence {
                        iteration: i,
                        profile,
                        doc,
                        original_weight: weight(&expr),
                        query,
                        minimized: out.text,
                        minimized_weight: out.weight,
                        attribution,
                        message,
                    });
                }
            }
        }
    }
    report
}

/// Deterministic per-cell RNG: iteration and profile perturb the base
/// seed through one SplitMix64 round so neighbouring cells decorrelate.
pub fn cell_rng(seed: u64, iteration: usize, profile: FuzzProfile) -> SmallRng {
    let mixed = seed
        .wrapping_add((iteration as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(profile.salt().wrapping_mul(0xBF58_476D_1CE4_E5B9));
    SmallRng::seed_from_u64(mixed)
}

// ---------------------------------------------------------------------
// Document generation
// ---------------------------------------------------------------------

struct DocNode {
    name: &'static str,
    children: Vec<DocNode>,
    text: Option<i64>,
}

fn gen_tree(rng: &mut SmallRng, depth: usize) -> DocNode {
    let name = NAMES[rng.gen_range(0..NAMES.len())];
    let mut children = Vec::new();
    if depth < 2 {
        for _ in 0..rng.gen_range(0..=3usize) {
            children.push(gen_tree(rng, depth + 1));
        }
    }
    let text = if children.is_empty() && rng.gen_bool(0.6) {
        Some(rng.gen_range(0i64..10))
    } else {
        None
    };
    DocNode {
        name,
        children,
        text,
    }
}

fn count_nodes(n: &DocNode) -> usize {
    1 + n.children.iter().map(count_nodes).sum::<usize>()
}

fn render(n: &DocNode, ids: &[i64], next: &mut usize, out: &mut String) {
    let id = ids[*next];
    *next += 1;
    out.push_str(&format!("<{} id=\"{}\">", n.name, id));
    if let Some(t) = n.text {
        out.push_str(&t.to_string());
    }
    for c in &n.children {
        render(c, ids, next, out);
    }
    out.push_str(&format!("</{}>", n.name));
}

/// Generate a random document: a small tree of elements from the name
/// pool, where *every* element carries an `id` attribute holding a value
/// unique within the document (a shuffled permutation of `1..=n`).
/// Uniqueness makes `order by …/@id` keys total, so sequence-equivalence
/// verification of `order by` queries cannot trip over tie-breaking.
pub fn gen_doc(rng: &mut SmallRng) -> String {
    gen_doc_from(rng, 0).0
}

/// [`gen_doc`] with ids drawn from `base+1..=base+n`: documents of one
/// multi-document corpus take disjoint id ranges, so order-by keys and
/// join predicates stay total *across* the corpus, not just within one
/// document. Returns the document and its node count (the next base).
fn gen_doc_from(rng: &mut SmallRng, base: i64) -> (String, usize) {
    let root = DocNode {
        name: "r",
        children: (0..rng.gen_range(2..=4usize))
            .map(|_| gen_tree(rng, 0))
            .collect(),
        text: None,
    };
    let n = count_nodes(&root);
    let mut ids: Vec<i64> = (base + 1..=base + n as i64).collect();
    // Fisher–Yates: ids land on elements in shuffled order, so document
    // order and id order disagree (which is what makes order-dropping
    // bugs observable).
    for i in (1..ids.len()).rev() {
        let j = rng.gen_range(0..=i);
        ids.swap(i, j);
    }
    let mut out = String::new();
    let mut next = 0;
    render(&root, &ids, &mut next, &mut out);
    (out, n)
}

/// Generate a multi-document corpus: 2–4 documents with disjoint id
/// ranges under a random shard layout (1 up to one shard per document —
/// including layouts whose trailing shards are empty, which the
/// shard-parallel scan must tolerate).
pub fn gen_corpus(rng: &mut SmallRng) -> Corpus {
    let n = rng.gen_range(2..=4usize);
    let mut base = 0i64;
    let mut docs = Vec::with_capacity(n);
    for k in 0..n {
        let (xml, nodes) = gen_doc_from(rng, base);
        base += nodes as i64;
        docs.push((format!("f{k}.xml"), xml));
    }
    let shards = rng.gen_range(1..=n + 1);
    Corpus { docs, shards }
}

// ---------------------------------------------------------------------
// Query generation
// ---------------------------------------------------------------------

struct Gen<'a> {
    rng: &'a mut SmallRng,
    profile: FuzzProfile,
    /// Document URLs queries may `doc(...)`; more than one URL also
    /// unlocks `fn:collection()` path roots (the whole-corpus scan).
    urls: Vec<String>,
    /// Node-sequence variables in scope: `for`-bound singletons *and*
    /// `let`-bound whole sequences. Safe as path inputs, not as
    /// singleton expressions.
    node_vars: Vec<String>,
    /// The `for`-bound subset of [`Gen::node_vars`]: exactly one node
    /// per tuple, so `$v/@id` is a singleton and `string($v/@id)` is
    /// deterministic. Singleton contexts (order-by keys, constructor
    /// content) must draw from here only — a `let`-bound sequence there
    /// would make the oracle's admissible set ambiguous.
    for_vars: Vec<String>,
    next_var: usize,
}

/// Generate one random well-formed query for `profile`. Queries read
/// [`FUZZ_DOC_URL`] and use only constructs every oracle arm supports;
/// under [`FuzzProfile::Unordered`] no order-observing construct
/// (positional predicate, `at` variable) is emitted.
pub fn gen_query(rng: &mut SmallRng, profile: FuzzProfile) -> Expr {
    gen_query_corpus(rng, profile, &[FUZZ_DOC_URL.to_string()])
}

/// [`gen_query`] over a multi-document corpus: `doc(...)` calls draw
/// from `urls`, and with more than one URL paths may also root at
/// `fn:collection()` — so generated queries join across documents
/// (`doc("f0.xml")//a[@id eq doc("f2.xml")//b/@id]`-shaped predicates
/// arise from the ordinary comparison grammar once the two sides pick
/// different documents). With a single URL the draw sequence is
/// identical to the original single-document generator, keeping every
/// historical seed's query stream intact.
pub fn gen_query_corpus(rng: &mut SmallRng, profile: FuzzProfile, urls: &[String]) -> Expr {
    let mut g = Gen {
        rng,
        profile,
        urls: urls.to_vec(),
        node_vars: Vec::new(),
        for_vars: Vec::new(),
        next_var: 0,
    };
    match g.rng.gen_range(0..10u32) {
        0..=4 => g.flwor(0),
        5..=6 => g.path(0),
        7 => g.aggregate(0),
        8 => g.element(0),
        _ => {
            let n = g.rng.gen_range(2..=3usize);
            Expr::Sequence((0..n).map(|_| g.small_expr(1)).collect())
        }
    }
}

impl Gen<'_> {
    fn fresh_var(&mut self) -> String {
        self.next_var += 1;
        format!("v{}", self.next_var)
    }

    fn name(&mut self) -> String {
        NAMES[self.rng.gen_range(0..NAMES.len())].to_string()
    }

    fn doc_call(&mut self) -> Expr {
        // Single-URL corpora draw nothing from the RNG, so the
        // single-document query stream is bit-identical to before
        // multi-document support existed.
        let url = if self.urls.len() == 1 {
            self.urls[0].clone()
        } else {
            self.urls[self.rng.gen_range(0..self.urls.len())].clone()
        };
        Expr::Call {
            name: "doc".into(),
            args: vec![Expr::StrLit(url)],
        }
    }

    /// A path root: one document, or (multi-document corpora only)
    /// `fn:collection()` — the sharded whole-corpus scan.
    fn source(&mut self) -> Expr {
        if self.urls.len() > 1 && self.rng.gen_bool(0.3) {
            return Expr::Call {
                name: "collection".into(),
                args: vec![],
            };
        }
        self.doc_call()
    }

    /// `…/@id` relative to `base`.
    fn id_of(&mut self, base: Expr) -> Expr {
        Expr::PathStep {
            input: Box::new(base),
            axis: Axis::Attribute,
            test: NodeTestAst::Name("id".into()),
            predicates: vec![],
        }
    }

    /// A path over the document (or a bound node variable), 1–3 steps,
    /// possibly predicated.
    fn path(&mut self, depth: usize) -> Expr {
        let mut e = if !self.node_vars.is_empty() && self.rng.gen_bool(0.4) {
            let i = self.rng.gen_range(0..self.node_vars.len());
            Expr::Var(self.node_vars[i].clone())
        } else {
            self.source()
        };
        let steps = self.rng.gen_range(1..=3usize);
        for _ in 0..steps {
            let axis = match self.rng.gen_range(0..6u32) {
                0 | 1 => Axis::Child,
                2 | 3 => Axis::Descendant,
                4 => Axis::DescendantOrSelf,
                _ => Axis::Descendant,
            };
            let test = if self.rng.gen_bool(0.25) {
                NodeTestAst::Wildcard
            } else {
                NodeTestAst::Name(self.name())
            };
            let mut predicates = Vec::new();
            if depth < 3 && self.rng.gen_bool(0.35) {
                predicates.push(self.predicate(depth + 1));
            }
            e = Expr::PathStep {
                input: Box::new(e),
                axis,
                test,
                predicates,
            };
        }
        // `(path)[pos]` — a positional filter in *expression* position,
        // the sequence-level cousin of the step predicate (ordered
        // profile only: it observes document order).
        if self.profile == FuzzProfile::Ordered && depth < 2 && self.rng.gen_bool(0.15) {
            let p = self.positional_predicate();
            e = Expr::Filter {
                input: Box::new(e),
                predicate: Box::new(p),
            };
        }
        e
    }

    /// A predicate expression (evaluated with the step's context item).
    fn predicate(&mut self, _depth: usize) -> Expr {
        match self.rng.gen_range(0..4u32) {
            // @id <op> k
            0 | 1 => {
                let id = self.id_of(Expr::ContextItem);
                let k = Expr::IntLit(self.rng.gen_range(0i64..20));
                let op = self.comparison_op();
                Expr::binary(op, id, k)
            }
            // existence of a child
            2 => Expr::PathStep {
                input: Box::new(Expr::ContextItem),
                axis: Axis::Child,
                test: NodeTestAst::Name(self.name()),
                predicates: vec![],
            },
            // positional predicate — order-observing, ordered profile only
            _ => {
                if self.profile == FuzzProfile::Ordered {
                    self.positional_predicate()
                } else {
                    let id = self.id_of(Expr::ContextItem);
                    Expr::binary(BinOp::GenGt, id, Expr::IntLit(0))
                }
            }
        }
    }

    /// An order-observing positional predicate (ordered profile only):
    /// a bare integer position, a `position()` comparison against a
    /// literal, or `position() eq last()` / `position() ne last()`.
    /// Positions range past the typical sibling count so empty
    /// selections are exercised, not just hits.
    fn positional_predicate(&mut self) -> Expr {
        let position = || Expr::Call {
            name: "position".into(),
            args: vec![],
        };
        let last = || Expr::Call {
            name: "last".into(),
            args: vec![],
        };
        match self.rng.gen_range(0..4u32) {
            // [k] — now up to positions that often miss
            0 | 1 => Expr::IntLit(self.rng.gen_range(1i64..6)),
            // [position() <op> k]
            2 => {
                let k = Expr::IntLit(self.rng.gen_range(1i64..5));
                let op = self.comparison_op();
                Expr::binary(op, position(), k)
            }
            // [position() eq last()] (or ne — the complement)
            _ => {
                let op = if self.rng.gen_bool(0.5) {
                    BinOp::GenEq
                } else {
                    BinOp::GenNe
                };
                Expr::binary(op, position(), last())
            }
        }
    }

    fn comparison_op(&mut self) -> BinOp {
        match self.rng.gen_range(0..6u32) {
            0 => BinOp::GenEq,
            1 => BinOp::GenNe,
            2 => BinOp::GenLt,
            3 => BinOp::GenLe,
            4 => BinOp::GenGt,
            _ => BinOp::GenGe,
        }
    }

    /// An aggregate over a path: `count`/`exists`/`empty`/`sum`/`max`.
    fn aggregate(&mut self, depth: usize) -> Expr {
        let (name, numeric) = match self.rng.gen_range(0..6u32) {
            0 | 1 => ("count", false),
            2 => ("exists", false),
            3 => ("empty", false),
            4 => ("sum", true),
            _ => ("max", true),
        };
        let mut arg = self.path(depth + 1);
        if numeric {
            // Aggregate over the numeric `id` attributes, which every
            // element carries, so atomization never fails.
            arg = self.id_of(arg);
        }
        // `unordered { … }` under an aggregate is sound in either mode
        // (rules FN:COUNT / FN:SUM…); exercise it from time to time.
        if self.rng.gen_bool(0.3) {
            arg = Expr::OrderingScope {
                mode: OrderingMode::Unordered,
                expr: Box::new(arg),
            };
        }
        Expr::Call {
            name: name.into(),
            args: vec![arg],
        }
    }

    /// A general comparison between data of two paths / literals.
    fn comparison(&mut self, depth: usize) -> Expr {
        let l = if self.rng.gen_bool(0.5) {
            let p = self.path(depth + 1);
            self.id_of(p)
        } else {
            self.aggregate(depth + 1)
        };
        let r = if self.rng.gen_bool(0.7) {
            Expr::IntLit(self.rng.gen_range(0i64..20))
        } else {
            let p = self.path(depth + 1);
            self.id_of(p)
        };
        let op = self.comparison_op();
        Expr::binary(op, l, r)
    }

    /// Arithmetic over aggregates and literals; divisors are non-zero
    /// literals so no arm can trip a division error.
    fn arith(&mut self, depth: usize) -> Expr {
        let l = self.aggregate(depth + 1);
        let r = Expr::IntLit(self.rng.gen_range(1i64..9));
        let op = match self.rng.gen_range(0..5u32) {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Mul,
            _ => BinOp::Div,
        };
        Expr::binary(op, l, r)
    }

    /// `some`/`every` quantifier over a path.
    fn quantified(&mut self, depth: usize) -> Expr {
        let var = self.fresh_var();
        let domain = self.path(depth + 1);
        let id = self.id_of(Expr::Var(var.clone()));
        let satisfies = Expr::binary(
            self.comparison_op(),
            id,
            Expr::IntLit(self.rng.gen_range(0i64..20)),
        );
        Expr::Quantified {
            quant: if self.rng.gen_bool(0.5) {
                Quant::Some
            } else {
                Quant::Every
            },
            var,
            domain: Box::new(domain),
            satisfies: Box::new(satisfies),
        }
    }

    /// An element constructor wrapping a sub-expression.
    ///
    /// Constructor content *freezes* sequence order into the built node:
    /// serialization makes it observable even under bag comparison of the
    /// top-level results. In unordered mode the order of path / union /
    /// FLWOR results is implementation-dependent, so content built from
    /// them has many admissible serializations the oracle cannot tell
    /// apart from bugs — the unordered profile therefore only puts
    /// single-item expressions into constructors. (The fuzzer found this
    /// family on its first long run; see the regression cases.)
    fn element(&mut self, depth: usize) -> Expr {
        // `text { … }` freezes its content exactly like element content
        // does; a singleton keeps the value deterministic in either
        // profile (multi-item content would be space-joined in an
        // implementation-dependent order under `unordered`).
        if self.rng.gen_bool(0.2) {
            let content = self.singleton_expr(depth + 1);
            return Expr::TextConstructor(Box::new(content));
        }
        let content = if self.profile == FuzzProfile::Unordered {
            self.singleton_expr(depth + 1)
        } else {
            self.small_expr(depth + 1)
        };
        if self.rng.gen_bool(0.5) {
            Expr::DirElement {
                name: "out".into(),
                attrs: vec![],
                content: vec![exrquy::frontend::ElemContent::Expr(content)],
            }
        } else {
            Expr::ElemConstructor {
                name: "out".into(),
                content: Box::new(content),
            }
        }
    }

    /// A FLWOR: 1–2 `for` clauses over paths, optional `let` (an
    /// arithmetic value or a whole node sequence), `where`, `order by`,
    /// returning something that uses the bound variables.
    fn flwor(&mut self, depth: usize) -> Expr {
        let outer_vars = self.node_vars.len();
        let outer_for = self.for_vars.len();
        let mut clauses = Vec::new();
        let nfor = self.rng.gen_range(1..=2usize);
        for _ in 0..nfor {
            let seq = self.path(depth + 1);
            let var = self.fresh_var();
            // `at $p` observes iteration order: ordered profile only.
            let pos_var = if self.profile == FuzzProfile::Ordered && self.rng.gen_bool(0.25) {
                Some(self.fresh_var())
            } else {
                None
            };
            self.node_vars.push(var.clone());
            self.for_vars.push(var.clone());
            clauses.push(Clause::For { var, pos_var, seq });
        }
        if self.rng.gen_bool(0.3) {
            if self.rng.gen_bool(0.5) {
                // `let` over a node *sequence*: the variable holds all
                // matching nodes at once, later streamed by paths or
                // returned whole — the optimizer must not confuse its
                // (absent) iteration order with a `for` binding's.
                let expr = self.path(depth + 1);
                let var = self.fresh_var();
                self.node_vars.push(var.clone());
                clauses.push(Clause::Let { var, expr });
            } else {
                let expr = self.arith(depth + 1);
                clauses.push(Clause::Let {
                    var: self.fresh_var(),
                    expr,
                });
            }
        }
        if self.rng.gen_bool(0.4) {
            let w = self.comparison(depth + 1);
            clauses.push(Clause::Where(w));
        }
        let mut order_by = Vec::new();
        if self.rng.gen_bool(if self.profile == FuzzProfile::Ordered {
            0.6
        } else {
            0.3
        }) {
            // Keys over the unique `id` attribute are total, so ordering
            // is deterministic in every arm. Drawn from this FLWOR's
            // `for` bindings only: a `let`-bound sequence is no
            // singleton, so it cannot be an order key.
            let nth = self.rng.gen_range(outer_for..self.for_vars.len());
            let var = self.for_vars[nth].clone();
            let key = self.id_of(Expr::Var(var));
            order_by.push(OrderSpec {
                key,
                descending: self.rng.gen_bool(0.5),
            });
        }
        let ret = self.flwor_return(depth + 1);
        self.node_vars.truncate(outer_vars);
        self.for_vars.truncate(outer_for);
        Expr::Flwor {
            clauses,
            order_by,
            reordered: false,
            ret: Box::new(ret),
        }
    }

    fn flwor_return(&mut self, depth: usize) -> Expr {
        match self.rng.gen_range(0..5u32) {
            // Returning any in-scope node var is fine — a `let`-bound
            // sequence just yields all its nodes per tuple.
            0 | 1 => Expr::Var(
                self.node_vars
                    .last()
                    .cloned()
                    .unwrap_or_else(|| "missing".into()),
            ),
            // `string(...)` needs a singleton: `for`-bound vars only.
            2 => {
                let var = self
                    .for_vars
                    .last()
                    .cloned()
                    .unwrap_or_else(|| "missing".into());
                let id = self.id_of(Expr::Var(var));
                Expr::Call {
                    name: "string".into(),
                    args: vec![id],
                }
            }
            3 => self.element(depth),
            _ => self.small_expr(depth),
        }
    }

    /// An expression guaranteed to evaluate to at most one item with a
    /// deterministic value in every arm (safe as constructor content in
    /// the unordered profile).
    fn singleton_expr(&mut self, depth: usize) -> Expr {
        match self.rng.gen_range(0..4u32) {
            0 => Expr::IntLit(self.rng.gen_range(0i64..10)),
            1 => self.aggregate(depth),
            2 => self.arith(depth),
            _ => {
                // Singleton context: only `for`-bound vars qualify.
                if let Some(var) = self.for_vars.last().cloned() {
                    let id = self.id_of(Expr::Var(var));
                    Expr::Call {
                        name: "string".into(),
                        args: vec![id],
                    }
                } else {
                    self.aggregate(depth)
                }
            }
        }
    }

    /// A bounded sub-expression for leaf positions.
    fn small_expr(&mut self, depth: usize) -> Expr {
        if depth >= 3 {
            return match self.rng.gen_range(0..3u32) {
                0 => Expr::IntLit(self.rng.gen_range(0i64..10)),
                1 => self.path(depth),
                _ => self.aggregate(depth),
            };
        }
        match self.rng.gen_range(0..10u32) {
            0 | 1 => self.path(depth),
            2 | 3 => self.aggregate(depth),
            4 => self.comparison(depth),
            5 => self.arith(depth),
            6 => self.quantified(depth),
            7 => self.flwor(depth),
            8 => {
                let cond = self.comparison(depth + 1);
                let then = self.small_expr(depth + 1);
                let els = self.small_expr(depth + 1);
                Expr::If {
                    cond: Box::new(cond),
                    then: Box::new(then),
                    els: Box::new(els),
                }
            }
            _ => {
                // Set operation over two paths (doc-order establishing;
                // intersect/except exercise the node-set pruning rewrites).
                let l = self.path(depth + 1);
                let r = self.path(depth + 1);
                let op = match self.rng.gen_range(0..4u32) {
                    0 | 1 => BinOp::Union,
                    2 => BinOp::Intersect,
                    _ => BinOp::Except,
                };
                Expr::binary(op, l, r)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrquy::frontend::parse_module;

    #[test]
    fn generation_is_deterministic() {
        for profile in [FuzzProfile::Ordered, FuzzProfile::Unordered] {
            for i in 0..20 {
                let mut a = cell_rng(7, i, profile);
                let mut b = cell_rng(7, i, profile);
                assert_eq!(gen_doc(&mut a), gen_doc(&mut b));
                assert_eq!(
                    pretty(&gen_query(&mut a, profile)),
                    pretty(&gen_query(&mut b, profile))
                );
            }
        }
    }

    #[test]
    fn generated_docs_load_and_queries_parse() {
        for profile in [FuzzProfile::Ordered, FuzzProfile::Unordered] {
            for i in 0..50 {
                let mut rng = cell_rng(99, i, profile);
                let doc = gen_doc(&mut rng);
                let mut s = Session::new();
                s.load_document(FUZZ_DOC_URL, &doc)
                    .unwrap_or_else(|e| panic!("generated doc malformed: {e}\n{doc}"));
                let q = pretty(&gen_query(&mut rng, profile));
                parse_module(&q).unwrap_or_else(|e| panic!("generated query unparsable: {e}\n{q}"));
            }
        }
    }

    #[test]
    fn clean_run_finds_no_divergences() {
        let cfg = FuzzConfig {
            seed: 7,
            iters: 15,
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg);
        assert!(report.clean(), "{report}");
        assert!(report.passed > 0, "{report}");
    }

    #[test]
    fn corpus_blobs_round_trip_and_legacy_docs_decode() {
        let mut rng = cell_rng(11, 2, FuzzProfile::Ordered);
        let corpus = gen_corpus(&mut rng);
        assert!((2..=4).contains(&corpus.docs.len()));
        assert_eq!(corpus, decode_corpus(&encode_corpus(&corpus)));
        // Disjoint id ranges across the corpus: collect every id.
        let mut ids: Vec<i64> = Vec::new();
        for (_, xml) in &corpus.docs {
            for part in xml.split("id=\"").skip(1) {
                ids.push(part[..part.find('"').unwrap()].parse().unwrap());
            }
        }
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "corpus ids must be unique across documents");
        // A blob with no separators is the legacy single-document form.
        let legacy = decode_corpus("<r><a id=\"1\"/></r>");
        assert_eq!(legacy.shards, 1);
        assert_eq!(
            legacy.docs,
            vec![(FUZZ_DOC_URL.to_string(), "<r><a id=\"1\"/></r>".to_string())]
        );
    }

    #[test]
    fn single_url_corpus_queries_match_the_legacy_stream() {
        // gen_query must stay a bit-identical alias of gen_query_corpus
        // over [FUZZ_DOC_URL]: historical seeds depend on it.
        let urls = vec![FUZZ_DOC_URL.to_string()];
        for profile in [FuzzProfile::Ordered, FuzzProfile::Unordered] {
            for i in 0..20 {
                let mut a = cell_rng(3, i, profile);
                let mut b = cell_rng(3, i, profile);
                let _ = gen_doc(&mut a);
                let _ = gen_doc(&mut b);
                assert_eq!(
                    pretty(&gen_query(&mut a, profile)),
                    pretty(&gen_query_corpus(&mut b, profile, &urls))
                );
            }
        }
    }

    #[test]
    fn multi_document_cells_run_clean_and_exercise_collection() {
        // The corpus arm must both generate cross-document queries and
        // come back clean on an unperturbed engine.
        let cfg = FuzzConfig {
            seed: 20260808,
            iters: 18,
            ..FuzzConfig::default()
        };
        let report = run_fuzz(&cfg);
        assert!(report.clean(), "{report}");
        // At least one multi-document cell must draw a collection() or a
        // second document — otherwise the arm is generating but not
        // exercising the corpus.
        let mut saw_corpus_read = false;
        for i in (2..cfg.iters).step_by(3) {
            for profile in [FuzzProfile::Ordered, FuzzProfile::Unordered] {
                let mut rng = cell_rng(cfg.seed, i, profile);
                let corpus = gen_corpus(&mut rng);
                let urls: Vec<String> = corpus.docs.iter().map(|(u, _)| u.clone()).collect();
                let q = pretty(&gen_query_corpus(&mut rng, profile, &urls));
                if q.contains("collection") || urls[1..].iter().any(|u| q.contains(u.as_str())) {
                    saw_corpus_read = true;
                }
            }
        }
        assert!(saw_corpus_read, "no multi-document cell read past f0.xml");
    }
}
