//! Tier-1 acceptance for sharded catalogs: execution over 2- and
//! 8-shard partitions of the XMark split-by-subtree corpus and ≥200
//! fuzz-generated multi-document queries serializes byte-identically to
//! single-catalog (1-shard) execution, on both the vectorized and
//! scalar paths. Shard count must be absent from output in any form.

use exrquy_verify::{run_sharded_differential, ShardedConfig};

#[test]
fn sharded_execution_is_byte_identical_to_unsharded() {
    let cfg = ShardedConfig {
        fuzz_iters: 100,
        ..ShardedConfig::default()
    };
    let report = run_sharded_differential(&cfg);
    assert!(report.passed(), "{report}");
    // 10 XMark matrix queries + 100 fuzz iters x 2 profiles.
    assert_eq!(report.queries, 210);
    // XMark: 10 queries x 2 profiles x 2 layouts (2, 8 shards) x 2 paths
    // + fuzz: 200 queries x 2 layouts x 2 paths.
    assert_eq!(report.cells, 880);
    // The matrix is exercised by real results, not error-vs-error cells.
    assert!(
        report.error_cells * 2 < report.cells,
        "too many error cells: {report}"
    );
}
