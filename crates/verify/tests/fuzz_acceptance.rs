//! Acceptance criteria of the fuzz/shrink/attribute loop:
//!
//! * determinism — same seed, same query stream, same verdicts;
//! * a planted oracle corruption (`oracle-perturb`) is detected on every
//!   cell, shrunk to the documented bound (weight ≤ 2, i.e. `()`), and
//!   reported engine-side;
//! * a planted optimizer bug (`rule-perturb:weaken-criteria`) is *found*
//!   by the random hunt, minimized, and attributed to exactly that rule.

use exrquy::diag::Failpoints;
use exrquy_verify::fuzz::{run_fuzz, FuzzConfig, FuzzProfile};
use exrquy_verify::Attribution;

#[test]
fn same_seed_same_stream_same_verdicts() {
    // Use a planted corruption so the comparison also covers the shrink
    // and attribution stages, not just generation.
    let cfg = FuzzConfig {
        seed: 1234,
        iters: 4,
        failpoints: Failpoints::parse("oracle-perturb:optimized").unwrap(),
        ..FuzzConfig::default()
    };
    let a = run_fuzz(&cfg);
    let b = run_fuzz(&cfg);
    assert_eq!(a.to_string(), b.to_string());
    assert_eq!(a.divergences.len(), b.divergences.len());
    for (x, y) in a.divergences.iter().zip(&b.divergences) {
        assert_eq!(x.query, y.query);
        assert_eq!(x.minimized, y.minimized);
        assert_eq!(x.attribution, y.attribution);
    }
}

#[test]
fn planted_oracle_perturbation_detected_shrunk_and_attributed() {
    let cfg = FuzzConfig {
        seed: 5,
        iters: 3,
        failpoints: Failpoints::parse("oracle-perturb:optimized").unwrap(),
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&cfg);
    // The corruption drops an item from (or invents one in) every
    // optimized-arm result: every cell must diverge.
    assert_eq!(report.divergences.len(), report.cells, "{report}");
    for d in &report.divergences {
        // Documented shrink bound for a query-independent divergence: the
        // minimizer reaches the unit query `()` (weight 1; ≤ 2 leaves
        // headroom for a future pretty-printing change).
        assert!(
            d.minimized_weight <= 2,
            "not minimal: `{}` (weight {})",
            d.minimized,
            d.minimized_weight
        );
        // No rewrite is responsible — the fault is planted result-side.
        assert_eq!(d.attribution, Attribution::EngineSide, "{report}");
    }
}

#[test]
fn planted_rule_perturbation_is_hunted_and_named() {
    // `rule-perturb:weaken-criteria` makes the §7 weakening drop *real*
    // sort criteria. Under the ordered profile (sequence equivalence) the
    // random hunt must catch it; seed 1 does within 30 iterations.
    let cfg = FuzzConfig {
        seed: 1,
        iters: 30,
        profiles: vec![FuzzProfile::Ordered],
        failpoints: Failpoints::parse("rule-perturb:weaken-criteria").unwrap(),
        ..FuzzConfig::default()
    };
    let report = run_fuzz(&cfg);
    assert!(
        !report.divergences.is_empty(),
        "the hunt missed the planted optimizer bug: {report}"
    );
    for d in &report.divergences {
        assert!(
            d.minimized_weight <= d.original_weight,
            "shrinker grew the query: {report}"
        );
        assert_eq!(
            d.attribution,
            Attribution::Rule("weaken-criteria".to_string()),
            "misattributed: {report}"
        );
    }
    // A healthy rule set on the very same stream stays green.
    let clean = run_fuzz(&FuzzConfig {
        failpoints: Failpoints::none(),
        ..cfg
    });
    assert!(clean.clean(), "{clean}");
}
