//! Tier-1 acceptance: the costed-vs-uncosted differential at full
//! breadth — XMark Q1–Q20, the split-corpus shard matrix under 1/2/8
//! shards, and ≥200 authored multi-document join queries from the fuzz
//! stream, every cell byte-identical on both engine paths, with the
//! `stats-perturb` arms proving corrupted estimates never change output.

use exrquy_verify::{run_costed_differential, CostedConfig};

#[test]
fn costed_plans_serialize_byte_identically() {
    let report = run_costed_differential(&CostedConfig::default());
    assert!(report.passed(), "{report}");
    assert!(
        report.join_queries >= 200,
        "join stream too small: {report}"
    );
    assert!(
        report.reordered_plans > 0,
        "differential never exercised a join reorder: {report}"
    );
    assert!(report.perturbed_cells > 0, "{report}");
    println!("{report}");
}
