//! Tier-1 acceptance: the vectorized engine core (flattened physical
//! programs, selection vectors, fused kernels) serializes byte-identically
//! to the scalar operator-at-a-time path over the XMark corpus and the
//! fuzz query stream, serially and under the work-stealing scheduler.

use exrquy_verify::{run_vectorized_differential, VectorizedConfig};

#[test]
fn vectorized_matches_scalar_byte_for_byte() {
    let cfg = VectorizedConfig::default();
    let report = run_vectorized_differential(&cfg);
    assert!(report.passed(), "{report}");
    // All 20 XMark queries x 2 profiles x 2 arms (serial + 4 threads)
    // + 25 fuzz iters x 2 profiles x 2 arms.
    assert_eq!(report.cells, 180);
}
