//! Edge behavior of lazy, budget-governed shard materialization.
//!
//! A sharded catalog stages documents without parsing and materializes
//! each shard atomically at first touch (`Executor::materialize_for`).
//! These tests pin the failure-path contract of that staging: a budget
//! trip or cancellation mid-load must leave no *partial shard* visible,
//! injected per-shard faults must surface as their typed error codes,
//! and the session must stay fully usable afterwards — a failed load is
//! a retryable event, not a poisoned catalog.

use exrquy::diag::{CancellationToken, ErrorCode, ExecutionBudget, Failpoints};
use exrquy::{QueryOptions, Session};

const COLLECT: &str = "fn:collection()//x";

/// Five one-element docs; at 2 shards the `i*n/k` bounds split them
/// 2 + 3 in frag order (d0–d1, then d2–d4), 4 nodes per document.
fn corpus() -> Vec<(String, String)> {
    (0..5)
        .map(|i| (format!("d{i}.xml"), format!("<r><x>{i}</x></r>")))
        .collect()
}

fn sharded_session(shards: usize) -> Session {
    let docs = corpus();
    let mut s = Session::new();
    s.load_corpus_sharded(docs.iter().map(|(u, x)| (u.as_str(), x.as_str())), shards);
    assert_eq!(s.store_nodes(), 0, "staging must not parse");
    s
}

const EXPECT: &str = "<x>0</x><x>1</x><x>2</x><x>3</x><x>4</x>";

#[test]
fn budget_trip_mid_load_leaves_no_partial_shard() {
    let s = sharded_session(2);
    let opts = QueryOptions::order_indifferent()
        .with_failpoints(Failpoints::parse("budget-trip:fanout").unwrap());
    let err = s.query_with(COLLECT, &opts).unwrap_err();
    assert_eq!(err.code(), ErrorCode::EXRQ0001);
    // The trip fired before the first shard committed: nothing visible.
    assert_eq!(s.store_nodes(), 0, "tripped load must not commit a shard");
    // The session is not poisoned — the same query succeeds unarmed.
    let out = s
        .query_with(COLLECT, &QueryOptions::order_indifferent())
        .unwrap();
    assert_eq!(out.to_xml(), EXPECT);
}

#[test]
fn node_cap_commits_whole_shards_only() {
    // Each doc is 4 nodes (doc, r, x, text). Shard 0 holds d0–d1 (8
    // nodes), shard 1 holds d2–d4 (12 nodes). A cap of 15 admits shard 0
    // whole but trips on shard 1 — and the catalog must show exactly the
    // committed shard, never a partially parsed one.
    let s = sharded_session(2);
    let strict = QueryOptions::order_indifferent()
        .with_budget(ExecutionBudget::unbounded().with_max_nodes(15));
    let err = s.query_with(COLLECT, &strict).unwrap_err();
    assert_eq!(err.code(), ErrorCode::EXRQ0001);
    let committed = s.store_nodes();
    assert!(
        committed == 8,
        "expected exactly shard 0 (8 nodes) committed, got {committed}"
    );
    // A cap below the first shard commits nothing at all.
    let s = sharded_session(2);
    let tiny = QueryOptions::order_indifferent()
        .with_budget(ExecutionBudget::unbounded().with_max_nodes(5));
    let err = s.query_with(COLLECT, &tiny).unwrap_err();
    assert_eq!(err.code(), ErrorCode::EXRQ0001);
    assert_eq!(s.store_nodes(), 0, "undersized cap must commit nothing");
}

#[test]
fn doc_parse_failpoint_targets_one_shard_and_spares_the_rest() {
    // Parse counter 4 lands on the middle document of shard 1 (d3.xml):
    // shard 0 has already committed, shard 1 must not appear at all —
    // not even d2.xml, whose parse counter precedes the fault.
    let s = sharded_session(2);
    let opts = QueryOptions::order_indifferent()
        .with_failpoints(Failpoints::parse("doc-parse:4").unwrap());
    let err = s.query_with(COLLECT, &opts).unwrap_err();
    assert_eq!(err.code(), ErrorCode::FODC0006);
    assert!(
        err.render_line().contains("d3.xml"),
        "error should name the faulted document: {}",
        err.render_line()
    );
    assert_eq!(s.store_nodes(), 8, "only the clean shard may commit");
    // Recovery completes the catalog and serializes identically to an
    // untouched lazy load.
    let out = s
        .query_with(COLLECT, &QueryOptions::order_indifferent())
        .unwrap();
    assert_eq!(out.to_xml(), EXPECT);
}

#[test]
fn doc_io_failpoint_fires_per_document_over_a_sharded_catalog() {
    let s = sharded_session(2);
    let opts =
        QueryOptions::order_indifferent().with_failpoints(Failpoints::parse("doc-io:1").unwrap());
    let err = s.query_with(r#"doc("d3.xml")//x"#, &opts).unwrap_err();
    assert_eq!(err.code(), ErrorCode::FODC0002);
    // The injected I/O fault is per access, not per catalog: the same
    // document resolves once the failpoint is unarmed.
    let out = s
        .query_with(r#"doc("d3.xml")//x"#, &QueryOptions::order_indifferent())
        .unwrap();
    assert_eq!(out.to_xml(), "<x>3</x>");
}

#[test]
fn cancellation_lands_between_shards() {
    let s = sharded_session(8);
    let token = CancellationToken::new();
    token.cancel();
    let opts = QueryOptions::order_indifferent().with_cancel(token);
    let err = s.query_with(COLLECT, &opts).unwrap_err();
    assert_eq!(err.code(), ErrorCode::EXRQ0002);
    assert!(
        err.render_line().contains("shard"),
        "cancellation during staging should say where it landed: {}",
        err.render_line()
    );
    assert_eq!(s.store_nodes(), 0, "cancelled load must not commit");
    // A live token lets the same session finish the load.
    let opts = QueryOptions::order_indifferent().with_cancel(CancellationToken::new());
    assert_eq!(s.query_with(COLLECT, &opts).unwrap().to_xml(), EXPECT);
}

#[test]
fn repartitioning_never_reuses_stale_shard_plans() {
    // Same query text across three layouts of one session: if the shard
    // layout leaked out of the plan-cache key, the second and third runs
    // would reuse a fanout compiled for the wrong ranges.
    let mut s = sharded_session(2);
    let opts = QueryOptions::order_indifferent();
    assert_eq!(s.query_with(COLLECT, &opts).unwrap().to_xml(), EXPECT);
    for shards in [8, 1] {
        s.set_shards(shards);
        assert_eq!(
            s.query_with(COLLECT, &opts).unwrap().to_xml(),
            EXPECT,
            "layout {shards} must serialize identically"
        );
    }
}
