//! End-to-end tests of the `xq` command-line binary.

use std::io::Write;
use std::process::Command;

fn xq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xq"))
}

fn write_doc(name: &str, xml: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("exrquy-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(xml.as_bytes()).unwrap();
    path
}

#[test]
fn runs_a_query_over_a_file() {
    let doc = write_doc("cli1.xml", "<r><a>1</a><a>2</a></r>");
    let out = xq()
        .arg("--doc")
        .arg(format!("d.xml={}", doc.display()))
        .arg(r#"fn:sum(doc("d.xml")//a)"#)
        .output()
        .expect("xq runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");
}

#[test]
fn explain_prints_a_plan() {
    let doc = write_doc("cli2.xml", "<r/>");
    let out = xq()
        .arg("--doc")
        .arg(format!("d.xml={}", doc.display()))
        .arg("--explain")
        .arg("--unordered")
        .arg(r#"fn:count(doc("d.xml")//x)"#)
        .output()
        .expect("xq runs");
    assert!(out.status.success());
    let plan = String::from_utf8_lossy(&out.stdout);
    assert!(plan.contains("serialize"), "{plan}");
    assert!(plan.contains("⬡"), "{plan}");
}

#[test]
fn reports_errors_with_nonzero_exit() {
    let out = xq().arg("$unbound").output().expect("xq runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unbound variable"));

    let out = xq().output().expect("xq runs");
    assert_eq!(out.status.code(), Some(2)); // usage
}

#[test]
fn baseline_flag_and_query_file() {
    let doc = write_doc("cli3.xml", "<a><b><c/><d/></b><c/></a>");
    let qfile = write_doc("cli3.xq", r#"doc("d.xml")//(c|d)"#);
    let out = xq()
        .arg("--doc")
        .arg(format!("d.xml={}", doc.display()))
        .arg("--baseline")
        .arg("--query-file")
        .arg(qfile.display().to_string())
        .output()
        .expect("xq runs");
    assert!(out.status.success());
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "<c/><d/><c/>"
    );
}
