//! End-to-end tests of the `xq` command-line binary.

use std::io::Write;
use std::process::Command;

fn xq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xq"))
}

fn write_doc(name: &str, xml: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("exrquy-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(xml.as_bytes()).unwrap();
    path
}

#[test]
fn runs_a_query_over_a_file() {
    let doc = write_doc("cli1.xml", "<r><a>1</a><a>2</a></r>");
    let out = xq()
        .arg("--doc")
        .arg(format!("d.xml={}", doc.display()))
        .arg(r#"fn:sum(doc("d.xml")//a)"#)
        .output()
        .expect("xq runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");
}

#[test]
fn explain_prints_a_plan() {
    let doc = write_doc("cli2.xml", "<r/>");
    let out = xq()
        .arg("--doc")
        .arg(format!("d.xml={}", doc.display()))
        .arg("--explain")
        .arg("--unordered")
        .arg(r#"fn:count(doc("d.xml")//x)"#)
        .output()
        .expect("xq runs");
    assert!(out.status.success());
    let plan = String::from_utf8_lossy(&out.stdout);
    assert!(plan.contains("serialize"), "{plan}");
    assert!(plan.contains("⬡"), "{plan}");
}

#[test]
fn reports_errors_with_nonzero_exit() {
    let out = xq().arg("$unbound").output().expect("xq runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unbound variable"));

    let out = xq().output().expect("xq runs");
    assert_eq!(out.status.code(), Some(64)); // usage (EX_USAGE)
}

#[test]
fn exit_codes_distinguish_error_classes() {
    // Static error (unbound variable) → 1, one line with the code.
    let out = xq().arg("$unbound").output().expect("xq runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("[XPST0008]"), "{stderr}");
    assert_eq!(stderr.trim().lines().count(), 1, "{stderr}");

    // Syntax error → also static → 1.
    let out = xq().arg("1 +").output().expect("xq runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("[XPST0003]"));

    // Dynamic error (division by zero) → 2.
    let out = xq().arg("1 idiv 0").output().expect("xq runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("[FOAR0001]"));

    // Budget exceeded → 3.
    let out = xq()
        .args(["--max-rows", "100"])
        .arg("fn:count((1 to 100000000))")
        .output()
        .expect("xq runs");
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("[EXRQ0001]"));

    // Timeout → 3 as well.
    let out = xq()
        .args(["--timeout", "0"])
        .arg("(1, 2, 3)")
        .output()
        .expect("xq runs");
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("[EXRQ0001]"));

    // I/O error (unreadable document) → 4.
    let out = xq()
        .args(["--doc", "d.xml=/nonexistent/nope.xml"])
        .arg("1")
        .output()
        .expect("xq runs");
    assert_eq!(out.status.code(), Some(4));
}

#[test]
fn quiet_suppresses_results_but_not_errors() {
    let out = xq().arg("--quiet").arg("1 + 1").output().expect("xq runs");
    assert!(out.status.success());
    assert!(out.stdout.is_empty());

    let out = xq()
        .arg("--quiet")
        .arg("1 idiv 0")
        .output()
        .expect("xq runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(!out.stderr.is_empty());
}

#[test]
fn budget_flags_accept_valid_queries() {
    let doc = write_doc("cli4.xml", "<r><a>1</a><a>2</a></r>");
    let out = xq()
        .arg("--doc")
        .arg(format!("d.xml={}", doc.display()))
        .args(["--timeout", "30", "--max-rows", "100000"])
        .args(["--max-nodes", "10000", "--max-depth", "64"])
        .arg(r#"fn:count(doc("d.xml")//a)"#)
        .output()
        .expect("xq runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "2");

    // Garbage flag values are usage errors → 64.
    let out = xq()
        .args(["--max-rows", "lots"])
        .arg("1")
        .output()
        .expect("xq runs");
    assert_eq!(out.status.code(), Some(64));
}

#[test]
fn baseline_flag_and_query_file() {
    let doc = write_doc("cli3.xml", "<a><b><c/><d/></b><c/></a>");
    let qfile = write_doc("cli3.xq", r#"doc("d.xml")//(c|d)"#);
    let out = xq()
        .arg("--doc")
        .arg(format!("d.xml={}", doc.display()))
        .arg("--baseline")
        .arg("--query-file")
        .arg(qfile.display().to_string())
        .output()
        .expect("xq runs");
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "<c/><d/><c/>");
}
