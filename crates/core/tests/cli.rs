//! End-to-end tests of the `xq` command-line binary.

use std::io::Write;
use std::process::Command;

fn xq() -> Command {
    Command::new(env!("CARGO_BIN_EXE_xq"))
}

fn write_doc(name: &str, xml: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("exrquy-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(xml.as_bytes()).unwrap();
    path
}

#[test]
fn runs_a_query_over_a_file() {
    let doc = write_doc("cli1.xml", "<r><a>1</a><a>2</a></r>");
    let out = xq()
        .arg("--doc")
        .arg(format!("d.xml={}", doc.display()))
        .arg(r#"fn:sum(doc("d.xml")//a)"#)
        .output()
        .expect("xq runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "3");
}

#[test]
fn explain_prints_a_plan() {
    let doc = write_doc("cli2.xml", "<r/>");
    let out = xq()
        .arg("--doc")
        .arg(format!("d.xml={}", doc.display()))
        .arg("--explain")
        .arg("--unordered")
        .arg(r#"fn:count(doc("d.xml")//x)"#)
        .output()
        .expect("xq runs");
    assert!(out.status.success());
    let plan = String::from_utf8_lossy(&out.stdout);
    assert!(plan.contains("serialize"), "{plan}");
    assert!(plan.contains("⬡"), "{plan}");
}

#[test]
fn reports_errors_with_nonzero_exit() {
    let out = xq().arg("$unbound").output().expect("xq runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unbound variable"));

    let out = xq().output().expect("xq runs");
    assert_eq!(out.status.code(), Some(64)); // usage (EX_USAGE)
}

#[test]
fn exit_codes_distinguish_error_classes() {
    // Static error (unbound variable) → 1, one line with the code.
    let out = xq().arg("$unbound").output().expect("xq runs");
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("[XPST0008]"), "{stderr}");
    assert_eq!(stderr.trim().lines().count(), 1, "{stderr}");

    // Syntax error → also static → 1.
    let out = xq().arg("1 +").output().expect("xq runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("[XPST0003]"));

    // Dynamic error (division by zero) → 2.
    let out = xq().arg("1 idiv 0").output().expect("xq runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("[FOAR0001]"));

    // Budget exceeded → 3.
    let out = xq()
        .args(["--max-rows", "100"])
        .arg("fn:count((1 to 100000000))")
        .output()
        .expect("xq runs");
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("[EXRQ0001]"));

    // Timeout → 3 as well.
    let out = xq()
        .args(["--timeout", "0"])
        .arg("(1, 2, 3)")
        .output()
        .expect("xq runs");
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("[EXRQ0001]"));

    // I/O error (unreadable document) → 4.
    let out = xq()
        .args(["--doc", "d.xml=/nonexistent/nope.xml"])
        .arg("1")
        .output()
        .expect("xq runs");
    assert_eq!(out.status.code(), Some(4));
}

#[test]
fn deadline_ms_sheds_with_exrq0007_and_exit_3() {
    // A zero deadline has always already passed: the run is shed with
    // the typed deadline code before evaluation starts.
    let out = xq()
        .args(["--deadline-ms", "0"])
        .arg("(1, 2, 3)")
        .output()
        .expect("xq runs");
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("[EXRQ0007]"));

    // Mid-execution expiry trips the hard deadline inside the engine —
    // same code, same exit class.
    let out = xq()
        .args(["--deadline-ms", "20"])
        .arg("fn:count((1 to 100000000))")
        .output()
        .expect("xq runs");
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("[EXRQ0007]"));

    // A generous deadline does not disturb a normal run.
    let out = xq()
        .args(["--deadline-ms", "60000"])
        .arg("1 + 1")
        .output()
        .expect("xq runs");
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "2");
}

#[test]
fn quiet_suppresses_results_but_not_errors() {
    let out = xq().arg("--quiet").arg("1 + 1").output().expect("xq runs");
    assert!(out.status.success());
    assert!(out.stdout.is_empty());

    let out = xq()
        .arg("--quiet")
        .arg("1 idiv 0")
        .output()
        .expect("xq runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(!out.stderr.is_empty());
}

#[test]
fn budget_flags_accept_valid_queries() {
    let doc = write_doc("cli4.xml", "<r><a>1</a><a>2</a></r>");
    let out = xq()
        .arg("--doc")
        .arg(format!("d.xml={}", doc.display()))
        .args(["--timeout", "30", "--max-rows", "100000"])
        .args(["--max-nodes", "10000", "--max-depth", "64"])
        .arg(r#"fn:count(doc("d.xml")//a)"#)
        .output()
        .expect("xq runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "2");

    // Garbage flag values are usage errors → 64.
    let out = xq()
        .args(["--max-rows", "lots"])
        .arg("1")
        .output()
        .expect("xq runs");
    assert_eq!(out.status.code(), Some(64));
}

#[test]
fn verify_runs_the_oracle_and_prints_the_result() {
    let doc = write_doc("cli5.xml", "<r><a>1</a><a>2</a></r>");
    let out = xq()
        .arg("--doc")
        .arg(format!("d.xml={}", doc.display()))
        .arg("--verify")
        .arg(r#"doc("d.xml")//a"#)
        .output()
        .expect("xq runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("3 arms agree"), "{stderr}");
    assert_eq!(
        String::from_utf8_lossy(&out.stdout).trim(),
        "<a>1</a><a>2</a>"
    );
}

#[test]
fn verify_divergence_exits_5_with_exrq0004() {
    let doc = write_doc("cli6.xml", "<r><a>1</a><a>2</a></r>");
    for arm in ["optimized", "baseline", "noweaken"] {
        let out = xq()
            .arg("--doc")
            .arg(format!("d.xml={}", doc.display()))
            .args(["--verify", "--inject", &format!("oracle-perturb:{arm}")])
            .arg(r#"doc("d.xml")//a"#)
            .output()
            .expect("xq runs");
        assert_eq!(out.status.code(), Some(5), "arm {arm}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("[EXRQ0004]"), "arm {arm}: {stderr}");
    }
}

#[test]
fn inject_flag_forces_typed_failures() {
    let doc = write_doc("cli7.xml", "<r><a>1</a></r>");
    let with_doc = |extra: &[&str], query: &str| {
        xq().arg("--doc")
            .arg(format!("d.xml={}", doc.display()))
            .args(extra)
            .arg(query)
            .output()
            .expect("xq runs")
    };

    // Injected document I/O failure → dynamic error → exit 2.
    let out = with_doc(&["--inject", "doc-io:1"], r#"doc("d.xml")//a"#);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("[FODC0002]"));

    // Injected parse failure at load time → exit 2 with FODC0006.
    let out = with_doc(&["--inject", "doc-parse:1"], "1");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("[FODC0006]"));

    // Injected budget trip / cancellation → resource class → exit 3.
    let out = with_doc(&["--inject", "budget-trip:step"], r#"doc("d.xml")//a"#);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("[EXRQ0001]"));

    let out = with_doc(&["--inject", "cancel-after:1"], r#"doc("d.xml")//a"#);
    assert_eq!(out.status.code(), Some(3));
    assert!(String::from_utf8_lossy(&out.stderr).contains("[EXRQ0002]"));

    // A malformed spec is a usage error.
    let out = with_doc(&["--inject", "frobnicate:1"], "1");
    assert_eq!(out.status.code(), Some(64));
}

#[test]
fn inject_env_var_is_honored() {
    let doc = write_doc("cli8.xml", "<r><a/></r>");
    let out = xq()
        .arg("--doc")
        .arg(format!("d.xml={}", doc.display()))
        .env("EXRQ_INJECT", "doc-parse:1")
        .arg("1")
        .output()
        .expect("xq runs");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("[FODC0006]"));
}

#[test]
fn baseline_flag_and_query_file() {
    let doc = write_doc("cli3.xml", "<a><b><c/><d/></b><c/></a>");
    let qfile = write_doc("cli3.xq", r#"doc("d.xml")//(c|d)"#);
    let out = xq()
        .arg("--doc")
        .arg(format!("d.xml={}", doc.display()))
        .arg("--baseline")
        .arg("--query-file")
        .arg(qfile.display().to_string())
        .output()
        .expect("xq runs");
    assert!(out.status.success());
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "<c/><d/><c/>");
}
