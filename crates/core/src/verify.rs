//! The three-way differential oracle: `Session::verify`.
//!
//! The paper's claim is that trading the sorting row-numberer `%` for the
//! arbitrary numberer `#` (plus column dependency analysis) preserves
//! every *admissible* result. The oracle checks this mechanically for one
//! query by executing it three ways —
//!
//! 1. **baseline** — the unoptimized, fully order-aware reference
//!    (exploitation off, `ordered` mode, optimizer disabled);
//! 2. **optimized** — the plan under the caller's requested options;
//! 3. **noweaken** — the requested options with `%`-weakening and
//!    physical-order inference disabled (isolates the order-sensitive
//!    rewrites from the rest of the optimizer);
//!
//! — and comparing the three result sequences under the equivalence the
//! effective ordering mode grants: **sequence** equality when the
//! optimized arm ran in `ordered` mode (no order freedom was taken), and
//! **bag** (multiset) equality when it ran `unordered` (the admissible
//! results are exactly the permutations of the reference). A divergence
//! is a typed [`EXRQ0004`](exrquy_diag::ErrorCode::EXRQ0004) error
//! carrying a minimized plan diff between the reference and the
//! divergent arm.

use crate::result::ResultItem;
use crate::session::{Error, QueryOptions, Session};
use exrquy_algebra::{plan_diff, PlanStats};
use exrquy_diag::{ErrorCode, OracleArm};
use exrquy_frontend::OrderingMode;
use std::fmt;

/// Verification failure: the oracle observed a divergence (EXRQ0004).
#[derive(Debug, Clone)]
pub struct VerifyError {
    /// Always a `Verification`-class code (currently [`ErrorCode::EXRQ0004`]).
    pub code: ErrorCode,
    /// Which arm diverged from the baseline reference.
    pub arm: OracleArm,
    /// Divergence description + minimized plan diff.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "differential oracle divergence in `{}` arm: {}",
            self.arm, self.message
        )
    }
}

impl std::error::Error for VerifyError {}

/// The equivalence relation under which two arms' results are compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Equivalence {
    /// Exact sequence equality — ordered context, no order freedom.
    Sequence,
    /// Multiset equality — `#`-weakening granted order freedom.
    Bag,
}

impl Equivalence {
    pub fn as_str(self) -> &'static str {
        match self {
            Equivalence::Sequence => "sequence",
            Equivalence::Bag => "bag",
        }
    }
}

impl fmt::Display for Equivalence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One oracle arm's outcome.
#[derive(Debug, Clone)]
pub struct ArmReport {
    pub arm: OracleArm,
    /// Census of the plan this arm executed.
    pub stats: PlanStats,
    /// Rendered result items, in the order this arm produced them.
    pub rendered: Vec<String>,
}

/// Successful three-way verification.
#[derive(Debug)]
pub struct VerifyReport {
    /// Equivalence relation the arms were compared under.
    pub equivalence: Equivalence,
    /// Effective ordering mode of the optimized arm.
    pub ordering: OrderingMode,
    /// Per-arm outcomes (baseline, optimized, noweaken).
    pub arms: Vec<ArmReport>,
    /// The optimized arm's result items — what a `--verify` run returns
    /// to the caller as the query answer.
    pub items: Vec<ResultItem>,
}

impl VerifyReport {
    /// One-line per-arm summary for diagnostics output.
    pub fn summary(&self) -> String {
        let mut s = format!("oracle: {} equivalence, 3 arms agree", self.equivalence);
        for a in &self.arms {
            s.push_str(&format!(
                "\n  {:<9} {} items, plan {}",
                a.arm,
                a.rendered.len(),
                a.stats
            ));
        }
        s
    }
}

/// Options for the `noweaken` arm: the caller's configuration with the
/// order-sensitive rewrites switched off.
fn noweaken_opts(opts: &QueryOptions) -> QueryOptions {
    let mut o = opts.clone();
    o.opt.weaken_rownum = false;
    o.opt.physical_order = false;
    o
}

/// Options for the `baseline` arm: the fully order-aware reference, but
/// carrying the caller's budget/cancel/failpoints so injected faults and
/// ceilings govern every arm alike.
fn baseline_opts(opts: &QueryOptions) -> QueryOptions {
    let mut o = QueryOptions::baseline();
    o.step_algo = opts.step_algo;
    o.budget = opts.budget.clone();
    o.cancel = opts.cancel.clone();
    o.failpoints = opts.failpoints.clone();
    o
}

/// Multiset compare: sorted copies plus a description of the first
/// imbalance when they differ.
fn bag_mismatch(reference: &[String], other: &[String]) -> Option<String> {
    let mut a = reference.to_vec();
    let mut b = other.to_vec();
    a.sort();
    b.sort();
    if a == b {
        return None;
    }
    if a.len() != b.len() {
        return Some(format!(
            "item count differs: reference has {}, arm has {}",
            a.len(),
            b.len()
        ));
    }
    let idx = a.iter().zip(&b).position(|(x, y)| x != y).unwrap_or(0);
    Some(format!(
        "multisets differ (first difference after sorting at rank {idx}: \
         reference `{}` vs arm `{}`)",
        a[idx], b[idx]
    ))
}

/// Sequence compare: the index and values of the first position that
/// differs, when any.
fn seq_mismatch(reference: &[String], other: &[String]) -> Option<String> {
    if reference == other {
        return None;
    }
    let idx = reference
        .iter()
        .zip(other)
        .position(|(x, y)| x != y)
        .unwrap_or_else(|| reference.len().min(other.len()));
    Some(format!(
        "sequences differ at position {idx}: reference `{}` vs arm `{}` \
         (lengths {} vs {})",
        reference.get(idx).map(String::as_str).unwrap_or("<end>"),
        other.get(idx).map(String::as_str).unwrap_or("<end>"),
        reference.len(),
        other.len()
    ))
}

impl Session {
    /// Run the three-way differential oracle on `query`.
    ///
    /// Returns the [`VerifyReport`] when all arms agree under the
    /// applicable equivalence; returns [`Error::Verify`] (EXRQ0004, exit
    /// class `Verification`) on any divergence, with a minimized plan
    /// diff against the baseline reference in the message. Pipeline
    /// errors in any arm (including injected faults) surface as the
    /// corresponding typed error, exactly as a plain execution would.
    ///
    /// ```
    /// use exrquy::{QueryOptions, Session};
    /// let mut s = Session::new();
    /// s.load_document("d.xml", "<r><x/><x/></r>").unwrap();
    /// let report = s
    ///     .verify(r#"fn:count(doc("d.xml")//x)"#, &QueryOptions::order_indifferent())
    ///     .unwrap();
    /// assert_eq!(report.items.len(), 1);
    /// ```
    pub fn verify(&self, query: &str, opts: &QueryOptions) -> Result<VerifyReport, Error> {
        let arm_configs = [
            (OracleArm::Baseline, baseline_opts(opts)),
            (OracleArm::Optimized, opts.clone()),
            (OracleArm::NoWeaken, noweaken_opts(opts)),
        ];
        let mut arms: Vec<ArmReport> = Vec::with_capacity(3);
        let mut plans = Vec::with_capacity(3);
        let mut optimized_items: Vec<ResultItem> = Vec::new();
        let mut ordering = OrderingMode::Ordered;
        for (arm, arm_opts) in &arm_configs {
            let plan = self.prepare(query, arm_opts)?;
            let out = self.execute(&plan)?;
            let mut rendered: Vec<String> = out.items.iter().map(ResultItem::render).collect();
            if arm_opts.failpoints.perturbs_arm(*arm) {
                // Deterministic, detectable corruption under either
                // equivalence: drop the last item, or invent one when the
                // result is empty.
                if rendered.pop().is_none() {
                    rendered.push("<injected-divergence/>".to_string());
                }
            }
            if *arm == OracleArm::Optimized {
                ordering = plan.ordering;
                optimized_items = out.items;
            }
            arms.push(ArmReport {
                arm: *arm,
                stats: plan.stats_final.clone(),
                rendered,
            });
            plans.push(plan);
        }
        // The reference ran fully ordered; an arm whose effective mode was
        // `unordered` may legitimately permute, so it is compared as a bag.
        // In `ordered` mode no order freedom exists and the comparison is
        // exact.
        let equivalence = match ordering {
            OrderingMode::Ordered => Equivalence::Sequence,
            OrderingMode::Unordered => Equivalence::Bag,
        };
        let reference = &arms[0];
        for arm in &arms[1..] {
            let mismatch = match equivalence {
                Equivalence::Sequence => seq_mismatch(&reference.rendered, &arm.rendered),
                Equivalence::Bag => bag_mismatch(&reference.rendered, &arm.rendered),
            };
            if let Some(why) = mismatch {
                let which = match arm.arm {
                    OracleArm::Optimized => 1,
                    _ => 2,
                };
                let diff = plan_diff(
                    &plans[0].dag,
                    plans[0].root,
                    &plans[which].dag,
                    plans[which].root,
                );
                return Err(Error::Verify(VerifyError {
                    code: ErrorCode::EXRQ0004,
                    arm: arm.arm,
                    message: format!(
                        "{why} ({equivalence} equivalence, {} mode)\nplan diff vs baseline:\n{diff}",
                        match ordering {
                            OrderingMode::Ordered => "ordered",
                            OrderingMode::Unordered => "unordered",
                        }
                    ),
                }));
            }
        }
        Ok(VerifyReport {
            equivalence,
            ordering,
            arms,
            items: optimized_items,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrquy_diag::Failpoints;

    fn session() -> Session {
        let mut s = Session::new();
        s.load_document("t.xml", "<a><b><c/><d/></b><c/></a>")
            .unwrap();
        s
    }

    #[test]
    fn oracle_passes_on_agreeing_arms() {
        let s = session();
        let report = s
            .verify(r#"doc("t.xml")//(c|d)"#, &QueryOptions::order_indifferent())
            .unwrap();
        assert_eq!(report.equivalence, Equivalence::Bag);
        assert_eq!(report.arms.len(), 3);
        assert_eq!(report.items.len(), 3);
        assert!(report.summary().contains("3 arms agree"));
    }

    #[test]
    fn ordered_mode_uses_sequence_equivalence() {
        let s = session();
        let report = s
            .verify(r#"doc("t.xml")//(c|d)"#, &QueryOptions::baseline())
            .unwrap();
        assert_eq!(report.equivalence, Equivalence::Sequence);
    }

    #[test]
    fn injected_perturbation_is_caught_with_exrq0004() {
        let s = session();
        let opts = QueryOptions::order_indifferent()
            .with_failpoints(Failpoints::parse("oracle-perturb:optimized").unwrap());
        let err = s.verify(r#"doc("t.xml")//(c|d)"#, &opts).unwrap_err();
        assert_eq!(err.code(), ErrorCode::EXRQ0004);
        assert_eq!(err.stage(), exrquy_diag::Stage::Verify);
        assert_eq!(err.class().exit_code(), 5);
        let msg = err.to_string();
        assert!(msg.contains("optimized"), "{msg}");
        assert!(msg.contains("plan diff"), "{msg}");
    }

    #[test]
    fn perturbing_the_baseline_is_also_caught() {
        let s = session();
        let opts = QueryOptions::order_indifferent()
            .with_failpoints(Failpoints::parse("oracle-perturb:baseline").unwrap());
        let err = s.verify(r#"fn:count(doc("t.xml")//c)"#, &opts).unwrap_err();
        assert_eq!(err.code(), ErrorCode::EXRQ0004);
    }

    #[test]
    fn empty_results_still_verify() {
        let s = session();
        let report = s
            .verify(r#"doc("t.xml")//z"#, &QueryOptions::order_indifferent())
            .unwrap();
        assert!(report.items.is_empty());
        // …and a perturbed empty result still diverges (synthetic item).
        let opts = QueryOptions::order_indifferent()
            .with_failpoints(Failpoints::parse("oracle-perturb:noweaken").unwrap());
        let err = s.verify(r#"doc("t.xml")//z"#, &opts).unwrap_err();
        assert_eq!(err.code(), ErrorCode::EXRQ0004);
    }
}
