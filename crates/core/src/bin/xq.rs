//! `xq` — command-line XQuery over local XML files.
//!
//! ```sh
//! xq --doc auction.xml=path/to/auction.xml 'fn:count(doc("auction.xml")//item)'
//! xq --doc d.xml=data.xml --explain 'unordered { doc("d.xml")//(a|b) }'
//! xq --query-file q.xq --doc auction.xml=auction.xml --baseline --time
//! ```
//!
//! Flags:
//!
//! ```text
//!   --doc <url>=<path>   load an XML file under the fn:doc() URL (repeatable)
//!   --query-file <path>  read the query from a file instead of the argument
//!   --baseline           order-aware compiler (no order indifference)
//!   --unordered          force ordering mode unordered + full analysis
//!   --explain            print the plan instead of executing
//!   --sql                print the SQL:1999 translation instead of executing
//!   --time               print compile/execute wall-clock to stderr
//!   --profile            print the per-phase execution profile to stderr
//! ```

use exrquy::{QueryOptions, Session};
use std::process::exit;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: xq [--doc url=path]… [--baseline|--unordered] [--explain] \
         [--time] [--profile] (<query> | --query-file <path>)"
    );
    exit(2);
}

fn main() {
    let mut docs: Vec<(String, String)> = Vec::new();
    let mut query: Option<String> = None;
    let mut opts = QueryOptions::honor_prolog();
    let mut explain = false;
    let mut sql = false;
    let mut time = false;
    let mut profile = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--doc" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let Some((url, path)) = spec.split_once('=') else {
                    eprintln!("--doc expects url=path, got `{spec}`");
                    exit(2);
                };
                docs.push((url.to_string(), path.to_string()));
            }
            "--query-file" => {
                let path = args.next().unwrap_or_else(|| usage());
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("cannot read {path}: {e}");
                    exit(2);
                });
                query = Some(text);
            }
            "--baseline" => opts = QueryOptions::baseline(),
            "--unordered" => opts = QueryOptions::order_indifferent(),
            "--explain" => explain = true,
            "--sql" => sql = true,
            "--time" => time = true,
            "--profile" => profile = true,
            "--help" | "-h" => usage(),
            other if query.is_none() && !other.starts_with('-') => {
                query = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    let Some(query) = query else { usage() };

    let mut session = Session::new();
    for (url, path) in &docs {
        let xml = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            exit(2);
        });
        let started = Instant::now();
        if let Err(e) = session.load_document(url, &xml) {
            eprintln!("loading {path}: {e}");
            exit(1);
        }
        if time {
            eprintln!(
                "loaded {url} ({} bytes) in {:.1} ms",
                xml.len(),
                started.elapsed().as_secs_f64() * 1e3
            );
        }
    }

    let started = Instant::now();
    let plan = match session.prepare(&query, &opts) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            exit(1);
        }
    };
    let compile_time = started.elapsed();
    if time {
        eprintln!(
            "compiled in {:.1} ms — plan {} (initial {})",
            compile_time.as_secs_f64() * 1e3,
            plan.stats_final,
            plan.stats_initial
        );
    }

    if explain {
        print!("{}", plan.plan_text());
        return;
    }
    if sql {
        println!("{}", plan.to_sql());
        return;
    }

    let started = Instant::now();
    match session.execute(&plan) {
        Ok(out) => {
            if time {
                eprintln!(
                    "executed in {:.1} ms — {} items",
                    started.elapsed().as_secs_f64() * 1e3,
                    out.items.len()
                );
            }
            if profile {
                eprint!("{}", out.profile.render_breakdown(&plan.dag));
            }
            println!("{}", out.to_xml());
        }
        Err(e) => {
            eprintln!("{e}");
            exit(1);
        }
    }
}
