//! `xq` — command-line XQuery over local XML files.
//!
//! ```sh
//! xq --doc auction.xml=path/to/auction.xml 'fn:count(doc("auction.xml")//item)'
//! xq --doc d.xml=data.xml --explain 'unordered { doc("d.xml")//(a|b) }'
//! xq --query-file q.xq --doc auction.xml=auction.xml --baseline --time
//! ```
//!
//! Flags:
//!
//! ```text
//!   --doc <url>=<path>   load an XML file under the fn:doc() URL (repeatable)
//!   --query-file <path>  read the query from a file instead of the argument
//!   --baseline           order-aware compiler (no order indifference)
//!   --unordered          force ordering mode unordered + full analysis
//!   --explain            print the plan (logical DAG + the flattened
//!                        physical program with its fused chains), run the
//!                        query once, and print one coherent table of
//!                        per-operator estimated vs. actual cardinalities
//!                        plus fusion and plan-cache statistics
//!   --no-cost            disable statistics-driven cost-based planning
//!                        (join reordering, selection ordering); the
//!                        rule-only planner runs instead
//!   --sql                print the SQL:1999 translation instead of executing
//!   --scalar             force the scalar operator-at-a-time engine path
//!                        (no selection vectors, no fused kernels); results
//!                        are byte-identical to the vectorized default
//!   --time               print compile/execute wall-clock to stderr
//!   --profile            print the per-phase execution profile to stderr
//!   --threads <n>        intra-query worker threads (default 1 = serial;
//!                        results are byte-identical at any thread count)
//!   --plan-cache <n>     plan-cache capacity in prepared plans (default 128)
//!   --timeout <secs>     wall-clock budget for execution (fractional ok)
//!   --deadline-ms <ms>   hard deadline covering load + compile + execute;
//!                        exceeding it exits 3 with EXRQ0007 (the same
//!                        code path xqd uses to shed overdue requests)
//!   --max-rows <n>       cap rows any single operator may materialize
//!   --max-nodes <n>      cap XML nodes constructed during evaluation
//!   --max-depth <n>      cap query expression nesting depth
//!   --verify             run the three-way differential oracle (baseline,
//!                        optimized, %-weakening disabled) and compare the
//!                        results under the applicable equivalence
//!   --inject <spec>      arm deterministic failpoints, e.g.
//!                        doc-io:2,budget-trip:rownum,cancel-after:5
//!                        (env fallback: EXRQ_INJECT)
//!   --quiet              suppress the result; errors still print
//! ```
//!
//! Exit codes: 0 success, 1 static error, 2 dynamic error, 3 budget /
//! timeout / cancellation, 4 I/O error, 5 verification failure (oracle
//! divergence / ill-formed optimizer output), 64 usage. Errors print as
//! one line on stderr, prefixed with the W3C-style code, e.g.
//! `xq: [XPST0003] XQuery error at byte 4: expected expression`.

use exrquy::diag::{ExecutionBudget, Failpoints};
use exrquy::{Error, QueryOptions, Session};
use std::process::exit;
use std::time::{Duration, Instant};

/// Usage errors exit with the conventional sysexits EX_USAGE.
const EXIT_USAGE: i32 = 64;
/// I/O failures (unreadable files) exit with the Io class code.
const EXIT_IO: i32 = 4;

fn usage() -> ! {
    eprintln!(
        "usage: xq [--doc url=path]… [--baseline|--unordered] [--explain] \
         [--no-cost] [--scalar] [--time] [--profile] [--threads <n>] [--plan-cache <n>] \
         [--timeout <secs>] [--deadline-ms <ms>] [--max-rows <n>] \
         [--max-nodes <n>] [--max-depth <n>] [--verify] [--inject <spec>] \
         [--quiet] (<query> | --query-file <path>)"
    );
    exit(EXIT_USAGE);
}

/// Print a pipeline error as one stderr line and exit with its class
/// code (1 static, 2 dynamic, 3 resource, 4 I/O).
fn fail(e: &Error) -> ! {
    eprintln!("xq: {}", e.render_line());
    exit(e.class().exit_code());
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: Option<String>) -> T {
    let Some(v) = v else {
        eprintln!("{flag} expects a value");
        exit(EXIT_USAGE);
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse `{v}`");
        exit(EXIT_USAGE);
    })
}

fn main() {
    let mut docs: Vec<(String, String)> = Vec::new();
    let mut query: Option<String> = None;
    let mut opts = QueryOptions::honor_prolog();
    let mut budget = ExecutionBudget::default();
    let mut explain = false;
    let mut verify = false;
    let mut inject: Option<String> = None;
    let mut sql = false;
    let mut scalar = false;
    let mut no_cost = false;
    let mut plan_cache: Option<usize> = None;
    let mut time = false;
    let mut profile = false;
    let mut quiet = false;
    let mut deadline: Option<Instant> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--doc" => {
                let spec = args.next().unwrap_or_else(|| usage());
                let Some((url, path)) = spec.split_once('=') else {
                    eprintln!("--doc expects url=path, got `{spec}`");
                    exit(EXIT_USAGE);
                };
                docs.push((url.to_string(), path.to_string()));
            }
            "--query-file" => {
                let path = args.next().unwrap_or_else(|| usage());
                let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                    eprintln!("xq: cannot read {path}: {e}");
                    exit(EXIT_IO);
                });
                query = Some(text);
            }
            "--baseline" => opts = QueryOptions::baseline(),
            "--unordered" => opts = QueryOptions::order_indifferent(),
            "--explain" => explain = true,
            "--verify" => verify = true,
            "--inject" => {
                let spec = args.next().unwrap_or_else(|| usage());
                inject = Some(spec);
            }
            "--sql" => sql = true,
            "--scalar" => scalar = true,
            "--no-cost" => no_cost = true,
            "--threads" => {
                opts = opts.with_threads(parse_num("--threads", args.next()));
            }
            "--plan-cache" => {
                plan_cache = Some(parse_num("--plan-cache", args.next()));
            }
            "--time" => time = true,
            "--profile" => profile = true,
            "--quiet" => quiet = true,
            "--timeout" => {
                let secs: f64 = parse_num("--timeout", args.next());
                if secs.is_nan() || secs < 0.0 {
                    eprintln!("--timeout: expected a non-negative number of seconds");
                    exit(EXIT_USAGE);
                }
                budget = budget.with_max_wall(Duration::from_secs_f64(secs));
            }
            "--deadline-ms" => {
                let ms: u64 = parse_num("--deadline-ms", args.next());
                deadline = Some(Instant::now() + Duration::from_millis(ms));
            }
            "--max-rows" => {
                budget = budget.with_max_rows_per_op(parse_num("--max-rows", args.next()));
            }
            "--max-nodes" => {
                budget = budget.with_max_nodes(parse_num("--max-nodes", args.next()));
            }
            "--max-depth" => {
                budget = budget.with_max_depth(parse_num("--max-depth", args.next()));
            }
            "--help" | "-h" => usage(),
            other if query.is_none() && !other.starts_with('-') => {
                query = Some(other.to_string());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                usage();
            }
        }
    }
    let Some(query) = query else { usage() };
    opts = opts.with_budget(budget).with_vectorized(!scalar);
    // Applied after --baseline/--unordered so it survives either preset.
    if no_cost {
        opts.opt.cost = false;
    }
    // CLI flag wins over the environment fallback.
    let inject = inject.or_else(|| std::env::var("EXRQ_INJECT").ok());
    if let Some(spec) = &inject {
        match Failpoints::parse(spec) {
            Ok(fp) => opts = opts.with_failpoints(fp),
            Err(e) => {
                eprintln!("--inject: {e}");
                exit(EXIT_USAGE);
            }
        }
    }

    let mut session = Session::new();
    if let Some(capacity) = plan_cache {
        session.set_plan_cache_capacity(capacity);
    }
    session.set_failpoints(opts.failpoints.clone());
    for (url, path) in &docs {
        let xml = std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("xq: cannot read {path}: {e}");
            exit(EXIT_IO);
        });
        let started = Instant::now();
        if let Err(e) = session.load_document(url, &xml) {
            eprintln!("xq: loading {path}: {}", e.render_line());
            exit(e.class().exit_code());
        }
        if time {
            eprintln!(
                "loaded {url} ({} bytes) in {:.1} ms",
                xml.len(),
                started.elapsed().as_secs_f64() * 1e3
            );
        }
    }

    if verify {
        let started = Instant::now();
        match session.verify(&query, &opts) {
            Ok(report) => {
                eprintln!(
                    "{} in {:.1} ms",
                    report.summary(),
                    started.elapsed().as_secs_f64() * 1e3
                );
                if !quiet {
                    println!("{}", exrquy::result::serialize_sequence(&report.items));
                }
                return;
            }
            Err(e) => fail(&e),
        }
    }

    let started = Instant::now();
    let plan = match session.prepare(&query, &opts) {
        Ok(p) => p,
        Err(e) => fail(&e),
    };
    let compile_time = started.elapsed();
    if time {
        eprintln!(
            "compiled in {:.1} ms — plan {} (initial {})",
            compile_time.as_secs_f64() * 1e3,
            plan.stats_final,
            plan.stats_initial
        );
    }

    if explain {
        print!("{}", plan.plan_text());
        println!("-- physical program --");
        print!("{}", plan.phys_text());
        // One execution feeds the "actual" column and the fusion
        // counters; if it fails (budget trip, armed failpoint…) the
        // table still prints with estimates only.
        let run = exrquy::RunOptions {
            deadline,
            ..Default::default()
        };
        let executed = session.execute_with(&plan, &run);
        let profile = match &executed {
            Ok(out) => Some(&out.profile),
            Err(e) => {
                eprintln!(
                    "xq: explain run failed, estimates only: {}",
                    e.render_line()
                );
                None
            }
        };
        println!("-- cardinalities (estimated vs actual) --");
        print!("{}", plan.cardinality_table(profile));
        if let Some(p) = profile {
            println!(
                "fusion: {} phys slot(s), {} fused chain(s) absorbing {} op(s), {} batch(es)",
                p.vec.phys_slots, p.vec.fused_chains, p.vec.fused_ops, p.vec.batches
            );
        }
        let cs = session.cache_stats();
        println!(
            "plan cache: {} hit(s), {} miss(es), {} uncacheable, {} evicted ({:.0}% hit rate)",
            cs.hits,
            cs.misses,
            cs.uncacheable,
            cs.evictions,
            cs.hit_rate() * 100.0
        );
        return;
    }
    if sql {
        println!("{}", plan.to_sql());
        return;
    }

    // The CLI deadline rides the same RunOptions path the xqd daemon
    // uses: pre-shed if it already passed (covering load + compile
    // time), hard-deadline the budget meter otherwise.
    let run = exrquy::RunOptions {
        deadline,
        ..Default::default()
    };
    let started = Instant::now();
    match session.execute_with(&plan, &run) {
        Ok(out) => {
            if time {
                eprintln!(
                    "executed in {:.1} ms — {} items",
                    started.elapsed().as_secs_f64() * 1e3,
                    out.items.len()
                );
            }
            if profile {
                eprint!("{}", out.profile.render_breakdown(&plan.dag));
            }
            if !quiet {
                println!("{}", out.to_xml());
            }
        }
        Err(e) => fail(&e),
    }
}
