//! The per-catalog query executor: compile + optimize + evaluate over an
//! immutable, shareable [`Catalog`] snapshot, with a plan cache.
//!
//! An [`Executor`] owns no mutable document state. Every execution
//! evaluates into a private [`FragArena`] overlay, so any number of
//! executions — across threads — may run concurrently against the same
//! `Arc<Catalog>`. Cloning an executor is cheap and shares both the
//! catalog and the plan cache.

use crate::result::ResultItem;
use crate::session::{Error, Prepared, QueryOptions, QueryOutput};
use exrquy_algebra::{Col, PlanStats};
use exrquy_compiler::{CompiledPlan, Compiler};
use exrquy_diag::{CancellationToken, ErrorCode, Failpoints};
use exrquy_engine::{Engine, EngineOptions, EvalError, Item};
use exrquy_frontend::{check_depth, normalize_opts, parse_module_with};
use exrquy_opt::try_optimize_with;
use exrquy_xml::{serialize, Catalog, FragArena};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// The thread-safety contract of the pipeline, checked at compile time:
// catalogs are shared across threads, prepared plans are executed from
// many threads at once, executors are cloned into worker threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Catalog>();
    assert_send_sync::<Prepared>();
    assert_send_sync::<Executor>();
};

/// Plan-cache counters (monotonic over the executor's lifetime).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// `prepare` calls answered from the cache.
    pub hits: u64,
    /// `prepare` calls that compiled and populated the cache.
    pub misses: u64,
    /// `prepare` calls that bypassed the cache (options carrying
    /// run-specific state: a cancellation token or armed failpoints).
    pub uncacheable: u64,
    /// Plans evicted to keep the cache within its capacity.
    pub evictions: u64,
}

impl CacheStats {
    /// Hit fraction over cacheable lookups (0.0 when none happened).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Default plan-cache capacity (prepared plans per catalog snapshot).
pub const DEFAULT_PLAN_CACHE_CAPACITY: usize = 128;

/// Hashed (query text, options fingerprint) → shared prepared plan,
/// bounded by LRU eviction.
///
/// Internal to [`Executor`]; `Mutex` + atomics rather than anything
/// fancier because preparation dominates the lock hold time by orders of
/// magnitude and contention is per-catalog. Recency is a monotone stamp
/// refreshed on every hit; insertion past capacity evicts the
/// least-recently-used entry (outstanding `Arc<Prepared>` handles stay
/// valid — eviction only drops the cache's reference).
#[derive(Debug)]
struct PlanCache {
    plans: Mutex<HashMap<u64, (Arc<Prepared>, u64)>>,
    capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    uncacheable: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            plans: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            uncacheable: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn stamp(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    // The cache lock recovers from poisoning rather than propagating it:
    // the map is structurally valid after any interrupted operation
    // (worst case a stale LRU stamp), and with request panics contained
    // by the serving layer, one crashed request must not wedge the
    // cache for every later request.
    fn get(&self, key: u64) -> Option<Arc<Prepared>> {
        let mut plans = self
            .plans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let (plan, stamp) = plans.get_mut(&key)?;
        *stamp = self.stamp();
        Some(Arc::clone(plan))
    }

    fn insert(&self, key: u64, plan: Arc<Prepared>) {
        let mut plans = self
            .plans
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        plans.insert(key, (plan, self.stamp()));
        while plans.len() > self.capacity {
            let oldest = plans
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| *k)
                .expect("non-empty cache over capacity");
            plans.remove(&oldest);
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            uncacheable: self.uncacheable.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

/// Everything that changes the compiled plan must feed the cache key;
/// two option sets with equal fingerprints must prepare identical plans.
/// `layout` is the catalog's shard-layout signature: `collection()`
/// compiles to per-shard fanouts whose fragment ranges are baked into the
/// plan, so two catalogs with different layouts must never share a cached
/// plan even when their query text and options agree.
fn fingerprint(query: &str, opts: &QueryOptions, layout: u64) -> u64 {
    let mut h = DefaultHasher::new();
    layout.hash(&mut h);
    query.hash(&mut h);
    opts.exploit.hash(&mut h);
    opts.ordering.hash(&mut h);
    opts.opt.hash(&mut h);
    opts.step_algo.hash(&mut h);
    opts.budget.hash(&mut h);
    opts.threads.hash(&mut h);
    opts.vectorized.hash(&mut h);
    h.finish()
}

/// Run-time overrides for one execution of a prepared plan.
///
/// Everything here is *execution* state, deliberately kept out of
/// [`QueryOptions`] and the plan-cache fingerprint: a serving layer
/// prepares a query once with cacheable options and then executes it many
/// times, each run carrying its own deadline, cancellation token, and
/// failpoint registry. This is what keeps the plan cache hot under
/// per-request deadlines — options-borne cancel tokens bypass the cache,
/// run-borne ones do not.
#[derive(Debug, Clone, Default)]
pub struct RunOptions {
    /// Absolute deadline for this run. Checked before evaluation starts
    /// (a request already past its deadline is shed without running) and
    /// polled at every operator boundary; trips as
    /// [`ErrorCode::EXRQ0007`].
    pub deadline: Option<Instant>,
    /// Cancellation token for this run; overrides any token the plan was
    /// prepared with.
    pub cancel: Option<CancellationToken>,
    /// Failpoints for this run; overrides the plan's registry when set.
    pub failpoints: Option<Failpoints>,
    /// Shared memory gauge for the serving layer's watermark governor:
    /// the engine publishes this run's approximate constructed-node
    /// bytes into it while the run is in flight.
    pub gauge: Option<exrquy_diag::MemoryGauge>,
}

impl RunOptions {
    /// Overrides carrying a deadline `timeout` from now, typically from a
    /// CLI `--deadline-ms` or a request's `deadline_ms` field.
    pub fn with_deadline_in(timeout: std::time::Duration) -> Self {
        RunOptions {
            deadline: Some(Instant::now() + timeout),
            ..RunOptions::default()
        }
    }

    /// Attach a cancellation token.
    pub fn with_cancel(mut self, cancel: CancellationToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Has the deadline already passed?
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|at| Instant::now() >= at)
    }
}

/// A query pipeline bound to one immutable catalog snapshot.
#[derive(Debug, Clone)]
pub struct Executor {
    catalog: Arc<Catalog>,
    cache: Arc<PlanCache>,
}

impl Executor {
    /// Executor over `catalog` with a fresh plan cache of the default
    /// capacity ([`DEFAULT_PLAN_CACHE_CAPACITY`]).
    pub fn new(catalog: Arc<Catalog>) -> Self {
        Self::with_cache_capacity(catalog, DEFAULT_PLAN_CACHE_CAPACITY)
    }

    /// Executor with an explicit plan-cache capacity (plans; minimum 1).
    pub fn with_cache_capacity(catalog: Arc<Catalog>, capacity: usize) -> Self {
        Executor {
            catalog,
            cache: Arc::new(PlanCache::with_capacity(capacity)),
        }
    }

    /// The catalog this executor reads.
    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Plan-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Parse, normalize, compile and optimize `query` without executing,
    /// consulting the plan cache first. Plans prepared with a cancellation
    /// token or armed failpoints carry run-specific state and bypass the
    /// cache.
    pub fn prepare(&self, query: &str, opts: &QueryOptions) -> Result<Arc<Prepared>, Error> {
        if opts.cancel.is_some() || !opts.failpoints.is_empty() {
            self.cache.uncacheable.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::new(self.compile(query, opts)?));
        }
        let key = fingerprint(query, opts, self.catalog.layout_signature());
        if let Some(plan) = self.cache.get(key) {
            self.cache.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(plan);
        }
        let plan = Arc::new(self.compile(query, opts)?);
        self.cache.misses.fetch_add(1, Ordering::Relaxed);
        self.cache.insert(key, Arc::clone(&plan));
        Ok(plan)
    }

    fn compile(&self, query: &str, opts: &QueryOptions) -> Result<Prepared, Error> {
        let max_depth = opts
            .budget
            .max_depth
            .unwrap_or(exrquy_frontend::DEFAULT_MAX_DEPTH);
        let mut module = parse_module_with(query, max_depth).map_err(Error::Parse)?;
        if let Some(mode) = opts.ordering {
            module.ordering = mode;
        }
        let effective_ordering = module.ordering;
        let module = normalize_opts(&module, opts.exploit);
        // Normalization wraps expressions (fn:unordered, comparisons), so
        // re-check the AST depth with a little headroom; this also guards
        // modules built programmatically rather than parsed.
        check_depth(&module, max_depth.saturating_add(16)).map_err(Error::Parse)?;
        let CompiledPlan {
            mut dag,
            root,
            names,
        } = Compiler::new(&self.catalog)
            .compile_module(&module)
            .map_err(Error::Compile)?;
        let stats_initial = PlanStats::of(&dag, root);
        let (root, opt_report) =
            try_optimize_with(&mut dag, root, &opts.opt, opts.failpoints.perturbed_rule())
                .map_err(Error::Opt)?;
        // Cost-based pass: join-order enumeration and selection ordering
        // over catalog statistics. Every plan it picks serializes
        // byte-identically to the canonical plan; `--no-cost`
        // (`opts.opt.cost = false`) keeps the rule-only planner, in which
        // case only the cardinality estimates are computed (for explain).
        let cost_ctx = exrquy_opt::CostContext {
            stats: Some(self.catalog.stats()),
            perturb: opts.failpoints.perturbed_stats(),
        };
        let (root, cost_report) =
            exrquy_opt::cost_optimize(&mut dag, root, &opts.opt, &cost_ctx).map_err(Error::Opt)?;
        let stats_final = PlanStats::of(&dag, root);
        // Lower once: executions run the flattened program directly.
        let phys = exrquy_algebra::lower(&dag, root, opts.vectorized);
        Ok(Prepared {
            dag,
            root,
            phys,
            vectorized: opts.vectorized,
            stats_initial,
            stats_final,
            opt_report,
            cost_report,
            names,
            step_algo: opts.step_algo,
            budget: opts.budget.clone(),
            cancel: opts.cancel.clone(),
            failpoints: opts.failpoints.clone(),
            threads: opts.threads,
            ordering: effective_ordering,
        })
    }

    /// Execute a prepared plan. Evaluation writes into a fresh per-call
    /// [`FragArena`] overlay, so the catalog is untouched whether the
    /// query succeeds, trips a budget, or is cancelled — the rollback the
    /// old mutable store needed is now structural.
    pub fn execute(&self, plan: &Prepared) -> Result<QueryOutput, Error> {
        self.execute_with(plan, &RunOptions::default())
    }

    /// Execute a prepared plan under per-run overrides (deadline,
    /// cancellation, failpoints). The single deadline code path shared by
    /// `xq --deadline-ms` and the `xqd` serving daemon: a run past its
    /// deadline is shed with [`ErrorCode::EXRQ0007`] *before* evaluation,
    /// and an in-flight run trips the same code at the next operator
    /// boundary.
    pub fn execute_with(&self, plan: &Prepared, run: &RunOptions) -> Result<QueryOutput, Error> {
        if run.expired() {
            return Err(Error::Eval(EvalError::new(
                ErrorCode::EXRQ0007,
                "request deadline exceeded before execution started",
            )));
        }
        let tracker = self.materialize_for(plan, run)?;
        let engine_opts = EngineOptions {
            step_algo: plan.step_algo,
            budget: plan.budget.clone(),
            cancel: run.cancel.clone().or_else(|| plan.cancel.clone()),
            failpoints: run
                .failpoints
                .clone()
                .unwrap_or_else(|| plan.failpoints.clone()),
            threads: plan.threads,
            scalar: !plan.vectorized,
            deadline: run.deadline,
            gauge: run.gauge.clone(),
        };
        let mut arena = FragArena::with_names(Arc::clone(&self.catalog), Arc::clone(&plan.names));
        let mut engine = Engine::new(&plan.dag, &mut arena, engine_opts);
        let result = engine.eval_plan(&plan.phys).map_err(Error::Eval)?;
        // Rows in pos order; pos values need not be dense or start at 1 —
        // only their ranks matter.
        let pos = result.col(Col::POS);
        let item = result.col(Col::ITEM);
        let mut order: Vec<usize> = (0..result.nrows()).collect();
        // `pos` is integral in every plan the compiler emits; the typed
        // sort key skips per-comparison `Item` construction.
        match pos.to_int_vec() {
            Ok(keys) => order.sort_by_key(|&a| keys[a]),
            Err(_) => order.sort_by(|&a, &b| pos.get(a).sort_cmp(&pos.get(b))),
        }
        let profile = engine.profile.clone();
        drop(engine);
        let items = order
            .into_iter()
            .map(|r| match item.get(r) {
                Item::Node(n) => ResultItem::Node(serialize::node_to_string(&arena, n)),
                Item::Int(i) => ResultItem::Int(i),
                Item::Dbl(d) => ResultItem::Dbl(d),
                Item::Str(s) => ResultItem::Str(s.to_string()),
                Item::Bool(b) => ResultItem::Bool(b),
            })
            .collect();
        drop(tracker);
        Ok(QueryOutput { items, profile })
    }

    /// Parse every lazily loaded fragment this plan can touch, shard by
    /// shard, *before* evaluation starts. The engine's read path
    /// (`NodeRead`) assumes every fragment a step lands on is
    /// materialized; funneling all parsing through here keeps that
    /// invariant while giving the serving layer one governed choke point:
    ///
    /// * cancellation is honored between shards ([`ErrorCode::EXRQ0002`]),
    /// * the `doc-parse:<n>` failpoint fires per lazily parsed document
    ///   (counted in fragment order within this run),
    /// * the `budget-trip:fanout` failpoint and the node budget trip as
    ///   [`ErrorCode::EXRQ0001`] — and because
    ///   [`Catalog::materialize_frags`] commits a shard's parses only
    ///   after the whole batch succeeds, a mid-shard trip leaves no
    ///   partial shard visible,
    /// * parsed bytes are charged to the run's [`MemoryGauge`]
    ///   (`run.gauge`) while the run is in flight.
    ///
    /// Returns the gauge tracker (if any) so the charge lives exactly as
    /// long as the execution.
    fn materialize_for(
        &self,
        plan: &Prepared,
        run: &RunOptions,
    ) -> Result<Option<exrquy_diag::MemoryTracker>, Error> {
        // Fragments the plan can reach: named documents plus the fanout
        // ranges of `collection()` scans.
        let mut pending: Vec<u32> = Vec::new();
        for id in plan.dag.reachable(plan.root) {
            match plan.dag.op(id) {
                exrquy_algebra::Op::Doc { url } => {
                    if let Some(root) = self.catalog.doc_root(url) {
                        if !self.catalog.is_materialized(root.frag) {
                            pending.push(root.frag);
                        }
                    }
                }
                exrquy_algebra::Op::Fanout { lo, hi, .. } => {
                    pending.extend(self.catalog.pending_frags(*lo, *hi));
                }
                _ => {}
            }
        }
        if pending.is_empty() {
            return Ok(None);
        }
        pending.sort_unstable();
        pending.dedup();

        let failpoints = run.failpoints.as_ref().unwrap_or(&plan.failpoints);
        let cancel = run.cancel.as_ref().or(plan.cancel.as_ref());
        let mut tracker = run.gauge.as_ref().map(|g| g.tracker());
        let mut charged = 0usize;
        let mut parses = 0usize;
        let node_cap = plan.budget.max_nodes;
        let mut nodes_so_far = 0usize;

        // Group by shard and materialize shard-atomically, in shard order.
        let mut i = 0;
        while i < pending.len() {
            let shard = self.catalog.shard_of(pending[i]);
            let mut j = i;
            while j < pending.len() && self.catalog.shard_of(pending[j]) == shard {
                j += 1;
            }
            let batch = &pending[i..j];
            if cancel.is_some_and(|c| c.is_cancelled()) {
                return Err(Error::Eval(EvalError::new(
                    ErrorCode::EXRQ0002,
                    format!("query cancelled while loading catalog shard {shard}"),
                )));
            }
            if failpoints.trips_budget("fanout") {
                return Err(Error::Eval(EvalError::new(
                    ErrorCode::EXRQ0001,
                    format!("resource budget exhausted loading catalog shard {shard} (injected)"),
                )));
            }
            for frag in batch {
                parses += 1;
                if failpoints.doc_parse_fails(parses) {
                    let url = self.catalog.frag_url(*frag).unwrap_or("<collection>");
                    return Err(Error::Eval(EvalError::new(
                        ErrorCode::FODC0006,
                        format!(
                            "document `{url}` is not well-formed (injected at lazy parse {parses})"
                        ),
                    )));
                }
            }
            let stats = self
                .catalog
                .materialize_frags(batch, node_cap.map(|c| c.saturating_sub(nodes_so_far)))
                .map_err(|e| match e {
                    exrquy_xml::MaterializeError::Parse(p) => Error::Xml(p),
                    exrquy_xml::MaterializeError::NodeBudget { nodes, cap } => {
                        Error::Eval(EvalError::new(
                            ErrorCode::EXRQ0001,
                            format!(
                                "loading catalog shard {shard} would materialize {nodes} XML \
                                 nodes, exceeding the remaining budget of {cap}"
                            ),
                        ))
                    }
                })?;
            nodes_so_far += stats.nodes;
            if let Some(t) = tracker.as_mut() {
                charged += stats.bytes + stats.nodes * exrquy_diag::APPROX_NODE_BYTES;
                t.charge_to(charged);
            }
            i = j;
        }
        Ok(tracker)
    }
}
