//! eXrQuy — a relational XQuery processor exploiting *order indifference*.
//!
//! This crate is the facade over the full pipeline reproduced from
//! "eXrQuy: Order Indifference in XQuery" (Grust, Rittinger, Teubner,
//! ICDE 2007):
//!
//! ```text
//! XQuery text ─parse→ AST ─normalize→ Core ─compile→ algebra DAG
//!       ─optimize (column dependency analysis)→ plan ─execute→ result
//! ```
//!
//! # Quick start
//!
//! ```
//! use exrquy::Session;
//!
//! let mut session = Session::new();
//! session
//!     .load_document("t.xml", "<a><b><c/><d/></b><c/></a>")
//!     .unwrap();
//! let out = session
//!     .query(r#"for $c in doc("t.xml")//c return <hit>{ $c }</hit>"#)
//!     .unwrap();
//! assert_eq!(out.to_xml(), "<hit><c/></hit><hit><c/></hit>");
//! ```
//!
//! The paper's experiments toggle between two compiler configurations:
//!
//! * [`QueryOptions::baseline`] — the order-*aware* compiler: no
//!   `fn:unordered` normalization, `ordered` mode rules LOC/BIND, no
//!   column dependency analysis (current processors per §6);
//! * [`QueryOptions::order_indifferent`] — the modified compiler of §5:
//!   normalization inserts `fn:unordered(·)`, ordering mode `unordered`
//!   activates Rules LOC#/BIND#, and the column dependency analysis plus
//!   `%`-weakening run over the plan.

pub mod executor;
pub mod result;
pub mod session;
pub mod verify;

pub use executor::{CacheStats, Executor, RunOptions};
pub use result::ResultItem;
pub use session::{Error, Explain, Prepared, QueryOptions, QueryOutput, Session};
pub use verify::{ArmReport, Equivalence, VerifyError, VerifyReport};

// Re-exports for downstream harnesses.
pub use exrquy_algebra as algebra;
pub use exrquy_diag as diag;
pub use exrquy_engine as engine;
pub use exrquy_frontend as frontend;
pub use exrquy_opt as opt;
pub use exrquy_xml as xml;
