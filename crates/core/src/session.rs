//! The query session: document registry + the parse→normalize→compile→
//! optimize→execute pipeline.

use crate::result::{serialize_sequence, ResultItem};
use crate::verify::VerifyError;
use exrquy_algebra::{Col, Dag, OpId, PlanStats};
use exrquy_compiler::{CompileError, CompiledPlan, Compiler};
use exrquy_diag::{CancellationToken, ErrorClass, ErrorCode, ExecutionBudget, Failpoints, Stage};
use exrquy_engine::{Engine, EngineOptions, Item, Profile, StepAlgo};
use exrquy_frontend::{check_depth, normalize_opts, parse_module_with, OrderingMode, XqError};
use exrquy_opt::{try_optimize, OptError, OptOptions, OptReport};
use exrquy_xml::{serialize, NodeId, ParseError, Store};
use std::collections::HashMap;
use std::fmt;

/// Any failure along the pipeline.
#[derive(Debug)]
pub enum Error {
    Xml(ParseError),
    Parse(XqError),
    Compile(CompileError),
    Opt(OptError),
    Eval(exrquy_engine::EvalError),
    Verify(VerifyError),
}

impl Error {
    /// The machine-readable error code, regardless of pipeline stage.
    pub fn code(&self) -> ErrorCode {
        match self {
            Error::Xml(e) => e.code,
            Error::Parse(e) => e.code,
            Error::Compile(e) => e.code,
            Error::Opt(_) => ErrorCode::EXRQ0005,
            Error::Eval(e) => e.code,
            Error::Verify(e) => e.code,
        }
    }

    /// The pipeline stage that raised the error.
    pub fn stage(&self) -> Stage {
        match self {
            Error::Xml(_) => Stage::Document,
            Error::Parse(_) => Stage::Parse,
            Error::Compile(_) => Stage::Compile,
            Error::Opt(_) => Stage::Optimize,
            Error::Eval(_) => Stage::Execute,
            Error::Verify(_) => Stage::Verify,
        }
    }

    /// Coarse class (static / dynamic / resource), e.g. for exit codes.
    pub fn class(&self) -> ErrorClass {
        self.code().class()
    }

    /// One-line rendering with the code, e.g.
    /// `[XPST0003] XQuery error at byte 4: expected expression`.
    pub fn render_line(&self) -> String {
        format!("[{}] {self}", self.code())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Xml(e) => write!(f, "{e}"),
            Error::Parse(e) => write!(f, "{e}"),
            Error::Compile(e) => write!(f, "{e}"),
            Error::Opt(e) => write!(f, "{e}"),
            Error::Eval(e) => write!(f, "{e}"),
            Error::Verify(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

/// Compiler/runtime configuration for one query.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Run the order-indifference normalization (Rules FN:COUNT, QUANT,
    /// general-comparison wrapping, `order by` flagging). When `false`,
    /// `fn:unordered()` degrades to the identity function (§6 baseline).
    pub exploit: bool,
    /// Override the prolog's `declare ordering`.
    pub ordering: Option<OrderingMode>,
    /// Plan optimization (column dependency analysis etc.).
    pub opt: OptOptions,
    /// Step algorithm selection.
    pub step_algo: StepAlgo,
    /// Resource ceilings (rows, wall-clock, constructed nodes, nesting
    /// depth). Defaults to unbounded, except that the parsers always
    /// apply their own conservative depth limits.
    pub budget: ExecutionBudget,
    /// Cooperative cancellation; the engine polls it per operator.
    pub cancel: Option<CancellationToken>,
    /// Armed failpoints (deterministic fault injection); empty by default.
    pub failpoints: Failpoints,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions::order_indifferent()
    }
}

impl QueryOptions {
    /// The paper's §5 "order indifference enabled" configuration:
    /// normalization on, ordering mode `unordered`, full optimization.
    pub fn order_indifferent() -> Self {
        QueryOptions {
            exploit: true,
            ordering: Some(OrderingMode::Unordered),
            opt: OptOptions::default(),
            step_algo: StepAlgo::Staircase,
            budget: ExecutionBudget::default(),
            cancel: None,
            failpoints: Failpoints::none(),
        }
    }

    /// The unmodified, fully order-aware compiler (the baseline current
    /// processors implement per §6).
    pub fn baseline() -> Self {
        QueryOptions {
            exploit: false,
            ordering: Some(OrderingMode::Ordered),
            opt: OptOptions::disabled(),
            step_algo: StepAlgo::Staircase,
            budget: ExecutionBudget::default(),
            cancel: None,
            failpoints: Failpoints::none(),
        }
    }

    /// Honor the query's own prolog (`declare ordering`), exploitation and
    /// optimization on — the spec-faithful default for library users.
    pub fn honor_prolog() -> Self {
        QueryOptions {
            exploit: true,
            ordering: None,
            opt: OptOptions::default(),
            step_algo: StepAlgo::Staircase,
            budget: ExecutionBudget::default(),
            cancel: None,
            failpoints: Failpoints::none(),
        }
    }

    /// Attach resource ceilings.
    pub fn with_budget(mut self, budget: ExecutionBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attach a cancellation token.
    pub fn with_cancel(mut self, cancel: CancellationToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Arm failpoints (deterministic fault injection).
    pub fn with_failpoints(mut self, failpoints: Failpoints) -> Self {
        self.failpoints = failpoints;
        self
    }
}

/// A compiled, optimized, reusable query plan.
#[derive(Debug)]
pub struct Prepared {
    pub dag: Dag,
    pub root: OpId,
    /// Plan statistics before optimization.
    pub stats_initial: PlanStats,
    /// Plan statistics of the final plan.
    pub stats_final: PlanStats,
    pub opt_report: OptReport,
    /// Snapshot of the name pool for readable plan rendering.
    names: Vec<String>,
    step_algo: StepAlgo,
    /// Resource ceilings and cancellation carried from the options the
    /// plan was prepared with; applied on every [`Session::execute`].
    budget: ExecutionBudget,
    cancel: Option<CancellationToken>,
    /// Armed failpoints carried from the options.
    failpoints: Failpoints,
    /// The effective ordering mode this plan was compiled under (after
    /// any option override of the prolog's `declare ordering`) — it
    /// decides which result equivalence the differential oracle applies.
    pub ordering: OrderingMode,
}

impl Prepared {
    fn resolver(&self) -> impl Fn(exrquy_xml::NameId) -> String + '_ {
        move |id: exrquy_xml::NameId| {
            self.names
                .get(id.0 as usize)
                .cloned()
                .unwrap_or_else(|| id.to_string())
        }
    }

    /// Indented text rendering of the plan.
    pub fn plan_text(&self) -> String {
        exrquy_algebra::dot::to_text_named(&self.dag, self.root, &self.resolver())
    }

    /// Graphviz rendering of the plan.
    pub fn plan_dot(&self, title: &str) -> String {
        exrquy_algebra::dot::to_dot(&self.dag, self.root, title)
    }

    /// SQL:1999 rendering of the plan (the "XQuery on SQL Hosts" mapping;
    /// see `exrquy-sqlgen`): one `WITH` chain, `%` as
    /// `ROW_NUMBER() OVER (…)`, steps as staircase-join predicates over a
    /// shredded `doc_nodes` table.
    pub fn to_sql(&self) -> String {
        exrquy_sqlgen::to_sql(
            &self.dag,
            self.root,
            &exrquy_sqlgen::SqlOptions {
                names: self.names.clone(),
                pretty: true,
            },
        )
    }
}

/// Alias kept for discoverability: `explain` returns the same structure.
pub type Explain = Prepared;

/// Result of one query execution.
#[derive(Debug)]
pub struct QueryOutput {
    pub items: Vec<ResultItem>,
    /// Per-operator-kind timings of this execution.
    pub profile: Profile,
}

impl QueryOutput {
    /// XQuery serialization of the result sequence.
    pub fn to_xml(&self) -> String {
        serialize_sequence(&self.items)
    }
}

/// A document store plus query pipeline.
pub struct Session {
    store: Store,
    docs: HashMap<String, NodeId>,
    base_frags: usize,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// Empty session.
    pub fn new() -> Self {
        Session {
            store: Store::new(),
            docs: HashMap::new(),
            base_frags: 0,
        }
    }

    /// Parse and register `xml` under `url` (the name `fn:doc()` uses).
    ///
    /// ```
    /// let mut s = exrquy::Session::new();
    /// s.load_document("d.xml", "<r><x/></r>").unwrap();
    /// assert_eq!(s.query(r#"fn:count(doc("d.xml")//x)"#).unwrap().to_xml(), "1");
    /// ```
    pub fn load_document(&mut self, url: &str, xml: &str) -> Result<(), Error> {
        let node = self
            .store
            .add_parsed(xml)
            .map_err(|e| Error::Xml(e.with_source(url)))?;
        self.docs.insert(url.to_string(), node);
        self.base_frags = self.store.len();
        Ok(())
    }

    /// Arm failpoints on the session's document resolver (the `doc-parse`
    /// hook fires in [`load_document`](Self::load_document)). Failpoints
    /// for plan evaluation travel with [`QueryOptions::failpoints`]
    /// instead, so the oracle can arm each arm independently.
    pub fn set_failpoints(&mut self, failpoints: Failpoints) {
        self.store.set_failpoints(failpoints);
    }

    /// Number of nodes across loaded documents.
    pub fn store_nodes(&self) -> usize {
        self.store.total_nodes()
    }

    /// Access the shared store (e.g. for inspecting loaded documents).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Parse, normalize, compile and optimize `query` without executing.
    ///
    /// A [`Prepared`] plan can be executed repeatedly and inspected:
    ///
    /// ```
    /// use exrquy::{QueryOptions, Session};
    /// let mut s = Session::new();
    /// s.load_document("d.xml", "<r><x/><x/></r>").unwrap();
    /// let plan = s
    ///     .prepare(r#"fn:count(doc("d.xml")//x)"#, &QueryOptions::order_indifferent())
    ///     .unwrap();
    /// // The paper's machinery at work: the optimized plan carries no
    /// // order-materializing % operators for this aggregate query.
    /// assert_eq!(plan.stats_final.rownums(), 0);
    /// for _ in 0..2 {
    ///     assert_eq!(s.execute(&plan).unwrap().to_xml(), "2");
    /// }
    /// ```
    pub fn prepare(&mut self, query: &str, opts: &QueryOptions) -> Result<Prepared, Error> {
        let max_depth = opts
            .budget
            .max_depth
            .unwrap_or(exrquy_frontend::DEFAULT_MAX_DEPTH);
        let mut module = parse_module_with(query, max_depth).map_err(Error::Parse)?;
        if let Some(mode) = opts.ordering {
            module.ordering = mode;
        }
        let effective_ordering = module.ordering;
        let module = normalize_opts(&module, opts.exploit);
        // Normalization wraps expressions (fn:unordered, comparisons), so
        // re-check the AST depth with a little headroom; this also guards
        // modules built programmatically rather than parsed.
        check_depth(&module, max_depth.saturating_add(16)).map_err(Error::Parse)?;
        let CompiledPlan { mut dag, root } = Compiler::new(&mut self.store)
            .compile_module(&module)
            .map_err(Error::Compile)?;
        let stats_initial = PlanStats::of(&dag, root);
        let (root, opt_report) = try_optimize(&mut dag, root, &opts.opt).map_err(Error::Opt)?;
        let stats_final = PlanStats::of(&dag, root);
        Ok(Prepared {
            dag,
            root,
            stats_initial,
            stats_final,
            opt_report,
            names: self.store.pool.names().to_vec(),
            step_algo: opts.step_algo,
            budget: opts.budget.clone(),
            cancel: opts.cancel.clone(),
            failpoints: opts.failpoints.clone(),
            ordering: effective_ordering,
        })
    }

    /// Execute a prepared plan. Fragments constructed during evaluation
    /// are released afterwards (results are serialized eagerly).
    pub fn execute(&mut self, plan: &Prepared) -> Result<QueryOutput, Error> {
        let engine_opts = EngineOptions {
            step_algo: plan.step_algo,
            budget: plan.budget.clone(),
            cancel: plan.cancel.clone(),
            failpoints: plan.failpoints.clone(),
        };
        let mut engine = Engine::new(&plan.dag, &mut self.store, self.docs.clone(), engine_opts);
        let result = match engine.eval(plan.root) {
            Ok(t) => t,
            Err(e) => {
                // Release partially constructed fragments — a budget-tripped
                // query must not leak memory into the session.
                drop(engine);
                self.store.truncate_frags(self.base_frags);
                return Err(Error::Eval(e));
            }
        };
        // Rows in pos order; pos values need not be dense or start at 1 —
        // only their ranks matter.
        let pos = result.col(Col::POS).clone();
        let item = result.col(Col::ITEM).clone();
        let mut order: Vec<usize> = (0..result.nrows()).collect();
        order.sort_by(|&a, &b| pos.get(a).sort_cmp(&pos.get(b)));
        let profile = engine.profile.clone();
        drop(engine);
        let items = order
            .into_iter()
            .map(|r| match item.get(r) {
                Item::Node(n) => ResultItem::Node(serialize::node_to_string(&self.store, n)),
                Item::Int(i) => ResultItem::Int(i),
                Item::Dbl(d) => ResultItem::Dbl(d),
                Item::Str(s) => ResultItem::Str(s.to_string()),
                Item::Bool(b) => ResultItem::Bool(b),
            })
            .collect();
        self.store.truncate_frags(self.base_frags);
        Ok(QueryOutput { items, profile })
    }

    /// One-shot: prepare + execute with the given options.
    ///
    /// ```
    /// use exrquy::{QueryOptions, Session};
    /// let mut s = Session::new();
    /// s.load_document("t.xml", "<a><b><c/><d/></b><c/></a>").unwrap();
    /// // The paper's Expression (1) under the order-aware baseline:
    /// let out = s
    ///     .query_with(r#"doc("t.xml")//(c|d)"#, &QueryOptions::baseline())
    ///     .unwrap();
    /// assert_eq!(out.to_xml(), "<c/><d/><c/>"); // document order
    /// ```
    pub fn query_with(&mut self, query: &str, opts: &QueryOptions) -> Result<QueryOutput, Error> {
        let plan = self.prepare(query, opts)?;
        self.execute(&plan)
    }

    /// One-shot with the spec-faithful default options (prolog honored,
    /// order indifference exploited).
    pub fn query(&mut self, query: &str) -> Result<QueryOutput, Error> {
        self.query_with(query, &QueryOptions::honor_prolog())
    }

    /// Compile only — the plan inspection entry point.
    pub fn explain(&mut self, query: &str, opts: &QueryOptions) -> Result<Explain, Error> {
        self.prepare(query, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        let mut s = Session::new();
        s.load_document("t.xml", "<a><b><c/><d/></b><c/></a>")
            .unwrap();
        s
    }

    #[test]
    fn literal_queries() {
        let mut s = Session::new();
        assert_eq!(s.query("1 + 2").unwrap().to_xml(), "3");
        assert_eq!(s.query("(1, 2, 3)").unwrap().to_xml(), "1 2 3");
        assert_eq!(s.query("\"hi\"").unwrap().to_xml(), "hi");
        assert_eq!(s.query("()").unwrap().to_xml(), "");
    }

    #[test]
    fn paths_in_document_order() {
        let mut s = session();
        // The paper's Expression (1): document order c1, d, c2.
        let out = s
            .query_with(r#"doc("t.xml")//(c|d)"#, &QueryOptions::baseline())
            .unwrap();
        assert_eq!(out.to_xml(), "<c/><d/><c/>");
    }

    #[test]
    fn unordered_mode_preserves_multiset() {
        let mut s = session();
        let q = r#"doc("t.xml")//(c|d)"#;
        let ordered = s.query_with(q, &QueryOptions::baseline()).unwrap();
        let unordered = s.query_with(q, &QueryOptions::order_indifferent()).unwrap();
        let mut a: Vec<String> = ordered.items.iter().map(|i| i.render()).collect();
        let mut b: Vec<String> = unordered.items.iter().map(|i| i.render()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn flwor_and_constructors() {
        let mut s = Session::new();
        // The paper's Expression (4).
        let out = s
            .query_with(
                r#"for $x at $p in ("a","b","c") return <e pos="{ $p }">{ $x }</e>"#,
                &QueryOptions::baseline(),
            )
            .unwrap();
        assert_eq!(
            out.to_xml(),
            r#"<e pos="1">a</e><e pos="2">b</e><e pos="3">c</e>"#
        );
    }

    #[test]
    fn count_exists_empty() {
        let mut s = session();
        assert_eq!(
            s.query(r#"fn:count(doc("t.xml")//c)"#).unwrap().to_xml(),
            "2"
        );
        assert_eq!(
            s.query(r#"fn:exists(doc("t.xml")//z)"#).unwrap().to_xml(),
            "false"
        );
        assert_eq!(
            s.query(r#"fn:empty(doc("t.xml")//z)"#).unwrap().to_xml(),
            "true"
        );
    }

    #[test]
    fn plan_stats_shrink_under_optimization() {
        let mut s = session();
        let q = r#"fn:count(doc("t.xml")//c)"#;
        let plan = s.prepare(q, &QueryOptions::order_indifferent()).unwrap();
        assert!(plan.stats_final.total < plan.stats_initial.total);
        assert_eq!(plan.stats_final.rownums(), 0, "{}", plan.plan_text());
    }

    #[test]
    fn constructed_fragments_are_released() {
        let mut s = session();
        let before = s.store().len();
        let _ = s
            .query(r#"for $c in doc("t.xml")//c return <e>{ $c }</e>"#)
            .unwrap();
        assert_eq!(s.store().len(), before);
    }
}
