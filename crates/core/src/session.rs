//! The query session: document registry + the parse→normalize→compile→
//! optimize→execute pipeline.

use crate::executor::{CacheStats, Executor, DEFAULT_PLAN_CACHE_CAPACITY};
use crate::result::{serialize_sequence, ResultItem};
use crate::verify::VerifyError;
use exrquy_algebra::{Dag, OpId, PlanStats};
use exrquy_compiler::CompileError;
use exrquy_diag::{CancellationToken, ErrorClass, ErrorCode, ExecutionBudget, Failpoints, Stage};
use exrquy_engine::{Profile, StepAlgo};
use exrquy_frontend::{OrderingMode, XqError};
use exrquy_opt::{CostReport, OptError, OptOptions, OptReport};
use exrquy_xml::{Catalog, NamePool, ParseError};
use std::fmt;
use std::sync::Arc;

/// Any failure along the pipeline.
#[derive(Debug)]
pub enum Error {
    Xml(ParseError),
    Parse(XqError),
    Compile(CompileError),
    Opt(OptError),
    Eval(exrquy_engine::EvalError),
    Verify(VerifyError),
}

impl Error {
    /// The machine-readable error code, regardless of pipeline stage.
    pub fn code(&self) -> ErrorCode {
        match self {
            Error::Xml(e) => e.code,
            Error::Parse(e) => e.code,
            Error::Compile(e) => e.code,
            Error::Opt(_) => ErrorCode::EXRQ0005,
            Error::Eval(e) => e.code,
            Error::Verify(e) => e.code,
        }
    }

    /// The pipeline stage that raised the error.
    pub fn stage(&self) -> Stage {
        match self {
            Error::Xml(_) => Stage::Document,
            Error::Parse(_) => Stage::Parse,
            Error::Compile(_) => Stage::Compile,
            Error::Opt(_) => Stage::Optimize,
            Error::Eval(_) => Stage::Execute,
            Error::Verify(_) => Stage::Verify,
        }
    }

    /// Coarse class (static / dynamic / resource), e.g. for exit codes.
    pub fn class(&self) -> ErrorClass {
        self.code().class()
    }

    /// One-line rendering with the code, e.g.
    /// `[XPST0003] XQuery error at byte 4: expected expression`.
    pub fn render_line(&self) -> String {
        format!("[{}] {self}", self.code())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Xml(e) => write!(f, "{e}"),
            Error::Parse(e) => write!(f, "{e}"),
            Error::Compile(e) => write!(f, "{e}"),
            Error::Opt(e) => write!(f, "{e}"),
            Error::Eval(e) => write!(f, "{e}"),
            Error::Verify(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {}

/// Compiler/runtime configuration for one query.
#[derive(Debug, Clone)]
pub struct QueryOptions {
    /// Run the order-indifference normalization (Rules FN:COUNT, QUANT,
    /// general-comparison wrapping, `order by` flagging). When `false`,
    /// `fn:unordered()` degrades to the identity function (§6 baseline).
    pub exploit: bool,
    /// Override the prolog's `declare ordering`.
    pub ordering: Option<OrderingMode>,
    /// Plan optimization (column dependency analysis etc.).
    pub opt: OptOptions,
    /// Step algorithm selection.
    pub step_algo: StepAlgo,
    /// Resource ceilings (rows, wall-clock, constructed nodes, nesting
    /// depth). Defaults to unbounded, except that the parsers always
    /// apply their own conservative depth limits.
    pub budget: ExecutionBudget,
    /// Cooperative cancellation; the engine polls it per operator.
    pub cancel: Option<CancellationToken>,
    /// Armed failpoints (deterministic fault injection); empty by default.
    pub failpoints: Failpoints,
    /// Worker threads for intra-query parallel execution (`1` = serial).
    /// Serial and parallel runs produce byte-identical serializations.
    pub threads: usize,
    /// Run the vectorized engine core: the plan is lowered to a flattened
    /// slot program at prepare time (with select→fun→project chains fused
    /// into single-pass kernels) and executed over selection vectors.
    /// When `false`, the scalar operator-at-a-time reference path runs
    /// instead. Both produce byte-identical serializations — the
    /// vectorization differential asserts exactly that.
    pub vectorized: bool,
}

impl Default for QueryOptions {
    fn default() -> Self {
        QueryOptions::order_indifferent()
    }
}

impl QueryOptions {
    /// The paper's §5 "order indifference enabled" configuration:
    /// normalization on, ordering mode `unordered`, full optimization.
    pub fn order_indifferent() -> Self {
        QueryOptions {
            exploit: true,
            ordering: Some(OrderingMode::Unordered),
            opt: OptOptions::default(),
            step_algo: StepAlgo::Staircase,
            budget: ExecutionBudget::default(),
            cancel: None,
            failpoints: Failpoints::none(),
            threads: 1,
            vectorized: true,
        }
    }

    /// The unmodified, fully order-aware compiler (the baseline current
    /// processors implement per §6).
    pub fn baseline() -> Self {
        QueryOptions {
            exploit: false,
            ordering: Some(OrderingMode::Ordered),
            opt: OptOptions::disabled(),
            step_algo: StepAlgo::Staircase,
            budget: ExecutionBudget::default(),
            cancel: None,
            failpoints: Failpoints::none(),
            threads: 1,
            vectorized: true,
        }
    }

    /// Honor the query's own prolog (`declare ordering`), exploitation and
    /// optimization on — the spec-faithful default for library users.
    pub fn honor_prolog() -> Self {
        QueryOptions {
            exploit: true,
            ordering: None,
            opt: OptOptions::default(),
            step_algo: StepAlgo::Staircase,
            budget: ExecutionBudget::default(),
            cancel: None,
            failpoints: Failpoints::none(),
            threads: 1,
            vectorized: true,
        }
    }

    /// Attach resource ceilings.
    pub fn with_budget(mut self, budget: ExecutionBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Attach a cancellation token.
    pub fn with_cancel(mut self, cancel: CancellationToken) -> Self {
        self.cancel = Some(cancel);
        self
    }

    /// Arm failpoints (deterministic fault injection).
    pub fn with_failpoints(mut self, failpoints: Failpoints) -> Self {
        self.failpoints = failpoints;
        self
    }

    /// Set the intra-query worker thread count (`0` and `1` both mean
    /// serial execution).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Toggle the vectorized engine core (`false` forces the scalar
    /// reference path; used by the vectorization differential and as the
    /// `vec-bench` baseline).
    pub fn with_vectorized(mut self, vectorized: bool) -> Self {
        self.vectorized = vectorized;
        self
    }
}

/// A compiled, optimized, reusable query plan.
#[derive(Debug)]
pub struct Prepared {
    pub dag: Dag,
    pub root: OpId,
    /// The flattened physical program (lowered once at prepare time;
    /// every execution runs it without re-deriving the schedule). Fused
    /// chains are present exactly when the plan was prepared with
    /// [`QueryOptions::vectorized`].
    pub phys: exrquy_algebra::PhysPlan,
    /// Whether executions of this plan run the vectorized engine core.
    pub(crate) vectorized: bool,
    /// Plan statistics before optimization.
    pub stats_initial: PlanStats,
    /// Plan statistics of the final plan.
    pub stats_final: PlanStats,
    pub opt_report: OptReport,
    /// Cost-based planning report: per-operator cardinality estimates
    /// (joined with the execution profile's actual row counts by
    /// `xq --explain`), join clusters examined/reordered, selection
    /// chains re-applied, and the cost rewrite trace.
    pub cost_report: CostReport,
    /// The plan's frozen name-pool snapshot (catalog names plus names the
    /// compiler interned for this query), shared with every execution's
    /// arena — plan rendering and SQL emission borrow it, never copy it.
    pub(crate) names: Arc<NamePool>,
    pub(crate) step_algo: StepAlgo,
    /// Resource ceilings and cancellation carried from the options the
    /// plan was prepared with; applied on every [`Session::execute`].
    pub(crate) budget: ExecutionBudget,
    pub(crate) cancel: Option<CancellationToken>,
    /// Armed failpoints carried from the options.
    pub(crate) failpoints: Failpoints,
    /// Intra-query worker thread count carried from the options.
    pub(crate) threads: usize,
    /// The effective ordering mode this plan was compiled under (after
    /// any option override of the prolog's `declare ordering`) — it
    /// decides which result equivalence the differential oracle applies.
    pub ordering: OrderingMode,
}

impl Prepared {
    fn resolver(&self) -> impl Fn(exrquy_xml::NameId) -> String + '_ {
        move |id: exrquy_xml::NameId| {
            self.names
                .get(id)
                .map(str::to_owned)
                .unwrap_or_else(|| id.to_string())
        }
    }

    /// Indented text rendering of the plan.
    pub fn plan_text(&self) -> String {
        exrquy_algebra::dot::to_text_named(&self.dag, self.root, &self.resolver())
    }

    /// Graphviz rendering of the plan.
    pub fn plan_dot(&self, title: &str) -> String {
        exrquy_algebra::dot::to_dot(&self.dag, self.root, title)
    }

    /// Text rendering of the flattened physical program — one line per
    /// slot, fused chains spelled out step by step (shown by
    /// `xq --explain`).
    pub fn phys_text(&self) -> String {
        self.phys.render(&self.dag)
    }

    /// The coherent `--explain` cardinality table: one row per operator
    /// of the final plan (topological order, children before parents)
    /// with the cost model's estimated cardinality next to the actual
    /// row count observed by `profile` (when a run's profile is
    /// supplied). Operators absorbed into fused vectorized chains
    /// record no actual count and show `-`; so do estimates when the
    /// cost model could not type an operator.
    pub fn cardinality_table(&self, profile: Option<&Profile>) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{:>6}  {:<12}  {:>12}  {:>10}  {:>8}",
            "op", "operator", "estimated", "actual", "err"
        );
        for id in self.dag.topo_order(self.root) {
            let est = self.cost_report.estimates.get(&id).copied();
            let actual = profile.and_then(|p| p.op_rows(id));
            let est_s = est.map_or_else(|| "-".to_string(), |e| format!("{e:.1}"));
            let act_s = actual.map_or_else(|| "-".to_string(), |a| a.to_string());
            // Relative error ×N (estimated/actual, whichever ≥1) — the
            // at-a-glance "how wrong was the model here" column.
            let err_s = match (est, actual) {
                (Some(e), Some(a)) => {
                    let (e, a) = (e.max(1e-3), a as f64);
                    let ratio = if a == 0.0 {
                        e.max(1.0)
                    } else if e >= a {
                        e / a
                    } else {
                        a / e
                    };
                    format!("x{ratio:.1}")
                }
                _ => "-".to_string(),
            };
            let _ = writeln!(
                s,
                "{:>6}  {:<12}  {:>12}  {:>10}  {:>8}",
                format!("#{}", id.0),
                self.dag.op(id).kind_name(),
                est_s,
                act_s,
                err_s
            );
        }
        let _ = writeln!(
            s,
            "cost: {} join cluster(s), {} reordered ({} compensation sort(s) elided), {} select chain(s) reordered",
            self.cost_report.clusters,
            self.cost_report.reordered,
            self.cost_report.elided,
            self.cost_report.select_chains
        );
        for fired in &self.cost_report.trace {
            let _ = writeln!(s, "  {} at op #{}", fired.rule, fired.before.0);
        }
        s
    }

    /// SQL:1999 rendering of the plan (the "XQuery on SQL Hosts" mapping;
    /// see `exrquy-sqlgen`): one `WITH` chain, `%` as
    /// `ROW_NUMBER() OVER (…)`, steps as staircase-join predicates over a
    /// shredded `doc_nodes` table.
    pub fn to_sql(&self) -> String {
        exrquy_sqlgen::to_sql(
            &self.dag,
            self.root,
            &exrquy_sqlgen::SqlOptions {
                names: Arc::clone(&self.names),
                pretty: true,
            },
        )
    }
}

/// Alias kept for discoverability: `explain` returns the same structure.
pub type Explain = Prepared;

/// Result of one query execution.
#[derive(Debug)]
pub struct QueryOutput {
    pub items: Vec<ResultItem>,
    /// Per-operator-kind timings of this execution.
    pub profile: Profile,
}

impl QueryOutput {
    /// XQuery serialization of the result sequence.
    pub fn to_xml(&self) -> String {
        serialize_sequence(&self.items)
    }
}

/// A thin convenience wrapper: a mutable document registry over the
/// immutable [`Catalog`] + [`Executor`] split.
///
/// Loading a document builds a *new* catalog snapshot and swaps in a
/// fresh executor (which also invalidates the plan cache — plans compile
/// against one catalog's name pool). The read-only query path
/// (`prepare` / `execute` / `query*`) takes `&self`: hand
/// [`catalog`](Self::catalog) or a clone of [`executor`](Self::executor)
/// to other threads to run queries concurrently.
pub struct Session {
    executor: Executor,
    /// Plan-cache capacity carried across catalog swaps (each
    /// `load_document` builds a fresh executor).
    cache_capacity: usize,
    /// Failpoints armed on the document resolver (the `doc-parse` hook);
    /// plan-evaluation failpoints travel with [`QueryOptions`] instead.
    failpoints: Failpoints,
    /// Documents loaded so far — the deterministic counter behind the
    /// `doc-parse` failpoint.
    loads: usize,
}

impl Default for Session {
    fn default() -> Self {
        Self::new()
    }
}

impl Session {
    /// Empty session.
    pub fn new() -> Self {
        Session {
            executor: Executor::new(Arc::new(Catalog::new())),
            cache_capacity: DEFAULT_PLAN_CACHE_CAPACITY,
            failpoints: Failpoints::none(),
            loads: 0,
        }
    }

    /// Cap the plan cache at `capacity` prepared plans (minimum 1). The
    /// current cache is rebuilt empty, and executors created by later
    /// document loads inherit the capacity.
    pub fn set_plan_cache_capacity(&mut self, capacity: usize) {
        self.cache_capacity = capacity.max(1);
        self.executor =
            Executor::with_cache_capacity(Arc::clone(self.executor.catalog()), self.cache_capacity);
    }

    /// Parse and register `xml` under `url` (the name `fn:doc()` uses).
    ///
    /// The document is parsed into a staging catalog builder and the
    /// session's executor is swapped only on success, so a failed
    /// (re)load leaves the previous catalog — including any document
    /// previously registered under `url` — fully intact.
    ///
    /// ```
    /// let mut s = exrquy::Session::new();
    /// s.load_document("d.xml", "<r><x/></r>").unwrap();
    /// assert_eq!(s.query(r#"fn:count(doc("d.xml")//x)"#).unwrap().to_xml(), "1");
    /// ```
    pub fn load_document(&mut self, url: &str, xml: &str) -> Result<(), Error> {
        self.loads += 1;
        if self.failpoints.doc_parse_fails(self.loads) {
            return Err(Error::Xml(
                ParseError {
                    offset: 0,
                    message: format!(
                        "document content is not well-formed (injected at load {})",
                        self.loads
                    ),
                    code: ErrorCode::FODC0006,
                    source: None,
                }
                .with_source(url),
            ));
        }
        let mut builder = self.executor.catalog().to_builder();
        builder
            .load_str(url, xml)
            .map_err(|e| Error::Xml(e.with_source(url)))?;
        self.executor =
            Executor::with_cache_capacity(Arc::new(builder.build()), self.cache_capacity);
        Ok(())
    }

    /// Register `xml` under `url` *without parsing the tree yet*. Only
    /// the document's names are scanned (so plans compile against a
    /// complete, frozen name pool); the pre/size/level tree is built on
    /// the first execution of a plan that can touch the fragment —
    /// shard-atomically, under the run's budget, cancellation and
    /// `doc-parse` failpoints (see `Executor::materialize_for`). Note the
    /// session-level `doc-parse` failpoint does **not** fire here: with
    /// lazy loading the parse belongs to execution, so the failpoint
    /// travels with [`QueryOptions::failpoints`] instead.
    pub fn load_document_lazy(&mut self, url: &str, xml: &str) {
        let mut builder = self.executor.catalog().to_builder();
        builder.load_str_lazy(url, xml);
        self.executor =
            Executor::with_cache_capacity(Arc::new(builder.build()), self.cache_capacity);
    }

    /// Re-partition the catalog into `n` shards (contiguous, ascending
    /// fragment ranges; clamped to at least 1). Swaps in a fresh executor
    /// — the shard layout is baked into compiled `collection()` plans, so
    /// the plan cache must not survive a re-partitioning.
    pub fn set_shards(&mut self, n: usize) {
        let mut builder = self.executor.catalog().to_builder();
        builder.set_shards(n);
        self.executor =
            Executor::with_cache_capacity(Arc::new(builder.build()), self.cache_capacity);
    }

    /// Bulk-register a document corpus lazily and partition it into
    /// `shards` in a single catalog swap (one snapshot, one plan-cache
    /// invalidation — not one per document).
    pub fn load_corpus_sharded<'a>(
        &mut self,
        docs: impl IntoIterator<Item = (&'a str, &'a str)>,
        shards: usize,
    ) {
        let mut builder = self.executor.catalog().to_builder();
        for (url, xml) in docs {
            builder.load_str_lazy(url, xml);
        }
        builder.set_shards(shards);
        self.executor =
            Executor::with_cache_capacity(Arc::new(builder.build()), self.cache_capacity);
    }

    /// Arm failpoints on the session's document resolver (the `doc-parse`
    /// hook fires in [`load_document`](Self::load_document)). Failpoints
    /// for plan evaluation travel with [`QueryOptions::failpoints`]
    /// instead, so the oracle can arm each arm independently.
    pub fn set_failpoints(&mut self, failpoints: Failpoints) {
        self.failpoints = failpoints;
    }

    /// Number of nodes across loaded documents.
    pub fn store_nodes(&self) -> usize {
        self.executor.catalog().total_nodes()
    }

    /// Number of shards in the catalog's current partitioning (1 unless
    /// [`set_shards`](Self::set_shards) asked for more).
    pub fn shard_count(&self) -> usize {
        self.executor.catalog().shard_count()
    }

    /// The current catalog snapshot. Clone the `Arc` to share the loaded
    /// documents with other threads; later `load_document` calls build
    /// new snapshots and never disturb outstanding clones.
    pub fn catalog(&self) -> &Arc<Catalog> {
        self.executor.catalog()
    }

    /// The executor bound to the current catalog snapshot. Cloning it
    /// shares the plan cache.
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Plan-cache counters of the current executor (reset on document
    /// loads, which invalidate the cache wholesale).
    pub fn cache_stats(&self) -> CacheStats {
        self.executor.cache_stats()
    }

    /// Parse, normalize, compile and optimize `query` without executing.
    ///
    /// Plans are cached per (query text, options fingerprint): preparing
    /// the same query with equal options again returns the same
    /// `Arc<Prepared>`. A [`Prepared`] plan can be executed repeatedly
    /// and inspected:
    ///
    /// ```
    /// use exrquy::{QueryOptions, Session};
    /// let mut s = Session::new();
    /// s.load_document("d.xml", "<r><x/><x/></r>").unwrap();
    /// let plan = s
    ///     .prepare(r#"fn:count(doc("d.xml")//x)"#, &QueryOptions::order_indifferent())
    ///     .unwrap();
    /// // The paper's machinery at work: the optimized plan carries no
    /// // order-materializing % operators for this aggregate query.
    /// assert_eq!(plan.stats_final.rownums(), 0);
    /// for _ in 0..2 {
    ///     assert_eq!(s.execute(&plan).unwrap().to_xml(), "2");
    /// }
    /// ```
    pub fn prepare(&self, query: &str, opts: &QueryOptions) -> Result<Arc<Prepared>, Error> {
        self.executor.prepare(query, opts)
    }

    /// Execute a prepared plan. Fragments constructed during evaluation
    /// live in a per-execution overlay arena and are released with it
    /// (results are serialized eagerly) — the shared catalog is never
    /// touched, even when execution fails mid-plan.
    pub fn execute(&self, plan: &Prepared) -> Result<QueryOutput, Error> {
        self.executor.execute(plan)
    }

    /// Execute a prepared plan under per-run overrides (deadline,
    /// cancellation token, failpoints) — see
    /// [`Executor::execute_with`](crate::Executor::execute_with).
    pub fn execute_with(
        &self,
        plan: &Prepared,
        run: &crate::executor::RunOptions,
    ) -> Result<QueryOutput, Error> {
        self.executor.execute_with(plan, run)
    }

    /// One-shot: prepare + execute with the given options.
    ///
    /// ```
    /// use exrquy::{QueryOptions, Session};
    /// let mut s = Session::new();
    /// s.load_document("t.xml", "<a><b><c/><d/></b><c/></a>").unwrap();
    /// // The paper's Expression (1) under the order-aware baseline:
    /// let out = s
    ///     .query_with(r#"doc("t.xml")//(c|d)"#, &QueryOptions::baseline())
    ///     .unwrap();
    /// assert_eq!(out.to_xml(), "<c/><d/><c/>"); // document order
    /// ```
    pub fn query_with(&self, query: &str, opts: &QueryOptions) -> Result<QueryOutput, Error> {
        let plan = self.prepare(query, opts)?;
        self.execute(&plan)
    }

    /// One-shot with the spec-faithful default options (prolog honored,
    /// order indifference exploited).
    pub fn query(&self, query: &str) -> Result<QueryOutput, Error> {
        self.query_with(query, &QueryOptions::honor_prolog())
    }

    /// Compile only — the plan inspection entry point.
    pub fn explain(&self, query: &str, opts: &QueryOptions) -> Result<Arc<Explain>, Error> {
        self.prepare(query, opts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session() -> Session {
        let mut s = Session::new();
        s.load_document("t.xml", "<a><b><c/><d/></b><c/></a>")
            .unwrap();
        s
    }

    #[test]
    fn literal_queries() {
        let s = Session::new();
        assert_eq!(s.query("1 + 2").unwrap().to_xml(), "3");
        assert_eq!(s.query("(1, 2, 3)").unwrap().to_xml(), "1 2 3");
        assert_eq!(s.query("\"hi\"").unwrap().to_xml(), "hi");
        assert_eq!(s.query("()").unwrap().to_xml(), "");
    }

    #[test]
    fn paths_in_document_order() {
        let s = session();
        // The paper's Expression (1): document order c1, d, c2.
        let out = s
            .query_with(r#"doc("t.xml")//(c|d)"#, &QueryOptions::baseline())
            .unwrap();
        assert_eq!(out.to_xml(), "<c/><d/><c/>");
    }

    #[test]
    fn unordered_mode_preserves_multiset() {
        let s = session();
        let q = r#"doc("t.xml")//(c|d)"#;
        let ordered = s.query_with(q, &QueryOptions::baseline()).unwrap();
        let unordered = s.query_with(q, &QueryOptions::order_indifferent()).unwrap();
        let mut a: Vec<String> = ordered.items.iter().map(|i| i.render()).collect();
        let mut b: Vec<String> = unordered.items.iter().map(|i| i.render()).collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn flwor_and_constructors() {
        let s = Session::new();
        // The paper's Expression (4).
        let out = s
            .query_with(
                r#"for $x at $p in ("a","b","c") return <e pos="{ $p }">{ $x }</e>"#,
                &QueryOptions::baseline(),
            )
            .unwrap();
        assert_eq!(
            out.to_xml(),
            r#"<e pos="1">a</e><e pos="2">b</e><e pos="3">c</e>"#
        );
    }

    #[test]
    fn count_exists_empty() {
        let s = session();
        assert_eq!(
            s.query(r#"fn:count(doc("t.xml")//c)"#).unwrap().to_xml(),
            "2"
        );
        assert_eq!(
            s.query(r#"fn:exists(doc("t.xml")//z)"#).unwrap().to_xml(),
            "false"
        );
        assert_eq!(
            s.query(r#"fn:empty(doc("t.xml")//z)"#).unwrap().to_xml(),
            "true"
        );
    }

    #[test]
    fn plan_stats_shrink_under_optimization() {
        let s = session();
        let q = r#"fn:count(doc("t.xml")//c)"#;
        let plan = s.prepare(q, &QueryOptions::order_indifferent()).unwrap();
        assert!(plan.stats_final.total < plan.stats_initial.total);
        assert_eq!(plan.stats_final.rownums(), 0, "{}", plan.plan_text());
    }

    #[test]
    fn execute_with_deadline_sheds_and_keeps_the_cache_hot() {
        use crate::executor::RunOptions;
        use std::time::{Duration, Instant};

        let s = session();
        let opts = QueryOptions::order_indifferent();
        let q = r#"fn:count(doc("t.xml")//c)"#;
        let plan = s.prepare(q, &opts).unwrap();

        // An already-expired deadline sheds before evaluation starts.
        let run = RunOptions {
            deadline: Some(Instant::now()),
            ..RunOptions::default()
        };
        let err = s.execute_with(&plan, &run).unwrap_err();
        assert_eq!(err.code(), ErrorCode::EXRQ0007);

        // A generous deadline plus a run-level cancel token executes fine
        // — and because the token travels with the run, not the options,
        // the plan cache still answers the prepare.
        let run = RunOptions::with_deadline_in(Duration::from_secs(60))
            .with_cancel(CancellationToken::new());
        assert_eq!(s.execute_with(&plan, &run).unwrap().to_xml(), "2");
        let again = s.prepare(q, &opts).unwrap();
        assert!(
            Arc::ptr_eq(&plan, &again),
            "run overrides must not defeat the cache"
        );

        // A pre-cancelled run-level token stops the run with EXRQ0002.
        let t = CancellationToken::new();
        t.cancel();
        let err = s
            .execute_with(&plan, &RunOptions::default().with_cancel(t))
            .unwrap_err();
        assert_eq!(err.code(), ErrorCode::EXRQ0002);
    }

    #[test]
    fn collection_scans_lazy_sharded_catalogs() {
        let docs: Vec<(String, String)> = (0..5)
            .map(|i| (format!("d{i}.xml"), format!("<r><x>{i}</x></r>")))
            .collect();
        // Unsharded eager baseline.
        let mut base = Session::new();
        for (url, xml) in &docs {
            base.load_document(url, xml).unwrap();
        }
        let expect = base.query("fn:collection()//x").unwrap().to_xml();
        assert_eq!(expect, "<x>0</x><x>1</x><x>2</x><x>3</x><x>4</x>");

        // Lazy + sharded: nothing parses at load time, everything the
        // plan touches parses at first execution, and the serialization
        // is byte-identical across shard counts and engine paths.
        for shards in [1, 2, 8] {
            let mut s = Session::new();
            s.load_corpus_sharded(docs.iter().map(|(u, x)| (u.as_str(), x.as_str())), shards);
            assert_eq!(s.store_nodes(), 0, "lazy load must not parse");
            for vectorized in [true, false] {
                let opts = QueryOptions::order_indifferent().with_vectorized(vectorized);
                let out = s.query_with("fn:collection()//x", &opts).unwrap();
                assert_eq!(out.to_xml(), expect, "shards={shards} vec={vectorized}");
            }
            assert!(s.store_nodes() > 0, "execution materializes the catalog");
            // Documents also stay addressable by name.
            assert_eq!(
                s.query(r#"fn:count(doc("d3.xml")//x)"#).unwrap().to_xml(),
                "1"
            );
        }
    }

    #[test]
    fn shard_layout_feeds_the_plan_cache_key() {
        let docs: Vec<(String, String)> = (0..4)
            .map(|i| (format!("d{i}.xml"), format!("<r><x>{i}</x></r>")))
            .collect();
        let mut s = Session::new();
        s.load_corpus_sharded(docs.iter().map(|(u, x)| (u.as_str(), x.as_str())), 2);
        let opts = QueryOptions::order_indifferent();
        let two = s.prepare("fn:collection()//x", &opts).unwrap();
        // Re-partitioning swaps the executor, so even an identical query
        // text compiles fresh plans with the new fanout ranges.
        s.set_shards(4);
        let four = s.prepare("fn:collection()//x", &opts).unwrap();
        assert!(!Arc::ptr_eq(&two, &four));
        let fanouts = |p: &Prepared| {
            p.dag
                .reachable(p.root)
                .into_iter()
                .filter(|id| matches!(p.dag.op(*id), exrquy_algebra::Op::Fanout { .. }))
                .count()
        };
        assert_eq!(fanouts(&two), 2);
        assert_eq!(fanouts(&four), 4);
    }

    #[test]
    fn constructed_fragments_stay_out_of_the_catalog() {
        let s = session();
        let before = (s.catalog().frag_count(), s.store_nodes());
        let _ = s
            .query(r#"for $c in doc("t.xml")//c return <e>{ $c }</e>"#)
            .unwrap();
        assert_eq!((s.catalog().frag_count(), s.store_nodes()), before);
    }
}
