//! Query results: serialized items, independent of the node store's
//! lifetime (constructed fragments are released after each execution).

use std::fmt;

/// One item of a query result, with nodes already serialized to XML.
#[derive(Debug, Clone, PartialEq)]
pub enum ResultItem {
    /// A node, rendered as XML text.
    Node(String),
    Int(i64),
    Dbl(f64),
    Str(String),
    Bool(bool),
}

impl ResultItem {
    /// The serialization contribution of this item.
    pub fn render(&self) -> String {
        match self {
            ResultItem::Node(x) => x.clone(),
            ResultItem::Int(i) => i.to_string(),
            ResultItem::Dbl(d) => exrquy_engine::item::fmt_double(*d),
            ResultItem::Str(s) => s.clone(),
            ResultItem::Bool(b) => b.to_string(),
        }
    }

    /// Is this a node item?
    pub fn is_node(&self) -> bool {
        matches!(self, ResultItem::Node(_))
    }
}

impl fmt::Display for ResultItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// XQuery-style sequence serialization: adjacent atomic values are
/// separated by a single space; nodes serialize as XML.
pub fn serialize_sequence(items: &[ResultItem]) -> String {
    let mut out = String::new();
    let mut prev_atomic = false;
    for item in items {
        let atomic = !item.is_node();
        if atomic && prev_atomic {
            out.push(' ');
        }
        out.push_str(&item.render());
        prev_atomic = atomic;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn atomics_are_space_separated() {
        let items = vec![
            ResultItem::Int(1),
            ResultItem::Str("x".into()),
            ResultItem::Node("<a/>".into()),
            ResultItem::Int(2),
            ResultItem::Dbl(2.5),
        ];
        assert_eq!(serialize_sequence(&items), "1 x<a/>2 2.5");
    }

    #[test]
    fn renders_each_kind() {
        assert_eq!(ResultItem::Bool(true).render(), "true");
        assert_eq!(ResultItem::Dbl(5000.0).render(), "5000");
        assert_eq!(ResultItem::Node("<a/>".into()).render(), "<a/>");
    }
}
