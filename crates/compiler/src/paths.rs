//! Path expressions: location steps (Rules LOC / LOC#), predicates, and
//! general step expressions (`e1/(…)`) with their doc-order semantics.

use crate::{CResult, CompileError, Compiler, Frame};
use exrquy_algebra::{AValue, AggrKind, Col, FunKind, Op, OpId, SortKey};
use exrquy_frontend::{Expr, NodeTestAst};
use exrquy_xml::NodeTest;

impl Compiler<'_> {
    pub(crate) fn resolve_test(&mut self, t: &NodeTestAst) -> NodeTest {
        match t {
            NodeTestAst::AnyKind => NodeTest::AnyKind,
            NodeTestAst::Wildcard => NodeTest::Wildcard,
            NodeTestAst::Name(n) => NodeTest::Name(self.intern(n)),
            NodeTestAst::Text => NodeTest::Text,
            NodeTestAst::Comment => NodeTest::Comment,
            NodeTestAst::Pi(None) => NodeTest::Pi(None),
            NodeTestAst::Pi(Some(t)) => NodeTest::Pi(Some(self.intern(t))),
            NodeTestAst::Element => NodeTest::Element,
            NodeTestAst::DocumentNode => NodeTest::DocumentNode,
        }
    }

    pub(crate) fn compile_path(&mut self, e: &Expr) -> CResult {
        match e {
            Expr::PathStep {
                input,
                axis,
                test,
                predicates,
            } => {
                let qi = self.compile(input)?;
                let test = self.resolve_test(test);
                let ctx = self.project_iter_item(qi);
                let step = self.dag.add(Op::Step {
                    input: ctx,
                    axis: *axis,
                    test,
                });
                // Interaction 1© (doc → seq): Rule LOC derives pos from the
                // order-preserving node identifiers; Rule LOC# attaches
                // arbitrary pos instead.
                let mut q = if self.ordered() {
                    let r = self.dag.add(Op::RowNum {
                        input: step,
                        new: Col::POS,
                        order: vec![SortKey::asc(Col::ITEM)],
                        part: Some(Col::ITER),
                    });
                    self.canonical(r)
                } else {
                    let r = self.dag.add(Op::RowId {
                        input: step,
                        new: Col::POS,
                    });
                    self.canonical(r)
                };
                for p in predicates {
                    q = self.apply_predicate(q, p)?;
                }
                Ok(q)
            }
            Expr::Filter { input, predicate } => {
                let q = self.compile(input)?;
                self.apply_predicate(q, predicate)
            }
            Expr::PathSeq { input, step } => {
                let qi = self.compile(input)?;
                // Iterate `step` once per context node, like a for-binding
                // over the input nodes; the node results are then combined
                // duplicate-free in document order (ordered mode) or
                // arbitrary order (Rule LOC#-analogue).
                let qr = self.with_focus_over(qi, |c| c.compile(step))?;
                let ii = self.project_iter_item(qr);
                let dedup = self.dag.add(Op::Distinct { input: ii });
                let q = if self.ordered() {
                    let r = self.dag.add(Op::RowNum {
                        input: dedup,
                        new: Col::POS,
                        order: vec![SortKey::asc(Col::ITEM)],
                        part: Some(Col::ITER),
                    });
                    self.canonical(r)
                } else {
                    let r = self.dag.add(Op::RowId {
                        input: dedup,
                        new: Col::POS,
                    });
                    self.canonical(r)
                };
                Ok(q)
            }
            other => Err(CompileError::new(
                exrquy_diag::ErrorCode::XPST0003,
                format!("compile_path on non-path expression {other:?}"),
            )),
        }
    }

    /// Open an iteration scope with one iteration per row of `q`
    /// (`[iter,pos,item]`), binding the context item, run `f`, and map its
    /// result back: the result rows are re-keyed to the *outer* iterations
    /// with no sequence-order derivation (callers decide what order means).
    pub(crate) fn with_focus_over(
        &mut self,
        q: OpId,
        f: impl FnOnce(&mut Self) -> CResult,
    ) -> CResult {
        let qv = self.dag.add(Op::RowId {
            input: q,
            new: Col::BIND,
        });
        let inner_loop = self.dag.add(Op::Project {
            input: qv,
            cols: vec![(Col::ITER, Col::BIND)],
        });
        let map = self.dag.add(Op::Project {
            input: qv,
            cols: vec![(Col::OUTER, Col::ITER), (Col::INNER, Col::BIND)],
        });
        let focus_item = self.dag.add(Op::Project {
            input: qv,
            cols: vec![(Col::ITER, Col::BIND), (Col::ITEM, Col::ITEM)],
        });
        let focus_pos = self.dag.add(Op::Attach {
            input: focus_item,
            col: Col::POS,
            value: AValue::Int(1),
        });
        let focus = self.canonical(focus_pos);

        self.frames.push(Frame {
            loop_op: inner_loop,
            map_op: Some(map),
        });
        self.depth += 1;
        self.bind_var(".", self.depth, focus);
        let result = f(self);
        self.unbind_var(".");
        self.depth -= 1;
        self.frames.pop();
        let qr = result?;

        // Map back: inner iterations fold into their outer iteration.
        let renamed = self.dag.add(Op::Project {
            input: qr,
            cols: vec![
                (Col::ITER1, Col::ITER),
                (Col::POS, Col::POS),
                (Col::ITEM, Col::ITEM),
            ],
        });
        let joined = self.dag.add(Op::EquiJoin {
            l: renamed,
            r: map,
            lcol: Col::ITER1,
            rcol: Col::INNER,
        });
        Ok(self.dag.add(Op::Project {
            input: joined,
            cols: vec![
                (Col::ITER, Col::OUTER),
                (Col::POS, Col::POS),
                (Col::ITEM, Col::ITEM),
            ],
        }))
    }

    /// Apply one predicate to a sequence encoding.
    pub(crate) fn apply_predicate(&mut self, q: OpId, pred: &Expr) -> CResult {
        // Positional predicates: integer literals and fn:last().
        match pred {
            Expr::IntLit(n) => return self.positional_predicate(q, Positional::At(*n)),
            Expr::Call { name, args } if name == "last" && args.is_empty() => {
                return self.positional_predicate(q, Positional::Last)
            }
            _ => {}
        }
        // General predicate: evaluate per context row, keep rows whose
        // predicate is true (EBV). When the predicate observes the focus
        // position (`position()`/`last()`), the dense per-iteration rank is
        // materialized and bound as pseudo-variables; otherwise the focus
        // scope iterates in arbitrary order.
        let needs_position = uses_focus_position(pred);
        let ranked = if needs_position {
            self.dag.add(Op::RowNum {
                input: q,
                new: Col::POS1,
                order: vec![SortKey::asc(Col::POS)],
                part: Some(Col::ITER),
            })
        } else {
            q
        };
        let qv = self.dag.add(Op::RowId {
            input: ranked,
            new: Col::BIND,
        });
        let inner_loop = self.dag.add(Op::Project {
            input: qv,
            cols: vec![(Col::ITER, Col::BIND)],
        });
        let map = self.dag.add(Op::Project {
            input: qv,
            cols: vec![(Col::OUTER, Col::ITER), (Col::INNER, Col::BIND)],
        });
        let focus_item = self.dag.add(Op::Project {
            input: qv,
            cols: vec![(Col::ITER, Col::BIND), (Col::ITEM, Col::ITEM)],
        });
        let focus_pos = self.dag.add(Op::Attach {
            input: focus_item,
            col: Col::POS,
            value: AValue::Int(1),
        });
        let focus = self.canonical(focus_pos);

        self.frames.push(Frame {
            loop_op: inner_loop,
            map_op: Some(map),
        });
        self.depth += 1;
        self.bind_var(".", self.depth, focus);
        if needs_position {
            // position(): the focus rank; last(): the focus sequence size.
            let pos_item = self.dag.add(Op::Project {
                input: qv,
                cols: vec![(Col::ITER, Col::BIND), (Col::ITEM, Col::POS1)],
            });
            let pos_enc0 = self.dag.add(Op::Attach {
                input: pos_item,
                col: Col::POS,
                value: AValue::Int(1),
            });
            let pos_enc = self.canonical(pos_enc0);
            self.bind_var(" position", self.depth, pos_enc);

            let counts = self.dag.add(Op::Aggr {
                input: q,
                kind: exrquy_algebra::AggrKind::Count,
                new: Col::RES,
                arg: None,
                part: Some(Col::ITER),
            });
            let counts_renamed = self.dag.add(Op::Project {
                input: counts,
                cols: vec![(Col::ITER1, Col::ITER), (Col::RES, Col::RES)],
            });
            let joined = self.dag.add(Op::EquiJoin {
                l: qv,
                r: counts_renamed,
                lcol: Col::ITER,
                rcol: Col::ITER1,
            });
            let last_item = self.dag.add(Op::Project {
                input: joined,
                cols: vec![(Col::ITER, Col::BIND), (Col::ITEM, Col::RES)],
            });
            let last_enc0 = self.dag.add(Op::Attach {
                input: last_item,
                col: Col::POS,
                value: AValue::Int(1),
            });
            let last_enc = self.canonical(last_enc0);
            self.bind_var(" last", self.depth, last_enc);
        }
        let truth = self.compile_truth(pred);
        if needs_position {
            self.unbind_var(" last");
            self.unbind_var(" position");
        }
        self.unbind_var(".");
        self.depth -= 1;
        self.frames.pop();
        let keep = truth?; // [iter] of satisfied context rows (= bind ids)

        let keep_renamed = self.dag.add(Op::Project {
            input: keep,
            cols: vec![(Col::ITER1, Col::ITER)],
        });
        let joined = self.dag.add(Op::EquiJoin {
            l: qv,
            r: keep_renamed,
            lcol: Col::BIND,
            rcol: Col::ITER1,
        });
        Ok(self.canonical(joined))
    }

    fn positional_predicate(&mut self, q: OpId, which: Positional) -> CResult {
        // Dense per-iteration rank over whatever pos order the sequence
        // carries (arbitrary pos ⇒ an arbitrary-but-consistent pick, the
        // admissible nondeterminism of unordered contexts; cf. the paper's
        // discussion of `unordered { $t//c[2] }`).
        let ranked = self.dag.add(Op::RowNum {
            input: q,
            new: Col::POS1,
            order: vec![SortKey::asc(Col::POS)],
            part: Some(Col::ITER),
        });
        let selected = match which {
            Positional::At(n) => {
                let with_n = self.dag.add(Op::Attach {
                    input: ranked,
                    col: Col::ITEM1,
                    value: AValue::Int(n),
                });
                let cmp = self.dag.add(Op::Fun {
                    input: with_n,
                    new: Col::RES,
                    kind: FunKind::Eq,
                    args: vec![Col::POS1, Col::ITEM1],
                });
                self.dag.add(Op::Select {
                    input: cmp,
                    col: Col::RES,
                })
            }
            Positional::Last => {
                let counts = self.dag.add(Op::Aggr {
                    input: ranked,
                    kind: AggrKind::Count,
                    new: Col::ITEM1,
                    arg: None,
                    part: Some(Col::ITER),
                });
                let counts_renamed = self.dag.add(Op::Project {
                    input: counts,
                    cols: vec![(Col::ITER1, Col::ITER), (Col::ITEM1, Col::ITEM1)],
                });
                let joined = self.dag.add(Op::EquiJoin {
                    l: ranked,
                    r: counts_renamed,
                    lcol: Col::ITER,
                    rcol: Col::ITER1,
                });
                let cmp = self.dag.add(Op::Fun {
                    input: joined,
                    new: Col::RES,
                    kind: FunKind::Eq,
                    args: vec![Col::POS1, Col::ITEM1],
                });
                self.dag.add(Op::Select {
                    input: cmp,
                    col: Col::RES,
                })
            }
        };
        Ok(self.canonical(selected))
    }
}

enum Positional {
    At(i64),
    Last,
}

/// Does `pred` call `position()`/`last()` against *this* focus (i.e. not
/// inside a nested predicate, which establishes its own focus)?
fn uses_focus_position(e: &Expr) -> bool {
    match e {
        Expr::Call { name, args } if (name == "position" || name == "last") && args.is_empty() => {
            true
        }
        // Nested predicates re-focus; don't descend into them.
        Expr::PathStep { input, .. } => uses_focus_position(input),
        Expr::Filter { input, .. } => uses_focus_position(input),
        Expr::PathSeq { input, .. } => uses_focus_position(input),
        other => {
            let mut found = false;
            other.for_each_child(|c| {
                if uses_focus_position(c) {
                    found = true;
                }
            });
            found
        }
    }
}
