//! FLWOR compilation: variable binding (Rules BIND / BIND#), `where`
//! restriction, `order by`, and the join recognition of \[9\].

use crate::{CResult, CompileError, Compiler, Frame};
use exrquy_algebra::{AValue, Col, FunKind, Op, OpId, SortKey};
use exrquy_frontend::{BinOp, Clause, Expr, OrderSpec};

/// Flatten a (possibly `fn:unordered`-wrapped) `and`-conjunction into its
/// conjuncts.
fn split_conjuncts(e: &Expr) -> Vec<&Expr> {
    match e {
        Expr::Unordered(inner) => split_conjuncts(inner),
        Expr::Binary {
            op: BinOp::And,
            l,
            r,
        } => {
            let mut v = split_conjuncts(l);
            v.extend(split_conjuncts(r));
            v
        }
        other => vec![other],
    }
}

/// Rebuild an `and`-conjunction (None when empty).
fn conjoin(mut es: Vec<Expr>) -> Option<Expr> {
    let first = if es.is_empty() {
        return None;
    } else {
        es.remove(0)
    };
    Some(
        es.into_iter()
            .fold(first, |acc, e| Expr::binary(BinOp::And, acc, e)),
    )
}

/// Bookkeeping for one pushed `for` scope.
pub(crate) struct ForScope {
    var: String,
    pos_var: Option<String>,
    map: OpId,
}

impl Compiler<'_> {
    pub(crate) fn compile_flwor(&mut self, e: &Expr) -> CResult {
        let Expr::Flwor {
            clauses,
            order_by,
            reordered,
            ret,
        } = e
        else {
            return Err(CompileError::new(
                exrquy_diag::ErrorCode::XPST0003,
                "compile_flwor on non-FLWOR",
            ));
        };
        if order_by.is_empty() {
            self.compile_clauses(clauses, ret, *reordered)
        } else {
            self.compile_flwor_order_by(clauses, order_by, ret)
        }
    }

    /// Recursive clause processing; each `for` wraps the recursive result
    /// with its one-level `iter→seq` mapping (the
    /// `%pos1:⟨bind,pos⟩‖iter1` of Figure 6).
    fn compile_clauses(&mut self, clauses: &[Clause], ret: &Expr, reordered: bool) -> CResult {
        let Some((first, rest)) = clauses.split_first() else {
            return self.compile(ret);
        };
        match first {
            Clause::Let { var, expr } => {
                // Compile at the variable's own (hoisted) depth so that
                // loop-invariant lets are evaluated once.
                let dq = self.depth_of(expr)?;
                let q = self.at_depth(dq, |c| c.compile(expr))?;
                self.bind_var(var, dq, q);
                let r = self.compile_clauses(rest, ret, reordered);
                self.unbind_var(var);
                r
            }
            Clause::Where(cond) => {
                let t = self.compile_truth(cond)?;
                self.with_loop(t, |c| c.compile_clauses(rest, ret, reordered))
            }
            Clause::For { var, pos_var, seq } => {
                // Join recognition: `for $x in e1 … where a ◦ b …` with the
                // comparison splitting on $x compiles to a theta-join.
                // Intervening `let` clauses are skipped (XQuery is pure, so
                // hoisting the `where` over them preserves semantics)
                // provided the condition does not reference the let-bound
                // variables — the pattern of XMark Q9.
                if pos_var.is_none() {
                    let mut k = 0;
                    let mut let_vars: Vec<&str> = Vec::new();
                    while let Some(Clause::Let { var: lv, .. }) = rest.get(k) {
                        let_vars.push(lv);
                        k += 1;
                    }
                    if let Some(Clause::Where(cond)) = rest.get(k) {
                        let cond_fv = cond.free_vars();
                        if !cond_fv.iter().any(|v| let_vars.contains(&v.as_str())) {
                            // Conjunctive conditions: fuse one comparison
                            // conjunct into the join, keep the rest as an
                            // ordinary where after the fused frame.
                            let conjuncts = split_conjuncts(cond);
                            for (ci, fuse_cond) in conjuncts.iter().enumerate() {
                                // Remaining clauses: the lets, the residual
                                // conjuncts (as a where), then the rest.
                                let mut remaining: Vec<Clause> = rest[..k].to_vec();
                                let residual: Vec<Expr> = conjuncts
                                    .iter()
                                    .enumerate()
                                    .filter(|&(j, _)| j != ci)
                                    .map(|(_, e)| (*e).clone())
                                    .collect();
                                if let Some(residual_cond) = conjoin(residual) {
                                    remaining.push(Clause::Where(residual_cond));
                                }
                                remaining.extend_from_slice(&rest[k + 1..]);
                                if let Some(fused) = self.try_fused_for(
                                    var, seq, fuse_cond, &remaining, ret, reordered,
                                )? {
                                    return Ok(fused);
                                }
                            }
                        }
                    }
                }
                let scope = self.push_for_frame(var, pos_var.clone(), seq, reordered)?;
                let r = self.compile_clauses(rest, ret, reordered);
                self.pop_for_frame(&scope);
                let qr = r?;
                Ok(self.map_back(qr, scope.map))
            }
        }
    }

    /// Rule BIND (ordered) / Rule BIND# (unordered or re-sorted FLWOR):
    /// materialize the bindings of a `for` variable and open its frame.
    pub(crate) fn push_for_frame(
        &mut self,
        var: &str,
        pos_var: Option<String>,
        seq: &Expr,
        force_unordered_bind: bool,
    ) -> Result<ForScope, CompileError> {
        let qb = self.compile(seq)?;
        // Positional variable: dense rank over the binding sequence's pos
        // order ("$p still consistently reflects the position in the
        // binding sequence", §2.1 — even when pos itself is arbitrary).
        let ranked = if pos_var.is_some() {
            self.dag.add(Op::RowNum {
                input: qb,
                new: Col::POS1,
                order: vec![SortKey::asc(Col::POS)],
                part: Some(Col::ITER),
            })
        } else {
            qb
        };
        let qv = if self.ordered() && !force_unordered_bind {
            // % bind:⟨iter,pos⟩ — interaction 3©, sequence order
            // determines iteration order.
            self.dag.add(Op::RowNum {
                input: ranked,
                new: Col::BIND,
                order: vec![SortKey::asc(Col::ITER), SortKey::asc(Col::POS)],
                part: None,
            })
        } else {
            // # bind — Rule BIND#.
            self.dag.add(Op::RowId {
                input: ranked,
                new: Col::BIND,
            })
        };
        let inner_loop = self.dag.add(Op::Project {
            input: qv,
            cols: vec![(Col::ITER, Col::BIND)],
        });
        let map = self.dag.add(Op::Project {
            input: qv,
            cols: vec![(Col::OUTER, Col::ITER), (Col::INNER, Col::BIND)],
        });
        let var_item = self.dag.add(Op::Project {
            input: qv,
            cols: vec![(Col::ITER, Col::BIND), (Col::ITEM, Col::ITEM)],
        });
        let var_pos = self.dag.add(Op::Attach {
            input: var_item,
            col: Col::POS,
            value: AValue::Int(1),
        });
        let var_enc = self.canonical(var_pos);

        self.frames.push(Frame {
            loop_op: inner_loop,
            map_op: Some(map),
        });
        self.depth += 1;
        self.bind_var(var, self.depth, var_enc);
        if let Some(p) = &pos_var {
            let p_item = self.dag.add(Op::Project {
                input: qv,
                cols: vec![(Col::ITER, Col::BIND), (Col::ITEM, Col::POS1)],
            });
            let p_pos = self.dag.add(Op::Attach {
                input: p_item,
                col: Col::POS,
                value: AValue::Int(1),
            });
            let p_enc = self.canonical(p_pos);
            self.bind_var(p, self.depth, p_enc);
        }
        Ok(ForScope {
            var: var.to_string(),
            pos_var,
            map,
        })
    }

    pub(crate) fn pop_for_frame(&mut self, scope: &ForScope) {
        if let Some(p) = &scope.pos_var {
            self.unbind_var(p);
        }
        self.unbind_var(&scope.var);
        self.depth -= 1;
        self.frames.pop();
    }

    /// Map an inner-frame result back one level: interaction 4©
    /// (iteration order determines sequence order) — the `%` that persists
    /// under both ordering modes (Figure 6b) and is only removed by column
    /// dependency analysis.
    pub(crate) fn map_back(&mut self, qr: OpId, map: OpId) -> OpId {
        let renamed = self.dag.add(Op::Project {
            input: qr,
            cols: vec![
                (Col::ITER1, Col::ITER),
                (Col::POS, Col::POS),
                (Col::ITEM, Col::ITEM),
            ],
        });
        let joined = self.dag.add(Op::EquiJoin {
            l: renamed,
            r: map,
            lcol: Col::ITER1,
            rcol: Col::INNER,
        });
        let rn = self.dag.add(Op::RowNum {
            input: joined,
            new: Col::POS1,
            order: vec![SortKey::asc(Col::ITER1), SortKey::asc(Col::POS)],
            part: Some(Col::OUTER),
        });
        self.dag.add(Op::Project {
            input: rn,
            cols: vec![
                (Col::ITER, Col::OUTER),
                (Col::POS, Col::POS1),
                (Col::ITEM, Col::ITEM),
            ],
        })
    }

    // ------------------------------------------------ join recognition

    /// Try to compile `for $x in seq where cond …` as a theta-join \[9\].
    /// Applicable when `cond` is a comparison with exactly one side
    /// depending on `$x`, the `$x` side depends on nothing deeper than the
    /// top level besides `$x`, and the binding sequence is loop-invariant
    /// (depth 0). Returns `None` when the pattern does not apply.
    fn try_fused_for(
        &mut self,
        var: &str,
        seq: &Expr,
        cond: &Expr,
        rest: &[Clause],
        ret: &Expr,
        reordered: bool,
    ) -> Result<Option<OpId>, CompileError> {
        // Strip order-irrelevant wrappers from the condition.
        let mut c = cond;
        loop {
            match c {
                Expr::Unordered(inner) => c = inner,
                Expr::OrderingScope { expr, .. } => c = expr,
                _ => break,
            }
        }
        let Expr::Binary { op, l, r } = c else {
            return Ok(None);
        };
        if !(op.is_general_comparison() || crate::truth::is_value_comparison(*op)) {
            return Ok(None);
        }
        let strip = |e: &Expr| -> Expr {
            let mut e = e.clone();
            loop {
                match e {
                    Expr::Unordered(inner) => e = *inner,
                    other => return other,
                }
            }
        };
        let (l, r) = (strip(l), strip(r));
        let l_vars = l.free_vars();
        let r_vars = r.free_vars();
        let l_uses = l_vars.iter().any(|v| v == var);
        let r_uses = r_vars.iter().any(|v| v == var);
        let (x_side, o_side, x_is_left) = match (l_uses, r_uses) {
            (true, false) => (&l, &r, true),
            (false, true) => (&r, &l, false),
            _ => return Ok(None),
        };
        // The $x side may only reference $x and top-level (depth 0) names.
        let x_side_vars = x_side.free_vars();
        for v in &x_side_vars {
            if v == var {
                continue;
            }
            let entry = if v == "." {
                match self.env.get(".").and_then(|s| s.last()) {
                    Some(e) => e,
                    None => return Ok(None),
                }
            } else {
                match self.env.get(v).and_then(|s| s.last()) {
                    Some(e) => e,
                    None => return Ok(None),
                }
            };
            if entry.depth != 0 {
                return Ok(None);
            }
        }
        // The binding sequence must be loop-invariant (hoistable to 0).
        if self.depth_of(seq)? != 0 {
            return Ok(None);
        }

        // ---- binding candidates, once, at depth 0
        let qb = self.at_depth(0, |c| c.compile(seq))?;
        let qbv = self.dag.add(Op::RowId {
            input: qb,
            new: Col::BIND,
        });

        // ---- $x side over the candidate relation (synthetic frame)
        let cand_loop = self.dag.add(Op::Project {
            input: qbv,
            cols: vec![(Col::ITER, Col::BIND)],
        });
        let cand_map = self.dag.add(Op::Project {
            input: qbv,
            cols: vec![(Col::OUTER, Col::ITER), (Col::INNER, Col::BIND)],
        });
        let x_item = self.dag.add(Op::Project {
            input: qbv,
            cols: vec![(Col::ITER, Col::BIND), (Col::ITEM, Col::ITEM)],
        });
        let x_pos = self.dag.add(Op::Attach {
            input: x_item,
            col: Col::POS,
            value: AValue::Int(1),
        });
        let x_enc = self.canonical(x_pos);

        let saved_frames = self.frames.clone();
        let saved_depth = self.depth;
        self.frames.truncate(1);
        self.frames.push(Frame {
            loop_op: cand_loop,
            map_op: Some(cand_map),
        });
        self.depth = 1;
        self.bind_var(var, 1, x_enc);
        let qx = self.compile(x_side);
        self.unbind_var(var);
        self.frames = saved_frames;
        self.depth = saved_depth;
        let qx = qx?;
        let sx = self.scalar(qx, Col::ITEM2, true); // [iter(=cand id), item2]
        let sx_renamed = self.dag.add(Op::Project {
            input: sx,
            cols: vec![(Col::BIND, Col::ITER), (Col::ITEM2, Col::ITEM2)],
        });

        // ---- other side at its own depth
        let d_other = self.depth_of(o_side)?;
        let qo = self.at_depth(d_other, |c| c.compile(o_side))?;
        let so = self.scalar(qo, Col::ITEM1, true); // [iter(d_other), item1]

        // ---- the theta-join (pred oriented as `other ◦' x`)
        let kind = crate::truth::comparison_fun(*op);
        let kind = if x_is_left { kind.mirror() } else { kind };
        let tj = self.dag.add(Op::ThetaJoin {
            l: so,
            r: sx_renamed,
            pred: vec![(Col::ITEM1, kind, Col::ITEM2)],
        });
        // tj: [iter(d_other), item1, bind, item2]
        let pairs0 = self.dag.add(Op::Project {
            input: tj,
            cols: vec![(Col::ITER, Col::ITER), (Col::BIND, Col::BIND)],
        });
        // Bring the other side's iteration up to the current depth.
        let pairs_at_d = match self.compose_maps(d_other, self.depth) {
            None => pairs0,
            Some(m) => {
                let renamed = self.dag.add(Op::Project {
                    input: pairs0,
                    cols: vec![(Col::ITER1, Col::ITER), (Col::BIND, Col::BIND)],
                });
                let joined = self.dag.add(Op::EquiJoin {
                    l: renamed,
                    r: m,
                    lcol: Col::ITER1,
                    rcol: Col::OUTER,
                });
                self.dag.add(Op::Project {
                    input: joined,
                    cols: vec![(Col::ITER, Col::INNER), (Col::BIND, Col::BIND)],
                })
            }
        };
        let pairs_live = self.restrict_to_loop(pairs_at_d);

        // ---- attach candidate pos/item, number the joined iterations
        let qbv_renamed = self.dag.add(Op::Project {
            input: qbv,
            cols: vec![
                (Col::ITER1, Col::BIND),
                (Col::POS, Col::POS),
                (Col::ITEM, Col::ITEM),
            ],
        });
        let full = self.dag.add(Op::EquiJoin {
            l: pairs_live,
            r: qbv_renamed,
            lcol: Col::BIND,
            rcol: Col::ITER1,
        });
        let qv = if self.ordered() && !reordered {
            // Binding order: outer iteration first, then the candidate's
            // position in the binding sequence (Rule BIND's order).
            self.dag.add(Op::RowNum {
                input: full,
                new: Col::POS1,
                order: vec![SortKey::asc(Col::ITER), SortKey::asc(Col::POS)],
                part: None,
            })
        } else {
            self.dag.add(Op::RowId {
                input: full,
                new: Col::POS1,
            })
        };
        let inner_loop = self.dag.add(Op::Project {
            input: qv,
            cols: vec![(Col::ITER, Col::POS1)],
        });
        let map = self.dag.add(Op::Project {
            input: qv,
            cols: vec![(Col::OUTER, Col::ITER), (Col::INNER, Col::POS1)],
        });
        let var_item = self.dag.add(Op::Project {
            input: qv,
            cols: vec![(Col::ITER, Col::POS1), (Col::ITEM, Col::ITEM)],
        });
        let var_pos = self.dag.add(Op::Attach {
            input: var_item,
            col: Col::POS,
            value: AValue::Int(1),
        });
        let var_enc = self.canonical(var_pos);

        self.frames.push(Frame {
            loop_op: inner_loop,
            map_op: Some(map),
        });
        self.depth += 1;
        self.bind_var(var, self.depth, var_enc);
        let r = self.compile_clauses(rest, ret, reordered);
        self.unbind_var(var);
        self.depth -= 1;
        self.frames.pop();
        let qr = r?;
        Ok(Some(self.map_back(qr, map)))
    }

    // ---------------------------------------------------------- order by

    /// FLWOR with `order by`: the tuple stream is generated in arbitrary
    /// order (all `for`s use Rule BIND#) and a single `%` sorts the result
    /// by the key values — order-indifference context (f) of §1.
    fn compile_flwor_order_by(
        &mut self,
        clauses: &[Clause],
        order_by: &[OrderSpec],
        ret: &Expr,
    ) -> CResult {
        let d0 = self.depth;
        let saved_d0_loop = self.frames[d0].loop_op;
        let mut scopes: Vec<ForScope> = Vec::new();
        let mut lets: Vec<String> = Vec::new();
        let mut result: Result<(), CompileError> = Ok(());
        for clause in clauses {
            match clause {
                Clause::For { var, pos_var, seq } => {
                    match self.push_for_frame(var, pos_var.clone(), seq, true) {
                        Ok(s) => scopes.push(s),
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
                Clause::Let { var, expr } => {
                    let dq = match self.depth_of(expr) {
                        Ok(d) => d,
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    };
                    match self.at_depth(dq, |c| c.compile(expr)) {
                        Ok(q) => {
                            self.bind_var(var, dq, q);
                            lets.push(var.clone());
                        }
                        Err(e) => {
                            result = Err(e);
                            break;
                        }
                    }
                }
                Clause::Where(cond) => match self.compile_truth(cond) {
                    Ok(t) => self.frames[self.depth].loop_op = t,
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                },
            }
        }

        let body = result.and_then(|()| {
            let df = self.depth;
            // Keys, one scalar per tuple, completed with "" for empty keys
            // so key-less tuples are not dropped.
            let mut keys: Vec<(Col, bool)> = Vec::new();
            let mut key_tables: Vec<OpId> = Vec::new();
            for (i, spec) in order_by.iter().enumerate() {
                let qk = self.compile(&spec.key)?;
                let sk = self.scalar(qk, Col::sort_key(i), true);
                let completed = self.complete_with_default(
                    sk,
                    Col::sort_key(i),
                    AValue::Str(std::sync::Arc::from("")),
                );
                keys.push((Col::sort_key(i), spec.descending));
                key_tables.push(completed);
            }
            let qr = self.compile(ret)?;
            // Single-shot mapping to the FLWOR's base depth.
            let mapped = match self.compose_maps(d0, df) {
                None => {
                    // No for clause: at most one tuple; sorting is a no-op.
                    return Ok(qr);
                }
                Some(m) => {
                    let renamed = self.dag.add(Op::Project {
                        input: qr,
                        cols: vec![
                            (Col::ITER1, Col::ITER),
                            (Col::POS, Col::POS),
                            (Col::ITEM, Col::ITEM),
                        ],
                    });
                    self.dag.add(Op::EquiJoin {
                        l: renamed,
                        r: m,
                        lcol: Col::ITER1,
                        rcol: Col::INNER,
                    })
                }
            };
            // Join the key values onto the result rows (by tuple id).
            let mut cur = mapped;
            for (i, kt) in key_tables.iter().enumerate() {
                let kr = self.dag.add(Op::Project {
                    input: *kt,
                    cols: vec![
                        (Col::sort_key_join(i), Col::ITER),
                        (Col::sort_key(i), Col::sort_key(i)),
                    ],
                });
                cur = self.dag.add(Op::EquiJoin {
                    l: cur,
                    r: kr,
                    lcol: Col::ITER1,
                    rcol: Col::sort_key_join(i),
                });
            }
            let mut sort: Vec<SortKey> = keys
                .iter()
                .map(|&(col, desc)| SortKey { col, desc })
                .collect();
            sort.push(SortKey::asc(Col::ITER1));
            sort.push(SortKey::asc(Col::POS));
            let rn = self.dag.add(Op::RowNum {
                input: cur,
                new: Col::POS1,
                order: sort,
                part: Some(Col::OUTER),
            });
            Ok(self.dag.add(Op::Project {
                input: rn,
                cols: vec![
                    (Col::ITER, Col::OUTER),
                    (Col::POS, Col::POS1),
                    (Col::ITEM, Col::ITEM),
                ],
            }))
        });

        // Unwind scopes and restore state regardless of errors.
        for var in lets.iter().rev() {
            self.unbind_var(var);
        }
        for scope in scopes.iter().rev() {
            self.pop_for_frame(scope);
        }
        self.frames[d0].loop_op = saved_d0_loop;
        body
    }

    /// Arithmetic, comparisons in value position, node comparisons,
    /// logic, node-set operations and ranges.
    pub(crate) fn compile_binary_unary(&mut self, e: &Expr) -> CResult {
        match e {
            Expr::Unary { op, expr } => {
                let q = self.compile(expr)?;
                match op {
                    exrquy_frontend::UnOp::Plus => Ok(q),
                    exrquy_frontend::UnOp::Minus => {
                        let s = self.scalar(q, Col::ITEM1, true);
                        let f = self.dag.add(Op::Fun {
                            input: s,
                            new: Col::RES,
                            kind: FunKind::UnaryMinus,
                            args: vec![Col::ITEM1],
                        });
                        Ok(self.singleton(f, Col::RES))
                    }
                }
            }
            Expr::Binary { op, l, r } => match op {
                BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::IDiv | BinOp::Mod => {
                    let kind = match op {
                        BinOp::Add => FunKind::Add,
                        BinOp::Sub => FunKind::Sub,
                        BinOp::Mul => FunKind::Mul,
                        BinOp::Div => FunKind::Div,
                        BinOp::IDiv => FunKind::IDiv,
                        BinOp::Mod => FunKind::Mod,
                        _ => unreachable!(),
                    };
                    self.scalar_binary(kind, l, r, true)
                }
                BinOp::Is => self.scalar_binary(FunKind::NodeIs, l, r, false),
                BinOp::Before => self.scalar_binary(FunKind::NodeBefore, l, r, false),
                BinOp::After => self.scalar_binary(FunKind::NodeAfter, l, r, false),
                BinOp::And | BinOp::Or => {
                    let t = self.compile_truth(e)?;
                    Ok(self.complete_bool(t))
                }
                op if op.is_general_comparison() || crate::truth::is_value_comparison(*op) => {
                    let t = self.compile_truth(e)?;
                    Ok(self.complete_bool(t))
                }
                BinOp::Union | BinOp::Intersect | BinOp::Except => {
                    self.compile_node_set_op(*op, l, r)
                }
                BinOp::To => {
                    // lo to hi: per-iteration integer range, ascending
                    // sequence order (the spec fixes it; no order freedom).
                    let ql = self.compile(l)?;
                    let qr = self.compile(r)?;
                    let sl = self.scalar(ql, Col::ITEM1, true);
                    let sr = self.scalar(qr, Col::ITEM2, true);
                    let sr_renamed = self.dag.add(Op::Project {
                        input: sr,
                        cols: vec![(Col::ITER1, Col::ITER), (Col::ITEM2, Col::ITEM2)],
                    });
                    let joined = self.dag.add(Op::EquiJoin {
                        l: sl,
                        r: sr_renamed,
                        lcol: Col::ITER,
                        rcol: Col::ITER1,
                    });
                    let expanded = self.dag.add(Op::Range {
                        input: joined,
                        lo: Col::ITEM1,
                        hi: Col::ITEM2,
                        new: Col::ITEM,
                    });
                    let numbered = self.dag.add(Op::RowNum {
                        input: expanded,
                        new: Col::POS,
                        order: vec![SortKey::asc(Col::ITEM)],
                        part: Some(Col::ITER),
                    });
                    Ok(self.canonical(numbered))
                }
                _ => unreachable!(),
            },
            other => Err(CompileError::new(
                exrquy_diag::ErrorCode::XPST0003,
                format!("compile_binary_unary on {other:?}"),
            )),
        }
    }

    /// Per-iteration scalar function of two sequences (arithmetic, node
    /// comparisons): join the singleton views on `iter`.
    fn scalar_binary(&mut self, kind: FunKind, l: &Expr, r: &Expr, atomize: bool) -> CResult {
        let ql = self.compile(l)?;
        let qr = self.compile(r)?;
        let sl = self.scalar(ql, Col::ITEM1, atomize);
        let sr = self.scalar(qr, Col::ITEM2, atomize);
        let sr_renamed = self.dag.add(Op::Project {
            input: sr,
            cols: vec![(Col::ITER1, Col::ITER), (Col::ITEM2, Col::ITEM2)],
        });
        let joined = self.dag.add(Op::EquiJoin {
            l: sl,
            r: sr_renamed,
            lcol: Col::ITER,
            rcol: Col::ITER1,
        });
        let f = self.dag.add(Op::Fun {
            input: joined,
            new: Col::RES,
            kind,
            args: vec![Col::ITEM1, Col::ITEM2],
        });
        Ok(self.singleton(f, Col::RES))
    }

    /// Node-set operations: `∪̇`/`⋈`/`\` + δ, then doc-order `pos`
    /// derivation — `%` under ordered (interaction 1©), free `#` under
    /// unordered. §4.2's "trading `|` for `,`" falls out when column
    /// dependency analysis later removes the `#`'s input ordering needs.
    fn compile_node_set_op(&mut self, op: BinOp, l: &Expr, r: &Expr) -> CResult {
        let ql = self.compile(l)?;
        let qr = self.compile(r)?;
        let il = self.project_iter_item(ql);
        let ir = self.project_iter_item(qr);
        let combined = match op {
            BinOp::Union => self.dag.add(Op::Union { l: il, r: ir }),
            BinOp::Intersect => {
                let renamed = self.dag.add(Op::Project {
                    input: ir,
                    cols: vec![(Col::ITER1, Col::ITER), (Col::ITEM1, Col::ITEM)],
                });
                let joined = self.dag.add(Op::EquiJoin {
                    l: il,
                    r: renamed,
                    lcol: Col::ITER,
                    rcol: Col::ITER1,
                });
                let same = self.dag.add(Op::Fun {
                    input: joined,
                    new: Col::RES,
                    kind: FunKind::NodeIs,
                    args: vec![Col::ITEM, Col::ITEM1],
                });
                let sel = self.dag.add(Op::Select {
                    input: same,
                    col: Col::RES,
                });
                self.project_iter_item(sel)
            }
            BinOp::Except => {
                let renamed = self.dag.add(Op::Project {
                    input: ir,
                    cols: vec![(Col::ITER1, Col::ITER), (Col::ITEM1, Col::ITEM)],
                });
                self.dag.add(Op::Difference {
                    l: il,
                    r: renamed,
                    on: vec![(Col::ITER, Col::ITER1), (Col::ITEM, Col::ITEM1)],
                })
            }
            _ => unreachable!(),
        };
        let dedup = self.dag.add(Op::Distinct { input: combined });
        let q = if self.ordered() {
            let rn = self.dag.add(Op::RowNum {
                input: dedup,
                new: Col::POS,
                order: vec![SortKey::asc(Col::ITEM)],
                part: Some(Col::ITER),
            });
            self.canonical(rn)
        } else {
            let ri = self.dag.add(Op::RowId {
                input: dedup,
                new: Col::POS,
            });
            self.canonical(ri)
        };
        Ok(q)
    }
}
