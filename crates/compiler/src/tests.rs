//! Compiler unit tests: plan shapes (these check the paper's *rules*;
//! end-to-end result correctness is covered by the integration tests in
//! the workspace root, which run the plans through the engine).

use crate::{CompiledPlan, Compiler};
use exrquy_algebra::{stats, Op, PlanStats};
use exrquy_frontend::{normalize, parse_module};
use exrquy_xml::Catalog;

fn compile(q: &str) -> CompiledPlan {
    let m = parse_module(q).unwrap_or_else(|e| panic!("parse: {e}"));
    let m = normalize(&m);
    let catalog = Catalog::new();
    Compiler::new(&catalog)
        .compile_module(&m)
        .unwrap_or_else(|e| panic!("compile `{q}`: {e}"))
}

fn stats_of(p: &CompiledPlan) -> PlanStats {
    PlanStats::of(&p.dag, p.root)
}

#[test]
fn literal_compiles_to_attached_constants() {
    let p = compile("42");
    let s = stats_of(&p);
    assert!(s.count("attach") >= 2); // pos and item
    assert_eq!(s.rownums(), 0);
}

#[test]
fn loc_rule_ordered_vs_unordered() {
    // Rule LOC: under ordered the step carries % pos:⟨item⟩‖iter;
    // Rule LOC#: under unordered it carries # pos.
    let ordered = compile(r#"doc("x.xml")/site"#);
    let s = stats_of(&ordered);
    assert_eq!(s.steps(), 1);
    assert_eq!(s.rownums(), 1);
    assert_eq!(s.rowids(), 0);

    let unordered = compile(r#"declare ordering unordered; doc("x.xml")/site"#);
    let s = stats_of(&unordered);
    assert_eq!(s.steps(), 1);
    assert_eq!(s.rownums(), 0);
    assert_eq!(s.rowids(), 1);
}

#[test]
fn unordered_scope_switches_rules_locally() {
    // ordered outside, unordered inside the scope.
    let p = compile(r#"(doc("x.xml")/a, unordered { doc("x.xml")/b })"#);
    let s = stats_of(&p);
    // a-step gets %, b-step gets #, plus the sequence-concat %.
    assert_eq!(s.steps(), 2);
    assert!(s.rownums() >= 2); // LOC% for /a + concat %
    assert!(s.rowids() >= 1); // LOC# for /b
}

#[test]
fn bind_rule_ordered_vs_unordered() {
    let ordered = compile("for $x in (1,2,3) return $x");
    // BIND: % bind:⟨iter,pos⟩ appears; plus the iter→seq map-back %.
    let has_bind_rownum = ordered
        .dag
        .reachable(ordered.root)
        .iter()
        .any(|&id| matches!(ordered.dag.op(id), Op::RowNum { new, .. } if *new == exrquy_algebra::Col::BIND));
    assert!(has_bind_rownum);

    let unordered = compile("declare ordering unordered; for $x in (1,2,3) return $x");
    let has_bind_rowid = unordered
        .dag
        .reachable(unordered.root)
        .iter()
        .any(|&id| matches!(unordered.dag.op(id), Op::RowId { new, .. } if *new == exrquy_algebra::Col::BIND));
    assert!(has_bind_rowid);
    // The iter→seq map-back % persists even under unordered (Fig. 6b).
    assert!(stats_of(&unordered).rownums() >= 1);
}

#[test]
fn fn_unordered_rule_inserts_rowid() {
    let p = compile("fn:unordered((1,2,3))");
    let s = stats_of(&p);
    assert!(s.rowids() >= 1);
}

#[test]
fn fn_count_gets_unordered_argument() {
    // Normalization wraps the argument; compilation turns that into #pos.
    let p = compile(r#"fn:count(doc("x.xml")//item)"#);
    let s = stats_of(&p);
    assert!(s.rowids() >= 1, "{s}");
    assert!(s.count("aggr") >= 1);
}

#[test]
fn join_recognition_produces_theta_join() {
    // The Q11 pattern: inner for + where with a comparison splitting into
    // an $i-dependent side and an $i-free side.
    let q = r#"
        let $auction := doc("auction.xml")
        for $p in $auction/site/people/person
        let $l := for $i in $auction/site/open_auctions/open_auction/initial
                  where $p/profile/@income > 5000 * $i
                  return $i
        return fn:count($l)"#;
    let p = compile(q);
    let s = stats_of(&p);
    assert_eq!(s.count("⋈θ"), 1, "{s}");
    // No Cartesian blow-up of the two iteration spaces: the only crosses
    // allowed are the doc-constant ones.
    assert!(s.count("×") <= 1, "{s}");
}

#[test]
fn join_recognition_fuses_one_conjunct() {
    // `where a ◦ b and <residual>`: the comparison fuses into a theta
    // join; the residual survives as a selection.
    let q = r#"
        let $auction := doc("auction.xml")
        for $p in $auction/site/people/person
        let $l := for $t in $auction/site/closed_auctions/closed_auction
                  where $t/buyer/@person = $p/@id and $t/price > 100
                  return $t
        return fn:count($l)"#;
    let p = compile(q);
    let s = stats_of(&p);
    assert_eq!(s.count("⋈θ"), 1, "{s}");
    assert!(s.count("×") <= 1, "{s}");
}

#[test]
fn quantifier_and_general_comparison_compile() {
    let p = compile("some $x in (1,2,3) satisfies $x = 2");
    let s = stats_of(&p);
    assert!(s.count("⋈") >= 1);
    let p = compile("every $x in (1,2) satisfies $x < 3");
    assert!(stats_of(&p).count("\\") >= 1);
}

#[test]
fn node_set_ops_ordered_vs_unordered() {
    // §4.2: under unordered the union's doc-order % becomes a free #.
    let ordered = compile(r#"doc("x.xml")//c | doc("x.xml")//d"#);
    let u = compile(r#"declare ordering unordered; doc("x.xml")//c | doc("x.xml")//d"#);
    assert!(stats_of(&ordered).rownums() > stats_of(&u).rownums());
    assert!(stats_of(&u).rowids() > 0);
}

#[test]
fn order_by_uses_unordered_bindings() {
    let p = compile("for $x in (3,1,2) order by $x descending return $x");
    // BIND# for the binding (reordered flag), one % for the sort.
    let has_bind_rowid = p.dag.reachable(p.root).iter().any(
        |&id| matches!(p.dag.op(id), Op::RowId { new, .. } if *new == exrquy_algebra::Col::BIND),
    );
    assert!(has_bind_rowid);
    assert!(stats_of(&p).rownums() >= 1);
}

#[test]
fn constructors_compile() {
    let p = compile(r#"for $x at $p in ("a","b") return <e pos="{ $p }">{ $x }</e>"#);
    let s = stats_of(&p);
    assert!(s.count("elem") == 1);
    assert!(s.count("attr") == 1);
}

#[test]
fn xmark_like_queries_compile() {
    for q in [
        r#"let $a := doc("auction.xml") return for $b in $a/site/people/person[@id = "person0"] return $b/name/text()"#,
        r#"let $a := doc("auction.xml") return fn:count($a/site/regions//item)"#,
        r#"let $a := doc("auction.xml") for $p in $a/site/people/person
           let $c := for $t in $a/site/closed_auctions/closed_auction
                     where $t/buyer/@person = $p/@id return $t
           return <item person="{ $p/name/text() }">{ fn:count($c) }</item>"#,
        r#"for $x in doc("a.xml")//item where $x/@id = "i1" return ($x, $x)"#,
        r#"if (fn:empty(doc("a.xml")//z)) then "none" else "some""#,
    ] {
        let _ = compile(q);
    }
}

#[test]
fn unbound_variable_is_an_error() {
    let m = normalize(&parse_module("$nope").unwrap());
    let catalog = Catalog::new();
    let err = Compiler::new(&catalog).compile_module(&m).unwrap_err();
    assert!(err.message.contains("unbound variable"));
    assert_eq!(err.code, exrquy_diag::ErrorCode::XPST0008);
}

#[test]
fn costly_rownum_census() {
    let ordered = compile(r#"doc("x.xml")/a/b/c"#);
    let unordered = compile(r#"declare ordering unordered; doc("x.xml")/a/b/c"#);
    assert!(
        stats::costly_rownums(&ordered.dag, ordered.root)
            > stats::costly_rownums(&unordered.dag, unordered.root)
    );
}

#[test]
fn compiled_plans_lower_to_flattened_programs() {
    // A where-clause produces a fun→σ(→π) run: the lowered program must
    // fuse it, keep slots topologically ordered, and publish the root in
    // the last slot.
    let p = compile(r#"for $x in (1, 2, 3, 4) where $x > 2 return $x"#);
    let fused = p.lower(true);
    assert_eq!(fused.root as usize, fused.len() - 1);
    assert!(fused.fused_chains >= 1, "{}", fused.render(&p.dag));
    for (i, op) in fused.ops.iter().enumerate() {
        let args = match op {
            exrquy_algebra::PhysOp::Op { args, .. } => args.clone(),
            exrquy_algebra::PhysOp::Fused { input, .. } => vec![*input],
        };
        assert!(args.iter().all(|&a| (a as usize) < i), "slot {i} operands");
    }
    // The unfused lowering covers the same operators, one slot each.
    let flat = p.lower(false);
    assert_eq!(flat.fused_chains, 0);
    assert_eq!(
        flat.len(),
        fused.len() + fused.fused_ops - fused.fused_chains
    );
    assert_eq!(
        flat.ops.last().unwrap().out_id(),
        fused.ops.last().unwrap().out_id()
    );
}
