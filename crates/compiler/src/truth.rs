//! Boolean contexts: effective boolean values, quantifiers, and the
//! existential general comparisons.
//!
//! `compile_truth(e)` produces a plan for the *set of live iterations in
//! which `e`'s EBV is true* — a single-column `[iter]` table. `where`,
//! `if`, predicates and quantifiers consume this form directly; when a
//! boolean expression is used as a value, [`Compiler::complete_bool`]
//! turns the iteration set back into a `true`/`false` singleton sequence
//! per live iteration.
//!
//! General comparisons have existential semantics over both operand
//! sequences; per the paper's QUANT-based normalization their operand
//! *order* is unobservable, which is why [`Compiler::comparison_pairs`]
//! builds them from plain joins over unordered `iter|item` views.

use crate::{CResult, CompileError, Compiler, Frame};
use exrquy_algebra::{AValue, AggrKind, Col, FunKind, Op, OpId};
use exrquy_frontend::{BinOp, Expr, Quant};

impl Compiler<'_> {
    /// Iterations (of the current loop) in which `e` is true.
    pub(crate) fn compile_truth(&mut self, e: &Expr) -> CResult {
        match e {
            Expr::Unordered(inner) => self.compile_truth(inner),
            Expr::OrderingScope { mode, expr } => {
                self.mode.push(*mode);
                let r = self.compile_truth(expr);
                self.mode.pop();
                r
            }
            Expr::Binary {
                op: BinOp::And,
                l,
                r,
            } => {
                let tl = self.compile_truth(l)?;
                let tr = self.compile_truth(r)?;
                let renamed = self.dag.add(Op::Project {
                    input: tr,
                    cols: vec![(Col::ITER1, Col::ITER)],
                });
                let both = self.dag.add(Op::EquiJoin {
                    l: tl,
                    r: renamed,
                    lcol: Col::ITER,
                    rcol: Col::ITER1,
                });
                Ok(self.dag.add(Op::Project {
                    input: both,
                    cols: vec![(Col::ITER, Col::ITER)],
                }))
            }
            Expr::Binary {
                op: BinOp::Or,
                l,
                r,
            } => {
                let tl = self.compile_truth(l)?;
                let tr = self.compile_truth(r)?;
                let u = self.dag.add(Op::Union { l: tl, r: tr });
                Ok(self.dag.add(Op::Distinct { input: u }))
            }
            Expr::Binary { op, l, r } if op.is_general_comparison() || is_value_comparison(*op) => {
                let pairs = self.comparison_pairs(*op, l, r)?;
                let projected = self.dag.add(Op::Project {
                    input: pairs,
                    cols: vec![(Col::ITER, Col::ITER)],
                });
                Ok(self.dag.add(Op::Distinct { input: projected }))
            }
            Expr::Call { name, args } if name == "exists" && args.len() == 1 => {
                let q = self.compile(&args[0])?;
                let p = self.dag.add(Op::Project {
                    input: q,
                    cols: vec![(Col::ITER, Col::ITER)],
                });
                Ok(self.dag.add(Op::Distinct { input: p }))
            }
            Expr::Call { name, args } if name == "empty" && args.len() == 1 => {
                let ex = self.compile_truth(&Expr::Call {
                    name: "exists".into(),
                    args: args.clone(),
                })?;
                Ok(self.loop_minus(ex))
            }
            Expr::Call { name, args } if name == "not" && args.len() == 1 => {
                let t = self.compile_truth(&args[0])?;
                Ok(self.loop_minus(t))
            }
            Expr::Call { name, args } if name == "boolean" && args.len() == 1 => {
                self.compile_truth(&args[0])
            }
            Expr::Call { name, args } if name == "true" && args.is_empty() => Ok(self.cur_loop()),
            Expr::Call { name, args } if name == "false" && args.is_empty() => {
                Ok(self.dag.add(Op::Lit {
                    cols: vec![Col::ITER],
                    rows: vec![],
                }))
            }
            Expr::Quantified {
                quant,
                var,
                domain,
                satisfies,
            } => self.compile_quantifier(*quant, var, domain, satisfies),
            // Generic: evaluate and take the per-iteration EBV.
            other => {
                let q = self.compile(other)?;
                let ebv = self.dag.add(Op::Aggr {
                    input: q,
                    kind: AggrKind::Ebv,
                    new: Col::RES,
                    arg: Some(Col::ITEM),
                    part: Some(Col::ITER),
                });
                let sel = self.dag.add(Op::Select {
                    input: ebv,
                    col: Col::RES,
                });
                Ok(self.dag.add(Op::Project {
                    input: sel,
                    cols: vec![(Col::ITER, Col::ITER)],
                }))
            }
        }
    }

    /// `loop \ t` — the live iterations not in `t`.
    pub(crate) fn loop_minus(&mut self, t: OpId) -> OpId {
        let lp = self.cur_loop();
        let renamed = self.dag.add(Op::Project {
            input: t,
            cols: vec![(Col::ITER1, Col::ITER)],
        });
        self.dag.add(Op::Difference {
            l: lp,
            r: renamed,
            on: vec![(Col::ITER, Col::ITER1)],
        })
    }

    /// Complete a truth set to a boolean singleton per live iteration.
    pub(crate) fn complete_bool(&mut self, t: OpId) -> OpId {
        let f = self.loop_minus(t);
        let t_attach = self.dag.add(Op::Attach {
            input: t,
            col: Col::ITEM,
            value: AValue::Bool(true),
        });
        let f_attach = self.dag.add(Op::Attach {
            input: f,
            col: Col::ITEM,
            value: AValue::Bool(false),
        });
        let u = self.dag.add(Op::Union {
            l: t_attach,
            r: f_attach,
        });
        let with_pos = self.dag.add(Op::Attach {
            input: u,
            col: Col::POS,
            value: AValue::Int(1),
        });
        self.canonical(with_pos)
    }

    /// Join producing the qualifying `(x, y)` pairs of the existential
    /// comparison `l ◦ r`, one row per pair, carrying the current-loop
    /// `iter`. Both operand orders are immaterial (paper §2.2) — operands
    /// are consumed as unordered `iter|item` views.
    pub(crate) fn comparison_pairs(&mut self, op: BinOp, l: &Expr, r: &Expr) -> CResult {
        let kind = comparison_fun(op);
        let ql = self.compile(l)?;
        let qr = self.compile(r)?;
        let sl = self.scalar(ql, Col::ITEM1, true);
        let sr = self.scalar(qr, Col::ITEM2, true);
        let sr_renamed = self.dag.add(Op::Project {
            input: sr,
            cols: vec![(Col::ITER1, Col::ITER), (Col::ITEM2, Col::ITEM2)],
        });
        let joined = self.dag.add(Op::EquiJoin {
            l: sl,
            r: sr_renamed,
            lcol: Col::ITER,
            rcol: Col::ITER1,
        });
        let cmp = self.dag.add(Op::Fun {
            input: joined,
            new: Col::RES,
            kind,
            args: vec![Col::ITEM1, Col::ITEM2],
        });
        Ok(self.dag.add(Op::Select {
            input: cmp,
            col: Col::RES,
        }))
    }

    /// Quantifiers (Rule QUANT): the domain is iterated in arbitrary order
    /// (`# bind`, regardless of ordering mode).
    fn compile_quantifier(
        &mut self,
        quant: Quant,
        var: &str,
        domain: &Expr,
        satisfies: &Expr,
    ) -> CResult {
        let qd = self.compile(domain)?;
        let qv = self.dag.add(Op::RowId {
            input: qd,
            new: Col::BIND,
        });
        let inner_loop = self.dag.add(Op::Project {
            input: qv,
            cols: vec![(Col::ITER, Col::BIND)],
        });
        let map = self.dag.add(Op::Project {
            input: qv,
            cols: vec![(Col::OUTER, Col::ITER), (Col::INNER, Col::BIND)],
        });
        let var_item = self.dag.add(Op::Project {
            input: qv,
            cols: vec![(Col::ITER, Col::BIND), (Col::ITEM, Col::ITEM)],
        });
        let var_pos = self.dag.add(Op::Attach {
            input: var_item,
            col: Col::POS,
            value: AValue::Int(1),
        });
        let var_enc = self.canonical(var_pos);

        self.frames.push(Frame {
            loop_op: inner_loop,
            map_op: Some(map),
        });
        self.depth += 1;
        self.bind_var(var, self.depth, var_enc);
        let sat = self.compile_truth(satisfies);
        self.unbind_var(var);
        self.depth -= 1;
        self.frames.pop();
        let sat = sat?;

        match quant {
            Quant::Some => {
                // Outer iterations with at least one satisfying binding.
                let renamed = self.dag.add(Op::Project {
                    input: sat,
                    cols: vec![(Col::ITER1, Col::ITER)],
                });
                let joined = self.dag.add(Op::EquiJoin {
                    l: renamed,
                    r: map,
                    lcol: Col::ITER1,
                    rcol: Col::INNER,
                });
                let outer = self.dag.add(Op::Project {
                    input: joined,
                    cols: vec![(Col::ITER, Col::OUTER)],
                });
                Ok(self.dag.add(Op::Distinct { input: outer }))
            }
            Quant::Every => {
                // loop \ {outer iterations with a non-satisfying binding}.
                let sat_renamed = self.dag.add(Op::Project {
                    input: sat,
                    cols: vec![(Col::ITER1, Col::ITER)],
                });
                let unsat = self.dag.add(Op::Difference {
                    l: inner_loop,
                    r: sat_renamed,
                    on: vec![(Col::ITER, Col::ITER1)],
                });
                let unsat_renamed = self.dag.add(Op::Project {
                    input: unsat,
                    cols: vec![(Col::ITER1, Col::ITER)],
                });
                let joined = self.dag.add(Op::EquiJoin {
                    l: unsat_renamed,
                    r: map,
                    lcol: Col::ITER1,
                    rcol: Col::INNER,
                });
                let bad = self.dag.add(Op::Project {
                    input: joined,
                    cols: vec![(Col::ITER, Col::OUTER)],
                });
                let bad = self.dag.add(Op::Distinct { input: bad });
                Ok(self.loop_minus(bad))
            }
        }
    }

    /// `if`/quantifier in value position, and boolean-valued binaries.
    pub(crate) fn compile_boolean_shaped(&mut self, e: &Expr) -> CResult {
        match e {
            Expr::If { cond, then, els } => {
                let t = self.compile_truth(cond)?;
                let f = self.loop_minus(t);
                let q_then = self.with_loop(t, |c| c.compile(then))?;
                let q_els = self.with_loop(f, |c| c.compile(els))?;
                Ok(self.dag.add(Op::Union {
                    l: q_then,
                    r: q_els,
                }))
            }
            Expr::Quantified { .. } => {
                let t = self.compile_truth(e)?;
                Ok(self.complete_bool(t))
            }
            other => Err(CompileError::new(
                exrquy_diag::ErrorCode::XPST0003,
                format!("compile_boolean_shaped on {other:?}"),
            )),
        }
    }
}

/// Is this one of the six value comparisons?
pub(crate) fn is_value_comparison(op: BinOp) -> bool {
    matches!(
        op,
        BinOp::ValEq | BinOp::ValNe | BinOp::ValLt | BinOp::ValLe | BinOp::ValGt | BinOp::ValGe
    )
}

/// Map a comparison [`BinOp`] to its row-level [`FunKind`].
pub(crate) fn comparison_fun(op: BinOp) -> FunKind {
    match op {
        BinOp::GenEq | BinOp::ValEq => FunKind::Eq,
        BinOp::GenNe | BinOp::ValNe => FunKind::Ne,
        BinOp::GenLt | BinOp::ValLt => FunKind::Lt,
        BinOp::GenLe | BinOp::ValLe => FunKind::Le,
        BinOp::GenGt | BinOp::ValGt => FunKind::Gt,
        BinOp::GenGe | BinOp::ValGe => FunKind::Ge,
        other => panic!("not a comparison: {other:?}"),
    }
}
