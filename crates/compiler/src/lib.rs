//! The loop-lifting XQuery-to-algebra compiler (`· ⇒ ·` of §3).
//!
//! Every expression compiles, relative to a *loop relation* (the table of
//! live iterations), to a plan producing an `iter|pos|item` table: "in
//! iteration `iter`, the expression's value contains item `item` at the
//! sequence position corresponding to `pos`'s rank" (§3).
//!
//! The ordering-mode-sensitive rules are exactly the paper's:
//!
//! * **LOC** (ordered): a location step wraps `⬡` in
//!   `% pos:⟨item⟩‖iter` — document order determines sequence order
//!   (interaction 1©).
//! * **LOC#** (unordered): the `%` becomes a free `# pos` (Figure 7).
//! * **BIND** (ordered): `for`-variable bindings are numbered by
//!   `% bind:⟨iter,pos⟩` — sequence order determines iteration order
//!   (interaction 3©).
//! * **BIND#** (unordered, or any FLWOR re-sorted by `order by`): `# bind`.
//! * **FN:UNORDERED**: `fn:unordered(e)` compiles to
//!   `# pos (π iter,item (q_e))`, overwriting sequence order.
//!
//! Iteration order → sequence order (interaction 4©) is *never* weakened
//! by the compiler — the `%pos1:⟨bind,pos⟩‖iter` at the end of every
//! `for`-block return remains in both modes (Figure 6b keeps one `%`) and
//! is only removed by the column dependency analysis when some enclosing
//! context is order-indifferent.
//!
//! The compiler also performs the *join recognition* of \[9\] ("Purely
//! Relational FLWORs", cited as the mechanism behind Q11's profile in §5):
//! a `for $x in e1 where e_a ◦ e_b return …` block whose comparison splits
//! into an `$x`-dependent side and an `$x`-free side compiles to a
//! [`ThetaJoin`](exrquy_algebra::Op::ThetaJoin) instead of a materialized
//! iteration-space cross product. This is orthogonal to order indifference
//! and active in both ordering modes, exactly as in Pathfinder.

mod construct;
mod flwor;
mod funcs;
mod helpers;
mod paths;
mod truth;

use exrquy_algebra::{AValue, Col, Dag, Op, OpId, PhysPlan};
use exrquy_diag::ErrorCode;
use exrquy_frontend::{Expr, Module, OrderingMode};
use exrquy_xml::{Catalog, NameId, NamePool};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Compilation error (unbound variables, unsupported constructs),
/// tagged with a W3C-style static error code.
#[derive(Debug, Clone)]
pub struct CompileError {
    /// Machine-readable error code (an `XPST*`/`XPDY*` static code).
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
}

impl CompileError {
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        CompileError {
            code,
            message: message.into(),
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

pub(crate) type CResult = Result<OpId, CompileError>;

/// A finished plan.
#[derive(Debug)]
pub struct CompiledPlan {
    pub dag: Dag,
    /// Root operator ([`Op::Serialize`]); its `pos|item` columns carry the
    /// query result.
    pub root: OpId,
    /// Name snapshot the plan's node tests were interned against: the
    /// catalog's frozen pool, extended (copy-on-write) with any names the
    /// query mentions that no document contains. Shared, not cloned, into
    /// the prepared plan and every execution overlay.
    pub names: Arc<NamePool>,
}

impl CompiledPlan {
    /// Lower into the flattened physical program the vectorized engine
    /// executes ([`exrquy_algebra::lower`]): slots in topological order
    /// with integer operands and, with `fuse` set, single-consumer
    /// `fun`/`σ`/`attach`/`π` runs collapsed into fused chains. Callers
    /// that cache plans lower once here and execute the program many
    /// times.
    pub fn lower(&self, fuse: bool) -> PhysPlan {
        exrquy_algebra::lower(&self.dag, self.root, fuse)
    }
}

/// One loop-lifting stack frame.
#[derive(Debug, Clone)]
pub(crate) struct Frame {
    /// Live iterations of this nesting level: a table `[iter]`.
    pub loop_op: OpId,
    /// Mapping `outer|inner` from the parent frame's iterations to this
    /// frame's (absent at depth 0).
    pub map_op: Option<OpId>,
}

/// Variable binding: the relational encoding `iter|pos|item` at the
/// nesting depth where the variable was bound.
#[derive(Debug, Clone)]
pub(crate) struct VarEntry {
    pub depth: usize,
    pub q: OpId,
}

/// The compiler state. Compilation only *reads* the shared catalog; the
/// names a query mentions are interned into a private copy-on-write
/// snapshot ([`CompiledPlan::names`]), so any number of compilations may
/// run concurrently over one `Arc<Catalog>`.
pub struct Compiler<'c> {
    pub(crate) dag: Dag,
    /// The shared, immutable document layer (read-only).
    #[allow(dead_code)]
    pub(crate) catalog: &'c Catalog,
    /// Name snapshot: starts as a shared handle to the catalog's frozen
    /// pool; cloned lazily (`Arc::make_mut`) the first time the query
    /// mentions a name absent from every document.
    names: Arc<NamePool>,
    pub(crate) frames: Vec<Frame>,
    /// Current nesting depth (index into `frames`); may be lower than
    /// `frames.len() - 1` while compiling a hoisted sub-expression.
    pub(crate) depth: usize,
    pub(crate) env: HashMap<String, Vec<VarEntry>>,
    pub(crate) mode: Vec<OrderingMode>,
}

impl<'c> Compiler<'c> {
    /// Create a compiler over a shared catalog; node-test names resolve
    /// against the catalog's pool and accumulate into the plan's own
    /// snapshot.
    pub fn new(catalog: &'c Catalog) -> Self {
        let mut dag = Dag::new();
        let unit_loop = dag.add(Op::Lit {
            cols: vec![Col::ITER],
            rows: vec![vec![AValue::Int(1)]],
        });
        Compiler {
            dag,
            names: catalog.pool_arc(),
            catalog,
            frames: vec![Frame {
                loop_op: unit_loop,
                map_op: None,
            }],
            depth: 0,
            env: HashMap::new(),
            mode: vec![OrderingMode::Ordered],
        }
    }

    /// Intern `name` into the plan's name snapshot. Names already in the
    /// catalog pool resolve without touching the snapshot.
    pub(crate) fn intern(&mut self, name: &str) -> NameId {
        if let Some(id) = self.names.lookup(name) {
            return id;
        }
        Arc::make_mut(&mut self.names).intern(name)
    }

    /// Compile a normalized module into a plan.
    pub fn compile_module(mut self, m: &Module) -> Result<CompiledPlan, CompileError> {
        self.mode = vec![m.ordering];
        for (name, expr) in &m.variables {
            let q = self.compile(expr)?;
            self.bind_var(name, 0, q);
        }
        let body = self.compile(&m.body)?;
        let root = self.dag.add(Op::Serialize { input: body });
        Ok(CompiledPlan {
            dag: self.dag,
            root,
            names: self.names,
        })
    }

    // ------------------------------------------------------ mode & env

    pub(crate) fn ordered(&self) -> bool {
        *self.mode.last().unwrap() == OrderingMode::Ordered
    }

    pub(crate) fn bind_var(&mut self, name: &str, depth: usize, q: OpId) {
        self.env
            .entry(name.to_string())
            .or_default()
            .push(VarEntry { depth, q });
    }

    pub(crate) fn unbind_var(&mut self, name: &str) {
        let stack = self.env.get_mut(name).expect("unbind of unknown variable");
        stack.pop();
        if stack.is_empty() {
            self.env.remove(name);
        }
    }

    pub(crate) fn lookup_var(&self, name: &str) -> Result<&VarEntry, CompileError> {
        self.env.get(name).and_then(|s| s.last()).ok_or_else(|| {
            CompileError::new(ErrorCode::XPST0008, format!("unbound variable ${name}"))
        })
    }

    /// Max binding depth among `e`'s free variables — the shallowest frame
    /// at which `e` can be compiled (loop-invariant hoisting).
    pub(crate) fn depth_of(&self, e: &Expr) -> Result<usize, CompileError> {
        let mut d = 0;
        for v in e.free_vars() {
            let entry = if v == "." {
                self.env.get(".").and_then(|s| s.last()).ok_or_else(|| {
                    CompileError::new(ErrorCode::XPDY0002, "context item used without focus")
                })?
            } else {
                self.lookup_var(&v)?
            };
            d = d.max(entry.depth);
        }
        Ok(d.min(self.depth))
    }

    pub(crate) fn cur_loop(&self) -> OpId {
        self.frames[self.depth].loop_op
    }

    /// Run `f` with the current loop of this depth replaced (if/where
    /// branch restriction).
    pub(crate) fn with_loop<T>(
        &mut self,
        loop_op: OpId,
        f: impl FnOnce(&mut Self) -> Result<T, CompileError>,
    ) -> Result<T, CompileError> {
        let saved = self.frames[self.depth].loop_op;
        self.frames[self.depth].loop_op = loop_op;
        let r = f(self);
        self.frames[self.depth].loop_op = saved;
        r
    }

    /// Run `f` at a shallower depth (hoisted compilation).
    pub(crate) fn at_depth<T>(
        &mut self,
        d: usize,
        f: impl FnOnce(&mut Self) -> Result<T, CompileError>,
    ) -> Result<T, CompileError> {
        assert!(d <= self.depth);
        let saved = self.depth;
        self.depth = d;
        let r = f(self);
        self.depth = saved;
        r
    }

    // ------------------------------------------------------- dispatch

    /// Compile `e` at the shallowest admissible depth, then lift the
    /// result into the current iteration scope. This realizes "the two
    /// path expressions … are evaluated once only" (§5).
    pub(crate) fn compile(&mut self, e: &Expr) -> CResult {
        let dr = self.depth_of(e)?;
        if dr < self.depth {
            let q = self.at_depth(dr, |c| c.compile_here(e))?;
            let lifted = self.lift(q, dr, self.depth);
            Ok(self.restrict_to_loop(lifted))
        } else {
            self.compile_here(e)
        }
    }

    /// Compile `e` at exactly the current depth.
    pub(crate) fn compile_here(&mut self, e: &Expr) -> CResult {
        match e {
            Expr::IntLit(i) => Ok(self.const_item(AValue::Int(*i))),
            Expr::DblLit(d) => Ok(self.const_item(AValue::dbl(*d))),
            Expr::StrLit(s) => Ok(self.const_item(AValue::Str(Arc::from(s.as_str())))),
            Expr::Empty => Ok(self.empty_seq()),
            Expr::Var(name) => {
                let entry = self.lookup_var(name)?.clone();
                let lifted = self.lift(entry.q, entry.depth, self.depth);
                Ok(self.restrict_to_loop(lifted))
            }
            Expr::ContextItem => {
                let entry = self
                    .env
                    .get(".")
                    .and_then(|s| s.last())
                    .cloned()
                    .ok_or_else(|| {
                        CompileError::new(ErrorCode::XPDY0002, "context item used without focus")
                    })?;
                let lifted = self.lift(entry.q, entry.depth, self.depth);
                Ok(self.restrict_to_loop(lifted))
            }
            Expr::Root => self.compile_root(),
            Expr::Sequence(items) => {
                let qs = items
                    .iter()
                    .map(|i| self.compile(i))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(self.concat_sequences(&qs))
            }
            Expr::PathStep { .. } | Expr::Filter { .. } | Expr::PathSeq { .. } => {
                self.compile_path(e)
            }
            Expr::Flwor { .. } => self.compile_flwor(e),
            Expr::Quantified { .. } | Expr::If { .. } => self.compile_boolean_shaped(e),
            Expr::Binary { .. } | Expr::Unary { .. } => self.compile_binary_unary(e),
            Expr::Call { name, args } => self.compile_call(name, args),
            Expr::Unordered(inner) => {
                // Rule FN:UNORDERED: # pos over π iter,item.
                let q = self.compile(inner)?;
                let proj = self.project_iter_item(q);
                let numbered = self.dag.add(Op::RowId {
                    input: proj,
                    new: Col::POS,
                });
                Ok(self.canonical(numbered))
            }
            Expr::OrderingScope { mode, expr } => {
                self.mode.push(*mode);
                let r = self.compile(expr);
                self.mode.pop();
                r
            }
            Expr::DirElement { .. }
            | Expr::TextConstructor(_)
            | Expr::AttrConstructor { .. }
            | Expr::ElemConstructor { .. } => self.compile_constructor(e),
        }
    }
}

#[cfg(test)]
mod tests;
