//! Plan-building helpers: canonical projections, constants, sequence
//! concatenation, loop restriction and lifting through map relations.

use crate::{CResult, CompileError, Compiler};
use exrquy_algebra::{AValue, AggrKind, Col, Op, OpId, SortKey};

impl Compiler<'_> {
    /// Project `q` to the canonical `[iter, pos, item]` layout.
    pub(crate) fn canonical(&mut self, q: OpId) -> OpId {
        self.dag.add(Op::Project {
            input: q,
            cols: vec![
                (Col::ITER, Col::ITER),
                (Col::POS, Col::POS),
                (Col::ITEM, Col::ITEM),
            ],
        })
    }

    /// Project `q` to `[iter, item]` (step/aggregate inputs).
    pub(crate) fn project_iter_item(&mut self, q: OpId) -> OpId {
        self.dag.add(Op::Project {
            input: q,
            cols: vec![(Col::ITER, Col::ITER), (Col::ITEM, Col::ITEM)],
        })
    }

    /// The empty sequence at the current loop.
    pub(crate) fn empty_seq(&mut self) -> OpId {
        self.dag.add(Op::Lit {
            cols: vec![Col::ITER, Col::POS, Col::ITEM],
            rows: vec![],
        })
    }

    /// A constant singleton sequence: `loop × pos|1 × item|v`.
    pub(crate) fn const_item(&mut self, v: AValue) -> OpId {
        let lp = self.cur_loop();
        let with_pos = self.dag.add(Op::Attach {
            input: lp,
            col: Col::POS,
            value: AValue::Int(1),
        });
        let with_item = self.dag.add(Op::Attach {
            input: with_pos,
            col: Col::ITEM,
            value: v,
        });
        self.canonical(with_item)
    }

    /// Concatenate sequence encodings: `∪̇` + `% pos1:⟨ord,pos⟩‖iter`
    /// (iteration-internal sequence order; interaction 4© stays intact in
    /// every ordering mode — see Figure 3).
    pub(crate) fn concat_sequences(&mut self, qs: &[OpId]) -> OpId {
        match qs.len() {
            0 => return self.empty_seq(),
            1 => return qs[0],
            _ => {}
        }
        let mut tagged = Vec::with_capacity(qs.len());
        for (i, &q) in qs.iter().enumerate() {
            tagged.push(self.dag.add(Op::Attach {
                input: q,
                col: Col::ORD,
                value: AValue::Int(i as i64 + 1),
            }));
        }
        let mut u = tagged[0];
        for &t in &tagged[1..] {
            u = self.dag.add(Op::Union { l: u, r: t });
        }
        let renum = self.dag.add(Op::RowNum {
            input: u,
            new: Col::POS1,
            order: vec![SortKey::asc(Col::ORD), SortKey::asc(Col::POS)],
            part: Some(Col::ITER),
        });
        self.dag.add(Op::Project {
            input: renum,
            cols: vec![
                (Col::ITER, Col::ITER),
                (Col::POS, Col::POS1),
                (Col::ITEM, Col::ITEM),
            ],
        })
    }

    /// Keep only rows whose `iter` is a live iteration of the current
    /// loop (semijoin with the loop relation).
    pub(crate) fn restrict_to_loop(&mut self, q: OpId) -> OpId {
        let lp = self.cur_loop();
        if lp == q {
            return q;
        }
        let renamed = self.dag.add(Op::Project {
            input: lp,
            cols: vec![(Col::ITER1, Col::ITER)],
        });
        let joined = self.dag.add(Op::EquiJoin {
            l: q,
            r: renamed,
            lcol: Col::ITER,
            rcol: Col::ITER1,
        });
        let keep: Vec<(Col, Col)> = self
            .dag
            .schema(q)
            .to_vec()
            .into_iter()
            .map(|c| (c, c))
            .collect();
        self.dag.add(Op::Project {
            input: joined,
            cols: keep,
        })
    }

    /// Lift a value computed at depth `from` into the iteration scope at
    /// depth `to`, joining through the intermediate map relations.
    pub(crate) fn lift(&mut self, mut q: OpId, from: usize, to: usize) -> OpId {
        debug_assert!(from <= to);
        for level in from + 1..=to {
            let map = self.frames[level]
                .map_op
                .expect("non-root frame lacks a map relation");
            let mut cols: Vec<(Col, Col)> = vec![(Col::ITER1, Col::ITER)];
            for c in self.dag.schema(q).to_vec() {
                if c != Col::ITER {
                    cols.push((c, c));
                }
            }
            let renamed = self.dag.add(Op::Project { input: q, cols });
            let joined = self.dag.add(Op::EquiJoin {
                l: renamed,
                r: map,
                lcol: Col::ITER1,
                rcol: Col::OUTER,
            });
            let mut back: Vec<(Col, Col)> = vec![(Col::ITER, Col::INNER)];
            for c in self.dag.schema(renamed).to_vec() {
                if c != Col::ITER1 {
                    back.push((c, c));
                }
            }
            q = self.dag.add(Op::Project {
                input: joined,
                cols: back,
            });
        }
        q
    }

    /// Compose the map relations from depth `from` (exclusive) up to depth
    /// `to` into a single `outer|inner` relation mapping `iter@from` to
    /// `iter@to`. Used by join recognition.
    pub(crate) fn compose_maps(&mut self, from: usize, to: usize) -> Option<OpId> {
        if from == to {
            return None;
        }
        let mut m = self.frames[from + 1].map_op.expect("missing map");
        for level in from + 2..=to {
            let next = self.frames[level].map_op.expect("missing map");
            // m: outer(iter@from) | inner(iter@level-1)
            // next: outer(iter@level-1) | inner(iter@level)
            let next_renamed = self.dag.add(Op::Project {
                input: next,
                cols: vec![(Col::ITER1, Col::OUTER), (Col::POS1, Col::INNER)],
            });
            let joined = self.dag.add(Op::EquiJoin {
                l: m,
                r: next_renamed,
                lcol: Col::INNER,
                rcol: Col::ITER1,
            });
            m = self.dag.add(Op::Project {
                input: joined,
                cols: vec![(Col::OUTER, Col::OUTER), (Col::INNER, Col::POS1)],
            });
        }
        Some(m)
    }

    /// Per-iteration scalar view of `q`: `[iter, out_col]`, with node
    /// items atomized to their string values when `atomize` is set.
    pub(crate) fn scalar(&mut self, q: OpId, out: Col, atomize: bool) -> OpId {
        let ii = self.project_iter_item(q);
        let v = if atomize {
            let a = self.dag.add(Op::Fun {
                input: ii,
                new: Col::RES,
                kind: exrquy_algebra::FunKind::Atomize,
                args: vec![Col::ITEM],
            });
            self.dag.add(Op::Project {
                input: a,
                cols: vec![(Col::ITER, Col::ITER), (Col::ITEM, Col::RES)],
            })
        } else {
            ii
        };
        if out == Col::ITEM {
            v
        } else {
            self.dag.add(Op::Project {
                input: v,
                cols: vec![(Col::ITER, Col::ITER), (out, Col::ITEM)],
            })
        }
    }

    /// Turn a per-iteration value table `[iter, value_col]` into the
    /// canonical singleton-sequence encoding.
    pub(crate) fn singleton(&mut self, q: OpId, value_col: Col) -> OpId {
        let projected = self.dag.add(Op::Project {
            input: q,
            cols: vec![(Col::ITER, Col::ITER), (Col::ITEM, value_col)],
        });
        let with_pos = self.dag.add(Op::Attach {
            input: projected,
            col: Col::POS,
            value: AValue::Int(1),
        });
        self.canonical(with_pos)
    }

    /// Complete a per-iteration table `[iter, value_col]` with a default
    /// value for live iterations that have no row (e.g. `fn:count` must
    /// yield `0` on empty input).
    pub(crate) fn complete_with_default(
        &mut self,
        q: OpId,
        value_col: Col,
        default: AValue,
    ) -> OpId {
        let present = self.dag.add(Op::Project {
            input: q,
            cols: vec![(Col::ITER1, Col::ITER)],
        });
        let lp = self.cur_loop();
        let missing = self.dag.add(Op::Difference {
            l: lp,
            r: present,
            on: vec![(Col::ITER, Col::ITER1)],
        });
        let defaults = self.dag.add(Op::Attach {
            input: missing,
            col: value_col,
            value: default,
        });
        let q_ordered = self.dag.add(Op::Project {
            input: q,
            cols: vec![(Col::ITER, Col::ITER), (value_col, value_col)],
        });
        self.dag.add(Op::Union {
            l: q_ordered,
            r: defaults,
        })
    }

    /// Per-iteration string value of a sequence: atomize items, join with
    /// spaces in `pos` order, default to `""` for empty iterations.
    /// (Attribute value templates, `fn:string`, text constructors.)
    pub(crate) fn string_join(&mut self, q: OpId) -> OpId {
        let atomized = self.dag.add(Op::Fun {
            input: q,
            new: Col::RES,
            kind: exrquy_algebra::FunKind::Atomize,
            args: vec![Col::ITEM],
        });
        let joined = self.dag.add(Op::Aggr {
            input: atomized,
            kind: AggrKind::StrJoin,
            new: Col::ITEM1,
            arg: Some(Col::RES),
            part: Some(Col::ITER),
        });
        self.complete_with_default(joined, Col::ITEM1, AValue::Str(std::sync::Arc::from("")))
    }

    /// Compile the root (`/`): the document node reached from the current
    /// context item via `ancestor-or-self::document-node()`.
    pub(crate) fn compile_root(&mut self) -> CResult {
        let entry = self
            .env
            .get(".")
            .and_then(|s| s.last())
            .cloned()
            .ok_or_else(|| {
                CompileError::new(
                    exrquy_diag::ErrorCode::XPDY0002,
                    "`/` used without a context document",
                )
            })?;
        let lifted = self.lift(entry.q, entry.depth, self.depth);
        let ctx = self.restrict_to_loop(lifted);
        let ii = self.project_iter_item(ctx);
        let step = self.dag.add(Op::Step {
            input: ii,
            axis: exrquy_xml::Axis::AncestorOrSelf,
            test: exrquy_xml::NodeTest::DocumentNode,
        });
        let with_pos = self.dag.add(Op::Attach {
            input: step,
            col: Col::POS,
            value: AValue::Int(1),
        });
        Ok(self.canonical(with_pos))
    }
}
