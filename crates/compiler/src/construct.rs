//! Node constructors: direct and computed element/attribute/text
//! construction.
//!
//! Constructors realize order interaction 2© (sequence order establishes
//! document order in the new fragment — the paper's Expression (3)): the
//! content sequence encoding, `pos` included, feeds the `elem` operator,
//! which writes the new fragment in that order.

use crate::{CResult, CompileError, Compiler};
use exrquy_algebra::{AValue, Col, FunKind, Op, OpId};
use exrquy_frontend::{AttrPart, DirAttr, ElemContent, Expr};
use std::sync::Arc;

impl Compiler<'_> {
    pub(crate) fn compile_constructor(&mut self, e: &Expr) -> CResult {
        match e {
            Expr::DirElement {
                name,
                attrs,
                content,
            } => {
                let mut parts: Vec<OpId> = Vec::new();
                for a in attrs {
                    parts.push(self.compile_dir_attr(a)?);
                }
                for c in content {
                    let q = match c {
                        ElemContent::Text(t) => self.const_item(AValue::Str(Arc::from(t.as_str()))),
                        ElemContent::Expr(e) => self.compile(e)?,
                    };
                    parts.push(q);
                }
                // Keep the content-part provenance (`ord`): adjacent
                // atomics merge space-separated only *within* one enclosed
                // expression.
                let content_seq = self.concat_content_parts(&parts);
                self.emit_element(name, content_seq)
            }
            Expr::ElemConstructor { name, content } => {
                let q = self.compile(content)?;
                let tagged = self.concat_content_parts(&[q]);
                self.emit_element(name, tagged)
            }
            Expr::AttrConstructor { name, value } => {
                let q = self.compile(value)?;
                let joined = self.string_join(q);
                let values = self.dag.add(Op::Project {
                    input: joined,
                    cols: vec![(Col::ITER, Col::ITER), (Col::ITEM, Col::ITEM1)],
                });
                let names = self.const_name_table(name);
                let attr = self.dag.add(Op::Attr { names, values });
                let with_pos = self.dag.add(Op::Attach {
                    input: attr,
                    col: Col::POS,
                    value: AValue::Int(1),
                });
                Ok(self.canonical(with_pos))
            }
            Expr::TextConstructor(value) => {
                let q = self.compile(value)?;
                let joined = self.string_join(q);
                let content = self.dag.add(Op::Project {
                    input: joined,
                    cols: vec![(Col::ITER, Col::ITER), (Col::ITEM, Col::ITEM1)],
                });
                let text = self.dag.add(Op::TextNode { content });
                let with_pos = self.dag.add(Op::Attach {
                    input: text,
                    col: Col::POS,
                    value: AValue::Int(1),
                });
                Ok(self.canonical(with_pos))
            }
            other => Err(CompileError::new(
                exrquy_diag::ErrorCode::XPST0003,
                format!("compile_constructor on {other:?}"),
            )),
        }
    }

    /// Like `concat_sequences` but keeps the part tag as an `ord` column
    /// (`[iter, pos, item, ord]`) — the element constructor uses it for
    /// the atomic-spacing rule.
    fn concat_content_parts(&mut self, qs: &[OpId]) -> OpId {
        if qs.is_empty() {
            return self.dag.add(Op::Lit {
                cols: vec![Col::ITER, Col::POS, Col::ITEM, Col::ORD],
                rows: vec![],
            });
        }
        let mut tagged = Vec::with_capacity(qs.len());
        for (i, &q) in qs.iter().enumerate() {
            tagged.push(self.dag.add(Op::Attach {
                input: q,
                col: Col::ORD,
                value: AValue::Int(i as i64 + 1),
            }));
        }
        let mut u = tagged[0];
        for &t in &tagged[1..] {
            u = self.dag.add(Op::Union { l: u, r: t });
        }
        let renum = self.dag.add(Op::RowNum {
            input: u,
            new: Col::POS1,
            order: vec![
                exrquy_algebra::SortKey::asc(Col::ORD),
                exrquy_algebra::SortKey::asc(Col::POS),
            ],
            part: Some(Col::ITER),
        });
        self.dag.add(Op::Project {
            input: renum,
            cols: vec![
                (Col::ITER, Col::ITER),
                (Col::POS, Col::POS1),
                (Col::ITEM, Col::ITEM),
                (Col::ORD, Col::ORD),
            ],
        })
    }

    /// `loop × item|name` — the per-iteration constructor name table.
    fn const_name_table(&mut self, name: &str) -> OpId {
        let lp = self.cur_loop();
        self.dag.add(Op::Attach {
            input: lp,
            col: Col::ITEM,
            value: AValue::Str(Arc::from(name)),
        })
    }

    fn emit_element(&mut self, name: &str, content: OpId) -> CResult {
        let names = self.const_name_table(name);
        let elem = self.dag.add(Op::Element { names, content });
        let with_pos = self.dag.add(Op::Attach {
            input: elem,
            col: Col::POS,
            value: AValue::Int(1),
        });
        Ok(self.canonical(with_pos))
    }

    /// A direct attribute with a value template: literal runs and enclosed
    /// expressions concatenate into one string per iteration.
    fn compile_dir_attr(&mut self, attr: &DirAttr) -> CResult {
        let mut part_tables: Vec<OpId> = Vec::new();
        for p in &attr.value {
            let t = match p {
                AttrPart::Lit(s) => {
                    let lp = self.cur_loop();
                    self.dag.add(Op::Attach {
                        input: lp,
                        col: Col::ITEM1,
                        value: AValue::Str(Arc::from(s.as_str())),
                    })
                }
                AttrPart::Expr(e) => {
                    let q = self.compile(e)?;
                    self.string_join(q)
                }
            };
            part_tables.push(t);
        }
        // Concatenate the parts per iteration.
        let value = match part_tables.len() {
            0 => {
                let lp = self.cur_loop();
                self.dag.add(Op::Attach {
                    input: lp,
                    col: Col::ITEM1,
                    value: AValue::Str(Arc::from("")),
                })
            }
            1 => part_tables[0],
            _ => {
                let mut acc = part_tables[0];
                for &next in &part_tables[1..] {
                    let renamed = self.dag.add(Op::Project {
                        input: next,
                        cols: vec![(Col::ITER1, Col::ITER), (Col::ITEM2, Col::ITEM1)],
                    });
                    let joined = self.dag.add(Op::EquiJoin {
                        l: acc,
                        r: renamed,
                        lcol: Col::ITER,
                        rcol: Col::ITER1,
                    });
                    let cat = self.dag.add(Op::Fun {
                        input: joined,
                        new: Col::RES,
                        kind: FunKind::Concat,
                        args: vec![Col::ITEM1, Col::ITEM2],
                    });
                    acc = self.dag.add(Op::Project {
                        input: cat,
                        cols: vec![(Col::ITER, Col::ITER), (Col::ITEM1, Col::RES)],
                    });
                }
                acc
            }
        };
        let values = self.dag.add(Op::Project {
            input: value,
            cols: vec![(Col::ITER, Col::ITER), (Col::ITEM, Col::ITEM1)],
        });
        let names = self.const_name_table(&attr.name);
        let a = self.dag.add(Op::Attr { names, values });
        let with_pos = self.dag.add(Op::Attach {
            input: a,
            col: Col::POS,
            value: AValue::Int(1),
        });
        Ok(self.canonical(with_pos))
    }
}
