//! Built-in function compilation.
//!
//! Aggregates arrive with their argument already wrapped in
//! `fn:unordered(·)` by normalization (Rule FN:COUNT and its analogues),
//! so the `aggr` operators here consume order-free inputs; the column
//! dependency analysis later erases the argument's order computation.

use crate::{CResult, CompileError, Compiler};
use exrquy_algebra::{AValue, AggrKind, Col, FunKind, Op, OpId};
use exrquy_frontend::Expr;
use std::sync::Arc;

/// Scratch column for the `i`-th scalar argument.
fn arg_col(i: usize) -> Col {
    match i {
        0 => Col::ITEM1,
        1 => Col::ITEM2,
        n => Col::sort_key(n - 2),
    }
}

impl Compiler<'_> {
    pub(crate) fn compile_call(&mut self, name: &str, args: &[Expr]) -> CResult {
        match (name, args.len()) {
            ("doc", 1) => {
                let Expr::StrLit(url) = &args[0] else {
                    return Err(CompileError::new(
                        exrquy_diag::ErrorCode::XPST0017,
                        "fn:doc requires a string literal URL",
                    ));
                };
                let doc = self.dag.add(Op::Doc {
                    url: Arc::from(url.as_str()),
                });
                let with_pos = self.dag.add(Op::Attach {
                    input: doc,
                    col: Col::POS,
                    value: AValue::Int(1),
                });
                let lp = self.cur_loop();
                let crossed = self.dag.add(Op::Cross { l: lp, r: with_pos });
                Ok(self.canonical(crossed))
            }
            ("collection", 0) => {
                // The whole catalog, one document root per fragment, in
                // collection (= fragment) order. Compiled as a fanout per
                // catalog shard under a disjoint bag union `∪̂`: shards are
                // contiguous fragment ranges, so the shard-major
                // concatenation *is* collection order and the union needs
                // no re-sort. `pos` is the global fragment rank, emitted by
                // each fanout directly.
                let parts: Vec<OpId> = (0..self.catalog.shard_count())
                    .map(|s| {
                        let (lo, hi) = self.catalog.shard_range(s);
                        self.dag.add(Op::Fanout {
                            shard: s as u32,
                            lo,
                            hi,
                        })
                    })
                    .collect();
                let union = self.dag.add(Op::ShardUnion { parts });
                let lp = self.cur_loop();
                let crossed = self.dag.add(Op::Cross { l: lp, r: union });
                Ok(self.canonical(crossed))
            }
            ("count", 1) => self.compile_aggregate(AggrKind::Count, &args[0], Some(AValue::Int(0))),
            ("sum", 1) => self.compile_aggregate(AggrKind::Sum, &args[0], Some(AValue::dbl(0.0))),
            ("avg", 1) => self.compile_aggregate(AggrKind::Avg, &args[0], None),
            ("max", 1) => self.compile_aggregate(AggrKind::Max, &args[0], None),
            ("min", 1) => self.compile_aggregate(AggrKind::Min, &args[0], None),
            ("exists", 1)
            | ("empty", 1)
            | ("boolean", 1)
            | ("not", 1)
            | ("true", 0)
            | ("false", 0) => {
                let t = self.compile_truth(&Expr::Call {
                    name: name.to_string(),
                    args: args.to_vec(),
                })?;
                Ok(self.complete_bool(t))
            }
            ("unordered", 1) => {
                // Normally reified by normalization; accept raw calls too.
                self.compile_here(&Expr::Unordered(Box::new(args[0].clone())))
            }
            ("distinct-values", 1) => {
                // Result order is implementation-defined — always `#` (one
                // of the paper's order-indifferent built-ins, §1 (d)).
                let q = self.compile(&args[0])?;
                let ii = self.project_iter_item(q);
                let atomized = self.dag.add(Op::Fun {
                    input: ii,
                    new: Col::RES,
                    kind: FunKind::Atomize,
                    args: vec![Col::ITEM],
                });
                let projected = self.dag.add(Op::Project {
                    input: atomized,
                    cols: vec![(Col::ITER, Col::ITER), (Col::ITEM, Col::RES)],
                });
                let dedup = self.dag.add(Op::Distinct { input: projected });
                let ri = self.dag.add(Op::RowId {
                    input: dedup,
                    new: Col::POS,
                });
                Ok(self.canonical(ri))
            }
            ("string", 0) => self.compile_string(&Expr::ContextItem),
            ("string", 1) => self.compile_string(&args[0]),
            ("data", 1) => {
                let q = self.compile(&args[0])?;
                let atomized = self.dag.add(Op::Fun {
                    input: q,
                    new: Col::RES,
                    kind: FunKind::Atomize,
                    args: vec![Col::ITEM],
                });
                Ok(self.dag.add(Op::Project {
                    input: atomized,
                    cols: vec![
                        (Col::ITER, Col::ITER),
                        (Col::POS, Col::POS),
                        (Col::ITEM, Col::RES),
                    ],
                }))
            }
            ("number", 0) => self.scalar_call(FunKind::ToNum, &[Expr::ContextItem], false, None),
            ("number", 1) => self.scalar_call(FunKind::ToNum, args, false, None),
            ("name", n) | ("local-name", n) if n <= 1 => {
                let target = if n == 0 {
                    vec![Expr::ContextItem]
                } else {
                    args.to_vec()
                };
                self.scalar_call(
                    FunKind::NameOf,
                    &target,
                    false,
                    Some(AValue::Str(Arc::from(""))),
                )
            }
            ("root", 1) => {
                let q = self.compile(&args[0])?;
                let ii = self.project_iter_item(q);
                let step = self.dag.add(Op::Step {
                    input: ii,
                    axis: exrquy_xml::Axis::AncestorOrSelf,
                    test: exrquy_xml::NodeTest::DocumentNode,
                });
                let with_pos = self.dag.add(Op::Attach {
                    input: step,
                    col: Col::POS,
                    value: AValue::Int(1),
                });
                Ok(self.canonical(with_pos))
            }
            ("contains", 2) => {
                self.scalar_call(FunKind::Contains, args, true, Some(AValue::Bool(false)))
            }
            ("starts-with", 2) => {
                self.scalar_call(FunKind::StartsWith, args, true, Some(AValue::Bool(false)))
            }
            ("string-length", 0) => self.scalar_call(
                FunKind::StringLength,
                &[Expr::ContextItem],
                true,
                Some(AValue::Int(0)),
            ),
            ("string-length", 1) => {
                self.scalar_call(FunKind::StringLength, args, true, Some(AValue::Int(0)))
            }
            ("substring", 2) => self.scalar_call(FunKind::Substring2, args, true, None),
            ("substring", 3) => self.scalar_call(FunKind::Substring3, args, true, None),
            ("normalize-space", 0) => {
                self.scalar_call(FunKind::NormalizeSpace, &[Expr::ContextItem], true, None)
            }
            ("normalize-space", 1) => self.scalar_call(FunKind::NormalizeSpace, args, true, None),
            ("substring-before", 2) => self.scalar_call(FunKind::SubstringBefore, args, true, None),
            ("substring-after", 2) => self.scalar_call(FunKind::SubstringAfter, args, true, None),
            ("ends-with", 2) => {
                self.scalar_call(FunKind::EndsWith, args, true, Some(AValue::Bool(false)))
            }
            ("abs", 1) => self.scalar_call(FunKind::Abs, args, true, None),
            ("upper-case", 1) => self.scalar_call(FunKind::UpperCase, args, true, None),
            ("lower-case", 1) => self.scalar_call(FunKind::LowerCase, args, true, None),
            ("translate", 3) => self.scalar_call(FunKind::Translate, args, true, None),
            ("concat", n) if n >= 2 => self.scalar_call(FunKind::Concat, args, true, None),
            ("round", 1) => self.scalar_call(FunKind::Round, args, true, None),
            ("floor", 1) => self.scalar_call(FunKind::Floor, args, true, None),
            ("ceiling", 1) => self.scalar_call(FunKind::Ceiling, args, true, None),
            ("zero-or-one", 1) | ("exactly-one", 1) | ("one-or-more", 1) => {
                // Cardinality assertions are advisory here.
                self.compile(&args[0])
            }
            ("last", 0) | ("position", 0) => {
                // Bound as pseudo-variables by the enclosing predicate's
                // focus scope (leading space: not expressible as user vars).
                let pseudo = format!(" {name}");
                if self.env.contains_key(&pseudo) {
                    self.compile_here(&Expr::Var(pseudo))
                } else {
                    Err(CompileError::new(
                        exrquy_diag::ErrorCode::XPST0017,
                        format!("fn:{name}() is only supported inside predicates"),
                    ))
                }
            }
            _ => Err(CompileError::new(
                exrquy_diag::ErrorCode::XPST0017,
                format!("unsupported function fn:{name}/{}", args.len()),
            )),
        }
    }

    /// Aggregates over a sequence, grouped per iteration, with optional
    /// empty-group completion (`fn:count(()) = 0`).
    fn compile_aggregate(
        &mut self,
        kind: AggrKind,
        arg: &Expr,
        default: Option<AValue>,
    ) -> CResult {
        let q = self.compile(arg)?;
        let ii = self.project_iter_item(q);
        let aggr = self.dag.add(Op::Aggr {
            input: ii,
            kind,
            new: Col::RES,
            arg: if kind == AggrKind::Count {
                None
            } else {
                Some(Col::ITEM)
            },
            part: Some(Col::ITER),
        });
        let completed = match default {
            Some(d) => self.complete_with_default(aggr, Col::RES, d),
            None => aggr,
        };
        Ok(self.singleton(completed, Col::RES))
    }

    /// `fn:string`: the space-joined string value of the sequence.
    fn compile_string(&mut self, arg: &Expr) -> CResult {
        let q = self.compile(arg)?;
        let joined = self.string_join(q);
        Ok(self.singleton(joined, Col::ITEM1))
    }

    /// N-ary per-iteration scalar function: join the singleton views of
    /// all arguments on `iter`, apply `kind`, optionally complete missing
    /// iterations with `default`.
    pub(crate) fn scalar_call(
        &mut self,
        kind: FunKind,
        args: &[Expr],
        atomize: bool,
        default: Option<AValue>,
    ) -> CResult {
        assert!(!args.is_empty() && args.len() <= 10);
        let mut cur: Option<OpId> = None;
        let mut cols = Vec::new();
        for (i, a) in args.iter().enumerate() {
            let q = self.compile(a)?;
            let s = self.scalar(q, arg_col(i), atomize);
            cols.push(arg_col(i));
            cur = Some(match cur {
                None => s,
                Some(acc) => {
                    let mut rename: Vec<(Col, Col)> = vec![(Col::ITER1, Col::ITER)];
                    rename.push((arg_col(i), arg_col(i)));
                    let renamed = self.dag.add(Op::Project {
                        input: s,
                        cols: rename,
                    });
                    let joined = self.dag.add(Op::EquiJoin {
                        l: acc,
                        r: renamed,
                        lcol: Col::ITER,
                        rcol: Col::ITER1,
                    });
                    // Drop the helper join column.
                    let mut keep: Vec<(Col, Col)> = vec![(Col::ITER, Col::ITER)];
                    for c in &cols {
                        keep.push((*c, *c));
                    }
                    self.dag.add(Op::Project {
                        input: joined,
                        cols: keep,
                    })
                }
            });
        }
        let joined = cur.unwrap();
        let f = self.dag.add(Op::Fun {
            input: joined,
            new: Col::RES,
            kind,
            args: cols,
        });
        let result = self.dag.add(Op::Project {
            input: f,
            cols: vec![(Col::ITER, Col::ITER), (Col::RES, Col::RES)],
        });
        let completed = match default {
            Some(d) => self.complete_with_default(result, Col::RES, d),
            None => result,
        };
        Ok(self.singleton(completed, Col::RES))
    }
}
