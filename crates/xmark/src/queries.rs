//! The 20 XMark benchmark queries, transcribed to the dialect this
//! reproduction supports.
//!
//! Deviations from the published query set (documented per query):
//!
//! * Q18 inlines the user-defined function `local:convert` (module-local
//!   function declarations are out of scope) — the arithmetic is textually
//!   identical.
//! * `xs:decimal`-style type annotations on function signatures do not
//!   occur (schema-less processing, as in the paper's setup).
//! * Each query is written with an explicit `let $auction := doc(…)`
//!   binding, as in the original set.

/// Query Qn (1-based). Panics for n ∉ 1..=20.
pub fn query(n: usize) -> &'static str {
    ALL_QUERIES[n - 1]
}

/// Short label "Q1".."Q20".
pub fn query_name(n: usize) -> String {
    format!("Q{n}")
}

/// All twenty queries, Q1 first.
pub const ALL_QUERIES: [&str; 20] = [
    // Q1: exact-match lookup by attribute value.
    r#"let $auction := doc("auction.xml") return
       for $b in $auction/site/people/person[@id = "person0"]
       return $b/name/text()"#,
    // Q2: positional access — first bidder increase per auction.
    r#"let $auction := doc("auction.xml") return
       for $b in $auction/site/open_auctions/open_auction
       return <increase>{ $b/bidder[1]/increase/text() }</increase>"#,
    // Q3: first and last positional access.
    r#"let $auction := doc("auction.xml") return
       for $b in $auction/site/open_auctions/open_auction
       where fn:zero-or-one($b/bidder[1]/increase/text()) * 2
             <= $b/bidder[last()]/increase/text()
       return <increase first="{ $b/bidder[1]/increase/text() }"
                        last="{ $b/bidder[last()]/increase/text() }"/>"#,
    // Q4: document-order comparison inside a quantifier.
    r#"let $auction := doc("auction.xml") return
       for $b in $auction/site/open_auctions/open_auction
       where some $pr1 in $b/bidder/personref[@person = "person20"],
                  $pr2 in $b/bidder/personref[@person = "person51"]
             satisfies $pr1 << $pr2
       return <history>{ $b/reserve/text() }</history>"#,
    // Q5: aggregate over a filtered sequence.
    r#"let $auction := doc("auction.xml") return
       fn:count(for $i in $auction/site/closed_auctions/closed_auction
                where $i/price/text() >= 40
                return $i/price)"#,
    // Q6: descendant counting (the paper's running example; the original
    // benchmark text uses `//site/regions` and `$b//item`, which is what
    // makes Q6 one of the paper's step-merging outliers in Figure 12).
    r#"let $auction := doc("auction.xml") return
       for $b in $auction//site/regions
       return fn:count($b//item)"#,
    // Q7: multiple descendant counts.
    r#"let $auction := doc("auction.xml") return
       for $p in $auction/site
       return fn:count($p//description) + fn:count($p//annotation)
              + fn:count($p//emailaddress)"#,
    // Q8: value join person ⋈ closed_auction (buyer).
    r#"let $auction := doc("auction.xml") return
       for $p in $auction/site/people/person
       let $a := for $t in $auction/site/closed_auctions/closed_auction
                 where $t/buyer/@person = $p/@id
                 return $t
       return <item person="{ $p/name/text() }">{ fn:count($a) }</item>"#,
    // Q9: two chained value joins (person ⋈ closed ⋈ europe item).
    r#"let $auction := doc("auction.xml") return
       for $p in $auction/site/people/person
       let $a := for $t in $auction/site/closed_auctions/closed_auction
                 let $n := for $t2 in $auction/site/regions/europe/item
                           where $t/itemref/@item = $t2/@id
                           return $t2
                 where $p/@id = $t/buyer/@person
                 return <item>{ $n/name/text() }</item>
       return <person name="{ $p/name/text() }">{ $a }</person>"#,
    // Q10: grouping by interest category, rich reconstruction.
    r#"let $auction := doc("auction.xml") return
       for $i in fn:distinct-values(
                   $auction/site/people/person/profile/interest/@category)
       let $p := for $t in $auction/site/people/person
                 where $t/profile/interest/@category = $i
                 return <personne>
                          <statistiques>
                            <sexe>{ $t/profile/gender/text() }</sexe>
                            <age>{ $t/profile/age/text() }</age>
                            <education>{ $t/profile/education/text() }</education>
                            <revenu>{ fn:data($t/profile/@income) }</revenu>
                          </statistiques>
                          <coordonnees>
                            <nom>{ $t/name/text() }</nom>
                            <rue>{ $t/address/street/text() }</rue>
                            <ville>{ $t/address/city/text() }</ville>
                            <pays>{ $t/address/country/text() }</pays>
                            <reseau>
                              <courrier>{ $t/emailaddress/text() }</courrier>
                              <pagePerso>{ $t/homepage/text() }</pagePerso>
                            </reseau>
                          </coordonnees>
                          <cartePaiement>{ $t/creditcard/text() }</cartePaiement>
                        </personne>
       return <categorie>{ <id>{ $i }</id>, $p }</categorie>"#,
    // Q11: the profiled value join (Table 2).
    r#"let $auction := doc("auction.xml") return
       for $p in $auction/site/people/person
       let $l := for $i in $auction/site/open_auctions/open_auction/initial
                 where $p/profile/@income > 5000 * fn:exactly-one($i/text())
                 return $i
       return <items name="{ $p/name/text() }">{ fn:count($l) }</items>"#,
    // Q12: Q11 restricted to high-income persons.
    r#"let $auction := doc("auction.xml") return
       for $p in $auction/site/people/person
       let $l := for $i in $auction/site/open_auctions/open_auction/initial
                 where $p/profile/@income > 5000 * fn:exactly-one($i/text())
                 return $i
       where $p/profile/@income > 50000
       return <items person="{ $p/profile/@income }">{ fn:count($l) }</items>"#,
    // Q13: reconstruction of a complete subtree.
    r#"let $auction := doc("auction.xml") return
       for $i in $auction/site/regions/australia/item
       return <item name="{ $i/name/text() }">{ $i/description }</item>"#,
    // Q14: full-text-ish containment over descendant items.
    r#"let $auction := doc("auction.xml") return
       for $i in $auction/site//item
       where fn:contains(fn:string(fn:exactly-one($i/description)), "gold")
       return $i/name/text()"#,
    // Q15: one long, selective path.
    r#"let $auction := doc("auction.xml") return
       for $a in $auction/site/closed_auctions/closed_auction/annotation/
                 description/parlist/listitem/parlist/listitem/text/emph/
                 keyword/text()
       return <text>{ $a }</text>"#,
    // Q16: the Q15 path as an existence test.
    r#"let $auction := doc("auction.xml") return
       for $a in $auction/site/closed_auctions/closed_auction
       where fn:not(fn:empty($a/annotation/description/parlist/listitem/
                              parlist/listitem/text/emph/keyword/text()))
       return <person id="{ $a/seller/@person }"/>"#,
    // Q17: missing-element test.
    r#"let $auction := doc("auction.xml") return
       for $p in $auction/site/people/person
       where fn:empty($p/homepage/text())
       return <person name="{ $p/name/text() }"/>"#,
    // Q18: arithmetic over optional values. The original declares
    // `local:convert($v) { 2.20371 * $v }`; inlined here.
    r#"let $auction := doc("auction.xml") return
       for $i in $auction/site/open_auctions/open_auction
       return 2.20371 * fn:zero-or-one($i/reserve/text())"#,
    // Q19: order by over all items (context (f): the tuple stream feeding
    // the sort may be generated in arbitrary order).
    r#"let $auction := doc("auction.xml") return
       for $b in $auction/site/regions//item
       let $k := $b/name/text()
       order by fn:zero-or-one($b/location) ascending
       return <item name="{ $k }">{ $b/location/text() }</item>"#,
    // Q20: income histogram.
    r#"let $auction := doc("auction.xml") return
       <result>
         <preferred>{ fn:count($auction/site/people/person/profile[@income >= 100000]) }</preferred>
         <standard>{ fn:count($auction/site/people/person/profile[@income < 100000 and @income >= 30000]) }</standard>
         <challenge>{ fn:count($auction/site/people/person/profile[@income < 30000]) }</challenge>
         <na>{ fn:count(for $p in $auction/site/people/person
                        where fn:empty($p/profile/@income)
                        return $p) }</na>
       </result>"#,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_queries() {
        assert_eq!(ALL_QUERIES.len(), 20);
        assert_eq!(query(1), ALL_QUERIES[0]);
        assert_eq!(query_name(11), "Q11");
    }

    #[test]
    fn q11_is_the_papers_join() {
        assert!(query(11).contains("5000 *"));
        assert!(query(11).contains("fn:count($l)"));
    }
}
