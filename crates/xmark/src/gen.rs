//! Deterministic generator for XMark `auction.xml` instances.
//!
//! Element structure follows the benchmark's DTD for everything the 20
//! queries navigate; value distributions are simplified but keep the
//! selectivities the evaluation depends on (see crate docs).

use crate::text;
use exrquy_xml::rng::SmallRng;
use std::fmt::Write;

/// Generator parameters.
#[derive(Debug, Clone, Copy)]
pub struct XmarkConfig {
    /// Benchmark scale factor: `1.0` ≈ the original 100 MB document.
    pub scale: f64,
    /// RNG seed (same seed + scale ⇒ byte-identical document).
    pub seed: u64,
}

impl XmarkConfig {
    /// Config at `scale` with the default seed.
    pub fn at_scale(scale: f64) -> Self {
        XmarkConfig { scale, seed: 42 }
    }

    fn count(&self, base: f64) -> usize {
        ((base * self.scale).round() as usize).max(1)
    }

    /// Number of `person` elements this config generates.
    pub fn persons(&self) -> usize {
        self.count(25_500.0)
    }

    /// Number of `item` elements (across all regions).
    pub fn items(&self) -> usize {
        self.count(21_750.0)
    }

    /// Number of `open_auction` elements.
    pub fn open_auctions(&self) -> usize {
        self.count(12_000.0)
    }

    /// Number of `closed_auction` elements.
    pub fn closed_auctions(&self) -> usize {
        self.count(9_750.0)
    }

    /// Number of `category` elements.
    pub fn categories(&self) -> usize {
        self.count(1_000.0)
    }
}

/// The six region elements with their share of all items.
const REGIONS: &[(&str, f64)] = &[
    ("africa", 0.05),
    ("asia", 0.10),
    ("australia", 0.10),
    ("europe", 0.30),
    ("namerica", 0.30),
    ("samerica", 0.15),
];

/// Generate one document as XML text.
pub fn generate(cfg: &XmarkConfig) -> String {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let persons = cfg.persons();
    let items = cfg.items();
    let opens = cfg.open_auctions();
    let closeds = cfg.closed_auctions();
    let categories = cfg.categories();

    let mut g = Gen {
        out: String::with_capacity((cfg.scale * 100_000_000.0) as usize / 2 + 4096),
        rng: &mut rng,
        persons,
        items,
        categories,
        opens,
    };
    g.out.push_str("<site>\n");
    g.regions(items);
    g.categories_section();
    g.catgraph();
    g.people();
    g.open_auctions();
    g.closed_auctions(closeds);
    g.out.push_str("</site>\n");
    g.out
}

struct Gen<'r> {
    out: String,
    rng: &'r mut SmallRng,
    persons: usize,
    items: usize,
    categories: usize,
    opens: usize,
}

impl Gen<'_> {
    fn chance(&mut self, p: f64) -> bool {
        self.rng.gen_bool(p)
    }

    fn person_ref(&mut self) -> String {
        format!("person{}", self.rng.gen_range(0..self.persons))
    }

    fn item_ref(&mut self) -> String {
        format!("item{}", self.rng.gen_range(0..self.items))
    }

    fn category_ref(&mut self) -> String {
        format!("category{}", self.rng.gen_range(0..self.categories))
    }

    /// `<text>…</text>` content with occasional inline markup.
    fn text_block(&mut self) {
        self.out.push_str("<text>");
        let n = self.rng.gen_range(4..14);
        for i in 0..n {
            if i > 0 {
                self.out.push(' ');
            }
            let w = text::word(self.rng);
            match self.rng.gen_range(0..10) {
                0 => {
                    let _ = write!(self.out, "<keyword>{w}</keyword>");
                }
                1 => {
                    let _ = write!(self.out, "<bold>{w}</bold>");
                }
                2 => {
                    let _ = write!(self.out, "<emph>{w}</emph>");
                }
                _ => self.out.push_str(w),
            }
        }
        self.out.push_str("</text>");
    }

    /// A description: either a flat text block or (when `allow_deep`) the
    /// nested parlist structure Q15/Q16 navigate, whose innermost text
    /// carries an `<emph><keyword>…</keyword></emph>`.
    fn description(&mut self, deep_p: f64) {
        self.out.push_str("<description>");
        if self.rng.gen_bool(deep_p) {
            self.out
                .push_str("<parlist><listitem><parlist><listitem><text>");
            let s = text::sentence(self.rng, 5);
            let w = text::word(self.rng);
            let _ = write!(self.out, "{s} <emph><keyword>{w}</keyword></emph>");
            self.out
                .push_str("</text></listitem></parlist></listitem><listitem>");
            self.text_block();
            self.out.push_str("</listitem></parlist>");
        } else {
            self.text_block();
        }
        self.out.push_str("</description>");
    }

    fn regions(&mut self, total_items: usize) {
        self.out.push_str("<regions>\n");
        let mut next_id = 0usize;
        for (ri, &(name, share)) in REGIONS.iter().enumerate() {
            let _ = writeln!(self.out, "<{name}>");
            let n = if ri + 1 == REGIONS.len() {
                total_items - next_id
            } else {
                ((total_items as f64) * share).round() as usize
            };
            for _ in 0..n.min(total_items.saturating_sub(next_id)) {
                self.item(next_id);
                next_id += 1;
            }
            let _ = writeln!(self.out, "</{name}>");
        }
        self.out.push_str("</regions>\n");
    }

    fn item(&mut self, id: usize) {
        let _ = write!(self.out, "<item id=\"item{id}\">");
        let _ = write!(
            self.out,
            "<location>{}</location>",
            text::COUNTRIES[self.rng.gen_range(0..text::COUNTRIES.len())]
        );
        let _ = write!(
            self.out,
            "<quantity>{}</quantity>",
            self.rng.gen_range(1..5)
        );
        let _ = write!(self.out, "<name>{}</name>", text::sentence(self.rng, 2));
        self.out.push_str("<payment>Creditcard</payment>");
        self.description(0.05);
        self.out
            .push_str("<shipping>Will ship internationally</shipping>");
        let n_cat = self.rng.gen_range(1..4);
        for _ in 0..n_cat {
            let c = self.category_ref();
            let _ = write!(self.out, "<incategory category=\"{c}\"/>");
        }
        if self.chance(0.7) {
            self.out.push_str("<mailbox>");
            let n_mail = self.rng.gen_range(0..3);
            for _ in 0..n_mail {
                let from = text::person_name(self.rng);
                let to = text::person_name(self.rng);
                let date = text::date(self.rng);
                let _ = write!(
                    self.out,
                    "<mail><from>{from}</from><to>{to}</to><date>{date}</date>"
                );
                self.text_block();
                self.out.push_str("</mail>");
            }
            self.out.push_str("</mailbox>");
        }
        self.out.push_str("</item>\n");
    }

    fn categories_section(&mut self) {
        self.out.push_str("<categories>\n");
        for i in 0..self.categories {
            let _ = write!(
                self.out,
                "<category id=\"category{i}\"><name>{}</name>",
                text::sentence(self.rng, 2)
            );
            self.description(0.0);
            self.out.push_str("</category>\n");
        }
        self.out.push_str("</categories>\n");
    }

    fn catgraph(&mut self) {
        self.out.push_str("<catgraph>\n");
        let edges = self.categories;
        for _ in 0..edges {
            let from = self.category_ref();
            let to = self.category_ref();
            let _ = write!(self.out, "<edge from=\"{from}\" to=\"{to}\"/>");
        }
        self.out.push_str("\n</catgraph>\n");
    }

    fn people(&mut self) {
        self.out.push_str("<people>\n");
        for i in 0..self.persons {
            let _ = write!(self.out, "<person id=\"person{i}\">");
            let name = text::person_name(self.rng);
            let _ = write!(self.out, "<name>{name}</name>");
            let mail = name.replace(' ', ".");
            let _ = write!(
                self.out,
                "<emailaddress>mailto:{mail}@example.com</emailaddress>"
            );
            if self.chance(0.5) {
                let _ = write!(
                    self.out,
                    "<phone>+{} ({}) {}</phone>",
                    self.rng.gen_range(1..99),
                    self.rng.gen_range(10..999),
                    self.rng.gen_range(1_000_000..99_999_999)
                );
            }
            if self.chance(0.6) {
                let city = text::CITIES[self.rng.gen_range(0..text::CITIES.len())];
                let country = text::COUNTRIES[self.rng.gen_range(0..text::COUNTRIES.len())];
                let _ = write!(
                    self.out,
                    "<address><street>{} {}</street><city>{city}</city>\
                     <country>{country}</country><zipcode>{}</zipcode></address>",
                    self.rng.gen_range(1..100),
                    text::sentence(self.rng, 1),
                    self.rng.gen_range(10000..99999)
                );
            }
            if self.chance(0.5) {
                let _ = write!(
                    self.out,
                    "<homepage>http://www.example.com/~{}</homepage>",
                    mail
                );
            }
            if self.chance(0.5) {
                let _ = write!(
                    self.out,
                    "<creditcard>{} {} {} {}</creditcard>",
                    self.rng.gen_range(1000..9999),
                    self.rng.gen_range(1000..9999),
                    self.rng.gen_range(1000..9999),
                    self.rng.gen_range(1000..9999)
                );
            }
            // profile with @income: ~85 % of persons have one (Q20's "na"
            // bucket needs income-less persons).
            if self.chance(0.85) {
                let income = self.rng.gen_range(9_000..100_000);
                let _ = write!(self.out, "<profile income=\"{income}\">");
                if self.chance(0.8) {
                    let gender = if self.chance(0.5) { "male" } else { "female" };
                    let _ = write!(self.out, "<gender>{gender}</gender>");
                }
                let n_int = self.rng.gen_range(0..4);
                for _ in 0..n_int {
                    let c = self.category_ref();
                    let _ = write!(self.out, "<interest category=\"{c}\"/>");
                }
                if self.chance(0.3) {
                    self.out.push_str("<education>Graduate School</education>");
                }
                let business = if self.chance(0.5) { "Yes" } else { "No" };
                let _ = write!(self.out, "<business>{business}</business>");
                if self.chance(0.6) {
                    let _ = write!(self.out, "<age>{}</age>", self.rng.gen_range(18..70));
                }
                self.out.push_str("</profile>");
            }
            if self.chance(0.4) {
                self.out.push_str("<watches>");
                let n_w = self.rng.gen_range(1..4);
                for _ in 0..n_w {
                    let oa = self.rng.gen_range(0..self.opens);
                    let _ = write!(self.out, "<watch open_auction=\"open_auction{oa}\"/>");
                }
                self.out.push_str("</watches>");
            }
            self.out.push_str("</person>\n");
        }
        self.out.push_str("</people>\n");
    }

    fn open_auctions(&mut self) {
        self.out.push_str("<open_auctions>\n");
        for i in 0..self.opens {
            let _ = write!(self.out, "<open_auction id=\"open_auction{i}\">");
            // initial ∈ [0.5, 250): together with income ∈ [9k, 100k) this
            // keeps Q11/Q12's `income > 5000 * initial` selectivity ≈ 4 %.
            let initial = self.rng.gen_range(0.5_f64..250.0);
            let _ = write!(self.out, "<initial>{initial:.2}</initial>");
            if self.chance(0.5) {
                let _ = write!(self.out, "<reserve>{:.2}</reserve>", initial * 1.2);
            }
            let n_bidders = self.rng.gen_range(0..8);
            let mut current = initial;
            for _ in 0..n_bidders {
                let date = text::date(self.rng);
                let inc = self.rng.gen_range(1.5_f64..25.0);
                current += inc;
                let pref = self.person_ref();
                let _ = write!(
                    self.out,
                    "<bidder><date>{date}</date><time>{:02}:{:02}:{:02}</time>\
                     <personref person=\"{pref}\"/><increase>{inc:.2}</increase></bidder>",
                    self.rng.gen_range(0..24),
                    self.rng.gen_range(0..60),
                    self.rng.gen_range(0..60)
                );
            }
            let _ = write!(self.out, "<current>{current:.2}</current>");
            if self.chance(0.3) {
                self.out.push_str("<privacy>Yes</privacy>");
            }
            let iref = self.item_ref();
            let _ = write!(self.out, "<itemref item=\"{iref}\"/>");
            let seller = self.person_ref();
            let _ = write!(self.out, "<seller person=\"{seller}\"/>");
            self.annotation(0.05);
            let _ = write!(
                self.out,
                "<quantity>{}</quantity>",
                self.rng.gen_range(1..5)
            );
            let kind = if self.chance(0.5) {
                "Regular"
            } else {
                "Featured"
            };
            let _ = write!(self.out, "<type>{kind}</type>");
            let (d1, d2) = (text::date(self.rng), text::date(self.rng));
            let _ = write!(
                self.out,
                "<interval><start>{d1}</start><end>{d2}</end></interval>"
            );
            self.out.push_str("</open_auction>\n");
        }
        self.out.push_str("</open_auctions>\n");
    }

    fn annotation(&mut self, deep_p: f64) {
        let author = self.person_ref();
        let _ = write!(self.out, "<annotation><author person=\"{author}\"/>");
        self.description(deep_p);
        self.out
            .push_str("<happiness>Quite happy</happiness></annotation>");
    }

    fn closed_auctions(&mut self, n: usize) {
        self.out.push_str("<closed_auctions>\n");
        for _ in 0..n {
            self.out.push_str("<closed_auction>");
            let seller = self.person_ref();
            let buyer = self.person_ref();
            let iref = self.item_ref();
            let _ = write!(self.out, "<seller person=\"{seller}\"/>");
            let _ = write!(self.out, "<buyer person=\"{buyer}\"/>");
            let _ = write!(self.out, "<itemref item=\"{iref}\"/>");
            let _ = write!(
                self.out,
                "<price>{:.2}</price>",
                self.rng.gen_range(5.0_f64..200.0)
            );
            let _ = write!(self.out, "<date>{}</date>", text::date(self.rng));
            let _ = write!(
                self.out,
                "<quantity>{}</quantity>",
                self.rng.gen_range(1..5)
            );
            let kind = if self.chance(0.5) {
                "Regular"
            } else {
                "Featured"
            };
            let _ = write!(self.out, "<type>{kind}</type>");
            // Q15/Q16 navigate the deep parlist structure: generate it for
            // ~25 % of closed-auction annotations.
            self.annotation(0.25);
            self.out.push_str("</closed_auction>\n");
        }
        self.out.push_str("</closed_auctions>\n");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrquy_xml::{parse_document, NamePool};

    #[test]
    fn generates_wellformed_xml() {
        let cfg = XmarkConfig::at_scale(0.002);
        let xml = generate(&cfg);
        let mut pool = NamePool::new();
        let doc = parse_document(&xml, &mut pool).expect("generated XML parses");
        doc.check_invariants().unwrap();
        assert!(doc.len() > 1000);
    }

    #[test]
    fn deterministic_per_seed() {
        let cfg = XmarkConfig {
            scale: 0.001,
            seed: 9,
        };
        assert_eq!(generate(&cfg), generate(&cfg));
        let other = XmarkConfig {
            scale: 0.001,
            seed: 10,
        };
        assert_ne!(generate(&cfg), generate(&other));
    }

    #[test]
    fn contains_all_query_touchpoints() {
        let xml = generate(&XmarkConfig::at_scale(0.004));
        for needle in [
            "person id=\"person0\"",                        // Q1
            "<bidder>",                                     // Q2/Q3
            "<initial>",                                    // Q11
            "income=",                                      // Q11/Q12/Q20
            "<closed_auction>",                             // Q5/Q8/Q9
            "<parlist><listitem><parlist><listitem><text>", // Q15/Q16
            "<homepage>",                                   // Q17
            "<reserve>",                                    // Q18
            "<location>",                                   // Q19
            "<incategory",                                  // Q10
            "<australia>",                                  // Q13
        ] {
            assert!(xml.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn scale_controls_size() {
        let small = generate(&XmarkConfig::at_scale(0.001)).len();
        let large = generate(&XmarkConfig::at_scale(0.004)).len();
        assert!(large > small * 2, "{small} vs {large}");
    }

    #[test]
    fn income_initial_selectivity_near_four_percent() {
        // The Q11 join predicate income > 5000 * initial must keep its
        // paper selectivity (≈4 %) under our value distributions.
        let xml = generate(&XmarkConfig::at_scale(0.01));
        let incomes: Vec<f64> = xml
            .match_indices("income=\"")
            .map(|(i, _)| {
                let rest = &xml[i + 8..];
                let end = rest.find('"').unwrap();
                rest[..end].parse::<f64>().unwrap()
            })
            .collect();
        let initials: Vec<f64> = xml
            .match_indices("<initial>")
            .map(|(i, _)| {
                let rest = &xml[i + 9..];
                let end = rest.find('<').unwrap();
                rest[..end].parse::<f64>().unwrap()
            })
            .collect();
        assert!(!incomes.is_empty() && !initials.is_empty());
        let mut hits = 0usize;
        let mut total = 0usize;
        for &inc in incomes.iter().take(300) {
            for &ini in initials.iter().take(300) {
                total += 1;
                if inc > 5000.0 * ini {
                    hits += 1;
                }
            }
        }
        let sel = hits as f64 / total as f64;
        assert!((0.01..0.10).contains(&sel), "selectivity {sel}");
    }
}
