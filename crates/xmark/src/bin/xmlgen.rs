//! Standalone XMark document generator (the Rust counterpart of the
//! benchmark's `xmlgen`).
//!
//! ```sh
//! cargo run -p exrquy-xmark --release --bin xmlgen -- 0.01 auction.xml
//! ```

use exrquy_xmark::{generate, XmarkConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let scale: f64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(0.01);
    let path = args.next();

    let cfg = XmarkConfig::at_scale(scale);
    let xml = generate(&cfg);
    eprintln!(
        "scale {scale}: {:.2} MB, {} persons, {} items, {} open / {} closed auctions",
        xml.len() as f64 / 1e6,
        cfg.persons(),
        cfg.items(),
        cfg.open_auctions(),
        cfg.closed_auctions()
    );
    match path {
        Some(p) => {
            std::fs::write(&p, &xml).expect("write output file");
            eprintln!("wrote {p}");
        }
        None => {
            use std::io::Write;
            std::io::stdout()
                .write_all(xml.as_bytes())
                .expect("write stdout");
        }
    }
}
