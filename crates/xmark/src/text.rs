//! Filler-text generation for descriptions, names and annotations.
//!
//! The original XMark generator samples Shakespeare's plays; we sample a
//! fixed word list (including the word `gold` that Q14 searches for) with
//! occasional `<keyword>`, `<bold>` and `<emph>` markup.

use exrquy_xml::rng::SmallRng;

/// Word list used for all running text (101 words; includes "gold").
pub const WORDS: &[&str] = &[
    "the", "of", "and", "to", "a", "in", "that", "is", "was", "he", "for", "it", "with", "as",
    "his", "on", "be", "at", "by", "had", "not", "are", "but", "from", "or", "have", "an", "they",
    "which", "one", "you", "were", "her", "all", "she", "there", "would", "their", "we", "him",
    "been", "has", "when", "who", "will", "more", "no", "if", "out", "so", "said", "what", "up",
    "its", "about", "into", "than", "them", "can", "only", "other", "new", "some", "could", "time",
    "these", "two", "may", "then", "do", "first", "any", "my", "now", "such", "like", "our",
    "over", "man", "me", "even", "most", "made", "after", "also", "did", "many", "before", "must",
    "through", "years", "where", "much", "your", "way", "gold", "silver", "duty", "honour",
    "merchant", "purse",
];

/// First names for people.
pub const FIRST_NAMES: &[&str] = &[
    "Isabel",
    "Kasimir",
    "Umberto",
    "Waldemar",
    "Jaak",
    "Mehrdad",
    "Farrukh",
    "Sibrand",
    "Malgorzata",
    "Dirce",
    "Benjamin",
    "Shalom",
    "Takahiro",
    "Aloys",
    "Mechthild",
    "Juliana",
];

/// Last names for people.
pub const LAST_NAMES: &[&str] = &[
    "Marcinkowski",
    "Takano",
    "Barbosa",
    "Gerlach",
    "Sierra",
    "Unno",
    "Morrison",
    "Siegel",
    "Dustdar",
    "Oppitz",
    "Braumandl",
    "Legaria",
    "Nikolaev",
    "Virgilio",
    "Weikum",
    "Suzuki",
];

/// Cities for addresses.
pub const CITIES: &[&str] = &[
    "Amsterdam",
    "Munich",
    "Toronto",
    "Kyoto",
    "Florence",
    "Madras",
    "Quito",
    "Nairobi",
    "Auckland",
    "Boston",
];

/// Countries for addresses.
pub const COUNTRIES: &[&str] = &[
    "United States",
    "Germany",
    "Netherlands",
    "Japan",
    "Italy",
    "India",
    "Ecuador",
    "Kenya",
    "New Zealand",
    "Canada",
];

/// One random word.
pub fn word(rng: &mut SmallRng) -> &'static str {
    WORDS[rng.gen_range(0..WORDS.len())]
}

/// A sentence of `n` plain words.
pub fn sentence(rng: &mut SmallRng, n: usize) -> String {
    let mut s = String::new();
    for i in 0..n {
        if i > 0 {
            s.push(' ');
        }
        s.push_str(word(rng));
    }
    s
}

/// A person name.
pub fn person_name(rng: &mut SmallRng) -> String {
    format!(
        "{} {}",
        FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())],
        LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())]
    )
}

/// A date `MM/DD/YYYY` in the benchmark's range.
pub fn date(rng: &mut SmallRng) -> String {
    format!(
        "{:02}/{:02}/{}",
        rng.gen_range(1..=12),
        rng.gen_range(1..=28),
        rng.gen_range(1998..=2001)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_list_contains_gold() {
        assert!(WORDS.contains(&"gold"));
    }

    #[test]
    fn generation_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        assert_eq!(sentence(&mut a, 12), sentence(&mut b, 12));
        assert_eq!(person_name(&mut a), person_name(&mut b));
        assert_eq!(date(&mut a), date(&mut b));
    }

    #[test]
    fn sentence_has_requested_words() {
        let mut rng = SmallRng::seed_from_u64(1);
        let s = sentence(&mut rng, 5);
        assert_eq!(s.split(' ').count(), 5);
    }
}
