//! The XMark benchmark \[Schmidt et al., VLDB 2002\]: a scalable
//! `auction.xml` generator and the 20 benchmark queries — the workload of
//! the paper's §5 evaluation.
//!
//! The original benchmark ships a C generator (`xmlgen`); this crate is a
//! deterministic Rust re-implementation producing the same element
//! structure (see `gen.rs` for the schema) with simplified value
//! distributions. Everything the 20 queries touch exists with comparable
//! selectivities — e.g. `person/profile/@income` against
//! `open_auction/initial` keeps Q11's ≈4 % join selectivity, and closed
//! auction annotations contain the nested
//! `parlist/listitem/parlist/listitem/text/emph/keyword` structure that
//! Q15/Q16 navigate.
//!
//! Scale factor `1.0` corresponds to the original benchmark's 100 MB
//! document (21 750 items, 25 500 persons, 12 000 open and 9 750 closed
//! auctions); sizes scale linearly.

pub mod gen;
pub mod queries;
pub mod text;

pub use gen::{generate, XmarkConfig};
pub use queries::{query, query_name, ALL_QUERIES};
