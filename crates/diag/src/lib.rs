//! Shared diagnostics for the eXrQuy pipeline: a W3C-style error
//! taxonomy, execution budgets, and cooperative cancellation.
//!
//! Every pipeline crate (xml, frontend, compiler, opt, engine, core)
//! depends on this crate so that errors raised anywhere carry a stable
//! machine-readable code, the pipeline stage that raised them, and —
//! where available — a source offset. The CLI maps [`ErrorClass`] to
//! process exit codes.

pub mod failpoint;

pub use failpoint::{FailpointSpecError, Failpoints, OracleArm};

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stable, machine-readable error codes. The `XP*`/`FO*`/`XQ*` codes
/// follow the W3C XQuery error namespace; `EXRQ*` codes are
/// engine-specific resource-governance codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorCode {
    /// Syntax error in the query (static).
    XPST0003,
    /// Undefined variable or other unresolved static reference.
    XPST0008,
    /// Unknown function name / arity (static).
    XPST0017,
    /// Context item used where none is defined.
    XPDY0002,
    /// Value has the wrong type for the operation.
    XPTY0004,
    /// Value cannot be cast to the required type.
    FORG0001,
    /// Invalid argument to an effective-boolean-value computation.
    FORG0006,
    /// Arithmetic error (division by zero, …).
    FOAR0001,
    /// Document retrieval failure (document not loaded / I/O error).
    FODC0002,
    /// Document content is not well-formed XML (cf. `fn:parse-xml`).
    FODC0006,
    /// Attribute constructed after non-attribute content.
    XQTY0024,
    /// Execution budget (rows, wall-clock, constructed nodes) exceeded.
    EXRQ0001,
    /// Query cancelled via a [`CancellationToken`].
    EXRQ0002,
    /// Recursion / nesting depth limit exceeded.
    EXRQ0003,
    /// Differential oracle divergence: an optimized execution produced a
    /// result outside the admissible set of the reference execution.
    EXRQ0004,
    /// The optimizer produced an ill-formed plan (caught by per-rewrite
    /// validation; names the offending rule and operator).
    EXRQ0005,
    /// Server overloaded: the admission queue is full and the request was
    /// shed instead of queued. Retryable after backoff.
    EXRQ0006,
    /// Request deadline exceeded — either before execution started (shed
    /// from the queue) or mid-execution via the [`BudgetMeter`]'s hard
    /// deadline.
    EXRQ0007,
    /// Server draining: shutdown in progress, no new work admitted.
    EXRQ0008,
    /// Internal error: request execution panicked and the panic was
    /// contained by the serving layer. The request's overlay is
    /// discarded; shared state is unaffected. Always an engine bug,
    /// never user error — and **never retry-safe**: the same input
    /// deterministically panics again.
    EXRQ0009,
    /// Internal error: an engine invariant was violated (e.g. a plan
    /// handed the engine a non-integer value in an `iter`/`pos`-class
    /// column). Always a planner/engine bug — the typed counterpart of a
    /// panic, so a future plan bug degrades to an error response instead
    /// of a daemon-side `catch_unwind` crash report. Never retry-safe.
    EXRQ0010,
    /// Protocol error: the request line could not be parsed as a valid
    /// request (invalid JSON, unknown op, bad field types, oversized
    /// line). The connection survives; the request does not.
    EPROTO,
}

impl ErrorCode {
    /// Every code, for exhaustive iteration (round-trip tests, retry
    /// tables). Kept in `as_str` order; the enum is `#[non_exhaustive]`,
    /// so external matches should go through this slice or [`parse`].
    ///
    /// [`parse`]: ErrorCode::parse
    pub const ALL: &'static [ErrorCode] = &[
        ErrorCode::XPST0003,
        ErrorCode::XPST0008,
        ErrorCode::XPST0017,
        ErrorCode::XPDY0002,
        ErrorCode::XPTY0004,
        ErrorCode::FORG0001,
        ErrorCode::FORG0006,
        ErrorCode::FOAR0001,
        ErrorCode::FODC0002,
        ErrorCode::FODC0006,
        ErrorCode::XQTY0024,
        ErrorCode::EXRQ0001,
        ErrorCode::EXRQ0002,
        ErrorCode::EXRQ0003,
        ErrorCode::EXRQ0004,
        ErrorCode::EXRQ0005,
        ErrorCode::EXRQ0006,
        ErrorCode::EXRQ0007,
        ErrorCode::EXRQ0008,
        ErrorCode::EXRQ0009,
        ErrorCode::EXRQ0010,
        ErrorCode::EPROTO,
    ];

    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::XPST0003 => "XPST0003",
            ErrorCode::XPST0008 => "XPST0008",
            ErrorCode::XPST0017 => "XPST0017",
            ErrorCode::XPDY0002 => "XPDY0002",
            ErrorCode::XPTY0004 => "XPTY0004",
            ErrorCode::FORG0001 => "FORG0001",
            ErrorCode::FORG0006 => "FORG0006",
            ErrorCode::FOAR0001 => "FOAR0001",
            ErrorCode::FODC0002 => "FODC0002",
            ErrorCode::FODC0006 => "FODC0006",
            ErrorCode::XQTY0024 => "XQTY0024",
            ErrorCode::EXRQ0001 => "EXRQ0001",
            ErrorCode::EXRQ0002 => "EXRQ0002",
            ErrorCode::EXRQ0003 => "EXRQ0003",
            ErrorCode::EXRQ0004 => "EXRQ0004",
            ErrorCode::EXRQ0005 => "EXRQ0005",
            ErrorCode::EXRQ0006 => "EXRQ0006",
            ErrorCode::EXRQ0007 => "EXRQ0007",
            ErrorCode::EXRQ0008 => "EXRQ0008",
            ErrorCode::EXRQ0009 => "EXRQ0009",
            ErrorCode::EXRQ0010 => "EXRQ0010",
            ErrorCode::EPROTO => "EPROTO",
        }
    }

    /// Inverse of [`as_str`]: recover a code from its wire rendering.
    /// Returns `None` for strings that are not a known code — callers
    /// classifying wire errors (retry policies) must treat unknown
    /// codes conservatively.
    ///
    /// [`as_str`]: ErrorCode::as_str
    pub fn parse(s: &str) -> Option<ErrorCode> {
        ErrorCode::ALL.iter().copied().find(|c| c.as_str() == s)
    }

    /// Coarse class used for CLI exit codes and retry policies.
    pub fn class(self) -> ErrorClass {
        match self {
            ErrorCode::XPST0003 | ErrorCode::XPST0008 | ErrorCode::XPST0017 | ErrorCode::EPROTO => {
                ErrorClass::Static
            }
            ErrorCode::EXRQ0001
            | ErrorCode::EXRQ0002
            | ErrorCode::EXRQ0003
            | ErrorCode::EXRQ0006
            | ErrorCode::EXRQ0007
            | ErrorCode::EXRQ0008 => ErrorClass::Resource,
            ErrorCode::EXRQ0004
            | ErrorCode::EXRQ0005
            | ErrorCode::EXRQ0009
            | ErrorCode::EXRQ0010 => ErrorClass::Verification,
            _ => ErrorClass::Dynamic,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Coarse error classes. The CLI maps these to exit codes:
/// static → 1, dynamic → 2, resource (budget/timeout/cancel) → 3,
/// I/O → 4, verification (oracle divergence / ill-formed plan) → 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    Static,
    Dynamic,
    Resource,
    Io,
    /// Self-verification failure: the pipeline caught itself producing a
    /// wrong answer or an ill-formed plan. Always a bug, never user error.
    Verification,
}

impl ErrorClass {
    /// Process exit code for this class (0 is success, 64 is usage).
    pub fn exit_code(self) -> i32 {
        match self {
            ErrorClass::Static => 1,
            ErrorClass::Dynamic => 2,
            ErrorClass::Resource => 3,
            ErrorClass::Io => 4,
            ErrorClass::Verification => 5,
        }
    }
}

/// The pipeline stage that raised an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// XML document parsing / loading.
    Document,
    /// XQuery tokenizing + parsing.
    Parse,
    /// Normalization of the AST.
    Normalize,
    /// Compilation to the algebra DAG.
    Compile,
    /// Optimization passes.
    Optimize,
    /// Plan evaluation.
    Execute,
    /// Differential self-verification (the three-way oracle).
    Verify,
}

impl Stage {
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Document => "document",
            Stage::Parse => "parse",
            Stage::Normalize => "normalize",
            Stage::Compile => "compile",
            Stage::Optimize => "optimize",
            Stage::Execute => "execute",
            Stage::Verify => "verify",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Resource ceilings for one query. All limits default to `None`
/// (unbounded); `Session` applies a conservative default recursion
/// depth even when no budget is supplied so that hostile inputs cannot
/// overflow the stack.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ExecutionBudget {
    /// Maximum rows any single operator may materialize.
    pub max_rows_per_op: Option<usize>,
    /// Maximum rows materialized across the whole plan.
    pub max_rows_total: Option<usize>,
    /// Wall-clock ceiling for evaluation.
    pub max_wall: Option<Duration>,
    /// Maximum XML nodes constructed during evaluation.
    pub max_nodes: Option<usize>,
    /// Maximum recursion / nesting depth in the parser and normalizer.
    pub max_depth: Option<usize>,
}

impl ExecutionBudget {
    pub fn unbounded() -> Self {
        Self::default()
    }

    pub fn with_max_rows_per_op(mut self, n: usize) -> Self {
        self.max_rows_per_op = Some(n);
        self
    }

    pub fn with_max_rows_total(mut self, n: usize) -> Self {
        self.max_rows_total = Some(n);
        self
    }

    pub fn with_max_wall(mut self, d: Duration) -> Self {
        self.max_wall = Some(d);
        self
    }

    pub fn with_max_nodes(mut self, n: usize) -> Self {
        self.max_nodes = Some(n);
        self
    }

    pub fn with_max_depth(mut self, n: usize) -> Self {
        self.max_depth = Some(n);
        self
    }
}

/// A budget or cancellation trip, ready to be wrapped into the raising
/// stage's error type.
#[derive(Debug, Clone)]
pub struct BudgetViolation {
    pub code: ErrorCode,
    pub message: String,
}

impl BudgetViolation {
    fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        BudgetViolation {
            code,
            message: message.into(),
        }
    }
}

/// The shared, atomic run-time state of one query execution's
/// [`ExecutionBudget`]: row counters, operator counters, `fn:doc` access
/// counters, a wall-clock deadline and the cancellation token, all
/// behind atomics so every worker thread of an intra-query parallel
/// execution charges the *same* meter. Budget decrements and failpoint
/// polls are the engine's yield points — they happen at operator
/// boundaries on every thread, so cancellation and budget trips
/// propagate across the whole worker pool within one operator.
///
/// Serial executions use the same meter (uncontended atomics are cheap),
/// which keeps the accounting semantics of the two modes identical.
#[derive(Debug)]
pub struct BudgetMeter {
    budget: ExecutionBudget,
    deadline: Option<Instant>,
    /// Absolute request deadline (serving-layer shedding); trips as
    /// [`ErrorCode::EXRQ0007`] rather than the budget's EXRQ0001, so a
    /// shed request is distinguishable from a query that ran over its own
    /// resource ceiling.
    hard_deadline: Option<Instant>,
    cancel: Option<CancellationToken>,
    rows_total: AtomicUsize,
    ops_seen: AtomicUsize,
    doc_accesses: AtomicUsize,
}

impl BudgetMeter {
    /// Arm a meter: the wall-clock deadline starts now.
    pub fn new(budget: ExecutionBudget, cancel: Option<CancellationToken>) -> Self {
        let deadline = budget.max_wall.map(|d| Instant::now() + d);
        BudgetMeter {
            budget,
            deadline,
            hard_deadline: None,
            cancel,
            rows_total: AtomicUsize::new(0),
            ops_seen: AtomicUsize::new(0),
            doc_accesses: AtomicUsize::new(0),
        }
    }

    /// Attach an absolute request deadline (the serving layer's
    /// admission-to-completion budget). Polled at the same yield points
    /// as the wall-clock budget; trips with [`ErrorCode::EXRQ0007`].
    pub fn with_hard_deadline(mut self, at: Instant) -> Self {
        self.hard_deadline = Some(at);
        self
    }

    /// The limits this meter enforces.
    pub fn budget(&self) -> &ExecutionBudget {
        &self.budget
    }

    /// Cancellation + wall-clock poll — the cooperative yield point,
    /// called once per operator on whichever thread evaluates it.
    pub fn poll(&self) -> Result<(), BudgetViolation> {
        if self
            .cancel
            .as_ref()
            .is_some_and(CancellationToken::is_cancelled)
        {
            return Err(BudgetViolation::new(ErrorCode::EXRQ0002, "query cancelled"));
        }
        if let Some(deadline) = self.hard_deadline {
            if Instant::now() >= deadline {
                return Err(BudgetViolation::new(
                    ErrorCode::EXRQ0007,
                    "request deadline exceeded",
                ));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetViolation::new(
                    ErrorCode::EXRQ0001,
                    "wall-clock budget exceeded",
                ));
            }
        }
        Ok(())
    }

    /// Effective row ceiling for the next operator: the per-operator cap
    /// and whatever remains of the total-row budget, whichever is lower
    /// (`usize::MAX` when unbounded).
    pub fn op_row_cap(&self) -> usize {
        let per_op = self.budget.max_rows_per_op.unwrap_or(usize::MAX);
        let remaining = self.budget.max_rows_total.map_or(usize::MAX, |t| {
            t.saturating_sub(self.rows_total.load(Ordering::Relaxed))
        });
        per_op.min(remaining)
    }

    /// Account one operator's output rows against the per-operator and
    /// total ceilings.
    pub fn charge_rows(&self, nrows: usize) -> Result<(), BudgetViolation> {
        if let Some(cap) = self.budget.max_rows_per_op {
            if nrows > cap {
                return Err(BudgetViolation::new(
                    ErrorCode::EXRQ0001,
                    format!("operator materialized {nrows} rows, exceeding the per-operator budget of {cap}"),
                ));
            }
        }
        let total = self.rows_total.fetch_add(nrows, Ordering::Relaxed) + nrows;
        if let Some(cap) = self.budget.max_rows_total {
            if total > cap {
                return Err(BudgetViolation::new(
                    ErrorCode::EXRQ0001,
                    format!(
                        "plan materialized {total} rows in total, exceeding the budget of {cap}"
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Enforce the constructed-node ceiling against a current count.
    pub fn check_nodes(&self, constructed: usize) -> Result<(), BudgetViolation> {
        if let Some(cap) = self.budget.max_nodes {
            if constructed > cap {
                return Err(BudgetViolation::new(
                    ErrorCode::EXRQ0001,
                    format!(
                        "query constructed {constructed} XML nodes, exceeding the budget of {cap}"
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Rows materialized so far across all operators (and threads).
    pub fn rows_total(&self) -> usize {
        self.rows_total.load(Ordering::Relaxed)
    }

    /// Operators fully evaluated so far — the counter behind the
    /// `cancel-after` failpoint. Deterministic under serial execution;
    /// under parallel execution completions race, so an injected cancel
    /// still fires but not necessarily at the same operator.
    pub fn ops_seen(&self) -> usize {
        self.ops_seen.load(Ordering::Relaxed)
    }

    /// Record one completed operator.
    pub fn record_op(&self) {
        self.ops_seen.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one `fn:doc` access; returns the new 1-based access count
    /// (the counter behind the `doc-io` failpoint).
    pub fn record_doc_access(&self) -> usize {
        self.doc_accesses.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// Cooperative cancellation flag, shareable across threads. The engine
/// polls it once per evaluated operator (and inside the expansion loops
/// of row-explosive operators), so cancellation takes effect at the
/// next operator boundary.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken(Arc<AtomicBool>);

impl CancellationToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// True when `other` is a clone of this token (shares the flag) —
    /// identity, not state. Lets a registry of in-flight runs deregister
    /// exactly the token it registered.
    pub fn same_as(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

/// Approximate heap cost of one constructed XML node, used to convert
/// the engine's constructed-node counter into the byte figure a
/// [`MemoryGauge`] publishes. Deliberately coarse: the gauge governs
/// admission (a watermark, not an allocator), so a stable fiction beats
/// a fragile exact count.
pub const APPROX_NODE_BYTES: usize = 64;

#[derive(Debug, Default)]
struct GaugeInner {
    current: AtomicUsize,
    peak: AtomicUsize,
}

/// Process-wide gauge of approximate memory held by in-flight query
/// executions. Cloneable (clones share the count); each execution
/// publishes through its own [`MemoryTracker`], whose `Drop` releases
/// the charge — so the gauge stays accurate even when an execution
/// unwinds from a panic.
///
/// The serving layer compares `bytes_in_flight()` against a
/// high-watermark to defer or shed new admissions (graceful
/// degradation on the memory axis, which per-query budgets don't
/// cover: many individually-cheap queries can still balloon the
/// process).
#[derive(Debug, Clone, Default)]
pub struct MemoryGauge(Arc<GaugeInner>);

impl MemoryGauge {
    pub fn new() -> Self {
        Self::default()
    }

    /// Approximate bytes currently held by in-flight executions.
    pub fn bytes_in_flight(&self) -> usize {
        self.0.current.load(Ordering::Relaxed)
    }

    /// High-watermark of `bytes_in_flight` since the gauge was created.
    pub fn peak_bytes(&self) -> usize {
        self.0.peak.load(Ordering::Relaxed)
    }

    /// A tracker for one execution. Charges flow into this gauge and
    /// are released when the tracker drops (normally or by unwinding).
    pub fn tracker(&self) -> MemoryTracker {
        MemoryTracker {
            gauge: Arc::clone(&self.0),
            charged: 0,
        }
    }
}

/// One execution's handle on a [`MemoryGauge`]. Publishes a monotone
/// running total via [`charge_to`]; the difference is added to the
/// shared gauge immediately and subtracted again on `Drop`.
///
/// [`charge_to`]: MemoryTracker::charge_to
#[derive(Debug)]
pub struct MemoryTracker {
    gauge: Arc<GaugeInner>,
    charged: usize,
}

impl MemoryTracker {
    /// Publish this execution's current total. Totals only grow (an
    /// execution's overlay is append-only until it drops); a smaller
    /// value than previously charged is ignored.
    pub fn charge_to(&mut self, total_bytes: usize) {
        if total_bytes > self.charged {
            let delta = total_bytes - self.charged;
            self.charged = total_bytes;
            let now = self.gauge.current.fetch_add(delta, Ordering::Relaxed) + delta;
            self.gauge.peak.fetch_max(now, Ordering::Relaxed);
        }
    }

    /// Bytes this tracker has charged so far.
    pub fn charged(&self) -> usize {
        self.charged
    }
}

impl Drop for MemoryTracker {
    fn drop(&mut self) {
        if self.charged > 0 {
            self.gauge
                .current
                .fetch_sub(self.charged, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_render_and_classify() {
        assert_eq!(ErrorCode::XPST0003.as_str(), "XPST0003");
        assert_eq!(ErrorCode::XPST0003.class(), ErrorClass::Static);
        assert_eq!(ErrorCode::XPTY0004.class(), ErrorClass::Dynamic);
        assert_eq!(ErrorCode::EXRQ0001.class(), ErrorClass::Resource);
        assert_eq!(ErrorClass::Resource.exit_code(), 3);
        assert_eq!(format!("{}", ErrorCode::EXRQ0002), "EXRQ0002");
        assert_eq!(ErrorCode::FODC0006.class(), ErrorClass::Dynamic);
        assert_eq!(ErrorCode::EXRQ0004.class(), ErrorClass::Verification);
        assert_eq!(ErrorCode::EXRQ0005.class(), ErrorClass::Verification);
        assert_eq!(ErrorClass::Verification.exit_code(), 5);
        assert_eq!(Stage::Verify.as_str(), "verify");
    }

    #[test]
    fn serving_codes_are_resource_class() {
        for code in [
            ErrorCode::EXRQ0006,
            ErrorCode::EXRQ0007,
            ErrorCode::EXRQ0008,
        ] {
            assert_eq!(code.class(), ErrorClass::Resource);
            assert_eq!(code.class().exit_code(), 3);
        }
        assert_eq!(ErrorCode::EXRQ0006.as_str(), "EXRQ0006");
        assert_eq!(format!("{}", ErrorCode::EXRQ0007), "EXRQ0007");
    }

    #[test]
    fn hard_deadline_trips_as_exrq0007() {
        let m = BudgetMeter::new(ExecutionBudget::unbounded(), None)
            .with_hard_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(m.poll().unwrap_err().code, ErrorCode::EXRQ0007);
        // A generous deadline does not trip.
        let m = BudgetMeter::new(ExecutionBudget::unbounded(), None)
            .with_hard_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(m.poll().is_ok());
        // The hard deadline outranks the wall budget in the poll order.
        let m = BudgetMeter::new(
            ExecutionBudget::unbounded().with_max_wall(Duration::ZERO),
            None,
        )
        .with_hard_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(m.poll().unwrap_err().code, ErrorCode::EXRQ0007);
    }

    #[test]
    fn cancellation_is_shared() {
        let t = CancellationToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn meter_charges_rows_atomically() {
        let m = BudgetMeter::new(ExecutionBudget::unbounded().with_max_rows_total(10), None);
        assert_eq!(m.op_row_cap(), 10);
        m.charge_rows(6).unwrap();
        assert_eq!(m.op_row_cap(), 4);
        let e = m.charge_rows(5).unwrap_err();
        assert_eq!(e.code, ErrorCode::EXRQ0001);
        // Per-operator cap is independent of the running total.
        let m = BudgetMeter::new(ExecutionBudget::unbounded().with_max_rows_per_op(3), None);
        assert!(m.charge_rows(3).is_ok());
        assert_eq!(m.charge_rows(4).unwrap_err().code, ErrorCode::EXRQ0001);
    }

    #[test]
    fn meter_polls_cancellation_from_any_clone() {
        let t = CancellationToken::new();
        let m = BudgetMeter::new(ExecutionBudget::unbounded(), Some(t.clone()));
        assert!(m.poll().is_ok());
        t.cancel();
        assert_eq!(m.poll().unwrap_err().code, ErrorCode::EXRQ0002);
        m.record_op();
        m.record_op();
        assert_eq!(m.ops_seen(), 2);
        assert_eq!(m.record_doc_access(), 1);
        assert_eq!(m.record_doc_access(), 2);
    }

    #[test]
    fn every_code_round_trips_through_render_and_parse() {
        // Exhaustive: every code (including EXRQ0009 and EPROTO)
        // renders to a unique string and parses back to itself.
        let mut seen = std::collections::HashSet::new();
        for &code in ErrorCode::ALL {
            let s = code.as_str();
            assert!(seen.insert(s), "duplicate wire rendering {s}");
            assert_eq!(ErrorCode::parse(s), Some(code), "round trip for {s}");
            assert_eq!(format!("{code}"), s);
            // Every class maps to a stable nonzero exit code.
            assert!(code.class().exit_code() >= 1);
        }
        assert_eq!(seen.len(), ErrorCode::ALL.len());
        assert_eq!(ErrorCode::parse("EXRQ9999"), None);
        assert_eq!(ErrorCode::parse(""), None);
        assert_eq!(ErrorCode::parse("exrq0001"), None, "parse is case-exact");
    }

    #[test]
    fn new_codes_classify_for_serving() {
        // A contained panic is always an engine bug: verification class.
        assert_eq!(ErrorCode::EXRQ0009.class(), ErrorClass::Verification);
        // A malformed request is the client's static mistake.
        assert_eq!(ErrorCode::EPROTO.class(), ErrorClass::Static);
        assert_eq!(ErrorCode::EPROTO.as_str(), "EPROTO");
    }

    #[test]
    fn memory_gauge_tracks_and_releases_charges() {
        let g = MemoryGauge::new();
        assert_eq!(g.bytes_in_flight(), 0);
        let mut a = g.tracker();
        a.charge_to(100);
        a.charge_to(250);
        // Monotone: lower totals are ignored.
        a.charge_to(10);
        assert_eq!(a.charged(), 250);
        let clone = g.clone();
        assert_eq!(clone.bytes_in_flight(), 250);
        let mut b = clone.tracker();
        b.charge_to(50);
        assert_eq!(g.bytes_in_flight(), 300);
        assert_eq!(g.peak_bytes(), 300);
        drop(a);
        assert_eq!(g.bytes_in_flight(), 50);
        drop(b);
        assert_eq!(g.bytes_in_flight(), 0);
        // Peak is sticky.
        assert_eq!(g.peak_bytes(), 300);
    }

    #[test]
    fn memory_tracker_releases_on_unwind() {
        let g = MemoryGauge::new();
        let g2 = g.clone();
        let r = std::panic::catch_unwind(move || {
            let mut t = g2.tracker();
            t.charge_to(4096);
            panic!("boom");
        });
        assert!(r.is_err());
        assert_eq!(g.bytes_in_flight(), 0, "unwind must release the charge");
        assert_eq!(g.peak_bytes(), 4096);
    }

    #[test]
    fn budget_builders() {
        let b = ExecutionBudget::unbounded()
            .with_max_rows_total(10)
            .with_max_depth(5);
        assert_eq!(b.max_rows_total, Some(10));
        assert_eq!(b.max_depth, Some(5));
        assert_eq!(b.max_wall, None);
    }
}
