//! Shared diagnostics for the eXrQuy pipeline: a W3C-style error
//! taxonomy, execution budgets, and cooperative cancellation.
//!
//! Every pipeline crate (xml, frontend, compiler, opt, engine, core)
//! depends on this crate so that errors raised anywhere carry a stable
//! machine-readable code, the pipeline stage that raised them, and —
//! where available — a source offset. The CLI maps [`ErrorClass`] to
//! process exit codes.

pub mod failpoint;

pub use failpoint::{FailpointSpecError, Failpoints, OracleArm};

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stable, machine-readable error codes. The `XP*`/`FO*`/`XQ*` codes
/// follow the W3C XQuery error namespace; `EXRQ*` codes are
/// engine-specific resource-governance codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorCode {
    /// Syntax error in the query (static).
    XPST0003,
    /// Undefined variable or other unresolved static reference.
    XPST0008,
    /// Unknown function name / arity (static).
    XPST0017,
    /// Context item used where none is defined.
    XPDY0002,
    /// Value has the wrong type for the operation.
    XPTY0004,
    /// Value cannot be cast to the required type.
    FORG0001,
    /// Invalid argument to an effective-boolean-value computation.
    FORG0006,
    /// Arithmetic error (division by zero, …).
    FOAR0001,
    /// Document retrieval failure (document not loaded / I/O error).
    FODC0002,
    /// Document content is not well-formed XML (cf. `fn:parse-xml`).
    FODC0006,
    /// Attribute constructed after non-attribute content.
    XQTY0024,
    /// Execution budget (rows, wall-clock, constructed nodes) exceeded.
    EXRQ0001,
    /// Query cancelled via a [`CancellationToken`].
    EXRQ0002,
    /// Recursion / nesting depth limit exceeded.
    EXRQ0003,
    /// Differential oracle divergence: an optimized execution produced a
    /// result outside the admissible set of the reference execution.
    EXRQ0004,
    /// The optimizer produced an ill-formed plan (caught by per-rewrite
    /// validation; names the offending rule and operator).
    EXRQ0005,
    /// Server overloaded: the admission queue is full and the request was
    /// shed instead of queued. Retryable after backoff.
    EXRQ0006,
    /// Request deadline exceeded — either before execution started (shed
    /// from the queue) or mid-execution via the [`BudgetMeter`]'s hard
    /// deadline.
    EXRQ0007,
    /// Server draining: shutdown in progress, no new work admitted.
    EXRQ0008,
}

impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::XPST0003 => "XPST0003",
            ErrorCode::XPST0008 => "XPST0008",
            ErrorCode::XPST0017 => "XPST0017",
            ErrorCode::XPDY0002 => "XPDY0002",
            ErrorCode::XPTY0004 => "XPTY0004",
            ErrorCode::FORG0001 => "FORG0001",
            ErrorCode::FORG0006 => "FORG0006",
            ErrorCode::FOAR0001 => "FOAR0001",
            ErrorCode::FODC0002 => "FODC0002",
            ErrorCode::FODC0006 => "FODC0006",
            ErrorCode::XQTY0024 => "XQTY0024",
            ErrorCode::EXRQ0001 => "EXRQ0001",
            ErrorCode::EXRQ0002 => "EXRQ0002",
            ErrorCode::EXRQ0003 => "EXRQ0003",
            ErrorCode::EXRQ0004 => "EXRQ0004",
            ErrorCode::EXRQ0005 => "EXRQ0005",
            ErrorCode::EXRQ0006 => "EXRQ0006",
            ErrorCode::EXRQ0007 => "EXRQ0007",
            ErrorCode::EXRQ0008 => "EXRQ0008",
        }
    }

    /// Coarse class used for CLI exit codes and retry policies.
    pub fn class(self) -> ErrorClass {
        match self {
            ErrorCode::XPST0003 | ErrorCode::XPST0008 | ErrorCode::XPST0017 => ErrorClass::Static,
            ErrorCode::EXRQ0001
            | ErrorCode::EXRQ0002
            | ErrorCode::EXRQ0003
            | ErrorCode::EXRQ0006
            | ErrorCode::EXRQ0007
            | ErrorCode::EXRQ0008 => ErrorClass::Resource,
            ErrorCode::EXRQ0004 | ErrorCode::EXRQ0005 => ErrorClass::Verification,
            _ => ErrorClass::Dynamic,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Coarse error classes. The CLI maps these to exit codes:
/// static → 1, dynamic → 2, resource (budget/timeout/cancel) → 3,
/// I/O → 4, verification (oracle divergence / ill-formed plan) → 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    Static,
    Dynamic,
    Resource,
    Io,
    /// Self-verification failure: the pipeline caught itself producing a
    /// wrong answer or an ill-formed plan. Always a bug, never user error.
    Verification,
}

impl ErrorClass {
    /// Process exit code for this class (0 is success, 64 is usage).
    pub fn exit_code(self) -> i32 {
        match self {
            ErrorClass::Static => 1,
            ErrorClass::Dynamic => 2,
            ErrorClass::Resource => 3,
            ErrorClass::Io => 4,
            ErrorClass::Verification => 5,
        }
    }
}

/// The pipeline stage that raised an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// XML document parsing / loading.
    Document,
    /// XQuery tokenizing + parsing.
    Parse,
    /// Normalization of the AST.
    Normalize,
    /// Compilation to the algebra DAG.
    Compile,
    /// Optimization passes.
    Optimize,
    /// Plan evaluation.
    Execute,
    /// Differential self-verification (the three-way oracle).
    Verify,
}

impl Stage {
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Document => "document",
            Stage::Parse => "parse",
            Stage::Normalize => "normalize",
            Stage::Compile => "compile",
            Stage::Optimize => "optimize",
            Stage::Execute => "execute",
            Stage::Verify => "verify",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Resource ceilings for one query. All limits default to `None`
/// (unbounded); `Session` applies a conservative default recursion
/// depth even when no budget is supplied so that hostile inputs cannot
/// overflow the stack.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ExecutionBudget {
    /// Maximum rows any single operator may materialize.
    pub max_rows_per_op: Option<usize>,
    /// Maximum rows materialized across the whole plan.
    pub max_rows_total: Option<usize>,
    /// Wall-clock ceiling for evaluation.
    pub max_wall: Option<Duration>,
    /// Maximum XML nodes constructed during evaluation.
    pub max_nodes: Option<usize>,
    /// Maximum recursion / nesting depth in the parser and normalizer.
    pub max_depth: Option<usize>,
}

impl ExecutionBudget {
    pub fn unbounded() -> Self {
        Self::default()
    }

    pub fn with_max_rows_per_op(mut self, n: usize) -> Self {
        self.max_rows_per_op = Some(n);
        self
    }

    pub fn with_max_rows_total(mut self, n: usize) -> Self {
        self.max_rows_total = Some(n);
        self
    }

    pub fn with_max_wall(mut self, d: Duration) -> Self {
        self.max_wall = Some(d);
        self
    }

    pub fn with_max_nodes(mut self, n: usize) -> Self {
        self.max_nodes = Some(n);
        self
    }

    pub fn with_max_depth(mut self, n: usize) -> Self {
        self.max_depth = Some(n);
        self
    }
}

/// A budget or cancellation trip, ready to be wrapped into the raising
/// stage's error type.
#[derive(Debug, Clone)]
pub struct BudgetViolation {
    pub code: ErrorCode,
    pub message: String,
}

impl BudgetViolation {
    fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        BudgetViolation {
            code,
            message: message.into(),
        }
    }
}

/// The shared, atomic run-time state of one query execution's
/// [`ExecutionBudget`]: row counters, operator counters, `fn:doc` access
/// counters, a wall-clock deadline and the cancellation token, all
/// behind atomics so every worker thread of an intra-query parallel
/// execution charges the *same* meter. Budget decrements and failpoint
/// polls are the engine's yield points — they happen at operator
/// boundaries on every thread, so cancellation and budget trips
/// propagate across the whole worker pool within one operator.
///
/// Serial executions use the same meter (uncontended atomics are cheap),
/// which keeps the accounting semantics of the two modes identical.
#[derive(Debug)]
pub struct BudgetMeter {
    budget: ExecutionBudget,
    deadline: Option<Instant>,
    /// Absolute request deadline (serving-layer shedding); trips as
    /// [`ErrorCode::EXRQ0007`] rather than the budget's EXRQ0001, so a
    /// shed request is distinguishable from a query that ran over its own
    /// resource ceiling.
    hard_deadline: Option<Instant>,
    cancel: Option<CancellationToken>,
    rows_total: AtomicUsize,
    ops_seen: AtomicUsize,
    doc_accesses: AtomicUsize,
}

impl BudgetMeter {
    /// Arm a meter: the wall-clock deadline starts now.
    pub fn new(budget: ExecutionBudget, cancel: Option<CancellationToken>) -> Self {
        let deadline = budget.max_wall.map(|d| Instant::now() + d);
        BudgetMeter {
            budget,
            deadline,
            hard_deadline: None,
            cancel,
            rows_total: AtomicUsize::new(0),
            ops_seen: AtomicUsize::new(0),
            doc_accesses: AtomicUsize::new(0),
        }
    }

    /// Attach an absolute request deadline (the serving layer's
    /// admission-to-completion budget). Polled at the same yield points
    /// as the wall-clock budget; trips with [`ErrorCode::EXRQ0007`].
    pub fn with_hard_deadline(mut self, at: Instant) -> Self {
        self.hard_deadline = Some(at);
        self
    }

    /// The limits this meter enforces.
    pub fn budget(&self) -> &ExecutionBudget {
        &self.budget
    }

    /// Cancellation + wall-clock poll — the cooperative yield point,
    /// called once per operator on whichever thread evaluates it.
    pub fn poll(&self) -> Result<(), BudgetViolation> {
        if self
            .cancel
            .as_ref()
            .is_some_and(CancellationToken::is_cancelled)
        {
            return Err(BudgetViolation::new(ErrorCode::EXRQ0002, "query cancelled"));
        }
        if let Some(deadline) = self.hard_deadline {
            if Instant::now() >= deadline {
                return Err(BudgetViolation::new(
                    ErrorCode::EXRQ0007,
                    "request deadline exceeded",
                ));
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return Err(BudgetViolation::new(
                    ErrorCode::EXRQ0001,
                    "wall-clock budget exceeded",
                ));
            }
        }
        Ok(())
    }

    /// Effective row ceiling for the next operator: the per-operator cap
    /// and whatever remains of the total-row budget, whichever is lower
    /// (`usize::MAX` when unbounded).
    pub fn op_row_cap(&self) -> usize {
        let per_op = self.budget.max_rows_per_op.unwrap_or(usize::MAX);
        let remaining = self.budget.max_rows_total.map_or(usize::MAX, |t| {
            t.saturating_sub(self.rows_total.load(Ordering::Relaxed))
        });
        per_op.min(remaining)
    }

    /// Account one operator's output rows against the per-operator and
    /// total ceilings.
    pub fn charge_rows(&self, nrows: usize) -> Result<(), BudgetViolation> {
        if let Some(cap) = self.budget.max_rows_per_op {
            if nrows > cap {
                return Err(BudgetViolation::new(
                    ErrorCode::EXRQ0001,
                    format!("operator materialized {nrows} rows, exceeding the per-operator budget of {cap}"),
                ));
            }
        }
        let total = self.rows_total.fetch_add(nrows, Ordering::Relaxed) + nrows;
        if let Some(cap) = self.budget.max_rows_total {
            if total > cap {
                return Err(BudgetViolation::new(
                    ErrorCode::EXRQ0001,
                    format!(
                        "plan materialized {total} rows in total, exceeding the budget of {cap}"
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Enforce the constructed-node ceiling against a current count.
    pub fn check_nodes(&self, constructed: usize) -> Result<(), BudgetViolation> {
        if let Some(cap) = self.budget.max_nodes {
            if constructed > cap {
                return Err(BudgetViolation::new(
                    ErrorCode::EXRQ0001,
                    format!(
                        "query constructed {constructed} XML nodes, exceeding the budget of {cap}"
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Rows materialized so far across all operators (and threads).
    pub fn rows_total(&self) -> usize {
        self.rows_total.load(Ordering::Relaxed)
    }

    /// Operators fully evaluated so far — the counter behind the
    /// `cancel-after` failpoint. Deterministic under serial execution;
    /// under parallel execution completions race, so an injected cancel
    /// still fires but not necessarily at the same operator.
    pub fn ops_seen(&self) -> usize {
        self.ops_seen.load(Ordering::Relaxed)
    }

    /// Record one completed operator.
    pub fn record_op(&self) {
        self.ops_seen.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one `fn:doc` access; returns the new 1-based access count
    /// (the counter behind the `doc-io` failpoint).
    pub fn record_doc_access(&self) -> usize {
        self.doc_accesses.fetch_add(1, Ordering::Relaxed) + 1
    }
}

/// Cooperative cancellation flag, shareable across threads. The engine
/// polls it once per evaluated operator (and inside the expansion loops
/// of row-explosive operators), so cancellation takes effect at the
/// next operator boundary.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken(Arc<AtomicBool>);

impl CancellationToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }

    /// True when `other` is a clone of this token (shares the flag) —
    /// identity, not state. Lets a registry of in-flight runs deregister
    /// exactly the token it registered.
    pub fn same_as(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.0, &other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_render_and_classify() {
        assert_eq!(ErrorCode::XPST0003.as_str(), "XPST0003");
        assert_eq!(ErrorCode::XPST0003.class(), ErrorClass::Static);
        assert_eq!(ErrorCode::XPTY0004.class(), ErrorClass::Dynamic);
        assert_eq!(ErrorCode::EXRQ0001.class(), ErrorClass::Resource);
        assert_eq!(ErrorClass::Resource.exit_code(), 3);
        assert_eq!(format!("{}", ErrorCode::EXRQ0002), "EXRQ0002");
        assert_eq!(ErrorCode::FODC0006.class(), ErrorClass::Dynamic);
        assert_eq!(ErrorCode::EXRQ0004.class(), ErrorClass::Verification);
        assert_eq!(ErrorCode::EXRQ0005.class(), ErrorClass::Verification);
        assert_eq!(ErrorClass::Verification.exit_code(), 5);
        assert_eq!(Stage::Verify.as_str(), "verify");
    }

    #[test]
    fn serving_codes_are_resource_class() {
        for code in [
            ErrorCode::EXRQ0006,
            ErrorCode::EXRQ0007,
            ErrorCode::EXRQ0008,
        ] {
            assert_eq!(code.class(), ErrorClass::Resource);
            assert_eq!(code.class().exit_code(), 3);
        }
        assert_eq!(ErrorCode::EXRQ0006.as_str(), "EXRQ0006");
        assert_eq!(format!("{}", ErrorCode::EXRQ0007), "EXRQ0007");
    }

    #[test]
    fn hard_deadline_trips_as_exrq0007() {
        let m = BudgetMeter::new(ExecutionBudget::unbounded(), None)
            .with_hard_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(m.poll().unwrap_err().code, ErrorCode::EXRQ0007);
        // A generous deadline does not trip.
        let m = BudgetMeter::new(ExecutionBudget::unbounded(), None)
            .with_hard_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(m.poll().is_ok());
        // The hard deadline outranks the wall budget in the poll order.
        let m = BudgetMeter::new(
            ExecutionBudget::unbounded().with_max_wall(Duration::ZERO),
            None,
        )
        .with_hard_deadline(Instant::now() - Duration::from_millis(1));
        assert_eq!(m.poll().unwrap_err().code, ErrorCode::EXRQ0007);
    }

    #[test]
    fn cancellation_is_shared() {
        let t = CancellationToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn meter_charges_rows_atomically() {
        let m = BudgetMeter::new(ExecutionBudget::unbounded().with_max_rows_total(10), None);
        assert_eq!(m.op_row_cap(), 10);
        m.charge_rows(6).unwrap();
        assert_eq!(m.op_row_cap(), 4);
        let e = m.charge_rows(5).unwrap_err();
        assert_eq!(e.code, ErrorCode::EXRQ0001);
        // Per-operator cap is independent of the running total.
        let m = BudgetMeter::new(ExecutionBudget::unbounded().with_max_rows_per_op(3), None);
        assert!(m.charge_rows(3).is_ok());
        assert_eq!(m.charge_rows(4).unwrap_err().code, ErrorCode::EXRQ0001);
    }

    #[test]
    fn meter_polls_cancellation_from_any_clone() {
        let t = CancellationToken::new();
        let m = BudgetMeter::new(ExecutionBudget::unbounded(), Some(t.clone()));
        assert!(m.poll().is_ok());
        t.cancel();
        assert_eq!(m.poll().unwrap_err().code, ErrorCode::EXRQ0002);
        m.record_op();
        m.record_op();
        assert_eq!(m.ops_seen(), 2);
        assert_eq!(m.record_doc_access(), 1);
        assert_eq!(m.record_doc_access(), 2);
    }

    #[test]
    fn budget_builders() {
        let b = ExecutionBudget::unbounded()
            .with_max_rows_total(10)
            .with_max_depth(5);
        assert_eq!(b.max_rows_total, Some(10));
        assert_eq!(b.max_depth, Some(5));
        assert_eq!(b.max_wall, None);
    }
}
