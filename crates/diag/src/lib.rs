//! Shared diagnostics for the eXrQuy pipeline: a W3C-style error
//! taxonomy, execution budgets, and cooperative cancellation.
//!
//! Every pipeline crate (xml, frontend, compiler, opt, engine, core)
//! depends on this crate so that errors raised anywhere carry a stable
//! machine-readable code, the pipeline stage that raised them, and —
//! where available — a source offset. The CLI maps [`ErrorClass`] to
//! process exit codes.

pub mod failpoint;

pub use failpoint::{FailpointSpecError, Failpoints, OracleArm};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Stable, machine-readable error codes. The `XP*`/`FO*`/`XQ*` codes
/// follow the W3C XQuery error namespace; `EXRQ*` codes are
/// engine-specific resource-governance codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorCode {
    /// Syntax error in the query (static).
    XPST0003,
    /// Undefined variable or other unresolved static reference.
    XPST0008,
    /// Unknown function name / arity (static).
    XPST0017,
    /// Context item used where none is defined.
    XPDY0002,
    /// Value has the wrong type for the operation.
    XPTY0004,
    /// Value cannot be cast to the required type.
    FORG0001,
    /// Invalid argument to an effective-boolean-value computation.
    FORG0006,
    /// Arithmetic error (division by zero, …).
    FOAR0001,
    /// Document retrieval failure (document not loaded / I/O error).
    FODC0002,
    /// Document content is not well-formed XML (cf. `fn:parse-xml`).
    FODC0006,
    /// Attribute constructed after non-attribute content.
    XQTY0024,
    /// Execution budget (rows, wall-clock, constructed nodes) exceeded.
    EXRQ0001,
    /// Query cancelled via a [`CancellationToken`].
    EXRQ0002,
    /// Recursion / nesting depth limit exceeded.
    EXRQ0003,
    /// Differential oracle divergence: an optimized execution produced a
    /// result outside the admissible set of the reference execution.
    EXRQ0004,
    /// The optimizer produced an ill-formed plan (caught by per-rewrite
    /// validation; names the offending rule and operator).
    EXRQ0005,
}

impl ErrorCode {
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::XPST0003 => "XPST0003",
            ErrorCode::XPST0008 => "XPST0008",
            ErrorCode::XPST0017 => "XPST0017",
            ErrorCode::XPDY0002 => "XPDY0002",
            ErrorCode::XPTY0004 => "XPTY0004",
            ErrorCode::FORG0001 => "FORG0001",
            ErrorCode::FORG0006 => "FORG0006",
            ErrorCode::FOAR0001 => "FOAR0001",
            ErrorCode::FODC0002 => "FODC0002",
            ErrorCode::FODC0006 => "FODC0006",
            ErrorCode::XQTY0024 => "XQTY0024",
            ErrorCode::EXRQ0001 => "EXRQ0001",
            ErrorCode::EXRQ0002 => "EXRQ0002",
            ErrorCode::EXRQ0003 => "EXRQ0003",
            ErrorCode::EXRQ0004 => "EXRQ0004",
            ErrorCode::EXRQ0005 => "EXRQ0005",
        }
    }

    /// Coarse class used for CLI exit codes and retry policies.
    pub fn class(self) -> ErrorClass {
        match self {
            ErrorCode::XPST0003 | ErrorCode::XPST0008 | ErrorCode::XPST0017 => ErrorClass::Static,
            ErrorCode::EXRQ0001 | ErrorCode::EXRQ0002 | ErrorCode::EXRQ0003 => ErrorClass::Resource,
            ErrorCode::EXRQ0004 | ErrorCode::EXRQ0005 => ErrorClass::Verification,
            _ => ErrorClass::Dynamic,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Coarse error classes. The CLI maps these to exit codes:
/// static → 1, dynamic → 2, resource (budget/timeout/cancel) → 3,
/// I/O → 4, verification (oracle divergence / ill-formed plan) → 5.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorClass {
    Static,
    Dynamic,
    Resource,
    Io,
    /// Self-verification failure: the pipeline caught itself producing a
    /// wrong answer or an ill-formed plan. Always a bug, never user error.
    Verification,
}

impl ErrorClass {
    /// Process exit code for this class (0 is success, 64 is usage).
    pub fn exit_code(self) -> i32 {
        match self {
            ErrorClass::Static => 1,
            ErrorClass::Dynamic => 2,
            ErrorClass::Resource => 3,
            ErrorClass::Io => 4,
            ErrorClass::Verification => 5,
        }
    }
}

/// The pipeline stage that raised an error.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// XML document parsing / loading.
    Document,
    /// XQuery tokenizing + parsing.
    Parse,
    /// Normalization of the AST.
    Normalize,
    /// Compilation to the algebra DAG.
    Compile,
    /// Optimization passes.
    Optimize,
    /// Plan evaluation.
    Execute,
    /// Differential self-verification (the three-way oracle).
    Verify,
}

impl Stage {
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Document => "document",
            Stage::Parse => "parse",
            Stage::Normalize => "normalize",
            Stage::Compile => "compile",
            Stage::Optimize => "optimize",
            Stage::Execute => "execute",
            Stage::Verify => "verify",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Resource ceilings for one query. All limits default to `None`
/// (unbounded); `Session` applies a conservative default recursion
/// depth even when no budget is supplied so that hostile inputs cannot
/// overflow the stack.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct ExecutionBudget {
    /// Maximum rows any single operator may materialize.
    pub max_rows_per_op: Option<usize>,
    /// Maximum rows materialized across the whole plan.
    pub max_rows_total: Option<usize>,
    /// Wall-clock ceiling for evaluation.
    pub max_wall: Option<Duration>,
    /// Maximum XML nodes constructed during evaluation.
    pub max_nodes: Option<usize>,
    /// Maximum recursion / nesting depth in the parser and normalizer.
    pub max_depth: Option<usize>,
}

impl ExecutionBudget {
    pub fn unbounded() -> Self {
        Self::default()
    }

    pub fn with_max_rows_per_op(mut self, n: usize) -> Self {
        self.max_rows_per_op = Some(n);
        self
    }

    pub fn with_max_rows_total(mut self, n: usize) -> Self {
        self.max_rows_total = Some(n);
        self
    }

    pub fn with_max_wall(mut self, d: Duration) -> Self {
        self.max_wall = Some(d);
        self
    }

    pub fn with_max_nodes(mut self, n: usize) -> Self {
        self.max_nodes = Some(n);
        self
    }

    pub fn with_max_depth(mut self, n: usize) -> Self {
        self.max_depth = Some(n);
        self
    }
}

/// Cooperative cancellation flag, shareable across threads. The engine
/// polls it once per evaluated operator (and inside the expansion loops
/// of row-explosive operators), so cancellation takes effect at the
/// next operator boundary.
#[derive(Debug, Clone, Default)]
pub struct CancellationToken(Arc<AtomicBool>);

impl CancellationToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Request cancellation. Idempotent; visible to all clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_render_and_classify() {
        assert_eq!(ErrorCode::XPST0003.as_str(), "XPST0003");
        assert_eq!(ErrorCode::XPST0003.class(), ErrorClass::Static);
        assert_eq!(ErrorCode::XPTY0004.class(), ErrorClass::Dynamic);
        assert_eq!(ErrorCode::EXRQ0001.class(), ErrorClass::Resource);
        assert_eq!(ErrorClass::Resource.exit_code(), 3);
        assert_eq!(format!("{}", ErrorCode::EXRQ0002), "EXRQ0002");
        assert_eq!(ErrorCode::FODC0006.class(), ErrorClass::Dynamic);
        assert_eq!(ErrorCode::EXRQ0004.class(), ErrorClass::Verification);
        assert_eq!(ErrorCode::EXRQ0005.class(), ErrorClass::Verification);
        assert_eq!(ErrorClass::Verification.exit_code(), 5);
        assert_eq!(Stage::Verify.as_str(), "verify");
    }

    #[test]
    fn cancellation_is_shared() {
        let t = CancellationToken::new();
        let u = t.clone();
        assert!(!u.is_cancelled());
        t.cancel();
        assert!(u.is_cancelled());
    }

    #[test]
    fn budget_builders() {
        let b = ExecutionBudget::unbounded()
            .with_max_rows_total(10)
            .with_max_depth(5);
        assert_eq!(b.max_rows_total, Some(10));
        assert_eq!(b.max_depth, Some(5));
        assert_eq!(b.max_wall, None);
    }
}
