//! Deterministic fault injection: a failpoint registry configured from a
//! compact spec string (CLI `--inject` / env `EXRQ_INJECT`).
//!
//! A [`Failpoints`] value is pure configuration — immutable thresholds
//! with no interior mutability — so a single registry can be cloned into
//! every pipeline layer (document resolver, engine, oracle) and each
//! consumer keeps its own deterministic counters. Running the same query
//! with the same spec therefore trips exactly the same failpoint at
//! exactly the same place, which is what makes fault-injection tests
//! reproducible.
//!
//! Spec grammar (comma-separated, order-insensitive):
//!
//! ```text
//!   doc-io:<n>          fail the n-th fn:doc access with FODC0002
//!   doc-parse:<n>       fail the n-th document load as malformed (FODC0006)
//!   budget-trip:<op>    trip EXRQ0001 when evaluating an operator of the
//!                       given kind (rownum, rowid, step, join, select,
//!                       project, distinct, union, aggr, …)
//!   cancel-after:<n>    cancel (EXRQ0002) at the n-th operator boundary
//!   oracle-perturb:<arm> corrupt one oracle arm's result
//!                       (arm ∈ baseline | optimized | noweaken)
//!   rule-perturb:<rule> apply the named rewrite rule in a deliberately
//!                       unsound variant (a planted optimizer bug; the
//!                       optimizer decides which rules support it)
//! ```
//!
//! Example: `--inject doc-io:2,budget-trip:rownum,cancel-after:5`.

use std::fmt;

/// Which differential-oracle arm an `oracle-perturb` failpoint corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleArm {
    /// Unoptimized, fully order-aware reference execution.
    Baseline,
    /// The optimized plan under the requested options.
    Optimized,
    /// Optimized with `%`-weakening disabled.
    NoWeaken,
}

impl OracleArm {
    pub fn as_str(self) -> &'static str {
        match self {
            OracleArm::Baseline => "baseline",
            OracleArm::Optimized => "optimized",
            OracleArm::NoWeaken => "noweaken",
        }
    }
}

impl fmt::Display for OracleArm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error parsing a failpoint spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailpointSpecError(pub String);

impl fmt::Display for FailpointSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid failpoint spec: {}", self.0)
    }
}

impl std::error::Error for FailpointSpecError {}

/// Immutable registry of armed failpoints. `Default` is "nothing armed";
/// [`Failpoints::is_empty`] lets hot paths skip all checks with one branch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Failpoints {
    /// 1-based index of the `fn:doc` access that fails with an injected
    /// I/O error.
    pub doc_io: Option<usize>,
    /// 1-based index of the document load that fails as malformed content.
    pub doc_parse: Option<usize>,
    /// Operator-kind names (canonical symbols, e.g. `"%"`, `"⬡"`) whose
    /// evaluation trips the execution budget.
    pub budget_trip: Vec<String>,
    /// Cancel after this many operator evaluations.
    pub cancel_after: Option<usize>,
    /// Corrupt this oracle arm's result sequence.
    pub oracle_perturb: Option<OracleArm>,
    /// Apply this named rewrite rule unsoundly (planted optimizer bug).
    pub rule_perturb: Option<String>,
}

/// Map a user-facing operator alias to the canonical kind name used by
/// the algebra (`Op::kind_name`). Unknown aliases pass through verbatim,
/// so the canonical symbols themselves are always accepted.
fn canonical_op_kind(alias: &str) -> String {
    match alias {
        "rownum" => "%".to_string(),
        "rowid" => "#".to_string(),
        "step" => "⬡".to_string(),
        "select" => "σ".to_string(),
        "project" => "π".to_string(),
        "distinct" => "δ".to_string(),
        "union" => "∪̇".to_string(),
        "join" => "⋈".to_string(),
        "thetajoin" => "⋈θ".to_string(),
        "cross" => "×".to_string(),
        "difference" => "\\".to_string(),
        other => other.to_string(),
    }
}

impl Failpoints {
    /// Registry with nothing armed.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no failpoint is armed (the fast-path check).
    pub fn is_empty(&self) -> bool {
        self == &Self::default()
    }

    /// Parse a comma-separated spec (see the module docs for the grammar).
    /// The empty string parses to an empty registry.
    pub fn parse(spec: &str) -> Result<Self, FailpointSpecError> {
        let mut fp = Failpoints::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, arg) = match part.split_once(':') {
                Some((n, a)) => (n.trim(), Some(a.trim())),
                None => (part, None),
            };
            let num = |what: &str| -> Result<usize, FailpointSpecError> {
                let raw = arg.ok_or_else(|| {
                    FailpointSpecError(format!("`{what}` needs a numeric argument, e.g. {what}:2"))
                })?;
                raw.parse::<usize>().map_err(|_| {
                    FailpointSpecError(format!("`{what}`: cannot parse `{raw}` as a number"))
                })
            };
            match name {
                "doc-io" => fp.doc_io = Some(num("doc-io")?.max(1)),
                "doc-parse" => fp.doc_parse = Some(num("doc-parse")?.max(1)),
                "cancel-after" => fp.cancel_after = Some(num("cancel-after")?),
                "budget-trip" => {
                    let op = arg.filter(|a| !a.is_empty()).ok_or_else(|| {
                        FailpointSpecError(
                            "`budget-trip` needs an operator kind, e.g. budget-trip:rownum".into(),
                        )
                    })?;
                    fp.budget_trip.push(canonical_op_kind(op));
                }
                "oracle-perturb" => {
                    let arm = match arg {
                        Some("baseline") => OracleArm::Baseline,
                        Some("optimized") | Some("opt") => OracleArm::Optimized,
                        Some("noweaken") => OracleArm::NoWeaken,
                        other => {
                            return Err(FailpointSpecError(format!(
                                "`oracle-perturb`: unknown arm `{}` \
                                 (expected baseline|optimized|noweaken)",
                                other.unwrap_or("")
                            )))
                        }
                    };
                    fp.oracle_perturb = Some(arm);
                }
                "rule-perturb" => {
                    let rule = arg.filter(|a| !a.is_empty()).ok_or_else(|| {
                        FailpointSpecError(
                            "`rule-perturb` needs a rule name, e.g. rule-perturb:weaken-criteria"
                                .into(),
                        )
                    })?;
                    fp.rule_perturb = Some(rule.to_string());
                }
                other => {
                    return Err(FailpointSpecError(format!(
                        "unknown failpoint `{other}` (expected doc-io, doc-parse, \
                         budget-trip, cancel-after, oracle-perturb, rule-perturb)"
                    )))
                }
            }
        }
        Ok(fp)
    }

    /// Should the `n`-th (1-based) `fn:doc` access fail with an injected
    /// I/O error?
    pub fn doc_io_fails(&self, access: usize) -> bool {
        self.doc_io == Some(access)
    }

    /// Should the `n`-th (1-based) document load fail as malformed?
    pub fn doc_parse_fails(&self, load: usize) -> bool {
        self.doc_parse == Some(load)
    }

    /// Should evaluating an operator of `kind` trip the budget?
    pub fn trips_budget(&self, kind: &str) -> bool {
        self.budget_trip.iter().any(|k| k == kind)
    }

    /// Should the query cancel at this operator boundary (`ops_seen`
    /// operators already evaluated)?
    pub fn cancels_at(&self, ops_seen: usize) -> bool {
        self.cancel_after.is_some_and(|n| ops_seen >= n)
    }

    /// Should the given oracle arm's result be corrupted?
    pub fn perturbs_arm(&self, arm: OracleArm) -> bool {
        self.oracle_perturb == Some(arm)
    }

    /// The rewrite rule to apply unsoundly, when armed.
    pub fn perturbed_rule(&self) -> Option<&str> {
        self.rule_perturb.as_deref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_arms_nothing() {
        let fp = Failpoints::parse("").unwrap();
        assert!(fp.is_empty());
        assert!(!fp.doc_io_fails(1));
        assert!(!fp.trips_budget("%"));
        assert!(!fp.cancels_at(1_000_000));
    }

    #[test]
    fn parses_the_issue_example() {
        let fp = Failpoints::parse("doc-io:2,budget-trip:rownum,cancel-after:5").unwrap();
        assert!(!fp.doc_io_fails(1));
        assert!(fp.doc_io_fails(2));
        assert!(fp.trips_budget("%"));
        assert!(!fp.trips_budget("#"));
        assert!(!fp.cancels_at(4));
        assert!(fp.cancels_at(5));
    }

    #[test]
    fn canonical_symbols_and_aliases_both_work() {
        let fp = Failpoints::parse("budget-trip:⬡,budget-trip:join").unwrap();
        assert!(fp.trips_budget("⬡"));
        assert!(fp.trips_budget("⋈"));
    }

    #[test]
    fn oracle_perturb_arms() {
        let fp = Failpoints::parse("oracle-perturb:optimized").unwrap();
        assert!(fp.perturbs_arm(OracleArm::Optimized));
        assert!(!fp.perturbs_arm(OracleArm::Baseline));
        assert!(Failpoints::parse("oracle-perturb:sideways").is_err());
    }

    #[test]
    fn rule_perturb_arms() {
        let fp = Failpoints::parse("rule-perturb:weaken-criteria").unwrap();
        assert_eq!(fp.perturbed_rule(), Some("weaken-criteria"));
        assert!(!fp.is_empty());
        assert!(Failpoints::parse("rule-perturb").is_err());
        assert!(Failpoints::parse("rule-perturb:").is_err());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(Failpoints::parse("doc-io").is_err());
        assert!(Failpoints::parse("doc-io:x").is_err());
        assert!(Failpoints::parse("budget-trip").is_err());
        assert!(Failpoints::parse("frobnicate:3").is_err());
    }

    #[test]
    fn whitespace_and_empty_parts_are_tolerated() {
        let fp = Failpoints::parse(" doc-io:1 , , cancel-after:0 ").unwrap();
        assert!(fp.doc_io_fails(1));
        // cancel-after:0 cancels at the very first boundary.
        assert!(fp.cancels_at(0));
    }
}
