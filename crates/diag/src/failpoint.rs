//! Deterministic fault injection: a failpoint registry configured from a
//! compact spec string (CLI `--inject` / env `EXRQ_INJECT`).
//!
//! A [`Failpoints`] value is pure configuration — immutable thresholds
//! with no interior mutability — so a single registry can be cloned into
//! every pipeline layer (document resolver, engine, oracle) and each
//! consumer keeps its own deterministic counters. Running the same query
//! with the same spec therefore trips exactly the same failpoint at
//! exactly the same place, which is what makes fault-injection tests
//! reproducible.
//!
//! Spec grammar (comma-separated, order-insensitive):
//!
//! ```text
//!   doc-io:<n>          fail the n-th fn:doc access with FODC0002
//!   doc-parse:<n>       fail the n-th document load as malformed (FODC0006)
//!   budget-trip:<op>    trip EXRQ0001 when evaluating an operator of the
//!                       given kind (rownum, rowid, step, join, select,
//!                       project, distinct, union, aggr, …)
//!   cancel-after:<n>    cancel (EXRQ0002) at the n-th operator boundary
//!   oracle-perturb:<arm> corrupt one oracle arm's result
//!                       (arm ∈ baseline | optimized | noweaken)
//!   rule-perturb:<rule> apply the named rewrite rule in a deliberately
//!                       unsound variant (a planted optimizer bug; the
//!                       optimizer decides which rules support it)
//!   stats-perturb:<f>   deterministically corrupt the cost model's
//!                       cardinality estimates by factor f (even operator
//!                       ids ×f, odd ÷f) — wrong statistics may change
//!                       which plan wins, never what it returns
//!   panic:<op>          panic (deliberately) when evaluating an operator
//!                       of the given kind — exercises the serving layer's
//!                       panic containment (EXRQ0009)
//!   worker-kill:<n>     panic the worker thread that starts the n-th job,
//!                       outside the containment region — exercises worker
//!                       supervision and respawn
//!   net-torn-write:<n>  tear every n-th response write: flush half the
//!                       frame, pause, then the rest (framing must survive)
//!   net-disconnect:<n>  drop the connection mid-frame on every n-th
//!                       response write
//!   net-trickle:<n>     slow-loris every n-th response: dribble the first
//!                       bytes one at a time with flushes in between
//!   net-slow-read:<n>   delay every n-th request read on a connection
//! ```
//!
//! Example: `--inject doc-io:2,budget-trip:rownum,cancel-after:5`.
//!
//! The `net-*` chaos-transport points use every-n-th semantics with
//! per-connection counters, so the fault pattern is deterministic per
//! connection no matter how clients reconnect.

use std::fmt;

/// Which differential-oracle arm an `oracle-perturb` failpoint corrupts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OracleArm {
    /// Unoptimized, fully order-aware reference execution.
    Baseline,
    /// The optimized plan under the requested options.
    Optimized,
    /// Optimized with `%`-weakening disabled.
    NoWeaken,
}

impl OracleArm {
    pub fn as_str(self) -> &'static str {
        match self {
            OracleArm::Baseline => "baseline",
            OracleArm::Optimized => "optimized",
            OracleArm::NoWeaken => "noweaken",
        }
    }
}

impl fmt::Display for OracleArm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Error parsing a failpoint spec string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailpointSpecError(pub String);

impl fmt::Display for FailpointSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid failpoint spec: {}", self.0)
    }
}

impl std::error::Error for FailpointSpecError {}

/// Immutable registry of armed failpoints. `Default` is "nothing armed";
/// [`Failpoints::is_empty`] lets hot paths skip all checks with one branch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Failpoints {
    /// 1-based index of the `fn:doc` access that fails with an injected
    /// I/O error.
    pub doc_io: Option<usize>,
    /// 1-based index of the document load that fails as malformed content.
    pub doc_parse: Option<usize>,
    /// Operator-kind names (canonical symbols, e.g. `"%"`, `"⬡"`) whose
    /// evaluation trips the execution budget.
    pub budget_trip: Vec<String>,
    /// Cancel after this many operator evaluations.
    pub cancel_after: Option<usize>,
    /// Corrupt this oracle arm's result sequence.
    pub oracle_perturb: Option<OracleArm>,
    /// Apply this named rewrite rule unsoundly (planted optimizer bug).
    pub rule_perturb: Option<String>,
    /// Corrupt cost-model cardinality estimates by this factor, stored as
    /// bits so the registry stays `Eq` (planted planner-statistics bug:
    /// the plan may change, serialized results must not).
    pub stats_perturb: Option<u64>,
    /// Operator kind (canonical symbol) whose evaluation panics — the
    /// deterministic trigger for the serving layer's panic containment.
    pub panic_op: Option<String>,
    /// 1-based index of the started job whose worker thread panics
    /// outside the containment region (supervision test).
    pub worker_kill: Option<usize>,
    /// Tear every n-th response write on a connection.
    pub net_torn_write: Option<usize>,
    /// Disconnect mid-frame on every n-th response write.
    pub net_disconnect: Option<usize>,
    /// Slow-loris trickle every n-th response write.
    pub net_trickle: Option<usize>,
    /// Delay every n-th request read on a connection.
    pub net_slow_read: Option<usize>,
}

/// Map a user-facing operator alias to the canonical kind name used by
/// the algebra (`Op::kind_name`). Unknown aliases pass through verbatim,
/// so the canonical symbols themselves are always accepted.
fn canonical_op_kind(alias: &str) -> String {
    match alias {
        "rownum" => "%".to_string(),
        "rowid" => "#".to_string(),
        "step" => "⬡".to_string(),
        "select" => "σ".to_string(),
        "project" => "π".to_string(),
        "distinct" => "δ".to_string(),
        "union" => "∪̇".to_string(),
        "join" => "⋈".to_string(),
        "thetajoin" => "⋈θ".to_string(),
        "cross" => "×".to_string(),
        "difference" => "\\".to_string(),
        other => other.to_string(),
    }
}

impl Failpoints {
    /// Registry with nothing armed.
    pub fn none() -> Self {
        Self::default()
    }

    /// True when no failpoint is armed (the fast-path check).
    pub fn is_empty(&self) -> bool {
        self == &Self::default()
    }

    /// Parse a comma-separated spec (see the module docs for the grammar).
    /// The empty string parses to an empty registry.
    pub fn parse(spec: &str) -> Result<Self, FailpointSpecError> {
        let mut fp = Failpoints::default();
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let (name, arg) = match part.split_once(':') {
                Some((n, a)) => (n.trim(), Some(a.trim())),
                None => (part, None),
            };
            let num = |what: &str| -> Result<usize, FailpointSpecError> {
                let raw = arg.ok_or_else(|| {
                    FailpointSpecError(format!("`{what}` needs a numeric argument, e.g. {what}:2"))
                })?;
                raw.parse::<usize>().map_err(|_| {
                    FailpointSpecError(format!("`{what}`: cannot parse `{raw}` as a number"))
                })
            };
            match name {
                "doc-io" => fp.doc_io = Some(num("doc-io")?.max(1)),
                "doc-parse" => fp.doc_parse = Some(num("doc-parse")?.max(1)),
                "cancel-after" => fp.cancel_after = Some(num("cancel-after")?),
                "budget-trip" => {
                    let op = arg.filter(|a| !a.is_empty()).ok_or_else(|| {
                        FailpointSpecError(
                            "`budget-trip` needs an operator kind, e.g. budget-trip:rownum".into(),
                        )
                    })?;
                    fp.budget_trip.push(canonical_op_kind(op));
                }
                "oracle-perturb" => {
                    let arm = match arg {
                        Some("baseline") => OracleArm::Baseline,
                        Some("optimized") | Some("opt") => OracleArm::Optimized,
                        Some("noweaken") => OracleArm::NoWeaken,
                        other => {
                            return Err(FailpointSpecError(format!(
                                "`oracle-perturb`: unknown arm `{}` \
                                 (expected baseline|optimized|noweaken)",
                                other.unwrap_or("")
                            )))
                        }
                    };
                    fp.oracle_perturb = Some(arm);
                }
                "rule-perturb" => {
                    let rule = arg.filter(|a| !a.is_empty()).ok_or_else(|| {
                        FailpointSpecError(
                            "`rule-perturb` needs a rule name, e.g. rule-perturb:weaken-criteria"
                                .into(),
                        )
                    })?;
                    fp.rule_perturb = Some(rule.to_string());
                }
                "stats-perturb" => {
                    let raw = arg.filter(|a| !a.is_empty()).ok_or_else(|| {
                        FailpointSpecError(
                            "`stats-perturb` needs a factor, e.g. stats-perturb:100".into(),
                        )
                    })?;
                    let f = raw.parse::<f64>().map_err(|_| {
                        FailpointSpecError(format!(
                            "`stats-perturb`: cannot parse `{raw}` as a number"
                        ))
                    })?;
                    if !f.is_finite() || f <= 0.0 {
                        return Err(FailpointSpecError(
                            "`stats-perturb` factor must be finite and positive".into(),
                        ));
                    }
                    fp.stats_perturb = Some(f.to_bits());
                }
                "panic" => {
                    let op = arg.filter(|a| !a.is_empty()).ok_or_else(|| {
                        FailpointSpecError(
                            "`panic` needs an operator kind, e.g. panic:rownum".into(),
                        )
                    })?;
                    fp.panic_op = Some(canonical_op_kind(op));
                }
                "worker-kill" => fp.worker_kill = Some(num("worker-kill")?.max(1)),
                "net-torn-write" => fp.net_torn_write = Some(num("net-torn-write")?.max(1)),
                "net-disconnect" => fp.net_disconnect = Some(num("net-disconnect")?.max(1)),
                "net-trickle" => fp.net_trickle = Some(num("net-trickle")?.max(1)),
                "net-slow-read" => fp.net_slow_read = Some(num("net-slow-read")?.max(1)),
                other => {
                    return Err(FailpointSpecError(format!(
                        "unknown failpoint `{other}` (expected doc-io, doc-parse, \
                         budget-trip, cancel-after, oracle-perturb, rule-perturb, \
                         stats-perturb, panic, worker-kill, net-torn-write, net-disconnect, \
                         net-trickle, net-slow-read)"
                    )))
                }
            }
        }
        Ok(fp)
    }

    /// Should the `n`-th (1-based) `fn:doc` access fail with an injected
    /// I/O error?
    pub fn doc_io_fails(&self, access: usize) -> bool {
        self.doc_io == Some(access)
    }

    /// Should the `n`-th (1-based) document load fail as malformed?
    pub fn doc_parse_fails(&self, load: usize) -> bool {
        self.doc_parse == Some(load)
    }

    /// Should evaluating an operator of `kind` trip the budget?
    pub fn trips_budget(&self, kind: &str) -> bool {
        self.budget_trip.iter().any(|k| k == kind)
    }

    /// Should the query cancel at this operator boundary (`ops_seen`
    /// operators already evaluated)?
    pub fn cancels_at(&self, ops_seen: usize) -> bool {
        self.cancel_after.is_some_and(|n| ops_seen >= n)
    }

    /// Should the given oracle arm's result be corrupted?
    pub fn perturbs_arm(&self, arm: OracleArm) -> bool {
        self.oracle_perturb == Some(arm)
    }

    /// The rewrite rule to apply unsoundly, when armed.
    pub fn perturbed_rule(&self) -> Option<&str> {
        self.rule_perturb.as_deref()
    }

    /// The cost-model estimate corruption factor, when armed.
    pub fn perturbed_stats(&self) -> Option<f64> {
        self.stats_perturb.map(f64::from_bits)
    }

    /// Should evaluating an operator of `kind` panic (deliberately)?
    pub fn panics_in(&self, kind: &str) -> bool {
        self.panic_op.as_deref() == Some(kind)
    }

    /// Should the worker that starts the `n`-th (1-based) job panic
    /// outside the containment region?
    pub fn kills_worker_at(&self, job: usize) -> bool {
        self.worker_kill == Some(job)
    }

    /// True when any `net-*` chaos-transport point is armed.
    pub fn any_net_chaos(&self) -> bool {
        self.net_torn_write.is_some()
            || self.net_disconnect.is_some()
            || self.net_trickle.is_some()
            || self.net_slow_read.is_some()
    }

    /// Should the `n`-th (1-based) response write on a connection be torn?
    pub fn tears_write(&self, nth: usize) -> bool {
        self.net_torn_write.is_some_and(|k| nth.is_multiple_of(k))
    }

    /// Should the `n`-th (1-based) response write disconnect mid-frame?
    pub fn disconnects_write(&self, nth: usize) -> bool {
        self.net_disconnect.is_some_and(|k| nth.is_multiple_of(k))
    }

    /// Should the `n`-th (1-based) response write trickle byte-by-byte?
    pub fn trickles_write(&self, nth: usize) -> bool {
        self.net_trickle.is_some_and(|k| nth.is_multiple_of(k))
    }

    /// Should the `n`-th (1-based) request read on a connection be delayed?
    pub fn delays_read(&self, nth: usize) -> bool {
        self.net_slow_read.is_some_and(|k| nth.is_multiple_of(k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_spec_arms_nothing() {
        let fp = Failpoints::parse("").unwrap();
        assert!(fp.is_empty());
        assert!(!fp.doc_io_fails(1));
        assert!(!fp.trips_budget("%"));
        assert!(!fp.cancels_at(1_000_000));
    }

    #[test]
    fn parses_the_issue_example() {
        let fp = Failpoints::parse("doc-io:2,budget-trip:rownum,cancel-after:5").unwrap();
        assert!(!fp.doc_io_fails(1));
        assert!(fp.doc_io_fails(2));
        assert!(fp.trips_budget("%"));
        assert!(!fp.trips_budget("#"));
        assert!(!fp.cancels_at(4));
        assert!(fp.cancels_at(5));
    }

    #[test]
    fn canonical_symbols_and_aliases_both_work() {
        let fp = Failpoints::parse("budget-trip:⬡,budget-trip:join").unwrap();
        assert!(fp.trips_budget("⬡"));
        assert!(fp.trips_budget("⋈"));
    }

    #[test]
    fn oracle_perturb_arms() {
        let fp = Failpoints::parse("oracle-perturb:optimized").unwrap();
        assert!(fp.perturbs_arm(OracleArm::Optimized));
        assert!(!fp.perturbs_arm(OracleArm::Baseline));
        assert!(Failpoints::parse("oracle-perturb:sideways").is_err());
    }

    #[test]
    fn rule_perturb_arms() {
        let fp = Failpoints::parse("rule-perturb:weaken-criteria").unwrap();
        assert_eq!(fp.perturbed_rule(), Some("weaken-criteria"));
        assert!(!fp.is_empty());
        assert!(Failpoints::parse("rule-perturb").is_err());
        assert!(Failpoints::parse("rule-perturb:").is_err());
    }

    #[test]
    fn stats_perturb_arms() {
        let fp = Failpoints::parse("stats-perturb:100").unwrap();
        assert_eq!(fp.perturbed_stats(), Some(100.0));
        assert!(!fp.is_empty());
        let fp = Failpoints::parse("stats-perturb:0.25").unwrap();
        assert_eq!(fp.perturbed_stats(), Some(0.25));
        assert!(Failpoints::parse("stats-perturb").is_err());
        assert!(Failpoints::parse("stats-perturb:").is_err());
        assert!(Failpoints::parse("stats-perturb:0").is_err());
        assert!(Failpoints::parse("stats-perturb:-3").is_err());
        assert!(Failpoints::parse("stats-perturb:inf").is_err());
        assert!(Failpoints::parse("stats-perturb:x").is_err());
    }

    #[test]
    fn rejects_malformed_specs() {
        assert!(Failpoints::parse("doc-io").is_err());
        assert!(Failpoints::parse("doc-io:x").is_err());
        assert!(Failpoints::parse("budget-trip").is_err());
        assert!(Failpoints::parse("frobnicate:3").is_err());
    }

    #[test]
    fn panic_failpoint_canonicalizes_like_budget_trip() {
        let fp = Failpoints::parse("panic:rownum").unwrap();
        assert!(fp.panics_in("%"));
        assert!(!fp.panics_in("#"));
        assert!(!fp.is_empty());
        let fp = Failpoints::parse("panic:⋈θ").unwrap();
        assert!(fp.panics_in("⋈θ"));
        assert!(Failpoints::parse("panic").is_err());
        assert!(Failpoints::parse("panic:").is_err());
    }

    #[test]
    fn worker_kill_is_one_shot_by_job_index() {
        let fp = Failpoints::parse("worker-kill:3").unwrap();
        assert!(!fp.kills_worker_at(2));
        assert!(fp.kills_worker_at(3));
        assert!(!fp.kills_worker_at(4));
        // 0 clamps to 1 (a "kill the first job" spec, never a no-op).
        assert!(Failpoints::parse("worker-kill:0")
            .unwrap()
            .kills_worker_at(1));
    }

    #[test]
    fn net_chaos_points_fire_every_nth() {
        let fp =
            Failpoints::parse("net-torn-write:3,net-disconnect:5,net-trickle:2,net-slow-read:4")
                .unwrap();
        assert!(fp.any_net_chaos());
        assert!(!fp.tears_write(1));
        assert!(fp.tears_write(3));
        assert!(fp.tears_write(6));
        assert!(fp.disconnects_write(5));
        assert!(!fp.disconnects_write(6));
        assert!(fp.trickles_write(2));
        assert!(fp.delays_read(8));
        assert!(!fp.delays_read(7));
        assert!(!Failpoints::parse("doc-io:1").unwrap().any_net_chaos());
        assert!(Failpoints::parse("net-trickle:x").is_err());
    }

    #[test]
    fn whitespace_and_empty_parts_are_tolerated() {
        let fp = Failpoints::parse(" doc-io:1 , , cancel-after:0 ").unwrap();
        assert!(fp.doc_io_fails(1));
        // cancel-after:0 cancels at the very first boundary.
        assert!(fp.cancels_at(0));
    }
}
