//! Operator-level randomized tests: each relational operator against a
//! naive model, plus the row-numbering invariants the compiler relies
//! on. Driven by the in-repo deterministic PRNG so the suite builds
//! offline.

use exrquy_algebra::{AValue, Col, Dag, FunKind, Op, OpId, SortKey};
use exrquy_engine::{Engine, EngineOptions, Item, Table};
use exrquy_xml::rng::SmallRng;
use exrquy_xml::{Catalog, FragArena};
use std::collections::HashMap;
use std::sync::Arc;

fn lit(dag: &mut Dag, cols: Vec<Col>, rows: &[Vec<i64>]) -> OpId {
    dag.add(Op::Lit {
        cols,
        rows: rows
            .iter()
            .map(|r| r.iter().map(|&v| AValue::Int(v)).collect())
            .collect(),
    })
}

fn run(dag: &Dag, root: OpId) -> Table {
    let mut arena = FragArena::new(Arc::new(Catalog::new()));
    let mut e = Engine::new(dag, &mut arena, EngineOptions::default());
    (*e.eval(root).unwrap()).clone()
}

/// Up to 40 rows of `[0..6, -20..20]` pairs.
fn rows2(rng: &mut SmallRng) -> Vec<Vec<i64>> {
    let n = rng.gen_range(0usize..40);
    (0..n)
        .map(|_| vec![rng.gen_range(0i64..6), rng.gen_range(-20i64..20)])
        .collect()
}

fn vec_i64(rng: &mut SmallRng, lo: i64, hi: i64, max_len: usize) -> Vec<i64> {
    let n = rng.gen_range(0usize..max_len);
    (0..n).map(|_| rng.gen_range(lo..hi)).collect()
}

/// `%` numbers each partition densely 1..k in sort order, regardless
/// of physical row order; row order itself is preserved.
#[test]
fn rownum_is_dense_per_group() {
    let mut rng = SmallRng::seed_from_u64(0x01);
    for _case in 0..96 {
        let rows = rows2(&mut rng);
        let mut dag = Dag::new();
        let src = lit(&mut dag, vec![Col::ITER, Col::ITEM], &rows);
        let rn = dag.add(Op::RowNum {
            input: src,
            new: Col::POS,
            order: vec![SortKey::asc(Col::ITEM)],
            part: Some(Col::ITER),
        });
        let t = run(&dag, rn);
        assert_eq!(t.nrows(), rows.len());
        // Group rows; per group the assigned numbers must be a permutation
        // of 1..=k ordered consistently with the item values.
        let mut groups: HashMap<i64, Vec<(i64, i64)>> = HashMap::new();
        for (r, row) in rows.iter().enumerate() {
            // Row order preserved: same (iter, item) as the input.
            assert_eq!(t.int(Col::ITER, r), row[0]);
            assert_eq!(t.int(Col::ITEM, r), row[1]);
            groups
                .entry(t.int(Col::ITER, r))
                .or_default()
                .push((t.int(Col::POS, r), t.int(Col::ITEM, r)));
        }
        for (_, mut g) in groups {
            g.sort();
            for (i, &(pos, _)) in g.iter().enumerate() {
                assert_eq!(pos, i as i64 + 1, "not dense: {:?}", &g);
            }
            // Sorting by assigned number must order items ascending.
            for w in g.windows(2) {
                assert!(w[0].1 <= w[1].1, "order violated: {:?}", &g);
            }
        }
    }
}

/// `#` attaches unique values (and the engine's dense fast path for
/// criterion-free `%` matches per-group counting).
#[test]
fn rowid_unique_and_free_rownum_dense() {
    let mut rng = SmallRng::seed_from_u64(0x02);
    for _case in 0..96 {
        let rows = rows2(&mut rng);
        let mut dag = Dag::new();
        let src = lit(&mut dag, vec![Col::ITER, Col::ITEM], &rows);
        let rid = dag.add(Op::RowId {
            input: src,
            new: Col::POS,
        });
        let t = run(&dag, rid);
        let mut seen = std::collections::HashSet::new();
        for r in 0..t.nrows() {
            assert!(seen.insert(t.int(Col::POS, r)), "duplicate row id");
        }
        let free = dag.add(Op::RowNum {
            input: src,
            new: Col::POS,
            order: vec![],
            part: Some(Col::ITER),
        });
        let t = run(&dag, free);
        let mut per_group: HashMap<i64, Vec<i64>> = HashMap::new();
        for r in 0..t.nrows() {
            per_group
                .entry(t.int(Col::ITER, r))
                .or_default()
                .push(t.int(Col::POS, r));
        }
        for (_, mut v) in per_group {
            v.sort_unstable();
            for (i, &p) in v.iter().enumerate() {
                assert_eq!(p, i as i64 + 1);
            }
        }
    }
}

/// Theta-join (band) ≡ the nested-loop definition.
#[test]
fn thetajoin_matches_nested_loop() {
    let kinds = [
        FunKind::Lt,
        FunKind::Le,
        FunKind::Gt,
        FunKind::Ge,
        FunKind::Eq,
        FunKind::Ne,
    ];
    let mut rng = SmallRng::seed_from_u64(0x03);
    for _case in 0..96 {
        let l = vec_i64(&mut rng, -20, 20, 25);
        let r = vec_i64(&mut rng, -20, 20, 25);
        let kind = kinds[rng.gen_range(0usize..kinds.len())];
        let mut dag = Dag::new();
        let lv: Vec<Vec<i64>> = l.iter().map(|&v| vec![v]).collect();
        let rv: Vec<Vec<i64>> = r.iter().map(|&v| vec![v]).collect();
        let lt = lit(&mut dag, vec![Col::ITEM1], &lv);
        let rt = lit(&mut dag, vec![Col::ITEM2], &rv);
        let tj = dag.add(Op::ThetaJoin {
            l: lt,
            r: rt,
            pred: vec![(Col::ITEM1, kind, Col::ITEM2)],
        });
        let t = run(&dag, tj);
        let mut got: Vec<(i64, i64)> = (0..t.nrows())
            .map(|i| (t.int(Col::ITEM1, i), t.int(Col::ITEM2, i)))
            .collect();
        got.sort_unstable();
        let mut expect: Vec<(i64, i64)> = Vec::new();
        for &a in &l {
            for &b in &r {
                let keep = match kind {
                    FunKind::Lt => a < b,
                    FunKind::Le => a <= b,
                    FunKind::Gt => a > b,
                    FunKind::Ge => a >= b,
                    FunKind::Eq => a == b,
                    FunKind::Ne => a != b,
                    _ => unreachable!(),
                };
                if keep {
                    expect.push((a, b));
                }
            }
        }
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}

/// Difference ≡ the set-definition anti-semijoin.
#[test]
fn difference_matches_model() {
    let mut rng = SmallRng::seed_from_u64(0x04);
    for _case in 0..96 {
        let l = vec_i64(&mut rng, 0, 10, 30);
        let r = vec_i64(&mut rng, 0, 10, 30);
        let mut dag = Dag::new();
        let lv: Vec<Vec<i64>> = l.iter().map(|&v| vec![v]).collect();
        let rv: Vec<Vec<i64>> = r.iter().map(|&v| vec![v]).collect();
        let lt = lit(&mut dag, vec![Col::ITER], &lv);
        let rt = lit(&mut dag, vec![Col::ITER1], &rv);
        let d = dag.add(Op::Difference {
            l: lt,
            r: rt,
            on: vec![(Col::ITER, Col::ITER1)],
        });
        let t = run(&dag, d);
        let rset: std::collections::HashSet<i64> = r.iter().copied().collect();
        let expect: Vec<i64> = l.iter().copied().filter(|v| !rset.contains(v)).collect();
        let got: Vec<i64> = (0..t.nrows()).map(|i| t.int(Col::ITER, i)).collect();
        assert_eq!(got, expect);
    }
}

/// Distinct keeps the first occurrence of each row, in order.
#[test]
fn distinct_keeps_first_occurrences() {
    let mut rng = SmallRng::seed_from_u64(0x05);
    for _case in 0..96 {
        let rows = rows2(&mut rng);
        let mut dag = Dag::new();
        let src = lit(&mut dag, vec![Col::ITER, Col::ITEM], &rows);
        let d = dag.add(Op::Distinct { input: src });
        let t = run(&dag, d);
        let mut seen = std::collections::HashSet::new();
        let mut expect = Vec::new();
        for r in &rows {
            if seen.insert((r[0], r[1])) {
                expect.push((r[0], r[1]));
            }
        }
        let got: Vec<(i64, i64)> = (0..t.nrows())
            .map(|i| (t.int(Col::ITER, i), t.int(Col::ITEM, i)))
            .collect();
        assert_eq!(got, expect);
    }
}

/// EquiJoin ≡ nested-loop equality join (pair multiset).
#[test]
fn equijoin_matches_model() {
    let mut rng = SmallRng::seed_from_u64(0x06);
    for _case in 0..96 {
        let n_l = rng.gen_range(0usize..25);
        let l: Vec<(i64, i64)> = (0..n_l)
            .map(|_| (rng.gen_range(0i64..8), rng.gen_range(0i64..50)))
            .collect();
        let n_r = rng.gen_range(0usize..25);
        let r: Vec<(i64, i64)> = (0..n_r)
            .map(|_| (rng.gen_range(0i64..8), rng.gen_range(0i64..50)))
            .collect();
        let mut dag = Dag::new();
        let lv: Vec<Vec<i64>> = l.iter().map(|&(k, v)| vec![k, v]).collect();
        let rv: Vec<Vec<i64>> = r.iter().map(|&(k, v)| vec![k, v]).collect();
        let lt = lit(&mut dag, vec![Col::ITER, Col::ITEM1], &lv);
        let rt = lit(&mut dag, vec![Col::ITER1, Col::ITEM2], &rv);
        let j = dag.add(Op::EquiJoin {
            l: lt,
            r: rt,
            lcol: Col::ITER,
            rcol: Col::ITER1,
        });
        let t = run(&dag, j);
        let mut got: Vec<(i64, i64, i64)> = (0..t.nrows())
            .map(|i| {
                (
                    t.int(Col::ITER, i),
                    t.int(Col::ITEM1, i),
                    t.int(Col::ITEM2, i),
                )
            })
            .collect();
        got.sort_unstable();
        let mut expect = Vec::new();
        for &(lk, lv_) in &l {
            for &(rk, rv_) in &r {
                if lk == rk {
                    expect.push((lk, lv_, rv_));
                }
            }
        }
        expect.sort_unstable();
        assert_eq!(got, expect);
    }
}

/// Aggregates match straightforward per-group folds.
#[test]
fn aggregates_match_model() {
    use exrquy_algebra::AggrKind;
    let mut rng = SmallRng::seed_from_u64(0x07);
    for _case in 0..96 {
        let rows = rows2(&mut rng);
        let mut dag = Dag::new();
        let src = lit(&mut dag, vec![Col::ITER, Col::ITEM], &rows);
        let mut model: HashMap<i64, Vec<i64>> = HashMap::new();
        for r in &rows {
            model.entry(r[0]).or_default().push(r[1]);
        }
        for kind in [AggrKind::Count, AggrKind::Sum, AggrKind::Max, AggrKind::Min] {
            let a = dag.add(Op::Aggr {
                input: src,
                kind,
                new: Col::RES,
                arg: if kind == AggrKind::Count {
                    None
                } else {
                    Some(Col::ITEM)
                },
                part: Some(Col::ITER),
            });
            let t = run(&dag, a);
            assert_eq!(t.nrows(), model.len());
            for r in 0..t.nrows() {
                let g = &model[&t.int(Col::ITER, r)];
                let got = t.item(Col::RES, r);
                match kind {
                    AggrKind::Count => assert_eq!(got, Item::Int(g.len() as i64)),
                    AggrKind::Sum => {
                        assert_eq!(got, Item::Dbl(g.iter().sum::<i64>() as f64))
                    }
                    AggrKind::Max => {
                        assert_eq!(got, Item::Dbl(*g.iter().max().unwrap() as f64))
                    }
                    AggrKind::Min => {
                        assert_eq!(got, Item::Dbl(*g.iter().min().unwrap() as f64))
                    }
                    _ => unreachable!(),
                }
            }
        }
    }
}
