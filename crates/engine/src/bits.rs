//! A dense bit vector backing [`Column::Bool`](crate::column::Column).
//!
//! Hand-rolled (the workspace is offline — no `bitvec` crate): 64 bits
//! per word, append-only construction, O(1) indexed reads. Predicates
//! produce these instead of boxing one [`Item::Bool`](crate::item::Item)
//! per row; a select over a dense `Bool` column walks words, not items.

/// A growable, densely packed vector of booleans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    /// An empty bit vector.
    pub fn new() -> Self {
        BitVec::default()
    }

    /// An empty bit vector with room for `n` bits.
    pub fn with_capacity(n: usize) -> Self {
        BitVec {
            words: Vec::with_capacity(n.div_ceil(64)),
            len: 0,
        }
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one bit.
    pub fn push(&mut self, b: bool) {
        let (w, off) = (self.len / 64, self.len % 64);
        if off == 0 {
            self.words.push(0);
        }
        if b {
            self.words[w] |= 1u64 << off;
        }
        self.len += 1;
    }

    /// Bit at `i`; panics when out of bounds (mirrors slice indexing).
    pub fn get(&self, i: usize) -> bool {
        assert!(
            i < self.len,
            "bit index {i} out of bounds (len {})",
            self.len
        );
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Indices of set bits within `lo..hi`, appended to `out` in order.
    /// The word-at-a-time scan is what makes fused selects cheap: a run
    /// of 64 false rows costs one comparison.
    pub fn extend_ones_in(&self, lo: usize, hi: usize, out: &mut Vec<u32>) {
        debug_assert!(hi <= self.len);
        let mut i = lo;
        while i < hi {
            let w = i / 64;
            let mut word = self.words[w] >> (i % 64);
            if word == 0 {
                i = (w + 1) * 64;
                continue;
            }
            while word != 0 && i < hi {
                let tz = word.trailing_zeros() as usize;
                i += tz;
                word >>= tz;
                if i >= hi {
                    break;
                }
                out.push(i as u32);
                i += 1;
                word >>= 1;
            }
            if word == 0 {
                i = (w + 1) * 64;
            }
        }
    }

    /// Collect from a boolean iterator.
    pub fn from_iter_exact(it: impl Iterator<Item = bool>) -> Self {
        let (lo, _) = it.size_hint();
        let mut v = BitVec::with_capacity(lo);
        for b in it {
            v.push(b);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_get_roundtrip() {
        let pattern: Vec<bool> = (0..200).map(|i| i % 3 == 0 || i % 7 == 0).collect();
        let bv = BitVec::from_iter_exact(pattern.iter().copied());
        assert_eq!(bv.len(), 200);
        for (i, &b) in pattern.iter().enumerate() {
            assert_eq!(bv.get(i), b, "bit {i}");
        }
        assert_eq!(bv.count_ones(), pattern.iter().filter(|&&b| b).count());
    }

    #[test]
    fn ones_in_ranges_match_scalar_scan() {
        let pattern: Vec<bool> = (0..300).map(|i| (i * 31) % 5 == 0).collect();
        let bv = BitVec::from_iter_exact(pattern.iter().copied());
        for (lo, hi) in [(0, 300), (0, 0), (63, 65), (64, 128), (1, 299), (200, 200)] {
            let mut got = Vec::new();
            bv.extend_ones_in(lo, hi, &mut got);
            let want: Vec<u32> = (lo..hi).filter(|&i| pattern[i]).map(|i| i as u32).collect();
            assert_eq!(got, want, "range {lo}..{hi}");
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_get_panics() {
        BitVec::new().get(0);
    }
}
