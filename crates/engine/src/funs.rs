//! Row-level function evaluation ([`FunKind`] semantics).
//!
//! Comparisons follow XQuery's dynamic rules for schema-less data: if
//! either operand is numeric, the other is promoted numerically (untyped
//! attribute/text values arrive as strings); otherwise strings compare
//! lexically and booleans by value. Arithmetic promotes to double unless
//! both operands are integers and the operation is closed over integers.

use crate::item::Item;
use exrquy_algebra::FunKind;
use exrquy_diag::ErrorCode;
use exrquy_xml::atomize;
use exrquy_xml::NodeRead;
use std::cmp::Ordering;

/// Dynamic-type error (e.g. arithmetic on a non-numeric string), tagged
/// with its W3C error code.
#[derive(Debug, Clone)]
pub struct DynError {
    pub code: ErrorCode,
    pub message: String,
}

impl DynError {
    fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        DynError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for DynError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "dynamic error: {}", self.message)
    }
}

impl std::error::Error for DynError {}

/// Compare two atomic items under XQuery value-comparison rules.
/// Returns `None` when the values are incomparable (which general
/// comparison treats as `false`).
pub fn compare(a: &Item, b: &Item) -> Option<Ordering> {
    match (a, b) {
        (Item::Bool(x), Item::Bool(y)) => Some(x.cmp(y)),
        (Item::Str(x), Item::Str(y)) => Some(x.as_ref().cmp(y.as_ref())),
        _ => {
            // Numeric if either side is numeric (untyped promotion).
            let xn = a.as_number();
            let yn = b.as_number();
            match (xn, yn) {
                (Some(x), Some(y)) => x.partial_cmp(&y),
                (Some(x), None) => b.as_number_promoting().and_then(|y| x.partial_cmp(&y)),
                (None, Some(y)) => a.as_number_promoting().and_then(|x| x.partial_cmp(&y)),
                (None, None) => None,
            }
        }
    }
}

/// Outcome of a comparison function.
pub fn compare_with(kind: FunKind, a: &Item, b: &Item) -> bool {
    let Some(ord) = compare(a, b) else {
        return false;
    };
    match kind {
        FunKind::Eq => ord == Ordering::Equal,
        FunKind::Ne => ord != Ordering::Equal,
        FunKind::Lt => ord == Ordering::Less,
        FunKind::Le => ord != Ordering::Greater,
        FunKind::Gt => ord == Ordering::Greater,
        FunKind::Ge => ord != Ordering::Less,
        // Invariant: reachable only from Eq..Ge dispatch sites (apply and
        // the theta-join), never from user input — a trip here is a bug in
        // the engine itself, so a panic is the right failure mode.
        other => panic!("compare_with called with non-comparison {other:?}"),
    }
}

fn num(i: &Item) -> Result<f64, DynError> {
    i.as_number_promoting().ok_or_else(|| {
        DynError::new(
            ErrorCode::FORG0001,
            format!("cannot treat `{i}` as a number"),
        )
    })
}

fn both_int(a: &Item, b: &Item) -> Option<(i64, i64)> {
    match (a, b) {
        (Item::Int(x), Item::Int(y)) => Some((*x, *y)),
        _ => None,
    }
}

/// Atomize: nodes become their (untyped) string value, atomics pass.
pub fn atomize_item<R: NodeRead + ?Sized>(nodes: &R, i: &Item) -> Item {
    match i {
        Item::Node(n) => Item::str(&atomize::node_string_value(nodes, *n)),
        other => other.clone(),
    }
}

/// Evaluate `kind` over `args` (already atomized where the compiler
/// requires it).
///
/// Arity: the compiler emits `Op::Fun` with exactly the argument count
/// each `FunKind` requires, so the `args[0]`/`args[1]`/`args[2]` indexing
/// below is an engine invariant, not a user-reachable panic.
pub fn apply<R: NodeRead + ?Sized>(
    nodes: &R,
    kind: FunKind,
    args: &[Item],
) -> Result<Item, DynError> {
    use FunKind::*;
    Ok(match kind {
        Add | Sub | Mul | Div | IDiv | Mod => {
            let (a, b) = (&args[0], &args[1]);
            if let (Some((x, y)), true) = (both_int(a, b), matches!(kind, Add | Sub | Mul)) {
                match kind {
                    Add => Item::Int(x.wrapping_add(y)),
                    Sub => Item::Int(x.wrapping_sub(y)),
                    Mul => Item::Int(x.wrapping_mul(y)),
                    _ => unreachable!(),
                }
            } else {
                let (x, y) = (num(a)?, num(b)?);
                match kind {
                    Add => Item::Dbl(x + y),
                    Sub => Item::Dbl(x - y),
                    Mul => Item::Dbl(x * y),
                    Div => Item::Dbl(x / y),
                    IDiv => {
                        if y == 0.0 {
                            return Err(DynError::new(
                                ErrorCode::FOAR0001,
                                "integer division by zero",
                            ));
                        }
                        Item::Int((x / y).trunc() as i64)
                    }
                    Mod => {
                        if let Some((xi, yi)) = both_int(&args[0], &args[1]) {
                            if yi == 0 {
                                return Err(DynError::new(ErrorCode::FOAR0001, "modulo by zero"));
                            }
                            Item::Int(xi % yi)
                        } else {
                            Item::Dbl(x % y)
                        }
                    }
                    _ => unreachable!(),
                }
            }
        }
        UnaryMinus => match &args[0] {
            Item::Int(i) => Item::Int(-i),
            other => Item::Dbl(-num(other)?),
        },
        Eq | Ne | Lt | Le | Gt | Ge => Item::Bool(compare_with(kind, &args[0], &args[1])),
        And => Item::Bool(args[0].ebv() && args[1].ebv()),
        Or => Item::Bool(args[0].ebv() || args[1].ebv()),
        Not => Item::Bool(!args[0].ebv()),
        Concat => {
            let mut s = String::new();
            for a in args {
                s.push_str(&a.to_xq_string());
            }
            Item::str(&s)
        }
        Contains => Item::Bool(args[0].to_xq_string().contains(&args[1].to_xq_string())),
        StartsWith => Item::Bool(args[0].to_xq_string().starts_with(&args[1].to_xq_string())),
        StringLength => Item::Int(args[0].to_xq_string().chars().count() as i64),
        Substring2 => {
            let s = args[0].to_xq_string();
            let start = (num(&args[1])?.round() as i64 - 1).max(0) as usize;
            Item::str(&s.chars().skip(start).collect::<String>())
        }
        Substring3 => {
            let s = args[0].to_xq_string();
            let startf = num(&args[1])?.round() as i64;
            let lenf = num(&args[2])?.round() as i64;
            let start = (startf - 1).max(0) as usize;
            let end = (startf - 1 + lenf).max(0) as usize;
            Item::str(
                &s.chars()
                    .enumerate()
                    .filter(|(i, _)| *i >= start && *i < end)
                    .map(|(_, c)| c)
                    .collect::<String>(),
            )
        }
        NormalizeSpace => Item::str(
            &args[0]
                .to_xq_string()
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" "),
        ),
        SubstringBefore => {
            let s = args[0].to_xq_string();
            let sep = args[1].to_xq_string();
            match s.find(&sep) {
                Some(i) if !sep.is_empty() => Item::str(&s[..i]),
                _ => Item::str(""),
            }
        }
        SubstringAfter => {
            let s = args[0].to_xq_string();
            let sep = args[1].to_xq_string();
            match s.find(&sep) {
                Some(i) if !sep.is_empty() => Item::str(&s[i + sep.len()..]),
                _ => Item::str(""),
            }
        }
        EndsWith => Item::Bool(args[0].to_xq_string().ends_with(&args[1].to_xq_string())),
        Abs => Item::Dbl(num(&args[0])?.abs()),
        StringJoinSep => {
            // Handled at the aggregation level; as a row function it joins
            // exactly two pre-joined halves (unused by the compiler today).
            let mut s = args[0].to_xq_string();
            s.push_str(&args[1].to_xq_string());
            Item::str(&s)
        }
        UpperCase => Item::str(&args[0].to_xq_string().to_uppercase()),
        LowerCase => Item::str(&args[0].to_xq_string().to_lowercase()),
        Translate => {
            let s = args[0].to_xq_string();
            let from: Vec<char> = args[1].to_xq_string().chars().collect();
            let to: Vec<char> = args[2].to_xq_string().chars().collect();
            Item::str(
                &s.chars()
                    .filter_map(|c| match from.iter().position(|&f| f == c) {
                        Some(i) => to.get(i).copied(),
                        None => Some(c),
                    })
                    .collect::<String>(),
            )
        }
        Atomize => atomize_item(nodes, &args[0]),
        ToNum => {
            let v = atomize_item(nodes, &args[0]);
            match v.as_number_promoting() {
                Some(n) => Item::Dbl(n),
                None => Item::Dbl(f64::NAN),
            }
        }
        ToStr => Item::str(&atomize_item(nodes, &args[0]).to_xq_string()),
        NameOf => match &args[0] {
            Item::Node(n) => {
                let doc = nodes.doc_of(*n);
                let name = doc.name(n.pre);
                if name.is_some() {
                    Item::str(nodes.resolve_name(name))
                } else {
                    Item::str("")
                }
            }
            _ => {
                return Err(DynError::new(
                    ErrorCode::XPTY0004,
                    "fn:local-name on non-node",
                ))
            }
        },
        ItemEbv => Item::Bool(args[0].ebv()),
        NodeBefore | NodeAfter | NodeIs => match (&args[0], &args[1]) {
            (Item::Node(a), Item::Node(b)) => Item::Bool(match kind {
                NodeBefore => a < b,
                NodeAfter => a > b,
                _ => a == b,
            }),
            _ => {
                return Err(DynError::new(
                    ErrorCode::XPTY0004,
                    "node comparison on non-nodes",
                ))
            }
        },
        Round => Item::Dbl(num(&args[0])?.round()),
        Floor => Item::Dbl(num(&args[0])?.floor()),
        Ceiling => Item::Dbl(num(&args[0])?.ceil()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrquy_xml::Catalog;

    fn store() -> Catalog {
        Catalog::new()
    }

    #[test]
    fn arithmetic_integer_and_double() {
        let s = store();
        assert_eq!(
            apply(&s, FunKind::Add, &[Item::Int(2), Item::Int(3)]).unwrap(),
            Item::Int(5)
        );
        assert_eq!(
            apply(&s, FunKind::Mul, &[Item::Int(5000), Item::str("2.5")]).unwrap(),
            Item::Dbl(12500.0)
        );
        assert!(apply(&s, FunKind::Div, &[Item::Int(1), Item::Int(0)])
            .unwrap()
            .as_number()
            .unwrap()
            .is_infinite());
        assert!(apply(&s, FunKind::IDiv, &[Item::Int(1), Item::Int(0)]).is_err());
        assert_eq!(
            apply(&s, FunKind::Mod, &[Item::Int(7), Item::Int(3)]).unwrap(),
            Item::Int(1)
        );
    }

    #[test]
    fn comparisons_promote_untyped() {
        // `@income > 5000 * $i` style: string attribute value vs number.
        assert!(compare_with(
            FunKind::Gt,
            &Item::str("68000"),
            &Item::Dbl(62500.0)
        ));
        assert!(!compare_with(
            FunKind::Gt,
            &Item::str("not-a-number"),
            &Item::Dbl(1.0)
        ));
        assert!(compare_with(FunKind::Eq, &Item::str("a"), &Item::str("a")));
        assert!(compare_with(FunKind::Le, &Item::Int(2), &Item::Dbl(2.0)));
    }

    #[test]
    fn string_functions() {
        let s = store();
        assert_eq!(
            apply(
                &s,
                FunKind::Contains,
                &[Item::str("gold ring"), Item::str("gold")]
            )
            .unwrap(),
            Item::Bool(true)
        );
        assert_eq!(
            apply(
                &s,
                FunKind::Substring3,
                &[Item::str("hello"), Item::Int(2), Item::Int(3)]
            )
            .unwrap(),
            Item::str("ell")
        );
        assert_eq!(
            apply(&s, FunKind::StringLength, &[Item::str("héllo")]).unwrap(),
            Item::Int(5)
        );
    }

    #[test]
    fn atomize_and_casts() {
        let mut b = Catalog::builder();
        let root = b.load_str("t.xml", "<a>4<b>2</b></a>").unwrap();
        let s = b.build();
        let elem = Item::Node(exrquy_xml::NodeId::new(root.frag, 1));
        assert_eq!(atomize_item(&s, &elem), Item::str("42"));
        assert_eq!(
            apply(&s, FunKind::ToNum, std::slice::from_ref(&elem)).unwrap(),
            Item::Dbl(42.0)
        );
        assert_eq!(apply(&s, FunKind::NameOf, &[elem]).unwrap(), Item::str("a"));
    }

    #[test]
    fn node_order_comparisons() {
        let s = store();
        let a = Item::Node(exrquy_xml::NodeId::new(0, 1));
        let b = Item::Node(exrquy_xml::NodeId::new(0, 3));
        assert_eq!(
            apply(&s, FunKind::NodeBefore, &[a.clone(), b.clone()]).unwrap(),
            Item::Bool(true)
        );
        assert_eq!(
            apply(&s, FunKind::NodeIs, &[a.clone(), a.clone()]).unwrap(),
            Item::Bool(true)
        );
        assert!(apply(&s, FunKind::NodeIs, &[a, Item::Int(1)]).is_err());
    }
}
