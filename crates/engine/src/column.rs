//! Columns: typed value vectors, `Arc`-shared between tables (and, under
//! intra-query parallel execution, between worker threads).
//!
//! Two physical representations cover the plans' needs: dense `i64`
//! columns (`iter`, `pos`, `bind`, row ids — the hot sort/join keys) and
//! generic [`Item`] columns. Booleans ride in `Item` columns; selections
//! read them through [`Column::get`].

use crate::item::Item;
use std::sync::Arc;

/// A column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    Int(Vec<i64>),
    Item(Vec<Item>),
}

impl Column {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Item(v) => v.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `i` as an [`Item`].
    pub fn get(&self, i: usize) -> Item {
        match self {
            Column::Int(v) => Item::Int(v[i]),
            Column::Item(v) => v[i].clone(),
        }
    }

    /// Integer view at `i`; panics if the value is not integral (engine
    /// invariant for `iter`/`pos`-class columns).
    pub fn get_int(&self, i: usize) -> i64 {
        match self {
            Column::Int(v) => v[i],
            Column::Item(v) => match &v[i] {
                Item::Int(n) => *n,
                other => panic!("expected integer column value, found {other:?}"),
            },
        }
    }

    /// Materialize as a plain `i64` vector (for columns known integral).
    pub fn to_int_vec(&self) -> Vec<i64> {
        match self {
            Column::Int(v) => v.clone(),
            Column::Item(v) => v
                .iter()
                .map(|it| match it {
                    Item::Int(n) => *n,
                    other => panic!("expected integer column value, found {other:?}"),
                })
                .collect(),
        }
    }

    /// Gather `self[idx[i]]` into a new column.
    pub fn gather(&self, idx: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(idx.iter().map(|&i| v[i]).collect()),
            Column::Item(v) => Column::Item(idx.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Append `other`'s values (schema alignment is the table layer's job).
    pub fn append(&self, other: &Column) -> Column {
        match (self, other) {
            (Column::Int(a), Column::Int(b)) => {
                let mut v = a.clone();
                v.extend_from_slice(b);
                Column::Int(v)
            }
            (a, b) => {
                let mut v: Vec<Item> = (0..a.len()).map(|i| a.get(i)).collect();
                v.extend((0..b.len()).map(|i| b.get(i)));
                Column::Item(v)
            }
        }
    }
}

/// Shared column handle.
pub type ColRef = Arc<Column>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_and_append() {
        let c = Column::Int(vec![10, 20, 30]);
        assert_eq!(c.gather(&[2, 0]), Column::Int(vec![30, 10]));
        let d = Column::Item(vec![Item::str("x")]);
        let e = c.append(&d);
        assert_eq!(e.len(), 4);
        assert_eq!(e.get(0), Item::Int(10));
        assert_eq!(e.get(3), Item::str("x"));
    }

    #[test]
    fn int_views() {
        let c = Column::Item(vec![Item::Int(5)]);
        assert_eq!(c.get_int(0), 5);
        assert_eq!(c.to_int_vec(), vec![5]);
    }

    #[test]
    #[should_panic(expected = "expected integer")]
    fn get_int_rejects_non_integers() {
        Column::Item(vec![Item::str("x")]).get_int(0);
    }
}
