//! Columns: typed value vectors, `Arc`-shared between tables (and, under
//! intra-query parallel execution, between worker threads).
//!
//! Three physical representations cover the plans' needs: dense `i64`
//! columns (`iter`, `pos`, `bind`, row ids — the hot sort/join keys),
//! dense bit-packed boolean columns ([`BitVec`] — predicate results,
//! which used to box one [`Item::Bool`] per row), and generic [`Item`]
//! columns for everything else.
//!
//! Integer access goes through a typed error ([`ColumnError`], surfaced
//! as `EXRQ0010`): an `iter`/`pos`-class column holding a non-integer is
//! a planner bug, and it must degrade to an error response — not a
//! panic that the serving layer has to contain with `catch_unwind`.

use crate::bits::BitVec;
use crate::item::Item;
use std::sync::Arc;

/// Violation of an engine value-layer invariant (a plan bug, never user
/// error). Converted to an `EXRQ0010` [`EvalError`](crate::EvalError) at
/// the evaluator boundary.
#[derive(Debug, Clone)]
pub struct ColumnError(pub String);

impl std::fmt::Display for ColumnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "engine invariant violated: {}", self.0)
    }
}

impl std::error::Error for ColumnError {}

/// A column of values.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    Int(Vec<i64>),
    Bool(BitVec),
    Item(Vec<Item>),
}

impl Column {
    /// Number of values.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Bool(v) => v.len(),
            Column::Item(v) => v.len(),
        }
    }

    /// Whether the column is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Value at `i` as an [`Item`].
    pub fn get(&self, i: usize) -> Item {
        match self {
            Column::Int(v) => Item::Int(v[i]),
            Column::Bool(v) => Item::Bool(v.get(i)),
            Column::Item(v) => v[i].clone(),
        }
    }

    /// Integer view at `i`; a non-integer value is an engine invariant
    /// violation (`iter`/`pos`-class columns are integral by plan
    /// construction) reported as a typed error.
    pub fn get_int(&self, i: usize) -> Result<i64, ColumnError> {
        match self {
            Column::Int(v) => Ok(v[i]),
            Column::Bool(_) => Err(ColumnError(
                "expected integer column value, found boolean".into(),
            )),
            Column::Item(v) => match &v[i] {
                Item::Int(n) => Ok(*n),
                other => Err(ColumnError(format!(
                    "expected integer column value, found {other:?}"
                ))),
            },
        }
    }

    /// Materialize as a plain `i64` vector (for columns known integral).
    pub fn to_int_vec(&self) -> Result<Vec<i64>, ColumnError> {
        match self {
            Column::Int(v) => Ok(v.clone()),
            Column::Bool(_) => Err(ColumnError(
                "expected integer column, found boolean column".into(),
            )),
            Column::Item(v) => v
                .iter()
                .map(|it| match it {
                    Item::Int(n) => Ok(*n),
                    other => Err(ColumnError(format!(
                        "expected integer column value, found {other:?}"
                    ))),
                })
                .collect(),
        }
    }

    /// Gather `self[idx[i]]` into a new column.
    pub fn gather(&self, idx: &[usize]) -> Column {
        match self {
            Column::Int(v) => Column::Int(idx.iter().map(|&i| v[i]).collect()),
            Column::Bool(v) => Column::Bool(BitVec::from_iter_exact(idx.iter().map(|&i| v.get(i)))),
            Column::Item(v) => Column::Item(idx.iter().map(|&i| v[i].clone()).collect()),
        }
    }

    /// Append `other`'s values (schema alignment is the table layer's
    /// job). Like representations stay dense; mixed representations fall
    /// back to an [`Item`] column without a per-value round trip through
    /// [`get`](Self::get) where a bulk copy exists.
    pub fn append(&self, other: &Column) -> Column {
        match (self, other) {
            (a, b) if b.is_empty() => a.clone(),
            (a, b) if a.is_empty() => b.clone(),
            (Column::Int(a), Column::Int(b)) => {
                let mut v = Vec::with_capacity(a.len() + b.len());
                v.extend_from_slice(a);
                v.extend_from_slice(b);
                Column::Int(v)
            }
            (Column::Bool(a), Column::Bool(b)) => {
                let mut v = BitVec::with_capacity(a.len() + b.len());
                for i in 0..a.len() {
                    v.push(a.get(i));
                }
                for i in 0..b.len() {
                    v.push(b.get(i));
                }
                Column::Bool(v)
            }
            (Column::Item(a), Column::Item(b)) => {
                let mut v = Vec::with_capacity(a.len() + b.len());
                v.extend_from_slice(a);
                v.extend_from_slice(b);
                Column::Item(v)
            }
            (a, b) => {
                let mut v: Vec<Item> = Vec::with_capacity(a.len() + b.len());
                extend_items(&mut v, a);
                extend_items(&mut v, b);
                Column::Item(v)
            }
        }
    }

    /// N-ary append in one allocation. Empty parts are representation
    /// transparent (an empty shard must not demote the union); when all
    /// non-empty parts share a representation the result stays dense,
    /// otherwise everything funnels through the bulk [`Item`] walk — the
    /// same dense/fallback contract as [`append`](Self::append) without
    /// the O(n²) copying a pairwise fold over n shards would do.
    pub fn append_all(parts: &[&Column]) -> Column {
        let total: usize = parts.iter().map(|c| c.len()).sum();
        let mut live = parts.iter().filter(|c| !c.is_empty());
        let Some(first) = live.next() else {
            return parts.first().map_or(Column::Int(Vec::new()), |c| match c {
                Column::Int(_) => Column::Int(Vec::new()),
                Column::Bool(_) => Column::Bool(BitVec::new()),
                Column::Item(_) => Column::Item(Vec::new()),
            });
        };
        let uniform = live.all(|c| std::mem::discriminant(*c) == std::mem::discriminant(*first));
        if uniform {
            match first {
                Column::Int(_) => {
                    let mut v = Vec::with_capacity(total);
                    for c in parts {
                        if let Column::Int(p) = c {
                            v.extend_from_slice(p);
                        }
                    }
                    Column::Int(v)
                }
                Column::Bool(_) => {
                    let mut v = BitVec::with_capacity(total);
                    for c in parts {
                        if let Column::Bool(p) = c {
                            for i in 0..p.len() {
                                v.push(p.get(i));
                            }
                        }
                    }
                    Column::Bool(v)
                }
                Column::Item(_) => {
                    let mut v = Vec::with_capacity(total);
                    for c in parts {
                        if let Column::Item(p) = c {
                            v.extend_from_slice(p);
                        }
                    }
                    Column::Item(v)
                }
            }
        } else {
            let mut v: Vec<Item> = Vec::with_capacity(total);
            for c in parts {
                extend_items(&mut v, c);
            }
            Column::Item(v)
        }
    }
}

/// Bulk-extend `out` with `c`'s values as items (no per-row `get` on the
/// representations that support a direct walk).
fn extend_items(out: &mut Vec<Item>, c: &Column) {
    match c {
        Column::Int(v) => out.extend(v.iter().map(|&n| Item::Int(n))),
        Column::Bool(v) => out.extend((0..v.len()).map(|i| Item::Bool(v.get(i)))),
        Column::Item(v) => out.extend_from_slice(v),
    }
}

/// Shared column handle.
pub type ColRef = Arc<Column>;

/// Adaptive column builder: starts dense (`Int` from integer items,
/// `Bool` from booleans) and falls back to a generic [`Item`] column on
/// the first value that does not fit. Kernels producing fresh columns
/// push through this so `iter`/`pos` arithmetic and predicate results
/// stay dense without per-kernel type analysis.
#[derive(Debug)]
pub enum ColumnBuilder {
    Empty,
    Int(Vec<i64>),
    Bool(BitVec),
    Item(Vec<Item>),
}

impl ColumnBuilder {
    /// An empty builder (representation decided by the first push).
    pub fn new() -> Self {
        ColumnBuilder::Empty
    }

    /// Append one value, degrading the representation if needed.
    pub fn push(&mut self, item: Item) {
        match (&mut *self, &item) {
            (ColumnBuilder::Empty, Item::Int(n)) => *self = ColumnBuilder::Int(vec![*n]),
            (ColumnBuilder::Empty, Item::Bool(b)) => {
                let mut v = BitVec::new();
                v.push(*b);
                *self = ColumnBuilder::Bool(v);
            }
            (ColumnBuilder::Empty, _) => *self = ColumnBuilder::Item(vec![item]),
            (ColumnBuilder::Int(v), Item::Int(n)) => v.push(*n),
            (ColumnBuilder::Bool(v), Item::Bool(b)) => v.push(*b),
            (ColumnBuilder::Item(v), _) => v.push(item),
            (_, _) => {
                let prev = std::mem::replace(self, ColumnBuilder::Empty);
                let mut v = Vec::with_capacity(prev.len() + 1);
                extend_items(&mut v, &prev.finish());
                v.push(item);
                *self = ColumnBuilder::Item(v);
            }
        }
    }

    /// Values pushed so far.
    pub fn len(&self) -> usize {
        match self {
            ColumnBuilder::Empty => 0,
            ColumnBuilder::Int(v) => v.len(),
            ColumnBuilder::Bool(v) => v.len(),
            ColumnBuilder::Item(v) => v.len(),
        }
    }

    /// True when nothing was pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Finish into a column (an untouched builder yields an empty `Item`
    /// column, matching [`Table::empty`](crate::Table::empty)).
    pub fn finish(self) -> Column {
        match self {
            ColumnBuilder::Empty => Column::Item(Vec::new()),
            ColumnBuilder::Int(v) => Column::Int(v),
            ColumnBuilder::Bool(v) => Column::Bool(v),
            ColumnBuilder::Item(v) => Column::Item(v),
        }
    }
}

impl Default for ColumnBuilder {
    fn default() -> Self {
        ColumnBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_and_append() {
        let c = Column::Int(vec![10, 20, 30]);
        assert_eq!(c.gather(&[2, 0]), Column::Int(vec![30, 10]));
        let d = Column::Item(vec![Item::str("x")]);
        let e = c.append(&d);
        assert_eq!(e.len(), 4);
        assert_eq!(e.get(0), Item::Int(10));
        assert_eq!(e.get(3), Item::str("x"));
    }

    #[test]
    fn append_keeps_like_representations_dense() {
        let a = Column::Int(vec![1, 2]);
        let b = Column::Int(vec![3]);
        assert_eq!(a.append(&b), Column::Int(vec![1, 2, 3]));
        let ba = Column::Bool(BitVec::from_iter_exact([true, false].into_iter()));
        let bb = Column::Bool(BitVec::from_iter_exact([true].into_iter()));
        let joined = ba.append(&bb);
        assert!(matches!(joined, Column::Bool(_)));
        assert_eq!(joined.get(2), Item::Bool(true));
        // Item×Item goes through a bulk slice copy, values intact.
        let ia = Column::Item(vec![Item::str("a"), Item::Int(1)]);
        let ib = Column::Item(vec![Item::str("b")]);
        let j = ia.append(&ib);
        assert_eq!(j.len(), 3);
        assert_eq!(j.get(2), Item::str("b"));
        // An empty side keeps the other side's representation.
        let empty = Column::Item(vec![]);
        assert_eq!(a.append(&empty), a);
        assert_eq!(empty.append(&a), a);
    }

    #[test]
    fn append_all_is_dense_and_skips_empty_parts() {
        // Uniform Int parts: one dense allocation, order preserved.
        let a = Column::Int(vec![1, 2]);
        let b = Column::Int(vec![3]);
        let c = Column::Int(vec![4, 5]);
        assert_eq!(
            Column::append_all(&[&a, &b, &c]),
            Column::Int(vec![1, 2, 3, 4, 5])
        );
        // An empty part — an empty shard of a ∪̂ — must not demote the
        // result representation, whatever variant the empty part carries.
        let empty_item = Column::Item(vec![]);
        assert_eq!(
            Column::append_all(&[&a, &empty_item, &b]),
            Column::Int(vec![1, 2, 3])
        );
        let empty_int = Column::Int(vec![]);
        let items = Column::Item(vec![Item::str("x")]);
        let j = Column::append_all(&[&empty_int, &items]);
        assert!(matches!(j, Column::Item(_)));
        assert_eq!(j.get(0), Item::str("x"));
        // Bools stay packed.
        let ba = Column::Bool(BitVec::from_iter_exact([true, false].into_iter()));
        let bb = Column::Bool(BitVec::from_iter_exact([true].into_iter()));
        let joined = Column::append_all(&[&ba, &bb]);
        assert!(matches!(joined, Column::Bool(_)));
        assert_eq!(joined.len(), 3);
        assert_eq!(joined.get(2), Item::Bool(true));
        // Genuinely mixed non-empty parts fall back to boxed items.
        let mixed = Column::append_all(&[&a, &items]);
        assert!(matches!(mixed, Column::Item(_)));
        assert_eq!(mixed.len(), 3);
        assert_eq!(mixed.get(0), Item::Int(1));
        assert_eq!(mixed.get(2), Item::str("x"));
        // All-empty and no-part unions are empty.
        assert_eq!(Column::append_all(&[&empty_int, &empty_item]).len(), 0);
        assert_eq!(Column::append_all(&[]).len(), 0);
    }

    #[test]
    fn int_views() {
        let c = Column::Item(vec![Item::Int(5)]);
        assert_eq!(c.get_int(0).unwrap(), 5);
        assert_eq!(c.to_int_vec().unwrap(), vec![5]);
    }

    #[test]
    fn get_int_rejects_non_integers_with_typed_error() {
        let err = Column::Item(vec![Item::str("x")]).get_int(0).unwrap_err();
        assert!(err.to_string().contains("expected integer"), "{err}");
        let err = Column::Bool(BitVec::from_iter_exact([true].into_iter()))
            .to_int_vec()
            .unwrap_err();
        assert!(err.to_string().contains("invariant violated"), "{err}");
    }

    #[test]
    fn builder_adapts_representation() {
        let mut b = ColumnBuilder::new();
        b.push(Item::Int(1));
        b.push(Item::Int(2));
        assert!(matches!(b, ColumnBuilder::Int(_)));
        b.push(Item::str("x"));
        let c = b.finish();
        assert!(matches!(c, Column::Item(_)));
        assert_eq!(c.get(0), Item::Int(1));
        assert_eq!(c.get(2), Item::str("x"));

        let mut bb = ColumnBuilder::new();
        bb.push(Item::Bool(true));
        bb.push(Item::Bool(false));
        let c = bb.finish();
        assert!(matches!(c, Column::Bool(_)));
        assert_eq!(c.get(1), Item::Bool(false));
        assert!(matches!(ColumnBuilder::new().finish(), Column::Item(v) if v.is_empty()));
    }
}
