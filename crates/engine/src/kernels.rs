//! Batch compute kernels shared by the vectorized operators.
//!
//! An [`Operand`] is a cursor over one logical column: the physical
//! column representation plus the composed row mapping (selection
//! vector, fused-chain live set, or both). Kernels dispatch once on the
//! operand representations and then run tight per-morsel loops —
//! integer comparisons and arithmetic never box an [`Item`], boolean
//! predicates come straight off the bit-packed column, and the generic
//! fallback reproduces the scalar per-row path exactly (same values,
//! same first error) so fused and un-fused execution stay
//! byte-identical.

use crate::bits::BitVec;
use crate::column::{Column, ColumnBuilder};
use crate::eval::{kernel_threads, run_morsels, EvalError};
use crate::funs;
use crate::item::Item;
use crate::table::ColView;
use exrquy_algebra::FunKind;
use exrquy_diag::ErrorCode;
use exrquy_xml::FragArena;
use std::cmp::Ordering;
use std::ops::Range;

/// Logical-row → physical-row mapping for one operand. Fused chains
/// read base columns through the chain's live set *and* the column's
/// own selection vector; the two compose here instead of per access.
#[derive(Clone, Copy)]
pub(crate) enum Map<'a> {
    /// Dense: logical row `p` is physical row `p`.
    Id,
    /// One indirection (a selection vector or a live set).
    One(&'a [u32]),
    /// Two indirections: `second[first[p]]` (live set, then the
    /// column's own selection vector).
    Two(&'a [u32], &'a [u32]),
}

impl Map<'_> {
    #[inline]
    fn at(&self, p: usize) -> usize {
        match self {
            Map::Id => p,
            Map::One(m) => m[p] as usize,
            Map::Two(a, b) => b[a[p] as usize] as usize,
        }
    }
}

/// One kernel operand: a column representation behind a row mapping,
/// or a per-row constant.
pub(crate) enum Operand<'a> {
    Int(&'a [i64], Map<'a>),
    Bits(&'a BitVec, Map<'a>),
    Items(&'a [Item], Map<'a>),
    Const(&'a Item),
}

impl<'a> Operand<'a> {
    /// Operand over a table column view, optionally through a fused
    /// chain's live set (`alive` maps chain row → view row).
    pub(crate) fn from_view(v: &'a ColView, alive: Option<&'a [u32]>) -> Self {
        let map = match (alive, v.sel()) {
            (None, None) => Map::Id,
            (Some(a), None) => Map::One(a),
            (None, Some(s)) => Map::One(s),
            (Some(a), Some(s)) => Map::Two(a, s),
        };
        Self::from_parts(v.data(), map)
    }

    /// Operand over a dense column already aligned to the kernel's rows
    /// (a fused-chain register).
    pub(crate) fn from_column(c: &'a Column) -> Self {
        Self::from_parts(c, Map::Id)
    }

    fn from_parts(c: &'a Column, map: Map<'a>) -> Self {
        match c {
            Column::Int(v) => Operand::Int(v, map),
            Column::Bool(v) => Operand::Bits(v, map),
            Column::Item(v) => Operand::Items(v, map),
        }
    }

    /// Boxed value at logical row `p` (the generic-fallback accessor).
    #[inline]
    pub(crate) fn item(&self, p: usize) -> Item {
        match self {
            Operand::Int(v, m) => Item::Int(v[m.at(p)]),
            Operand::Bits(v, m) => Item::Bool(v.get(m.at(p))),
            Operand::Items(v, m) => v[m.at(p)].clone(),
            Operand::Const(it) => (*it).clone(),
        }
    }
}

/// Integer-valued operand source: a mapped slice or a constant.
#[derive(Clone, Copy)]
enum IntSrc<'a> {
    Slice(&'a [i64], Map<'a>),
    K(i64),
}

impl IntSrc<'_> {
    #[inline]
    fn at(&self, p: usize) -> i64 {
        match self {
            IntSrc::Slice(v, m) => v[m.at(p)],
            IntSrc::K(k) => *k,
        }
    }
}

fn int_src<'a>(o: &Operand<'a>) -> Option<IntSrc<'a>> {
    match o {
        Operand::Int(v, m) => Some(IntSrc::Slice(v, *m)),
        Operand::Const(Item::Int(k)) => Some(IntSrc::K(*k)),
        _ => None,
    }
}

/// Does `ord` satisfy the comparison `kind`? Mirrors
/// [`funs::compare_with`] exactly.
#[inline]
fn ord_hits(kind: FunKind, ord: Ordering) -> bool {
    match kind {
        FunKind::Eq => ord == Ordering::Equal,
        FunKind::Ne => ord != Ordering::Equal,
        FunKind::Lt => ord == Ordering::Less,
        FunKind::Le => ord != Ordering::Greater,
        FunKind::Gt => ord == Ordering::Greater,
        FunKind::Ge => ord != Ordering::Less,
        other => unreachable!("non-comparison kind {other:?}"),
    }
}

/// Comparison kernel over one morsel. Integers compare through `f64`
/// exactly as [`funs::compare`] promotes them; everything else goes
/// through `compare_with` on borrowed items (no clones for `Item`
/// columns or constants).
fn compare_range(kind: FunKind, a: &Operand<'_>, b: &Operand<'_>, range: Range<usize>) -> BitVec {
    if let (Some(ia), Some(ib)) = (int_src(a), int_src(b)) {
        return BitVec::from_iter_exact(range.map(|p| {
            (ia.at(p) as f64)
                .partial_cmp(&(ib.at(p) as f64))
                .is_some_and(|o| ord_hits(kind, o))
        }));
    }
    BitVec::from_iter_exact(range.map(|p| {
        let (ta, tb);
        let x: &Item = match a {
            Operand::Items(v, m) => &v[m.at(p)],
            Operand::Const(it) => it,
            o => {
                ta = o.item(p);
                &ta
            }
        };
        let y: &Item = match b {
            Operand::Items(v, m) => &v[m.at(p)],
            Operand::Const(it) => it,
            o => {
                tb = o.item(p);
                &tb
            }
        };
        funs::compare_with(kind, x, y)
    }))
}

/// Integer arithmetic kernel over one morsel; `Add`/`Sub`/`Mul` wrap
/// and `Mod` raises `FOAR0001` on a zero divisor, bit-for-bit the
/// integer paths of [`funs::apply`].
fn arith_range(
    arena: &FragArena,
    kind: FunKind,
    a: IntSrc<'_>,
    b: IntSrc<'_>,
    range: Range<usize>,
) -> Result<Vec<i64>, EvalError> {
    let mut out = Vec::with_capacity(range.len());
    for p in range {
        let (x, y) = (a.at(p), b.at(p));
        out.push(match kind {
            FunKind::Add => x.wrapping_add(y),
            FunKind::Sub => x.wrapping_sub(y),
            FunKind::Mul => x.wrapping_mul(y),
            FunKind::Mod => {
                if y == 0 {
                    // Route the error through `apply` so code and
                    // message match the scalar engine exactly.
                    funs::apply(arena, kind, &[Item::Int(x), Item::Int(y)])?;
                    unreachable!("integer mod by zero must error");
                }
                x % y
            }
            other => unreachable!("non-integer arithmetic kind {other:?}"),
        });
    }
    Ok(out)
}

/// Evaluate `kind` over `ops` for `live` rows, returning the result
/// column and the number of morsel batches run.
pub(crate) fn fun_batch(
    arena: &FragArena,
    kind: FunKind,
    ops: &[Operand<'_>],
    live: usize,
    threads: usize,
) -> Result<(Column, u64), EvalError> {
    use FunKind::*;
    if matches!(kind, Eq | Ne | Lt | Le | Gt | Ge) && ops.len() == 2 {
        let (a, b) = (&ops[0], &ops[1]);
        let parts = run_morsels(live, kernel_threads(live, threads), |range| {
            Ok(compare_range(kind, a, b, range))
        })?;
        let batches = parts.len() as u64;
        let mut bits = BitVec::with_capacity(live);
        for p in &parts {
            for i in 0..p.len() {
                bits.push(p.get(i));
            }
        }
        return Ok((Column::Bool(bits), batches));
    }
    if matches!(kind, Add | Sub | Mul | Mod) && ops.len() == 2 {
        if let (Some(a), Some(b)) = (int_src(&ops[0]), int_src(&ops[1])) {
            let parts = run_morsels(live, kernel_threads(live, threads), |range| {
                arith_range(arena, kind, a, b, range)
            })?;
            let batches = parts.len() as u64;
            let mut v = Vec::with_capacity(live);
            for p in parts {
                v.extend(p);
            }
            return Ok((Column::Int(v), batches));
        }
    }
    // Generic fallback: per-row `funs::apply`, densified by the
    // adaptive builder. Same row order, same first error.
    let parts = run_morsels(live, kernel_threads(live, threads), |range| {
        let mut out = ColumnBuilder::new();
        let mut buf: Vec<Item> = Vec::with_capacity(ops.len());
        for p in range {
            buf.clear();
            buf.extend(ops.iter().map(|o| o.item(p)));
            out.push(funs::apply(arena, kind, &buf)?);
        }
        Ok(out.finish())
    })?;
    let batches = parts.len() as u64;
    let mut it = parts.into_iter();
    let first = it.next().unwrap_or(Column::Item(Vec::new()));
    Ok((it.fold(first, |acc, p| acc.append(&p)), batches))
}

/// σ kernel: logical rows of `op` (length `live`) whose value is
/// `true`, erroring on the first non-boolean in row order exactly like
/// the scalar per-row scan. Returns the kept rows and the batch count.
pub(crate) fn select_batch(
    op: &Operand<'_>,
    live: usize,
    threads: usize,
) -> Result<(Vec<u32>, u64), EvalError> {
    let parts = run_morsels(live, kernel_threads(live, threads), |range| {
        let mut keep: Vec<u32> = Vec::new();
        match op {
            // Bit-packed predicate: word-at-a-time when dense, bit
            // probes through the mapping otherwise — never boxes.
            Operand::Bits(v, m) => match m {
                Map::Id => v.extend_ones_in(range.start, range.end, &mut keep),
                m => {
                    for p in range {
                        if v.get(m.at(p)) {
                            keep.push(p as u32);
                        }
                    }
                }
            },
            o => {
                for p in range {
                    let t;
                    let it: &Item = match o {
                        Operand::Items(v, m) => &v[m.at(p)],
                        Operand::Const(c) => c,
                        o => {
                            t = o.item(p);
                            &t
                        }
                    };
                    match it {
                        Item::Bool(true) => keep.push(p as u32),
                        Item::Bool(false) => {}
                        other => {
                            return Err(EvalError::new(
                                ErrorCode::XPTY0004,
                                format!("σ on non-boolean value {other:?}"),
                            ))
                        }
                    }
                }
            }
        }
        Ok(keep)
    })?;
    let batches = parts.len() as u64;
    Ok((parts.concat(), batches))
}
