//! The operator evaluator.
//!
//! [`Engine::eval`] materializes the table of every operator reachable
//! from the requested root, bottom-up in topological order, memoizing per
//! [`OpId`] (the DAG is shared; shared subplans run once). Each
//! operator's wall-clock time is added to the [`Profile`].
//!
//! With [`EngineOptions::threads`] above one, evaluation is handed to the
//! work-stealing scheduler in [`crate::par`], which runs independent pure
//! subplans concurrently and pins node-constructing operators to the
//! owning thread; the row-wise kernels in this module additionally split
//! large inputs into morsels. Both paths produce bit-identical tables.

use crate::column::{Column, ColumnError};
use crate::funs::{self, DynError};
use crate::item::{GroupKey, Item};
use crate::profile::Profile;
use crate::table::{ColView, Table};
use exrquy_algebra::{AValue, AggrKind, Col, Dag, FunKind, Op, OpId, PhysPlan};
use exrquy_diag::{
    BudgetMeter, BudgetViolation, CancellationToken, ErrorCode, ExecutionBudget, Failpoints,
};
use exrquy_xml::tree::NodeKind;
use exrquy_xml::{axis, FragArena, NameId, NodeId, NodeRead, TreeBuilder};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Runtime evaluation error, tagged with a W3C-style dynamic error code
/// (or an `EXRQ*` resource-governance code).
#[derive(Debug, Clone)]
pub struct EvalError {
    /// Machine-readable error code.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
}

impl EvalError {
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        EvalError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "evaluation error: {}", self.message)
    }
}

impl std::error::Error for EvalError {}

impl From<DynError> for EvalError {
    fn from(e: DynError) -> Self {
        EvalError {
            code: e.code,
            message: e.message,
        }
    }
}

impl From<BudgetViolation> for EvalError {
    fn from(v: BudgetViolation) -> Self {
        EvalError {
            code: v.code,
            message: v.message,
        }
    }
}

impl From<ColumnError> for EvalError {
    fn from(e: ColumnError) -> Self {
        EvalError {
            code: ErrorCode::EXRQ0010,
            message: e.to_string(),
        }
    }
}

/// Step-operator algorithm selection (§3: "several existing XPath step
/// evaluation techniques may be plugged in to realize ⬡").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StepAlgo {
    /// Staircase join \[Grust et al., VLDB 2003\] — the MonetDB/XQuery
    /// choice and our default.
    #[default]
    Staircase,
    /// Per-name node streams (TwigStack-style tag-name access, paper §1)
    /// for named tests; staircase elsewhere.
    NameStream,
    /// The quadratic reference implementation (differential testing).
    Naive,
}

/// Evaluator knobs.
#[derive(Debug, Clone, Default)]
pub struct EngineOptions {
    /// Which algorithm realizes the step operator `⬡`.
    pub step_algo: StepAlgo,
    /// Resource ceilings enforced at operator boundaries (and inside the
    /// expansion loops of row-explosive operators).
    pub budget: ExecutionBudget,
    /// Cooperative cancellation flag, polled once per evaluated operator.
    pub cancel: Option<CancellationToken>,
    /// Armed failpoints (fault injection). Empty by default; the engine
    /// keeps its own deterministic counters (operators evaluated, `fn:doc`
    /// accesses), so re-running the same plan trips the same failpoint at
    /// the same place (under serial execution; parallel completions race,
    /// so a parallel run trips the same failpoint but not necessarily at
    /// the same operator).
    pub failpoints: Failpoints,
    /// Worker threads for intra-query parallel execution; `0` and `1`
    /// both mean serial. Serial and parallel runs of the same plan
    /// produce bit-identical tables.
    pub threads: usize,
    /// Force the scalar (pre-vectorization) operator-at-a-time path:
    /// per-evaluation `topo_order` walks, materializing gathers, no
    /// selection vectors, no fused chains. The vectorization
    /// differential runs every query with this toggled both ways and
    /// asserts byte-identical serializations; `vec-bench` uses it as
    /// the old-engine baseline. Both paths produce identical tables.
    pub scalar: bool,
    /// Absolute request deadline (serving layer). Unlike `budget.max_wall`
    /// — which is relative to execution start — this instant also covers
    /// time the request spent queued; it trips as EXRQ0007 at the same
    /// yield points the wall budget uses, so shed work actually stops.
    pub deadline: Option<std::time::Instant>,
    /// Shared memory gauge (serving layer's watermark governor). When
    /// set, the engine publishes this execution's approximate
    /// constructed-node bytes as it runs; the charge is released when
    /// the engine drops — including by unwinding from a panic.
    pub gauge: Option<exrquy_diag::MemoryGauge>,
}

/// One query execution context.
///
/// The engine reads base documents through the arena's shared catalog
/// and appends every fragment it constructs to the arena's private
/// overlay — the catalog itself is never mutated, so any number of
/// engines may run concurrently over one `Arc<Catalog>`.
pub struct Engine<'d, 's> {
    pub(crate) dag: &'d Dag,
    /// Per-execution fragment overlay over the shared catalog. Dropping
    /// it (with the engine) releases everything this query constructed.
    pub arena: &'s mut FragArena,
    pub(crate) cache: FastMap<OpId, Arc<Table>>,
    /// Per-kind timing of this execution.
    pub profile: Profile,
    pub(crate) opts: EngineOptions,
    /// Atomic budget/cancellation meter shared with every worker thread
    /// of a parallel execution; its decrements and polls are the yield
    /// points.
    pub(crate) meter: BudgetMeter,
    /// Overlay nodes present at engine creation; the constructed-node
    /// ceiling applies to the delta.
    pub(crate) nodes_base: usize,
    /// This execution's handle on the serving layer's memory gauge;
    /// its `Drop` releases the charge on any exit path.
    tracker: Option<exrquy_diag::MemoryTracker>,
}

impl<'d, 's> Engine<'d, 's> {
    /// Create an engine over `dag` evaluating into `arena` (which also
    /// supplies the document registry via its catalog).
    pub fn new(dag: &'d Dag, arena: &'s mut FragArena, opts: EngineOptions) -> Self {
        let mut meter = BudgetMeter::new(opts.budget.clone(), opts.cancel.clone());
        if let Some(at) = opts.deadline {
            meter = meter.with_hard_deadline(at);
        }
        let nodes_base = arena.constructed_nodes();
        let tracker = opts.gauge.as_ref().map(exrquy_diag::MemoryGauge::tracker);
        Engine {
            dag,
            arena,
            cache: FastMap::default(),
            profile: Profile::default(),
            opts,
            meter,
            nodes_base,
            tracker,
        }
    }

    /// Account an operator's output and enforce the row / node ceilings.
    pub(crate) fn charge_op_output(&mut self, nrows: usize) -> Result<(), EvalError> {
        self.meter.charge_rows(nrows)?;
        let constructed = self
            .arena
            .constructed_nodes()
            .saturating_sub(self.nodes_base);
        self.meter.check_nodes(constructed)?;
        if let Some(t) = self.tracker.as_mut() {
            t.charge_to(constructed * exrquy_diag::APPROX_NODE_BYTES);
        }
        Ok(())
    }

    /// Does this engine run the vectorized (flattened-plan) core? Armed
    /// failpoints force the per-operator scalar schedule so injected
    /// faults keep their exact operator-boundary placement.
    pub fn vectorized(&self) -> bool {
        !self.opts.scalar && self.opts.failpoints.is_empty()
    }

    /// Evaluate the plan rooted at `root`. The vectorized engine lowers
    /// the DAG into a flattened slot program first; callers that prepare
    /// plans ahead of time hand the lowered program to
    /// [`eval_plan`](Self::eval_plan) instead and skip the lowering.
    pub fn eval(&mut self, root: OpId) -> Result<Arc<Table>, EvalError> {
        if self.vectorized() {
            let plan = exrquy_algebra::lower(self.dag, root, true);
            return crate::vec::eval_phys(self, &plan);
        }
        if self.opts.threads > 1 {
            return crate::par::eval_parallel(self, root);
        }
        for id in self.dag.topo_order(root) {
            if self.cache.contains_key(&id) {
                continue;
            }
            self.meter.poll()?;
            self.poll_failpoints(id)?;
            let started = Instant::now();
            let table = self.eval_op(id)?;
            self.profile.record(self.dag, id, started.elapsed());
            self.profile.record_rows(id, table.nrows());
            self.charge_op_output(table.nrows())?;
            self.cache.insert(id, Arc::new(table));
            self.meter.record_op();
        }
        Ok(self.cache[&root].clone())
    }

    /// Evaluate a pre-lowered flattened plan (prepared once, executed
    /// many times — the plan cache holds the lowered program alongside
    /// the DAG). Falls back to [`eval`](Self::eval) on the root operator
    /// when this engine is configured for the scalar path.
    pub fn eval_plan(&mut self, plan: &PhysPlan) -> Result<Arc<Table>, EvalError> {
        let root = plan.ops[plan.root as usize].out_id();
        if !self.vectorized() {
            return self.eval(root);
        }
        crate::vec::eval_phys(self, plan)
    }

    /// Injected-fault checks at the operator boundary (see
    /// [`poll_failpoints`]); mirrors the meter poll so injected faults
    /// exercise exactly the error paths real exhaustion would take.
    pub(crate) fn poll_failpoints(&self, id: OpId) -> Result<(), EvalError> {
        poll_failpoints(&self.opts.failpoints, self.dag, id, self.meter.ops_seen())
    }

    fn input(&self, id: OpId) -> &Arc<Table> {
        &self.cache[&id]
    }

    fn eval_op(&mut self, id: OpId) -> Result<Table, EvalError> {
        let op = self.dag.op(id).clone();
        match op {
            // Writer operators need `&mut FragArena` and always run on the
            // thread that owns the engine, in topological sequence — the
            // single-writer rule that keeps fragment ids and interned names
            // deterministic.
            Op::Element { names, content } => {
                let (nt, ct) = (self.input(names).clone(), self.input(content).clone());
                eval_element(self.arena, &nt, &ct)
            }
            Op::Attr { names, values } => {
                let (nt, vt) = (self.input(names).clone(), self.input(values).clone());
                eval_attr(self.arena, &nt, &vt)
            }
            Op::TextNode { content } => {
                let ct = self.input(content).clone();
                eval_textnode(self.arena, &ct)
            }
            _ => {
                let children = op.children();
                let cache = &self.cache;
                eval_pure(
                    self.dag,
                    id,
                    &|k| cache[&children[k]].clone(),
                    self.arena,
                    &self.opts,
                    &self.meter,
                )
            }
        }
    }
}

// ------------------------------------------------------- pure operators

/// Evaluate a non-constructing operator. Shared by the serial engine,
/// the flattened-plan executor, and the parallel scheduler's worker
/// threads: `input` resolves the operator's already evaluated children
/// *by child ordinal* (position in [`Op::children`] order — the caller
/// maps ordinals to its memo cache or result slots; ordinal resolution
/// is what lets the flattened plan skip `OpId` hash lookups entirely)
/// and the arena is only read. Writer operators
/// (`Element`/`Attr`/`TextNode`) never reach this function.
pub(crate) fn eval_pure(
    dag: &Dag,
    id: OpId,
    input: &dyn Fn(usize) -> Arc<Table>,
    arena: &FragArena,
    opts: &EngineOptions,
    meter: &BudgetMeter,
) -> Result<Table, EvalError> {
    let threads = opts.threads.max(1);
    let vec = !opts.scalar;
    let op = dag.op(id).clone();
    match op {
        Op::Lit { cols, rows } => Ok(eval_lit(&cols, &rows)),
        Op::Doc { url } => {
            let access = meter.record_doc_access();
            if opts.failpoints.doc_io_fails(access) {
                return Err(EvalError::new(
                    ErrorCode::FODC0002,
                    format!("I/O error retrieving document `{url}` (injected at access {access})"),
                ));
            }
            let node = arena.catalog().doc_root(url.as_ref()).ok_or_else(|| {
                EvalError::new(
                    ErrorCode::FODC0002,
                    format!("document `{url}` is not loaded"),
                )
            })?;
            Ok(Table::new(vec![(
                Col::ITEM,
                Column::Item(vec![Item::Node(node)]),
            )]))
        }
        Op::Project { cols, .. } => {
            let t = input(0);
            let out = cols.iter().map(|(new, src)| (*new, t.col(*src))).collect();
            Ok(Table::from_views(out, t.nrows()))
        }
        Op::Select { col, .. } => {
            let t = input(0);
            eval_select(&t, col, threads, vec)
        }
        Op::RowNum {
            new, order, part, ..
        } => {
            let t = input(0);
            Ok(eval_rownum(&t, new, &order, part, threads, vec))
        }
        Op::RowId { new, .. } => {
            let t = input(0);
            let n = t.nrows();
            Ok(t.with_column(new, Column::Int((1..=n as i64).collect())))
        }
        Op::Attach { col, value, .. } => {
            let t = input(0);
            Ok(t.with_column(col, attach_column(&value, t.nrows(), vec)))
        }
        Op::Fun {
            new, kind, args, ..
        } => {
            let t = input(0);
            eval_fun(arena, &t, new, kind, &args, threads, vec)
        }
        Op::Aggr {
            kind,
            new,
            arg,
            part,
            ..
        } => {
            let t = input(0);
            eval_aggr(arena, &t, kind, new, arg, part, vec)
        }
        Op::Distinct { .. } => {
            let t = input(0);
            Ok(eval_distinct(&t, vec))
        }
        Op::Step { axis, test, .. } => {
            let t = input(0);
            // The vectorized engine upgrades the default staircase scan
            // to per-name node streams (TwigStack-style tag access,
            // paper §1) for named *element* steps: descendant windows
            // become two binary searches over a columnar pre-rank
            // stream, and child steps probe the stream adaptively
            // (falling back to the direct children walk when the name
            // is frequent below the context node). Attribute steps keep
            // the direct scan — their candidate windows are already
            // contiguous. Same sorted, duplicate-free output either
            // way (the step-algorithm differential holds across all
            // three implementations); an explicit `step_algo` choice
            // is honored unchanged.
            use exrquy_xml::{Axis, NodeTest};
            let named_elem = matches!(
                axis,
                Axis::Descendant | Axis::DescendantOrSelf | Axis::Child
            ) && matches!(test, NodeTest::Name(_));
            let algo = match opts.step_algo {
                StepAlgo::Staircase if vec && named_elem => StepAlgo::NameStream,
                other => other,
            };
            eval_step(arena, &t, axis, test, algo, threads)
        }
        Op::Cross { .. } => {
            let (lt, rt) = (input(0), input(1));
            eval_cross(&lt, &rt, meter.op_row_cap(), vec)
        }
        Op::EquiJoin { lcol, rcol, .. } => {
            let (lt, rt) = (input(0), input(1));
            eval_equijoin(&lt, &rt, lcol, rcol, meter, vec)
        }
        Op::ThetaJoin { pred, .. } => {
            let (lt, rt) = (input(0), input(1));
            eval_thetajoin(&lt, &rt, &pred, meter, vec)
        }
        Op::Union { .. } => {
            let (lt, rt) = (input(0), input(1));
            Ok(eval_union(&lt, &rt))
        }
        Op::Difference { on, .. } => {
            let (lt, rt) = (input(0), input(1));
            Ok(eval_difference(&lt, &rt, &on, vec))
        }
        Op::Range { lo, hi, new, .. } => {
            let t = input(0);
            eval_range(&t, lo, hi, new, meter, vec)
        }
        Op::Serialize { .. } => Ok((*input(0)).clone()),
        Op::Sort { keys, .. } => {
            let t = input(0);
            eval_sort(&t, &keys, vec)
        }
        Op::Fanout { lo, hi, .. } => {
            let catalog = arena.catalog();
            if hi as usize > catalog.frag_count() {
                return Err(EvalError::new(
                    ErrorCode::FODC0002,
                    format!(
                        "collection shard range [{lo},{hi}) exceeds catalog ({} fragments)",
                        catalog.frag_count()
                    ),
                ));
            }
            let n = (hi - lo) as usize;
            let mut pos = Vec::with_capacity(n);
            let mut items = Vec::with_capacity(n);
            for frag in lo..hi {
                let access = meter.record_doc_access();
                if opts.failpoints.doc_io_fails(access) {
                    let url = catalog.frag_url(frag).unwrap_or("<collection>");
                    return Err(EvalError::new(
                        ErrorCode::FODC0002,
                        format!(
                            "I/O error retrieving document `{url}` (injected at access {access})"
                        ),
                    ));
                }
                pos.push(frag as i64 + 1);
                items.push(Item::Node(NodeId::new(frag, 0)));
            }
            Ok(Table::new(vec![
                (Col::POS, Column::Int(pos)),
                (Col::ITEM, Column::Item(items)),
            ]))
        }
        Op::ShardUnion { parts } => {
            let tables: Vec<Arc<Table>> = (0..parts.len()).map(&input).collect();
            let first = tables
                .first()
                .expect("∪̂ with no parts rejected at plan validation");
            let mut cols: Vec<(Col, Column)> = Vec::with_capacity(first.schema().len());
            for (name, _) in first.columns() {
                let refs: Vec<_> = tables.iter().map(|t| t.col(*name).to_ref()).collect();
                let borrowed: Vec<&Column> = refs.iter().map(|r| r.as_ref()).collect();
                cols.push((*name, Column::append_all(&borrowed)));
            }
            Ok(Table::new(cols))
        }
        Op::Element { .. } | Op::Attr { .. } | Op::TextNode { .. } => {
            unreachable!("writer operators are evaluated on the owning thread")
        }
    }
}

// ------------------------------------------------------- morsel kernels

/// Inputs below this row count are not worth splitting: thread spawn and
/// result concatenation would dominate the scan.
pub(crate) const MORSEL_MIN_ROWS: usize = 4096;

/// Row-explosive kernels (joins, range expansion) poll the budget meter
/// every this many emitted rows, so cancellation and hard deadlines
/// interrupt a single huge operator instead of waiting for its
/// boundary. Power of two keeps the modulo nearly free.
pub(crate) const POLL_STRIDE: usize = 8192;

/// Contiguous near-equal ranges covering `0..n` (at most `threads` of
/// them, never empty ones).
fn morsel_ranges(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let k = threads.min(n).max(1);
    let (base, rem) = (n / k, n % k);
    let mut out = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < rem);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Run `f` over morsels of `0..n` on a scoped thread pool and return the
/// partial results **in morsel order** — callers concatenate them, which
/// is what makes every parallel kernel bit-identical to its serial run.
/// On failure the error of the earliest morsel wins; because morsels are
/// contiguous and ordered, that is exactly the error the serial scan
/// would have hit first.
pub(crate) fn run_morsels<T, F>(n: usize, threads: usize, f: F) -> Result<Vec<T>, EvalError>
where
    T: Send,
    F: Fn(std::ops::Range<usize>) -> Result<T, EvalError> + Sync,
{
    if threads <= 1 || n <= 1 {
        return if n == 0 {
            Ok(Vec::new())
        } else {
            Ok(vec![f(0..n)?])
        };
    }
    let f = &f;
    let results: Vec<Result<T, EvalError>> = std::thread::scope(|s| {
        let handles: Vec<_> = morsel_ranges(n, threads)
            .into_iter()
            .map(|r| s.spawn(move || f(r)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("morsel worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        out.push(r?);
    }
    Ok(out)
}

/// Effective worker count for a kernel over `nrows` rows.
pub(crate) fn kernel_threads(nrows: usize, threads: usize) -> usize {
    if nrows >= MORSEL_MIN_ROWS {
        threads
    } else {
        1
    }
}

/// Constant column for an `attach` (vectorized: integers and booleans
/// stay dense; scalar: the pre-refactor `Int`-or-boxed layout).
pub(crate) fn attach_column(value: &AValue, nrows: usize, vec: bool) -> Column {
    let item = avalue_item(value);
    match &item {
        Item::Int(i) => Column::Int(vec![*i; nrows]),
        Item::Bool(b) if vec => Column::Bool(crate::bits::BitVec::from_iter_exact(
            std::iter::repeat_n(*b, nrows),
        )),
        other => Column::Item(vec![other.clone(); nrows]),
    }
}

fn eval_select(t: &Table, col: Col, threads: usize, vec: bool) -> Result<Table, EvalError> {
    let c = t.col(col);
    let n = t.nrows();
    if vec {
        // Batch kernel: word-at-a-time over dense bit-packed predicates,
        // no per-row boxing otherwise; output rows stay shared behind a
        // selection vector.
        let op = crate::kernels::Operand::from_view(&c, None);
        let (keep, _batches) = crate::kernels::select_batch(&op, n, threads)?;
        return Ok(t.select_rows(keep));
    }
    let c = &c;
    let parts = run_morsels(n, kernel_threads(n, threads), |range| {
        let mut idx: Vec<u32> = Vec::new();
        for i in range {
            match c.get(i) {
                Item::Bool(true) => idx.push(i as u32),
                Item::Bool(false) => {}
                other => {
                    return Err(EvalError::new(
                        ErrorCode::XPTY0004,
                        format!("σ on non-boolean value {other:?}"),
                    ))
                }
            }
        }
        Ok(idx)
    })?;
    let idx = parts.concat();
    let idx: Vec<usize> = idx.iter().map(|&i| i as usize).collect();
    Ok(t.gather(&idx))
}

fn eval_fun(
    arena: &FragArena,
    t: &Table,
    new: Col,
    kind: FunKind,
    args: &[Col],
    threads: usize,
    vec: bool,
) -> Result<Table, EvalError> {
    let arg_cols: Vec<ColView> = args.iter().map(|a| t.col(*a)).collect();
    let n = t.nrows();
    let arg_cols = &arg_cols;
    if vec {
        // Batch kernels: integer comparisons and arithmetic run over
        // the raw slices (comparison results bit-packed, integer
        // arithmetic dense); other shapes fall back to the per-row
        // loop inside the kernel, adaptively densified.
        let ops: Vec<crate::kernels::Operand> = arg_cols
            .iter()
            .map(|c| crate::kernels::Operand::from_view(c, None))
            .collect();
        let (col, _batches) = crate::kernels::fun_batch(arena, kind, &ops, n, threads)?;
        return Ok(t.with_column(new, col));
    }
    let parts = run_morsels(n, kernel_threads(n, threads), move |range| {
        let mut out = Vec::with_capacity(range.len());
        let mut buf: Vec<Item> = Vec::with_capacity(arg_cols.len());
        for r in range {
            buf.clear();
            buf.extend(arg_cols.iter().map(|c| c.get(r)));
            out.push(funs::apply(arena, kind, &buf)?);
        }
        Ok(out)
    })?;
    let mut out = Vec::with_capacity(n);
    for p in parts {
        out.extend(p);
    }
    Ok(t.with_column(new, Column::Item(out)))
}

// ------------------------------------------------------------- step

fn eval_step(
    arena: &FragArena,
    t: &Table,
    ax: exrquy_xml::Axis,
    test: exrquy_xml::NodeTest,
    algo: StepAlgo,
    threads: usize,
) -> Result<Table, EvalError> {
    let iter_col = t.col(Col::ITER);
    let item_col = t.col(Col::ITEM);
    // Collect (iter, node) context pairs. Batch extraction: resolve the
    // column representations once and scan slices; the fallback per-row
    // loop handles exotic representations. Row order (and therefore
    // which non-node item errors first) matches the per-row loop.
    let mut ctx: Vec<(i64, NodeId)> = Vec::with_capacity(t.nrows());
    let non_node = |other: &dyn std::fmt::Display| {
        EvalError::new(
            ErrorCode::XPTY0004,
            format!("path step applied to atomic value {other}"),
        )
    };
    match (int_view(&iter_col), &**item_col.data(), item_col.sel()) {
        (Some(iv), Column::Item(items), sel) => {
            let mut push = |r: usize, it: &Item| match it {
                Item::Node(n) => {
                    ctx.push((iv[r], *n));
                    Ok(())
                }
                other => Err(non_node(other)),
            };
            match sel {
                None => {
                    for (r, it) in items.iter().enumerate() {
                        push(r, it)?;
                    }
                }
                Some(s) => {
                    for (r, &p) in s.iter().enumerate() {
                        push(r, &items[p as usize])?;
                    }
                }
            }
        }
        _ => {
            for r in 0..t.nrows() {
                match item_col.get(r) {
                    Item::Node(n) => ctx.push((iter_col.get_int(r)?, n)),
                    other => return Err(non_node(&other)),
                }
            }
        }
    }
    if !ctx.is_sorted() {
        ctx.sort_unstable();
    }
    ctx.dedup();
    // One group per (iter, frag): the staircase-join unit of work.
    // Groups are (start, end) ranges into the sorted `ctx` — the pre
    // ranks are copied into one reusable buffer per morsel rather than
    // one fresh vector per group (a query loop evaluates thousands of
    // single-node groups per step).
    let mut groups: Vec<(i64, u32, usize, usize)> = Vec::new();
    let mut i = 0;
    while i < ctx.len() {
        let (it, frag) = (ctx[i].0, ctx[i].1.frag);
        let start = i;
        while i < ctx.len() && ctx[i].0 == it && ctx[i].1.frag == frag {
            i += 1;
        }
        groups.push((it, frag, start, i));
    }
    // Data-parallel over groups; partials concatenate in group order, so
    // the output is the serial (iter, doc-order) sequence either way.
    let groups = &groups;
    let ctx = &ctx;
    let parts = run_morsels(
        groups.len(),
        kernel_threads(t.nrows(), threads),
        move |range| {
            let mut out_iter: Vec<i64> = Vec::new();
            let mut out_item: Vec<Item> = Vec::new();
            let mut pres: Vec<u32> = Vec::new();
            for g in range {
                let (it, frag, start, end) = groups[g];
                pres.clear();
                pres.extend(ctx[start..end].iter().map(|c| c.1.pre));
                let doc = arena.frag(frag);
                let result = match algo {
                    StepAlgo::Staircase => axis::step(doc, &pres, ax, test),
                    StepAlgo::NameStream => axis::step_name_stream(doc, &pres, ax, test),
                    StepAlgo::Naive => axis::naive(doc, &pres, ax, test),
                };
                out_iter.extend(std::iter::repeat_n(it, result.len()));
                out_item.extend(result.into_iter().map(|p| Item::Node(NodeId::new(frag, p))));
            }
            Ok((out_iter, out_item))
        },
    )?;
    let mut out_iter: Vec<i64> = Vec::new();
    let mut out_item: Vec<Item> = Vec::new();
    for (pi, pv) in parts {
        out_iter.extend(pi);
        out_item.extend(pv);
    }
    Ok(Table::new(vec![
        (Col::ITER, Column::Int(out_iter)),
        (Col::ITEM, Column::Item(out_item)),
    ]))
}

// --------------------------------------------------- node construction

/// `content` rows grouped by `iter` and sorted by `pos` within each
/// group: one global stable sort over (iter, pos) with groups read back
/// as contiguous slices — no hash map, no per-group vector.
struct ContentGroups {
    /// (iter, pos, ord, item), sorted by (iter, pos); ties keep row
    /// order (matching the per-group stable sort this replaces). `ord`
    /// is the content-part tag (0 when the plan carries none).
    rows: Vec<(i64, i64, i64, Item)>,
}

impl ContentGroups {
    fn build(content: &Table) -> Result<Self, EvalError> {
        let n = content.nrows();
        let iters = content.col(Col::ITER);
        let poss = content.col(Col::POS);
        let items = content.col(Col::ITEM);
        let ords = if content.schema().contains(&Col::ORD) {
            Some(content.col(Col::ORD))
        } else {
            None
        };
        let mut rows: Vec<(i64, i64, i64, Item)> = Vec::with_capacity(n);
        // Batch extraction: pull the three integer columns out as
        // slices and dispatch on the item column's representation once,
        // instead of re-branching per row and per column. Non-integer
        // iter/pos/ord columns keep the per-row path (and its exact
        // type-error reporting).
        let (iv, pv) = (int_view(&iters), int_view(&poss));
        let ov = match &ords {
            Some(c) => int_view(c).map(Some),
            None => Some(None),
        };
        if let (Some(iv), Some(pv), Some(ov)) = (iv, pv, ov) {
            let ord = |r: usize| ov.as_ref().map_or(0, |o| o[r]);
            match (&**items.data(), items.sel()) {
                (Column::Item(v), None) => {
                    rows.extend((0..n).map(|r| (iv[r], pv[r], ord(r), v[r].clone())));
                }
                (Column::Item(v), Some(s)) => {
                    rows.extend((0..n).map(|r| (iv[r], pv[r], ord(r), v[s[r] as usize].clone())));
                }
                _ => rows.extend((0..n).map(|r| (iv[r], pv[r], ord(r), items.get(r)))),
            }
        } else {
            for r in 0..n {
                let ord = match &ords {
                    Some(c) => c.get_int(r)?,
                    None => 0,
                };
                rows.push((iters.get_int(r)?, poss.get_int(r)?, ord, items.get(r)));
            }
        }
        if !rows.is_sorted_by_key(|&(it, p, _, _)| (it, p)) {
            rows.sort_by_key(|&(it, p, _, _)| (it, p));
        }
        Ok(ContentGroups { rows })
    }

    /// The content slice of one iteration (empty when it has none).
    fn get(&self, iter: i64) -> &[(i64, i64, i64, Item)] {
        let lo = self.rows.partition_point(|r| r.0 < iter);
        let hi = lo + self.rows[lo..].partition_point(|r| r.0 == iter);
        &self.rows[lo..hi]
    }
}

pub(crate) fn eval_element(
    arena: &mut FragArena,
    names: &Table,
    content: &Table,
) -> Result<Table, EvalError> {
    let by_iter = ContentGroups::build(content)?;
    // One new fragment holds all elements constructed by this operator
    // invocation, as sibling roots, in iter order.
    let name_iters = names.col(Col::ITER);
    let name_items = names.col(Col::ITEM);
    let mut order: Vec<(i64, usize)> = Vec::with_capacity(names.nrows());
    for r in 0..names.nrows() {
        order.push((name_iters.get_int(r)?, r));
    }
    order.sort_unstable();
    let mut b = TreeBuilder::new();
    // The output size is known up front: one element per name row plus
    // every content node's subtree (atomics over-count slightly — they
    // merge into shared text nodes — which only pads the reservation).
    let est: usize = order.len()
        + by_iter
            .rows
            .iter()
            .map(|(_, _, _, it)| match it {
                Item::Node(n) => arena.doc_of(*n).size(n.pre) as usize + 1,
                _ => 1,
            })
            .sum::<usize>();
    b.reserve(est);
    let mut roots: Vec<(i64, u32)> = Vec::with_capacity(order.len());
    // Constructor names are overwhelmingly one literal string attached
    // to every row (the same `Arc<str>` clone), so remember the last
    // (allocation, id) pair and skip the intern hash on a pointer hit.
    let mut last_name: Option<(*const u8, NameId)> = None;
    for &(it, r) in &order {
        let name_item = name_items.get(r);
        let name_id = match &name_item {
            Item::Str(s) => match last_name {
                Some((p, id)) if std::ptr::eq(p, s.as_ptr()) => id,
                _ => {
                    let id = arena.intern(s);
                    last_name = Some((s.as_ptr(), id));
                    id
                }
            },
            other => arena.intern(&other.to_xq_string()),
        };
        let root = b.open_element(name_id);
        let items = by_iter.get(it);
        if !items.is_empty() {
            build_content(arena, &mut b, items)?;
        }
        b.close();
        roots.push((it, root));
    }
    let frag = arena.add(b.finish());
    Ok(Table::new(vec![
        (
            Col::ITER,
            Column::Int(roots.iter().map(|&(it, _)| it).collect()),
        ),
        (
            Col::ITEM,
            Column::Item(
                roots
                    .iter()
                    .map(|&(_, pre)| Item::Node(NodeId::new(frag, pre)))
                    .collect(),
            ),
        ),
    ]))
}

/// Realize a constructor content sequence: leading attribute nodes
/// become attributes, adjacent atomics merge into one text node joined
/// with spaces, nodes are deep-copied (order interaction 2©: sequence
/// order establishes document order).
fn build_content(
    arena: &FragArena,
    b: &mut TreeBuilder,
    items: &[(i64, i64, i64, Item)],
) -> Result<(), EvalError> {
    let mut pending_text: Option<String> = None;
    let mut pending_ord: i64 = 0;
    let mut content_started = false;
    for (_, _, ord, item) in items {
        match item {
            Item::Node(n) => {
                let doc = arena.doc_of(*n);
                if doc.kind(n.pre) == NodeKind::Attribute {
                    if content_started || pending_text.is_some() {
                        return Err(EvalError::new(
                            ErrorCode::XQTY0024,
                            "attribute node follows element content (XQTY0024)",
                        ));
                    }
                    b.attribute(doc.name(n.pre), doc.text(n.pre).unwrap_or(""));
                } else {
                    if let Some(t) = pending_text.take() {
                        b.text(&t);
                    }
                    let doc = arena.doc_of(*n);
                    b.copy_subtree(doc, n.pre);
                    content_started = true;
                }
            }
            atomic => {
                // Atomics merge into one text node; the space separator
                // only applies between atomics of the SAME enclosed
                // expression (content part).
                let s = atomic.to_xq_string();
                match pending_text.as_mut() {
                    Some(t) => {
                        if *ord == pending_ord {
                            t.push(' ');
                        }
                        t.push_str(&s);
                    }
                    None => pending_text = Some(s),
                }
                pending_ord = *ord;
            }
        }
    }
    if let Some(t) = pending_text {
        b.text(&t);
    }
    Ok(())
}

pub(crate) fn eval_attr(
    arena: &mut FragArena,
    names: &Table,
    values: &Table,
) -> Result<Table, EvalError> {
    // values: iter|item (one string per iteration).
    let val_iters = values.col(Col::ITER);
    let val_items = values.col(Col::ITEM);
    let mut val_by_iter: HashMap<i64, String> = HashMap::new();
    for r in 0..values.nrows() {
        let it = val_iters.get_int(r)?;
        let v = val_items.get(r).to_xq_string();
        val_by_iter.insert(it, v);
    }
    let name_iters = names.col(Col::ITER);
    let name_items = names.col(Col::ITEM);
    let mut order: Vec<(i64, usize)> = Vec::with_capacity(names.nrows());
    for r in 0..names.nrows() {
        order.push((name_iters.get_int(r)?, r));
    }
    order.sort_unstable();
    let mut doc = exrquy_xml::Document::new();
    let mut rows: Vec<(i64, u32)> = Vec::new();
    for &(it, r) in &order {
        let name_str = name_items.get(r).to_xq_string();
        let name_id = arena.intern(&name_str);
        let value = val_by_iter.get(&it).cloned().unwrap_or_default();
        let pre = doc.push_orphan_attribute(name_id, &value);
        rows.push((it, pre));
    }
    let frag = arena.add(doc);
    Ok(Table::new(vec![
        (
            Col::ITER,
            Column::Int(rows.iter().map(|&(it, _)| it).collect()),
        ),
        (
            Col::ITEM,
            Column::Item(
                rows.iter()
                    .map(|&(_, pre)| Item::Node(NodeId::new(frag, pre)))
                    .collect(),
            ),
        ),
    ]))
}

pub(crate) fn eval_textnode(arena: &mut FragArena, content: &Table) -> Result<Table, EvalError> {
    let c_iters = content.col(Col::ITER);
    let c_items = content.col(Col::ITEM);
    let mut order: Vec<(i64, usize)> = Vec::with_capacity(content.nrows());
    for r in 0..content.nrows() {
        order.push((c_iters.get_int(r)?, r));
    }
    order.sort_unstable();
    let mut b = TreeBuilder::new();
    let mut rows: Vec<(i64, u32)> = Vec::new();
    for &(it, r) in &order {
        let s = c_items.get(r).to_xq_string();
        // Empty strings construct no text node (the XDM has none).
        if let Some(pre) = b.text(&s) {
            rows.push((it, pre));
        }
    }
    let frag = arena.add(b.finish());
    Ok(Table::new(vec![
        (
            Col::ITER,
            Column::Int(rows.iter().map(|&(it, _)| it).collect()),
        ),
        (
            Col::ITEM,
            Column::Item(
                rows.iter()
                    .map(|&(_, pre)| Item::Node(NodeId::new(frag, pre)))
                    .collect(),
            ),
        ),
    ]))
}

// ------------------------------------------------------- free functions

/// Injected-fault checks at the operator boundary: `cancel-after`
/// (counted over evaluated operators) and `budget-trip` (matched on the
/// operator kind about to run). Mirrors [`BudgetMeter::poll`] so injected
/// faults exercise exactly the error paths real exhaustion would take.
pub(crate) fn poll_failpoints(
    failpoints: &Failpoints,
    dag: &Dag,
    id: OpId,
    ops_seen: usize,
) -> Result<(), EvalError> {
    if failpoints.is_empty() {
        return Ok(());
    }
    if failpoints.cancels_at(ops_seen) {
        return Err(EvalError::new(
            ErrorCode::EXRQ0002,
            format!("query cancelled (injected at operator boundary {ops_seen})"),
        ));
    }
    let kind = dag.op(id).kind_name();
    if failpoints.trips_budget(kind) {
        return Err(EvalError::new(
            ErrorCode::EXRQ0001,
            format!("execution budget exceeded (injected in `{kind}` operator {id})"),
        ));
    }
    if failpoints.panics_in(kind) {
        // A real panic, not an error return: the point is to exercise
        // the serving layer's catch_unwind containment (EXRQ0009). Only
        // ever reached with a `panic:<op>` failpoint armed.
        panic!("injected panic in `{kind}` operator {id} (panic:<op> failpoint)");
    }
    Ok(())
}

pub(crate) fn avalue_item(v: &AValue) -> Item {
    match v {
        AValue::Int(i) => Item::Int(*i),
        AValue::Dbl(b) => Item::Dbl(f64::from_bits(*b)),
        AValue::Str(s) => Item::Str(Arc::from(s.as_ref())),
        AValue::Bool(b) => Item::Bool(*b),
    }
}

fn eval_lit(cols: &[Col], rows: &[Vec<AValue>]) -> Table {
    let built: Vec<(Col, Column)> = cols
        .iter()
        .enumerate()
        .map(|(ci, &name)| {
            let all_int = rows.iter().all(|r| matches!(r[ci], AValue::Int(_)));
            let col = if all_int {
                Column::Int(
                    rows.iter()
                        .map(|r| match r[ci] {
                            AValue::Int(i) => i,
                            _ => unreachable!(),
                        })
                        .collect(),
                )
            } else {
                Column::Item(rows.iter().map(|r| avalue_item(&r[ci])).collect())
            };
            (name, col)
        })
        .collect();
    Table::new(built)
}

fn eval_rownum(
    t: &Table,
    new: Col,
    order: &[exrquy_algebra::SortKey],
    part: Option<Col>,
    threads: usize,
    vec: bool,
) -> Table {
    let n = t.nrows();
    // Fast path (§7): `%⟨⟩` with no order criteria needs no sort — dense
    // per-group counters in one pass; "this operator comes for free".
    if order.is_empty() {
        let nums: Vec<i64> = match part {
            None => (1..=n as i64).collect(),
            Some(p) => {
                let pc = t.col(p);
                let mut counters: HashMap<GroupKey, i64> = HashMap::new();
                (0..n)
                    .map(|r| {
                        let c = counters.entry(pc.get(r).group_key()).or_insert(0);
                        *c += 1;
                        *c
                    })
                    .collect()
            }
        };
        return t.with_column(new, Column::Int(nums));
    }
    // Sort keys: materialize integer columns once so the comparator
    // avoids per-comparison Item boxing (and selection-vector
    // indirection) — `%` is the hot operator whose cost the whole paper
    // is about, keep its constant factors honest.
    enum Key {
        Int(Vec<i64>, bool),
        Item(ColView, bool),
    }
    impl Key {
        fn cmp_rows(&self, a: usize, b: usize) -> std::cmp::Ordering {
            match self {
                Key::Int(v, desc) => {
                    let o = v[a].cmp(&v[b]);
                    if *desc {
                        o.reverse()
                    } else {
                        o
                    }
                }
                Key::Item(c, desc) => {
                    let o = c.get(a).sort_cmp(&c.get(b));
                    if *desc {
                        o.reverse()
                    } else {
                        o
                    }
                }
            }
        }
        fn eq_rows(&self, a: usize, b: usize) -> bool {
            self.cmp_rows(a, b) == std::cmp::Ordering::Equal
        }
    }
    fn key_for(view: ColView, desc: bool) -> Key {
        match int_view(&view) {
            Some(v) => Key::Int(v.into_owned(), desc),
            None => Key::Item(view, desc),
        }
    }
    let mut keys: Vec<Key> = Vec::with_capacity(order.len() + 1);
    if let Some(p) = part {
        keys.push(key_for(t.col(p), false));
    }
    for k in order {
        keys.push(key_for(t.col(k.col), k.desc));
    }
    let cmp = |a: usize, b: usize| {
        for k in &keys {
            let c = k.cmp_rows(a, b);
            if c != std::cmp::Ordering::Equal {
                return c;
            }
        }
        std::cmp::Ordering::Equal
    };
    let has_part = part.is_some();
    // Vectorized: a sortedness probe over the materialized keys skips
    // the sort when rows already arrive in key order (the common
    // iter→seq reorder over staircase output, which is produced in
    // document order). A stable sort of sorted input is the identity
    // permutation, so numbering sequentially is bit-identical.
    if vec && (1..n).all(|r| cmp(r - 1, r) != std::cmp::Ordering::Greater) {
        let mut nums = vec![0i64; n];
        let mut rank = 0i64;
        for (r, num) in nums.iter_mut().enumerate() {
            let new_group = match (has_part, r) {
                (_, 0) => true,
                (true, _) => !keys[0].eq_rows(r, r - 1),
                (false, _) => false,
            };
            rank = if new_group { 1 } else { rank + 1 };
            *num = rank;
        }
        return t.with_column(new, Column::Int(nums));
    }
    let idx = stable_sorted_indices(n, threads, &cmp);
    // Dense 1,2,3,… numbering per partition, written back to row order.
    let mut nums = vec![0i64; n];
    let mut rank = 0i64;
    for (k, &row) in idx.iter().enumerate() {
        let new_group = match (has_part, k) {
            (_, 0) => true,
            (true, _) => !keys[0].eq_rows(row, idx[k - 1]),
            (false, _) => false,
        };
        rank = if new_group { 1 } else { rank + 1 };
        nums[row] = rank;
    }
    t.with_column(new, Column::Int(nums))
}

/// Index sort reproducing the serial `sort_by` (stable) bit-for-bit:
/// morsel chunks are stable-sorted in parallel, then folded left-to-right
/// through a left-preference merge. Equal keys keep the lower original
/// index — exactly the stability guarantee of the serial sort — because
/// chunks cover ascending index ranges and the merge prefers the left run
/// on ties.
fn stable_sorted_indices<C>(n: usize, threads: usize, cmp: &C) -> Vec<usize>
where
    C: Fn(usize, usize) -> std::cmp::Ordering + Sync,
{
    let eff = kernel_threads(n, threads);
    if eff <= 1 {
        let mut idx: Vec<usize> = (0..n).collect();
        idx.sort_by(|&a, &b| cmp(a, b));
        return idx;
    }
    let chunks = run_morsels(n, eff, move |range| {
        let mut idx: Vec<usize> = range.collect();
        idx.sort_by(|&a, &b| cmp(a, b));
        Ok(idx)
    })
    .expect("infallible index sort");
    chunks
        .into_iter()
        .reduce(|a, b| stable_merge(&a, &b, cmp))
        .unwrap_or_default()
}

fn stable_merge<C>(a: &[usize], b: &[usize], cmp: &C) -> Vec<usize>
where
    C: Fn(usize, usize) -> std::cmp::Ordering,
{
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if cmp(a[i], b[j]) != std::cmp::Ordering::Greater {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Dense `i64` values of a view whose underlying column is `Int`: the
/// shared slice when unselected, a gathered copy when a selection vector
/// is interposed. `None` for non-`Int` representations.
fn int_view<'a>(c: &'a ColView) -> Option<std::borrow::Cow<'a, [i64]>> {
    match (&**c.data(), c.sel()) {
        (Column::Int(v), None) => Some(std::borrow::Cow::Borrowed(v.as_slice())),
        (Column::Int(v), Some(s)) => Some(std::borrow::Cow::Owned(
            s.iter().map(|&i| v[i as usize]).collect(),
        )),
        _ => None,
    }
}

/// Non-decreasing? One linear scan — cheap next to building a hash
/// index, and the gate for the merge-join batch kernel.
fn is_sorted_run(v: &[i64]) -> bool {
    v.windows(2).all(|w| w[0] <= w[1])
}

// ------------------------------------------------- batch join machinery

/// Multiply-rotate hasher for the batch join kernels: they hash short
/// in-memory keys by the million, where SipHash's HashDoS hardening is
/// all cost and no threat model (the data is already resident).
#[derive(Default)]
pub(crate) struct FastHasher(u64);

impl std::hash::Hasher for FastHasher {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = (self.0.rotate_left(5) ^ n).wrapping_mul(0x517c_c1b7_2722_0a95);
    }
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.write_u64(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let mut last = 0u64;
        for &b in chunks.remainder() {
            last = last << 8 | b as u64;
        }
        self.write_u64(last ^ (bytes.len() as u64) << 56);
    }
}

pub(crate) type FastMap<K, V> = HashMap<K, V, std::hash::BuildHasherDefault<FastHasher>>;

/// Borrowed join key with [`Item::group_key`] equality semantics
/// (numbers collapse to their f64 bits) but no per-row allocation or
/// `Arc` clone.
#[derive(PartialEq, Eq, Hash)]
enum RefKey<'a> {
    Node(NodeId),
    Num(u64),
    Str(&'a str),
    Bool(bool),
}

fn ref_key(it: &Item) -> RefKey<'_> {
    match it {
        Item::Node(n) => RefKey::Node(*n),
        Item::Int(i) => RefKey::Num((*i as f64).to_bits()),
        Item::Dbl(d) => RefKey::Num(d.to_bits()),
        Item::Str(s) => RefKey::Str(s),
        Item::Bool(b) => RefKey::Bool(*b),
    }
}

/// Run `f(row, key)` over every row of a view, resolving the column
/// representation and selection vector once outside the loop instead of
/// through per-row `get` dispatch (which clones the item).
fn for_each_key<'a>(c: &'a ColView, mut f: impl FnMut(usize, RefKey<'a>)) {
    match (&**c.data(), c.sel()) {
        (Column::Item(v), None) => {
            for (r, it) in v.iter().enumerate() {
                f(r, ref_key(it));
            }
        }
        (Column::Item(v), Some(s)) => {
            for (r, &p) in s.iter().enumerate() {
                f(r, ref_key(&v[p as usize]));
            }
        }
        (Column::Int(v), None) => {
            for (r, &i) in v.iter().enumerate() {
                f(r, RefKey::Num((i as f64).to_bits()));
            }
        }
        (Column::Int(v), Some(s)) => {
            for (r, &p) in s.iter().enumerate() {
                f(r, RefKey::Num((v[p as usize] as f64).to_bits()));
            }
        }
        (Column::Bool(v), None) => {
            for r in 0..v.len() {
                f(r, RefKey::Bool(v.get(r)));
            }
        }
        (Column::Bool(v), Some(s)) => {
            for (r, &p) in s.iter().enumerate() {
                f(r, RefKey::Bool(v.get(p as usize)));
            }
        }
    }
}

/// Hash-join row-pair builder over borrowed keys — the batch-path
/// replacement for the per-row `group_key` probe loop. Pair order (left
/// rows in order, each with its right matches in right-row order), the
/// row-cap check, and the poll cadence are identical to the scalar
/// loop's, so the kernels are error- and output-interchangeable.
fn hash_join_pairs<'a>(
    lc: &'a ColView,
    rc: &'a ColView,
    cap: usize,
    meter: &BudgetMeter,
    lidx: &mut Vec<u32>,
    ridx: &mut Vec<u32>,
) -> Result<(), EvalError> {
    let mut index: FastMap<RefKey<'a>, Vec<u32>> = FastMap::default();
    for_each_key(rc, |j, k| index.entry(k).or_default().push(j as u32));
    let mut err: Option<EvalError> = None;
    for_each_key(lc, |i, k| {
        if err.is_some() {
            return;
        }
        if let Some(matches) = index.get(&k) {
            for &j in matches {
                if lidx.len() >= cap {
                    err = Some(row_cap_exceeded(cap));
                    return;
                }
                lidx.push(i as u32);
                ridx.push(j);
                if lidx.len().is_multiple_of(POLL_STRIDE) {
                    if let Err(e) = meter.poll() {
                        err = Some(e.into());
                        return;
                    }
                }
            }
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Stable ascending lexicographic sort by integer key columns — the
/// order-restoring compensation the cost-based join enumerator grafts
/// over a reordered join cluster. The rank columns are assigned before
/// any reordering, so sorting by them reproduces the canonical row
/// order byte-for-byte regardless of the join order actually executed.
fn eval_sort(t: &Table, keys: &[Col], vec: bool) -> Result<Table, EvalError> {
    let key_cols: Vec<Vec<i64>> = keys
        .iter()
        .map(|&k| t.col(k).to_int_vec())
        .collect::<Result<_, _>>()?;
    let mut idx: Vec<u32> = (0..t.nrows() as u32).collect();
    // `sort_by` is stable: rows with equal key tuples keep their input
    // order, which the regraft invariant relies on for duplicate ranks.
    idx.sort_by(|&a, &b| {
        for kc in &key_cols {
            match kc[a as usize].cmp(&kc[b as usize]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    });
    Ok(if vec {
        t.select_rows(idx)
    } else {
        let idx: Vec<usize> = idx.iter().map(|&i| i as usize).collect();
        t.gather(&idx)
    })
}

fn eval_distinct(t: &Table, vec: bool) -> Table {
    let mut idx: Vec<u32> = Vec::new();
    // Vectorized: a single dense integer column (distinct over
    // loop-lifted `iter` values, typically ascending) run-dedups when
    // sorted and falls back to an integer set otherwise — no per-row
    // key vector either way. First-occurrence order is what the generic
    // scan produces too, so the reference arm stays byte-identical.
    if let ([(_, c)], true) = (t.columns(), vec) {
        if let Some(v) = int_view(c) {
            if v.is_sorted() {
                for r in 0..v.len() {
                    if r == 0 || v[r] != v[r - 1] {
                        idx.push(r as u32);
                    }
                }
            } else {
                let mut seen: std::collections::HashSet<
                    i64,
                    std::hash::BuildHasherDefault<FastHasher>,
                > = Default::default();
                for (r, &k) in v.iter().enumerate() {
                    if seen.insert(k) {
                        idx.push(r as u32);
                    }
                }
            }
            return if vec {
                t.select_rows(idx)
            } else {
                let idx: Vec<usize> = idx.iter().map(|&i| i as usize).collect();
                t.gather(&idx)
            };
        }
    }
    let mut seen: std::collections::HashSet<
        Vec<GroupKey>,
        std::hash::BuildHasherDefault<FastHasher>,
    > = Default::default();
    for r in 0..t.nrows() {
        let key: Vec<GroupKey> = t
            .columns()
            .iter()
            .map(|(_, c)| c.get(r).group_key())
            .collect();
        if seen.insert(key) {
            idx.push(r as u32);
        }
    }
    if vec {
        t.select_rows(idx)
    } else {
        let idx: Vec<usize> = idx.iter().map(|&i| i as usize).collect();
        t.gather(&idx)
    }
}

/// The EXRQ0001 error raised when a row-explosive operator would exceed
/// its budget. Raised *before* (or while) materializing, so the budget
/// also bounds memory, not just the reported result size.
fn row_cap_exceeded(cap: usize) -> EvalError {
    EvalError::new(
        ErrorCode::EXRQ0001,
        format!("operator result exceeds the row budget of {cap} rows"),
    )
}

fn eval_cross(l: &Table, r: &Table, cap: usize, vec: bool) -> Result<Table, EvalError> {
    let (n, m) = (l.nrows(), r.nrows());
    // n·m is known up front — reject oversized (or overflowing) products
    // before allocating anything.
    if n.checked_mul(m).is_none_or(|total| total > cap) {
        return Err(row_cap_exceeded(cap));
    }
    let mut lidx: Vec<u32> = Vec::with_capacity(n * m);
    let mut ridx: Vec<u32> = Vec::with_capacity(n * m);
    for i in 0..n {
        for j in 0..m {
            lidx.push(i as u32);
            ridx.push(j as u32);
        }
    }
    Ok(join_output(l, r, lidx, ridx, vec))
}

/// Assemble a join's output from matched (left, right) row pairs. The
/// vectorized shape shares both inputs' columns behind two selection
/// vectors — a join emits zero copied cells; the scalar shape gathers.
fn join_output(l: &Table, r: &Table, lidx: Vec<u32>, ridx: Vec<u32>, vec: bool) -> Table {
    let nrows = lidx.len();
    if vec {
        // `select_rows` composes any prior selection once per distinct
        // vector (not once per column), so a chain of joins stays one
        // indirection deep per side.
        let lt = l.select_rows(lidx);
        let rt = r.select_rows(ridx);
        let mut cols: Vec<(Col, ColView)> =
            Vec::with_capacity(l.columns().len() + r.columns().len());
        for (name, c) in lt.columns() {
            cols.push((*name, c.clone()));
        }
        for (name, c) in rt.columns() {
            cols.push((*name, c.clone()));
        }
        return Table::from_views(cols, nrows);
    }
    let lidx: Vec<usize> = lidx.iter().map(|&i| i as usize).collect();
    let ridx: Vec<usize> = ridx.iter().map(|&i| i as usize).collect();
    let mut cols: Vec<(Col, Column)> = Vec::new();
    for (name, c) in l.columns() {
        cols.push((*name, c.gather(&lidx)));
    }
    for (name, c) in r.columns() {
        cols.push((*name, c.gather(&ridx)));
    }
    Table::new(cols)
}

fn eval_equijoin(
    l: &Table,
    r: &Table,
    lcol: Col,
    rcol: Col,
    meter: &BudgetMeter,
    vec: bool,
) -> Result<Table, EvalError> {
    let cap = meter.op_row_cap();
    let lc = l.col(lcol);
    let rc = r.col(rcol);
    // Fast path: both integer columns. Skewed keys make the match count
    // quadratic in the worst case, so the budget is checked at each push.
    let (mut lidx, mut ridx): (Vec<u32>, Vec<u32>) = (Vec::new(), Vec::new());
    match (int_view(&lc), int_view(&rc)) {
        // Batch kernel: loop-lifted plans join on `iter` columns, which
        // arrive sorted on both sides — a linear merge needs no hash
        // table (and none of its per-distinct-key allocations). The pair
        // stream it emits is exactly the hash join's (left rows in
        // order, matching right rows in order within each), so the two
        // kernels are output- and error-interchangeable.
        (Some(lv), Some(rv)) if vec && is_sorted_run(&lv) && is_sorted_run(&rv) => {
            let (mut i, mut j) = (0usize, 0usize);
            while i < lv.len() && j < rv.len() {
                let v = lv[i];
                if v < rv[j] {
                    i += 1;
                } else if v > rv[j] {
                    j += 1;
                } else {
                    // Equal-key group: [j, je) on the right.
                    let mut je = j + 1;
                    while je < rv.len() && rv[je] == v {
                        je += 1;
                    }
                    while i < lv.len() && lv[i] == v {
                        for j2 in j..je {
                            if lidx.len() >= cap {
                                return Err(row_cap_exceeded(cap));
                            }
                            lidx.push(i as u32);
                            ridx.push(j2 as u32);
                            if lidx.len().is_multiple_of(POLL_STRIDE) {
                                meter.poll()?;
                            }
                        }
                        i += 1;
                    }
                    j = je;
                }
            }
        }
        (Some(lv), Some(rv)) => {
            let mut index: HashMap<i64, Vec<u32>> = HashMap::new();
            for (j, &v) in rv.iter().enumerate() {
                index.entry(v).or_default().push(j as u32);
            }
            for (i, &v) in lv.iter().enumerate() {
                if let Some(matches) = index.get(&v) {
                    for &j in matches {
                        if lidx.len() >= cap {
                            return Err(row_cap_exceeded(cap));
                        }
                        lidx.push(i as u32);
                        ridx.push(j);
                        if lidx.len().is_multiple_of(POLL_STRIDE) {
                            meter.poll()?;
                        }
                    }
                }
            }
        }
        _ if vec => hash_join_pairs(&lc, &rc, cap, meter, &mut lidx, &mut ridx)?,
        _ => {
            let mut index: HashMap<GroupKey, Vec<u32>> = HashMap::new();
            for j in 0..r.nrows() {
                index
                    .entry(rc.get(j).group_key())
                    .or_default()
                    .push(j as u32);
            }
            for i in 0..l.nrows() {
                if let Some(matches) = index.get(&lc.get(i).group_key()) {
                    for &j in matches {
                        if lidx.len() >= cap {
                            return Err(row_cap_exceeded(cap));
                        }
                        lidx.push(i as u32);
                        ridx.push(j);
                        if lidx.len().is_multiple_of(POLL_STRIDE) {
                            meter.poll()?;
                        }
                    }
                }
            }
        }
    }
    Ok(join_output(l, r, lidx, ridx, vec))
}

fn eval_thetajoin(
    l: &Table,
    r: &Table,
    pred: &[(Col, FunKind, Col)],
    meter: &BudgetMeter,
    vec: bool,
) -> Result<Table, EvalError> {
    // Invariant: the compiler only emits ThetaJoin with a non-empty
    // predicate list (an empty one would be a Cross in disguise).
    assert!(!pred.is_empty(), "theta join needs at least one predicate");
    let cap = meter.op_row_cap();
    let (p0l, k0, p0r) = pred[0];
    let lc = l.col(p0l);
    let rc = r.col(p0r);
    let (mut lidx, mut ridx): (Vec<u32>, Vec<u32>) = (Vec::new(), Vec::new());
    match k0 {
        FunKind::Eq if vec => {
            hash_join_pairs(&lc, &rc, cap, meter, &mut lidx, &mut ridx)?;
        }
        FunKind::Eq => {
            let mut index: HashMap<GroupKey, Vec<u32>> = HashMap::new();
            for j in 0..r.nrows() {
                index
                    .entry(rc.get(j).group_key())
                    .or_default()
                    .push(j as u32);
            }
            for i in 0..l.nrows() {
                if let Some(matches) = index.get(&lc.get(i).group_key()) {
                    for &j in matches {
                        if lidx.len() >= cap {
                            return Err(row_cap_exceeded(cap));
                        }
                        lidx.push(i as u32);
                        ridx.push(j);
                        if lidx.len().is_multiple_of(POLL_STRIDE) {
                            meter.poll()?;
                        }
                    }
                }
            }
        }
        FunKind::Lt | FunKind::Le | FunKind::Gt | FunKind::Ge => {
            // Band join: sort the right side numerically, emit a range per
            // left row. Non-numeric values never match.
            let mut rvals: Vec<(f64, u32)> = (0..r.nrows())
                .filter_map(|j| rc.get(j).as_number_promoting().map(|v| (v, j as u32)))
                .filter(|(v, _)| !v.is_nan())
                .collect();
            // NaNs were filtered above, so partial_cmp cannot return None.
            rvals.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            let keys: Vec<f64> = rvals.iter().map(|&(v, _)| v).collect();
            for i in 0..l.nrows() {
                let Some(x) = lc.get(i).as_number_promoting() else {
                    continue;
                };
                if x.is_nan() {
                    continue;
                }
                let range = match k0 {
                    // l < r  → right values strictly greater than x
                    FunKind::Lt => keys.partition_point(|&v| v <= x)..keys.len(),
                    FunKind::Le => keys.partition_point(|&v| v < x)..keys.len(),
                    // l > r  → right values strictly less than x
                    FunKind::Gt => 0..keys.partition_point(|&v| v < x),
                    FunKind::Ge => 0..keys.partition_point(|&v| v <= x),
                    _ => unreachable!(),
                };
                if lidx.len() + range.len() > cap {
                    return Err(row_cap_exceeded(cap));
                }
                for k in range {
                    lidx.push(i as u32);
                    ridx.push(rvals[k].1);
                    if lidx.len().is_multiple_of(POLL_STRIDE) {
                        meter.poll()?;
                    }
                }
            }
        }
        FunKind::Ne => {
            // Rare; nested loop.
            let mut scanned = 0usize;
            for i in 0..l.nrows() {
                for j in 0..r.nrows() {
                    scanned += 1;
                    if scanned.is_multiple_of(POLL_STRIDE) {
                        meter.poll()?;
                    }
                    if funs::compare_with(FunKind::Ne, &lc.get(i), &rc.get(j)) {
                        if lidx.len() >= cap {
                            return Err(row_cap_exceeded(cap));
                        }
                        lidx.push(i as u32);
                        ridx.push(j as u32);
                    }
                }
            }
        }
        other => {
            return Err(EvalError::new(
                ErrorCode::XPST0017,
                format!("unsupported theta-join predicate {other:?}"),
            ))
        }
    }
    // Residual predicates filter the candidate pairs.
    if pred.len() > 1 {
        let rest: Vec<_> = pred[1..]
            .iter()
            .map(|&(lcn, k, rcn)| (l.col(lcn), k, r.col(rcn)))
            .collect();
        let mut flidx = Vec::new();
        let mut fridx = Vec::new();
        'pair: for p in 0..lidx.len() {
            for (lcn, k, rcn) in &rest {
                if !funs::compare_with(*k, &lcn.get(lidx[p] as usize), &rcn.get(ridx[p] as usize)) {
                    continue 'pair;
                }
            }
            flidx.push(lidx[p]);
            fridx.push(ridx[p]);
        }
        lidx = flidx;
        ridx = fridx;
    }
    Ok(join_output(l, r, lidx, ridx, vec))
}

/// Expand `lo..=hi` integer ranges per row (empty when lo > hi). A query
/// like `(1 to 100000000000)` must trip the row budget incrementally, not
/// after exhausting memory, so the cap is checked inside the loop — and
/// the meter is polled there too, so a cancellation or hard deadline
/// stops the expansion instead of waiting out a hundred-million-row op.
fn eval_range(
    t: &Table,
    lo: Col,
    hi: Col,
    new: Col,
    meter: &BudgetMeter,
    vec: bool,
) -> Result<Table, EvalError> {
    let cap = meter.op_row_cap();
    let loc = t.col(lo);
    let hic = t.col(hi);
    let mut idx: Vec<u32> = Vec::new();
    let mut vals: Vec<i64> = Vec::new();
    for r in 0..t.nrows() {
        let (a, b) = (range_int(&loc.get(r))?, range_int(&hic.get(r))?);
        for v in a..=b {
            if vals.len() >= cap {
                return Err(row_cap_exceeded(cap));
            }
            idx.push(r as u32);
            vals.push(v);
            if vals.len().is_multiple_of(POLL_STRIDE) {
                meter.poll()?;
            }
        }
    }
    let base = if vec {
        t.select_rows(idx)
    } else {
        let idx: Vec<usize> = idx.iter().map(|&i| i as usize).collect();
        t.gather(&idx)
    };
    Ok(base.with_column(new, Column::Int(vals)))
}

fn range_int(i: &Item) -> Result<i64, EvalError> {
    match i.as_number_promoting() {
        Some(f) if f.fract() == 0.0 => Ok(f as i64),
        _ => Err(EvalError::new(
            ErrorCode::FORG0001,
            format!("range bound `{i}` is not an integer"),
        )),
    }
}

fn eval_union(l: &Table, r: &Table) -> Table {
    let mut cols: Vec<(Col, Column)> = Vec::new();
    for (name, lc) in l.columns() {
        let rc = r.col(*name);
        cols.push((*name, lc.to_ref().append(&rc.to_ref())));
    }
    Table::new(cols)
}

fn eval_difference(l: &Table, r: &Table, on: &[(Col, Col)], vec: bool) -> Table {
    let rcols: Vec<_> = on.iter().map(|&(_, rc)| r.col(rc)).collect();
    let keys: std::collections::HashSet<Vec<GroupKey>> = (0..r.nrows())
        .map(|j| rcols.iter().map(|c| c.get(j).group_key()).collect())
        .collect();
    let lcols: Vec<_> = on.iter().map(|&(lc, _)| l.col(lc)).collect();
    let idx: Vec<u32> = (0..l.nrows())
        .filter(|&i| {
            let key: Vec<GroupKey> = lcols.iter().map(|c| c.get(i).group_key()).collect();
            !keys.contains(&key)
        })
        .map(|i| i as u32)
        .collect();
    if vec {
        l.select_rows(idx)
    } else {
        let idx: Vec<usize> = idx.iter().map(|&i| i as usize).collect();
        l.gather(&idx)
    }
}

fn eval_aggr<R: NodeRead + ?Sized>(
    nodes: &R,
    t: &Table,
    kind: AggrKind,
    new: Col,
    arg: Option<Col>,
    part: Option<Col>,
    vec: bool,
) -> Result<Table, EvalError> {
    struct State {
        count: i64,
        sum: f64,
        min: Option<Item>,
        max: Option<Item>,
        any: bool,
        all: bool,
        strs: Vec<(i64, String)>,
        ebv_items: Vec<Item>,
    }
    impl State {
        fn new() -> Self {
            State {
                count: 0,
                sum: 0.0,
                min: None,
                max: None,
                any: false,
                all: true,
                strs: Vec::new(),
                ebv_items: Vec::new(),
            }
        }
    }
    let arg_col = arg.map(|a| t.col(a));
    let part_col = part.map(|p| t.col(p));
    // Vectorized: sorted integer partitions (the loop-lifted common
    // case: grouped by ascending `iter`) aggregate over contiguous runs
    // — no hash map, no per-row state lookup. Count never reads the
    // argument; sum over a dense integer argument adds in the same row
    // order as the per-row loop, so the f64 accumulation is
    // bit-identical.
    if let (Some(p), true) = (&part_col, vec) {
        if let Some(pv) = int_view(p) {
            if matches!(kind, AggrKind::Count | AggrKind::Sum) && pv.is_sorted() {
                let sum_arg = match (kind, &arg_col) {
                    (AggrKind::Sum, Some(a)) => int_view(a),
                    _ => None,
                };
                let fast = matches!(kind, AggrKind::Count) || sum_arg.is_some();
                if fast {
                    let mut out_part: Vec<i64> = Vec::new();
                    let mut out_val: Vec<Item> = Vec::new();
                    let mut i = 0;
                    while i < pv.len() {
                        let k = pv[i];
                        let mut j = i + 1;
                        while j < pv.len() && pv[j] == k {
                            j += 1;
                        }
                        out_part.push(k);
                        out_val.push(match (kind, &sum_arg) {
                            (AggrKind::Count, _) => Item::Int((j - i) as i64),
                            (_, Some(av)) => {
                                let mut s = 0.0f64;
                                for &x in &av[i..j] {
                                    s += x as f64;
                                }
                                Item::Dbl(s)
                            }
                            _ => unreachable!(),
                        });
                        i = j;
                    }
                    let mut cols: Vec<(Col, Column)> = Vec::new();
                    if let Some(pc) = part {
                        cols.push((pc, Column::Int(out_part)));
                    }
                    cols.push((new, Column::Item(out_val)));
                    return Ok(Table::new(cols));
                }
            }
        }
    }
    let pos_col = if t.schema().contains(&Col::POS) {
        Some(t.col(Col::POS))
    } else {
        None
    };
    let mut groups: Vec<(i64, State)> = Vec::new();
    let mut index: FastMap<i64, usize> = FastMap::default();
    for r in 0..t.nrows() {
        let key = match &part_col {
            Some(p) => p.get_int(r)?,
            None => 0,
        };
        let gi = *index.entry(key).or_insert_with(|| {
            groups.push((key, State::new()));
            groups.len() - 1
        });
        let st = &mut groups[gi].1;
        st.count += 1;
        if let Some(a) = &arg_col {
            let item = a.get(r);
            match kind {
                AggrKind::Sum | AggrKind::Avg => {
                    let atom = funs::atomize_item(nodes, &item);
                    let v = atom.as_number_promoting().ok_or_else(|| {
                        EvalError::new(
                            ErrorCode::FORG0001,
                            format!("fn:sum on non-numeric value {item}"),
                        )
                    })?;
                    st.sum += v;
                }
                AggrKind::Max | AggrKind::Min => {
                    // Untyped values promote to xs:double for fn:min/max
                    // (F&O §15.4); non-numeric strings compare lexically.
                    let atom = funs::atomize_item(nodes, &item);
                    let atom = match atom.as_number_promoting() {
                        Some(n) => Item::Dbl(n),
                        None => atom,
                    };
                    let better_max = st.max.as_ref().is_none_or(|m| {
                        funs::compare(&atom, m) == Some(std::cmp::Ordering::Greater)
                    });
                    if better_max {
                        st.max = Some(atom.clone());
                    }
                    let better_min = st
                        .min
                        .as_ref()
                        .is_none_or(|m| funs::compare(&atom, m) == Some(std::cmp::Ordering::Less));
                    if better_min {
                        st.min = Some(atom);
                    }
                }
                AggrKind::Any | AggrKind::All => {
                    let b = item.ebv();
                    st.any |= b;
                    st.all &= b;
                }
                AggrKind::Ebv => st.ebv_items.push(item),
                AggrKind::StrJoin => {
                    let atom = funs::atomize_item(nodes, &item);
                    let posv = match &pos_col {
                        Some(p) => p.get_int(r)?,
                        None => r as i64,
                    };
                    st.strs.push((posv, atom.to_xq_string()));
                }
                AggrKind::Count => {}
            }
        }
    }
    // Aggregates over the absent group: with no partition column the output
    // must still carry one row (count of the empty sequence is 0).
    if part_col.is_none() && groups.is_empty() {
        groups.push((0, State::new()));
    }
    // Deterministic group order.
    groups.sort_by_key(|&(k, _)| k);
    let mut out_part: Vec<i64> = Vec::with_capacity(groups.len());
    let mut out_val: Vec<Item> = Vec::with_capacity(groups.len());
    for (key, mut st) in groups {
        let val = match kind {
            AggrKind::Count => Some(Item::Int(st.count)),
            AggrKind::Sum => Some(Item::Dbl(st.sum)),
            AggrKind::Avg => {
                if st.count == 0 {
                    None
                } else {
                    Some(Item::Dbl(st.sum / st.count as f64))
                }
            }
            AggrKind::Max => st.max.take(),
            AggrKind::Min => st.min.take(),
            AggrKind::Any => Some(Item::Bool(st.any)),
            AggrKind::All => Some(Item::Bool(st.all)),
            AggrKind::Ebv => Some(Item::Bool(ebv_of_group(&st.ebv_items)?)),
            AggrKind::StrJoin => {
                st.strs.sort_by_key(|&(p, _)| p);
                let joined = st
                    .strs
                    .iter()
                    .map(|(_, s)| s.as_str())
                    .collect::<Vec<_>>()
                    .join(" ");
                Some(Item::str(&joined))
            }
        };
        if let Some(v) = val {
            out_part.push(key);
            out_val.push(v);
        }
    }
    let mut cols: Vec<(Col, Column)> = Vec::new();
    if let Some(p) = part {
        cols.push((p, Column::Int(out_part)));
    }
    cols.push((new, Column::Item(out_val)));
    Ok(Table::new(cols))
}

/// Effective boolean value of an item sequence (`fn:boolean` rules).
fn ebv_of_group(items: &[Item]) -> Result<bool, EvalError> {
    match items {
        [] => Ok(false),
        [first, ..] if first.is_node() => Ok(true),
        [single] => Ok(single.ebv()),
        _ => Err(EvalError::new(
            ErrorCode::FORG0006,
            "effective boolean value of a multi-item atomic sequence (FORG0006)",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use exrquy_algebra::SortKey;
    use exrquy_xml::{Axis, Catalog, NodeTest};
    use std::sync::Arc;

    fn run(dag: &Dag, root: OpId) -> Table {
        let mut arena = FragArena::new(Arc::new(Catalog::new()));
        let mut e = Engine::new(dag, &mut arena, EngineOptions::default());
        (*e.eval(root).unwrap()).clone()
    }

    fn lit(dag: &mut Dag, cols: Vec<Col>, rows: Vec<Vec<i64>>) -> OpId {
        dag.add(Op::Lit {
            cols,
            rows: rows
                .into_iter()
                .map(|r| r.into_iter().map(AValue::Int).collect())
                .collect(),
        })
    }

    #[test]
    fn rownum_partitions_and_orders() {
        let mut dag = Dag::new();
        let l = lit(
            &mut dag,
            vec![Col::ITER, Col::ITEM],
            vec![vec![2, 30], vec![1, 20], vec![1, 10], vec![2, 40]],
        );
        let r = dag.add(Op::RowNum {
            input: l,
            new: Col::POS,
            order: vec![SortKey::asc(Col::ITEM)],
            part: Some(Col::ITER),
        });
        let t = run(&dag, r);
        // row order preserved; numbers assigned per iter by item order
        let nums: Vec<i64> = (0..4).map(|i| t.int(Col::POS, i)).collect();
        assert_eq!(nums, vec![1, 2, 1, 2]);
    }

    #[test]
    fn rownum_descending() {
        let mut dag = Dag::new();
        let l = lit(
            &mut dag,
            vec![Col::ITEM],
            vec![vec![10], vec![30], vec![20]],
        );
        let r = dag.add(Op::RowNum {
            input: l,
            new: Col::POS,
            order: vec![SortKey {
                col: Col::ITEM,
                desc: true,
            }],
            part: None,
        });
        let t = run(&dag, r);
        let nums: Vec<i64> = (0..3).map(|i| t.int(Col::POS, i)).collect();
        assert_eq!(nums, vec![3, 1, 2]);
    }

    #[test]
    fn rowid_attaches_unique_dense() {
        let mut dag = Dag::new();
        let l = lit(&mut dag, vec![Col::ITEM], vec![vec![9], vec![9], vec![9]]);
        let r = dag.add(Op::RowId {
            input: l,
            new: Col::POS,
        });
        let t = run(&dag, r);
        let mut nums: Vec<i64> = (0..3).map(|i| t.int(Col::POS, i)).collect();
        nums.sort_unstable();
        assert_eq!(nums, vec![1, 2, 3]);
    }

    #[test]
    fn select_and_fun() {
        let mut dag = Dag::new();
        let l = lit(
            &mut dag,
            vec![Col::ITEM1, Col::ITEM2],
            vec![vec![1, 2], vec![3, 3], vec![5, 4]],
        );
        let f = dag.add(Op::Fun {
            input: l,
            new: Col::RES,
            kind: FunKind::Lt,
            args: vec![Col::ITEM1, Col::ITEM2],
        });
        let s = dag.add(Op::Select {
            input: f,
            col: Col::RES,
        });
        let t = run(&dag, s);
        assert_eq!(t.nrows(), 1);
        assert_eq!(t.int(Col::ITEM1, 0), 1);
    }

    #[test]
    fn aggr_count_per_group_and_empty_global() {
        let mut dag = Dag::new();
        let l = lit(
            &mut dag,
            vec![Col::ITER, Col::ITEM],
            vec![vec![1, 10], vec![1, 20], vec![3, 30]],
        );
        let a = dag.add(Op::Aggr {
            input: l,
            kind: AggrKind::Count,
            new: Col::RES,
            arg: None,
            part: Some(Col::ITER),
        });
        let t = run(&dag, a);
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.int(Col::ITER, 0), 1);
        assert_eq!(t.item(Col::RES, 0), Item::Int(2));
        assert_eq!(t.item(Col::RES, 1), Item::Int(1));

        // Global count over an empty input still yields one row of 0.
        let empty = lit(&mut dag, vec![Col::ITEM], vec![]);
        let a2 = dag.add(Op::Aggr {
            input: empty,
            kind: AggrKind::Count,
            new: Col::RES,
            arg: None,
            part: None,
        });
        let t2 = run(&dag, a2);
        assert_eq!(t2.nrows(), 1);
        assert_eq!(t2.item(Col::RES, 0), Item::Int(0));
    }

    #[test]
    fn aggr_sum_max_min() {
        let mut dag = Dag::new();
        let l = lit(
            &mut dag,
            vec![Col::ITER, Col::ITEM],
            vec![vec![1, 10], vec![1, 30], vec![2, 5]],
        );
        for (kind, expect1) in [
            (AggrKind::Sum, Item::Dbl(40.0)),
            (AggrKind::Max, Item::Dbl(30.0)),
            (AggrKind::Min, Item::Dbl(10.0)),
            (AggrKind::Avg, Item::Dbl(20.0)),
        ] {
            let a = dag.add(Op::Aggr {
                input: l,
                kind,
                new: Col::RES,
                arg: Some(Col::ITEM),
                part: Some(Col::ITER),
            });
            let t = run(&dag, a);
            assert_eq!(t.item(Col::RES, 0), expect1, "{kind:?}");
        }
    }

    #[test]
    fn equijoin_matches_pairs() {
        let mut dag = Dag::new();
        let l = lit(&mut dag, vec![Col::ITER], vec![vec![1], vec![2], vec![2]]);
        let r = lit(
            &mut dag,
            vec![Col::ITER1, Col::ITEM],
            vec![vec![2, 20], vec![3, 30]],
        );
        let j = dag.add(Op::EquiJoin {
            l,
            r,
            lcol: Col::ITER,
            rcol: Col::ITER1,
        });
        let t = run(&dag, j);
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.int(Col::ITEM, 0), 20);
    }

    #[test]
    fn thetajoin_band() {
        let mut dag = Dag::new();
        let l = lit(&mut dag, vec![Col::ITEM1], vec![vec![10], vec![25]]);
        let r = lit(
            &mut dag,
            vec![Col::ITEM2],
            vec![vec![5], vec![15], vec![20], vec![30]],
        );
        let j = dag.add(Op::ThetaJoin {
            l,
            r,
            pred: vec![(Col::ITEM1, FunKind::Gt, Col::ITEM2)],
        });
        let t = run(&dag, j);
        // 10 > {5}; 25 > {5,15,20} → 4 pairs
        assert_eq!(t.nrows(), 4);
        let le = dag.add(Op::ThetaJoin {
            l,
            r,
            pred: vec![(Col::ITEM1, FunKind::Le, Col::ITEM2)],
        });
        let t = run(&dag, le);
        // 10 <= {15,20,30}; 25 <= {30} → 4 pairs
        assert_eq!(t.nrows(), 4);
    }

    #[test]
    fn union_aligns_columns() {
        let mut dag = Dag::new();
        let l = lit(&mut dag, vec![Col::ITER, Col::ITEM], vec![vec![1, 10]]);
        // Same column set, different layout order.
        let r = lit(&mut dag, vec![Col::ITEM, Col::ITER], vec![vec![20, 2]]);
        let u = dag.add(Op::Union { l, r });
        let t = run(&dag, u);
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.int(Col::ITER, 1), 2);
        assert_eq!(t.int(Col::ITEM, 1), 20);
    }

    #[test]
    fn difference_filters_by_key() {
        let mut dag = Dag::new();
        let l = lit(&mut dag, vec![Col::ITER], vec![vec![1], vec![2], vec![3]]);
        let r = lit(&mut dag, vec![Col::ITER1], vec![vec![2]]);
        let d = dag.add(Op::Difference {
            l,
            r,
            on: vec![(Col::ITER, Col::ITER1)],
        });
        let t = run(&dag, d);
        assert_eq!(t.nrows(), 2);
    }

    #[test]
    fn distinct_removes_duplicate_rows() {
        let mut dag = Dag::new();
        let l = lit(
            &mut dag,
            vec![Col::ITER, Col::ITEM],
            vec![vec![1, 10], vec![1, 10], vec![1, 20]],
        );
        let d = dag.add(Op::Distinct { input: l });
        assert_eq!(run(&dag, d).nrows(), 2);
    }

    #[test]
    fn step_over_document() {
        let mut dag = Dag::new();
        let doc_op = dag.add(Op::Doc {
            url: Arc::from("t.xml"),
        });
        let ctx = dag.add(Op::Attach {
            input: doc_op,
            col: Col::ITER,
            value: AValue::Int(1),
        });
        let mut builder = Catalog::builder();
        builder
            .load_str("t.xml", "<a><b><c/><d/></b><c/></a>")
            .unwrap();
        let catalog = Arc::new(builder.build());

        let name_c = catalog.pool().lookup("c").unwrap();
        let dos = dag.add(Op::Step {
            input: ctx,
            axis: Axis::DescendantOrSelf,
            test: NodeTest::AnyKind,
        });
        let step_c = dag.add(Op::Step {
            input: dos,
            axis: Axis::Child,
            test: NodeTest::Name(name_c),
        });
        let mut arena = FragArena::new(catalog);
        let mut e = Engine::new(&dag, &mut arena, EngineOptions::default());
        let t = e.eval(step_c).unwrap();
        // c1 (pre 3) and c2 (pre 5)
        assert_eq!(t.nrows(), 2);
        assert_eq!(t.item(Col::ITEM, 0), Item::Node(NodeId::new(0, 3)));
        assert_eq!(t.item(Col::ITEM, 1), Item::Node(NodeId::new(0, 5)));
        // Profile recorded step time under "⬡".
        assert!(e.profile.per_kind().contains_key("⬡"));
    }

    #[test]
    fn element_construction_with_content() {
        let mut dag = Dag::new();
        // names: iter 1 → "e"
        let names = dag.add(Op::Lit {
            cols: vec![Col::ITER, Col::ITEM],
            rows: vec![vec![AValue::Int(1), AValue::str("e")]],
        });
        // content: iter 1 → items 10, "x" at pos 1, 2
        let content = dag.add(Op::Lit {
            cols: vec![Col::ITER, Col::POS, Col::ITEM],
            rows: vec![
                vec![AValue::Int(1), AValue::Int(1), AValue::Int(10)],
                vec![AValue::Int(1), AValue::Int(2), AValue::str("x")],
            ],
        });
        let elem = dag.add(Op::Element { names, content });
        let mut arena = FragArena::new(Arc::new(Catalog::new()));
        let mut e = Engine::new(&dag, &mut arena, EngineOptions::default());
        let t = e.eval(elem).unwrap();
        assert_eq!(t.nrows(), 1);
        let Item::Node(n) = t.item(Col::ITEM, 0) else {
            panic!("expected node")
        };
        let rendered = exrquy_xml::serialize::node_to_string(e.arena, n);
        // adjacent atomics joined with a space into one text node
        assert_eq!(rendered, "<e>10 x</e>");
    }

    #[test]
    fn ebv_rules_on_groups() {
        assert!(!ebv_of_group(&[]).unwrap());
        assert!(ebv_of_group(&[Item::Node(NodeId::new(0, 0)), Item::Int(0)]).unwrap());
        assert!(!ebv_of_group(&[Item::Int(0)]).unwrap());
        assert!(ebv_of_group(&[Item::Int(1), Item::Int(2)]).is_err());
    }

    #[test]
    fn shared_subplans_evaluate_once() {
        let mut dag = Dag::new();
        let l = lit(&mut dag, vec![Col::ITER], vec![vec![1], vec![2]]);
        let a = dag.add(Op::RowId {
            input: l,
            new: Col::POS,
        });
        let d = dag.add(Op::Difference {
            l: a,
            r: a,
            on: vec![(Col::POS, Col::POS)],
        });
        let t = run(&dag, d);
        assert_eq!(t.nrows(), 0);
    }
}
