//! The vectorized executor: runs a flattened [`PhysPlan`] slot by slot.
//!
//! Operand access is array indexing into a per-execution slot vector —
//! no per-evaluation `topo_order` walk, no `OpId` hash lookups on the
//! hot path. Fused chains (`fun`/`σ`/`attach`/`π` runs collapsed by
//! [`exrquy_algebra::lower`]) execute as a register program over the
//! input batch: base columns stay shared behind selection vectors,
//! function results live in per-row registers, and only the chain's
//! final table is ever materialized.
//!
//! Execution is **step-at-a-time** inside a chain (each step scans the
//! whole live batch before the next starts), not row-at-a-time: that
//! keeps the operator order and the ascending row order within each
//! operator identical to the scalar engine, so when several rows or
//! steps could fail, the *same* error surfaces. Budget accounting is
//! kept in lockstep too — every interior step charges its output rows
//! and counts as one operator, exactly as it would un-fused.

use crate::column::Column;
use crate::eval::{
    avalue_item, eval_attr, eval_element, eval_pure, eval_textnode, Engine, EngineOptions,
    EvalError,
};
use crate::item::Item;
use crate::kernels::{fun_batch, select_batch, Operand};
use crate::table::{ColView, SelRef, SelVec, Table};
use exrquy_algebra::{Col, FuseStep, Op, PhysOp, PhysPlan};
use exrquy_diag::BudgetMeter;
use exrquy_xml::FragArena;
use std::sync::Arc;
use std::time::Instant;

/// Evaluate a flattened plan, memoizing per logical operator in the
/// engine's cache (a re-execution over a warm cache resolves every slot
/// without running anything).
pub(crate) fn eval_phys(engine: &mut Engine, plan: &PhysPlan) -> Result<Arc<Table>, EvalError> {
    engine.profile.vec.phys_slots += plan.len() as u64;
    engine.profile.vec.fused_chains += plan.fused_chains as u64;
    engine.profile.vec.fused_ops += plan.fused_ops as u64;
    if engine.opts.threads > 1 {
        return crate::par::eval_parallel_phys(engine, plan);
    }
    let mut slots: Vec<Option<Arc<Table>>> = vec![None; plan.len()];
    for (i, phys) in plan.ops.iter().enumerate() {
        let out_id = phys.out_id();
        if let Some(t) = engine.cache.get(&out_id) {
            slots[i] = Some(t.clone());
            continue;
        }
        engine.meter.poll()?;
        let started = Instant::now();
        let table = exec_slot(engine, phys, &slots)?;
        engine.profile.record(engine.dag, out_id, started.elapsed());
        engine.profile.record_rows(out_id, table.nrows());
        engine.charge_op_output(table.nrows())?;
        let t = Arc::new(table);
        engine.cache.insert(out_id, t.clone());
        slots[i] = Some(t);
        engine.meter.record_op();
    }
    Ok(slots[plan.root as usize]
        .clone()
        .expect("root slot evaluated"))
}

/// Run one slot against already-filled operand slots.
fn exec_slot(
    engine: &mut Engine,
    phys: &PhysOp,
    slots: &[Option<Arc<Table>>],
) -> Result<Table, EvalError> {
    let slot = |s: u32| {
        slots[s as usize]
            .clone()
            .expect("operand slot precedes its consumer")
    };
    match phys {
        PhysOp::Fused { input, steps, .. } => {
            let t = slot(*input);
            let mut batches = 0u64;
            let out = exec_fused(
                &t,
                steps,
                engine.arena,
                &engine.opts,
                &engine.meter,
                &mut batches,
            );
            engine.profile.vec.batches += batches;
            out
        }
        PhysOp::Op { id, args } => match engine.dag.op(*id) {
            // Writers mutate the arena; same single-writer rule as the
            // serial engine (in a parallel region they are pinned to the
            // owning thread).
            Op::Element { .. } => {
                let (nt, ct) = (slot(args[0]), slot(args[1]));
                eval_element(engine.arena, &nt, &ct)
            }
            Op::Attr { .. } => {
                let (nt, vt) = (slot(args[0]), slot(args[1]));
                eval_attr(engine.arena, &nt, &vt)
            }
            Op::TextNode { .. } => {
                let ct = slot(args[0]);
                eval_textnode(engine.arena, &ct)
            }
            _ => eval_pure(
                engine.dag,
                *id,
                &|k| slot(args[k]),
                engine.arena,
                &engine.opts,
                &engine.meter,
            ),
        },
    }
}

/// Where a visible column's values come from mid-chain.
#[derive(Clone)]
enum Src {
    /// Input-table column by layout index (read through `alive`).
    Base(usize),
    /// Register produced by an earlier `fun` step (aligned to `alive`).
    Reg(usize),
    /// Per-row constant from an `attach` step.
    Const(Item),
}

/// Resolve a column name to its source; first match wins, mirroring
/// [`Table::col`] on the materialized layout.
fn lookup(env: &[(Col, Src)], name: Col) -> Src {
    env.iter()
        .find(|(n, _)| *n == name)
        .map(|(_, s)| s.clone())
        .unwrap_or_else(|| panic!("table has no column `{name}`"))
}

/// Kernel operand for `s`: base columns read through the live set
/// composed with their own selection vector, registers are already
/// aligned to the live set, constants stay constants.
fn operand<'a>(
    input: &'a Table,
    regs: &'a [Arc<Column>],
    alive: Option<&'a [u32]>,
    s: &'a Src,
) -> Operand<'a> {
    match s {
        Src::Base(ci) => Operand::from_view(&input.columns()[*ci].1, alive),
        Src::Reg(ri) => Operand::from_column(&regs[*ri]),
        Src::Const(it) => Operand::Const(it),
    }
}

/// Dense constant column of `nrows` copies of `item`.
fn const_column(item: &Item, nrows: usize) -> Column {
    match item {
        Item::Int(i) => Column::Int(vec![*i; nrows]),
        Item::Bool(b) => Column::Bool(crate::bits::BitVec::from_iter_exact(std::iter::repeat_n(
            *b, nrows,
        ))),
        other => Column::Item(vec![other.clone(); nrows]),
    }
}

/// Execute a fused chain over `input` as a single batch program.
pub(crate) fn exec_fused(
    input: &Table,
    steps: &[FuseStep],
    arena: &FragArena,
    opts: &EngineOptions,
    meter: &BudgetMeter,
    batches: &mut u64,
) -> Result<Table, EvalError> {
    let threads = opts.threads.max(1);
    let mut env: Vec<(Col, Src)> = input
        .columns()
        .iter()
        .enumerate()
        .map(|(i, (n, _))| (*n, Src::Base(i)))
        .collect();
    // Live rows as physical positions into `input`; `None` = all rows.
    let mut alive: Option<SelVec> = None;
    let mut regs: Vec<Arc<Column>> = Vec::new();
    for (si, step) in steps.iter().enumerate() {
        meter.poll()?;
        let live = alive.as_ref().map_or(input.nrows(), Vec::len);
        match step {
            FuseStep::Fun { new, kind, args } => {
                let srcs: Vec<Src> = args.iter().map(|a| lookup(&env, *a)).collect();
                let ops: Vec<Operand> = srcs
                    .iter()
                    .map(|s| operand(input, &regs, alive.as_deref(), s))
                    .collect();
                let (col, b) = fun_batch(arena, *kind, &ops, live, threads)?;
                drop(ops);
                *batches += b;
                env.push((*new, Src::Reg(regs.len())));
                regs.push(Arc::new(col));
            }
            FuseStep::Select { col } => {
                let src = lookup(&env, *col);
                // Inner scope: the operand borrows `regs`, which the
                // compaction below mutates.
                let (keep, b) = {
                    let op = operand(input, &regs, alive.as_deref(), &src);
                    select_batch(&op, live, threads)?
                };
                *batches += b;
                alive = Some(match alive.as_ref() {
                    None => keep.clone(),
                    Some(a) => keep.iter().map(|&p| a[p as usize]).collect(),
                });
                // Registers stay aligned to the live set: compact them.
                let idx: Vec<usize> = keep.iter().map(|&p| p as usize).collect();
                for reg in &mut regs {
                    *reg = Arc::new(reg.gather(&idx));
                }
            }
            FuseStep::Attach { col, value } => {
                env.push((*col, Src::Const(avalue_item(value))));
            }
            FuseStep::Project { cols } => {
                env = cols
                    .iter()
                    .map(|(new, src)| (*new, lookup(&env, *src)))
                    .collect();
            }
        }
        // Interior steps charge their output and count as one operator,
        // exactly as when evaluated un-fused; the tail's output is
        // charged once at the slot boundary by the caller.
        if si + 1 < steps.len() {
            let now = alive.as_ref().map_or(input.nrows(), Vec::len);
            meter.charge_rows(now)?;
            meter.record_op();
        }
    }
    let nrows = alive.as_ref().map_or(input.nrows(), Vec::len);
    let sel_ref: Option<SelRef> = alive.map(Arc::new);
    let cols: Vec<(Col, ColView)> = env
        .iter()
        .map(|(n, s)| {
            let view = match s {
                // Surviving base columns stay shared — one composed
                // selection vector, zero copies.
                Src::Base(ci) => {
                    let v = &input.columns()[*ci].1;
                    match &sel_ref {
                        None => v.clone(),
                        Some(idx) => v.narrow(idx),
                    }
                }
                // Registers are already dense columns aligned to the
                // live set — share them as-is.
                Src::Reg(ri) => ColView::dense(regs[*ri].clone()),
                Src::Const(it) => ColView::dense(Arc::new(const_column(it, nrows))),
            };
            (*n, view)
        })
        .collect();
    Ok(Table::from_views(cols, nrows))
}
